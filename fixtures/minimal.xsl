root -> result
