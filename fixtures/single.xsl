// Identity over the one-tag alphabet.
s -> s(@apply)
