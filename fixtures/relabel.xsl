// Q1-style relabeling fragment: each a becomes one b.
root -> result(@apply)
a -> b
