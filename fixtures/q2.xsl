// Example 4.3 (Q2): three b markers interleaved with three copies of
// the children — the workhorse of the walk-route benchmarks.
root -> result(b, @apply, b, @apply, b, @apply)
a -> a
