//! Property tests for transducer evaluation vs the Proposition 3.8 output
//! automaton: for deterministic machines the automaton accepts exactly
//! the evaluated output; for nondeterministic ones it accepts exactly the
//! enumerable output set.
//!
//! Driven by the workspace's deterministic [`SmallRng`]; runs a fixed
//! number of seeded cases.

use std::sync::Arc;
use xmltc_core::machine::{Guard, SymSpec, TransducerBuilder};
use xmltc_core::{eval, is_output, library, output_automaton, outputs};
use xmltc_trees::{generate, Alphabet, BinaryTree, SmallRng};

fn alpha() -> Arc<Alphabet> {
    Alphabet::ranked(&["x", "y"], &["f", "g"])
}

fn rand_tree(rng: &mut SmallRng, al: &Arc<Alphabet>) -> BinaryTree {
    generate::random_binary(al, 4, 0.6, rng).unwrap()
}

/// A nondeterministic relabeler: each leaf may come out as x or y.
fn fuzzy_leaves(al: &Arc<Alphabet>) -> xmltc_core::PebbleTransducer {
    let x = al.get("x").unwrap();
    let y = al.get("y").unwrap();
    let mut b = TransducerBuilder::new(al, al, 1);
    let q = b.state("q", 1).unwrap();
    let l = b.state("l", 1).unwrap();
    let r = b.state("r", 1).unwrap();
    b.set_initial(q);
    for s in al.binaries() {
        b.output2(SymSpec::One(s), q, Guard::any(), s, l, r)
            .unwrap();
    }
    b.move_rule(
        SymSpec::Binaries,
        l,
        Guard::any(),
        xmltc_core::machine::Move::DownLeft,
        q,
    )
    .unwrap();
    b.move_rule(
        SymSpec::Binaries,
        r,
        Guard::any(),
        xmltc_core::machine::Move::DownRight,
        q,
    )
    .unwrap();
    b.output0(SymSpec::Leaves, q, Guard::any(), x).unwrap();
    b.output0(SymSpec::Leaves, q, Guard::any(), y).unwrap();
    b.build().unwrap()
}

#[test]
fn eval_result_is_in_output_language() {
    let al = alpha();
    let mut rng = SmallRng::seed_from_u64(0xC001);
    for case in 0..64 {
        let t = rand_tree(&mut rng, &al);
        let copy = library::copy(&al).unwrap();
        let out = eval(&copy, &t).unwrap();
        assert!(is_output(&copy, &t, &out).unwrap(), "case {case} on {t}");
        // And the enumeration finds it.
        let enumerated = outputs(&copy, &t, t.depth() + 1, 10).unwrap();
        assert_eq!(enumerated.len(), 1, "case {case} on {t}");
        assert_eq!(&enumerated[0], &out, "case {case} on {t}");
    }
}

#[test]
fn duplicator_output_in_language() {
    let al = alpha();
    let mut rng = SmallRng::seed_from_u64(0xC002);
    for case in 0..64 {
        let t = rand_tree(&mut rng, &al);
        let (dup, _) = library::duplicator(&al).unwrap();
        let out = eval(&dup, &t).unwrap();
        assert!(is_output(&dup, &t, &out).unwrap(), "case {case} on {t}");
    }
}

#[test]
fn nondeterministic_output_set() {
    let al = alpha();
    let mut rng = SmallRng::seed_from_u64(0xC003);
    for case in 0..64 {
        let t = rand_tree(&mut rng, &al);
        let fuzzy = fuzzy_leaves(&al);
        let leaves = t.preorder().filter(|&n| t.is_leaf(n)).count() as u32;
        // Exactly 2^leaves outputs of the same shape.
        let a = output_automaton(&fuzzy, &t).unwrap();
        let enumerated = outputs(&fuzzy, &t, t.depth(), 1 << leaves.min(8)).unwrap();
        if leaves <= 8 {
            assert_eq!(
                enumerated.len() as u32,
                1u32 << leaves,
                "case {case} on {t}"
            );
        }
        for o in &enumerated {
            assert!(a.accepts(o).unwrap(), "case {case}: {o} rejected");
            // Same shape as the input.
            assert_eq!(o.len(), t.len(), "case {case}: {o} misshapen");
        }
        // A wrong-shaped candidate is rejected.
        let single = BinaryTree::parse("x", &al).unwrap();
        if t.len() > 1 {
            assert!(!a.accepts(&single).unwrap(), "case {case} on {t}");
        }
    }
}
