//! Property tests for transducer evaluation vs the Proposition 3.8 output
//! automaton: for deterministic machines the automaton accepts exactly
//! the evaluated output; for nondeterministic ones it accepts exactly the
//! enumerable output set.

use proptest::prelude::*;
use std::sync::Arc;
use xmltc_core::machine::{Guard, SymSpec, TransducerBuilder};
use xmltc_core::{eval, is_output, library, output_automaton, outputs};
use xmltc_trees::{Alphabet, BinaryTree};

fn alpha() -> Arc<Alphabet> {
    Alphabet::ranked(&["x", "y"], &["f", "g"])
}

fn arb_tree(al: Arc<Alphabet>) -> impl Strategy<Value = BinaryTree> {
    let leaf = prop::sample::select(vec!["x", "y"]).prop_map(String::from);
    let expr = leaf.prop_recursive(3, 16, 2, |inner| {
        (
            prop::sample::select(vec!["f", "g"]),
            inner.clone(),
            inner,
        )
            .prop_map(|(s, l, r)| format!("{s}({l}, {r})"))
    });
    expr.prop_map(move |src| BinaryTree::parse(&src, &al).unwrap())
}

/// A nondeterministic relabeler: each leaf may come out as x or y.
fn fuzzy_leaves(al: &Arc<Alphabet>) -> xmltc_core::PebbleTransducer {
    let x = al.get("x").unwrap();
    let y = al.get("y").unwrap();
    let mut b = TransducerBuilder::new(al, al, 1);
    let q = b.state("q", 1).unwrap();
    let l = b.state("l", 1).unwrap();
    let r = b.state("r", 1).unwrap();
    b.set_initial(q);
    for s in al.binaries() {
        b.output2(SymSpec::One(s), q, Guard::any(), s, l, r).unwrap();
    }
    b.move_rule(SymSpec::Binaries, l, Guard::any(), xmltc_core::machine::Move::DownLeft, q)
        .unwrap();
    b.move_rule(SymSpec::Binaries, r, Guard::any(), xmltc_core::machine::Move::DownRight, q)
        .unwrap();
    b.output0(SymSpec::Leaves, q, Guard::any(), x).unwrap();
    b.output0(SymSpec::Leaves, q, Guard::any(), y).unwrap();
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn eval_result_is_in_output_language(t in arb_tree(alpha())) {
        let al = t.alphabet().clone();
        let copy = library::copy(&al).unwrap();
        let out = eval(&copy, &t).unwrap();
        prop_assert!(is_output(&copy, &t, &out).unwrap());
        // And the enumeration finds it.
        let enumerated = outputs(&copy, &t, t.depth() + 1, 10).unwrap();
        prop_assert_eq!(enumerated.len(), 1);
        prop_assert_eq!(&enumerated[0], &out);
    }

    #[test]
    fn duplicator_output_in_language(t in arb_tree(alpha())) {
        let al = t.alphabet().clone();
        let (dup, _) = library::duplicator(&al).unwrap();
        let out = eval(&dup, &t).unwrap();
        prop_assert!(is_output(&dup, &t, &out).unwrap());
    }

    #[test]
    fn nondeterministic_output_set(t in arb_tree(alpha())) {
        let al = t.alphabet().clone();
        let fuzzy = fuzzy_leaves(&al);
        let leaves = t.preorder().filter(|&n| t.is_leaf(n)).count() as u32;
        // Exactly 2^leaves outputs of the same shape.
        let a = output_automaton(&fuzzy, &t).unwrap();
        let enumerated = outputs(&fuzzy, &t, t.depth(), 1 << leaves.min(8)).unwrap();
        if leaves <= 8 {
            prop_assert_eq!(enumerated.len() as u32, 1u32 << leaves);
        }
        for o in &enumerated {
            prop_assert!(a.accepts(o).unwrap());
            // Same shape as the input.
            prop_assert_eq!(o.len(), t.len());
        }
        // A wrong-shaped candidate is rejected.
        let single = BinaryTree::parse("x", &al).unwrap();
        if t.len() > 1 {
            prop_assert!(!a.accepts(&single).unwrap());
        }
    }
}
