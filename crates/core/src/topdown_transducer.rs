//! Classical top-down tree transducers (Definition 3.2) and their
//! embedding into 1-pebble transducers.
//!
//! A top-down transducer rule `(a, q) → t'` emits an output *fragment*
//! `t' ∈ T_Σ'({ξ₁, ξ₂} × Q)`: a tree whose leaves may be labeled `(ξᵢ, q')`,
//! meaning "continue in state `q'` on my i-th child and plug the result
//! here". The paper observes (Section 3.1) that every top-down transducer
//! is a 1-pebble transducer — [`TopDownTransducer::to_pebble`] implements
//! that embedding, fragment nodes becoming `output2` rules and fragment
//! variables becoming `down-left`/`down-right` moves.
//!
//! (The converse fails: 1-pebble machines also move *up*, e.g. the
//! Example 3.7 rotation. Whether k-pebble transducers subsume *bottom-up*
//! transducers is the paper's open problem tied to tree-walking automata.)

use crate::error::MachineError;
use crate::machine::{Guard, Move, PebbleTransducer, SymSpec, TransducerBuilder};
use std::sync::Arc;
use xmltc_automata::State;
use xmltc_trees::tree::BinaryTreeBuilder;
use xmltc_trees::{Alphabet, BinaryTree, FxHashMap, NodeId, Rank, Symbol, TreeError};

/// An output fragment: a tree over `Σ'` whose leaves may be continuation
/// variables `(ξᵢ, q)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fragment {
    /// An output leaf symbol.
    Leaf(Symbol),
    /// An output binary node with two sub-fragments.
    Node(Symbol, Box<Fragment>, Box<Fragment>),
    /// `(ξᵢ, q)`: recurse into input child `i ∈ {1, 2}` in state `q`.
    Recurse {
        /// Which input child (1 = left, 2 = right).
        child: u8,
        /// The continuation state.
        state: State,
    },
}

impl Fragment {
    /// A node fragment.
    pub fn node(sym: Symbol, l: Fragment, r: Fragment) -> Fragment {
        Fragment::Node(sym, Box::new(l), Box::new(r))
    }

    /// A recursion leaf.
    pub fn recurse(child: u8, state: State) -> Fragment {
        assert!(child == 1 || child == 2);
        Fragment::Recurse { child, state }
    }

    fn has_recursion(&self) -> bool {
        match self {
            Fragment::Leaf(_) => false,
            Fragment::Node(_, l, r) => l.has_recursion() || r.has_recursion(),
            Fragment::Recurse { .. } => true,
        }
    }
}

/// A top-down (root-to-frontier) tree transducer, Definition 3.2.
///
/// Deterministic evaluation is provided directly
/// ([`TopDownTransducer::eval`]); nondeterministic semantics are available
/// through the 1-pebble embedding and Proposition 3.8.
#[derive(Clone, Debug)]
pub struct TopDownTransducer {
    input: Arc<Alphabet>,
    output: Arc<Alphabet>,
    n_states: u32,
    initial: State,
    /// Rules for internal input nodes (`a ∈ Σ₂`).
    node_rules: FxHashMap<(Symbol, State), Vec<Fragment>>,
    /// Rules for input leaves (`a ∈ Σ₀`) — fragments without recursion.
    leaf_rules: FxHashMap<(Symbol, State), Vec<Fragment>>,
}

impl TopDownTransducer {
    /// Creates a transducer with `n_states` states.
    pub fn new(
        input: &Arc<Alphabet>,
        output: &Arc<Alphabet>,
        n_states: u32,
        initial: State,
    ) -> TopDownTransducer {
        assert!(initial.0 < n_states);
        TopDownTransducer {
            input: Arc::clone(input),
            output: Arc::clone(output),
            n_states,
            initial,
            node_rules: FxHashMap::default(),
            leaf_rules: FxHashMap::default(),
        }
    }

    /// Adds a rule `(a, q) → fragment`. Rules on leaf symbols must not
    /// recurse (Definition 3.2 requires `t' ∈ T_Σ'` there).
    pub fn add_rule(
        &mut self,
        a: Symbol,
        q: State,
        fragment: Fragment,
    ) -> Result<(), MachineError> {
        match self.input.rank(a) {
            Rank::Binary => {
                self.node_rules.entry((a, q)).or_default().push(fragment);
                Ok(())
            }
            Rank::Leaf => {
                if fragment.has_recursion() {
                    return Err(MachineError::IllTyped(format!(
                        "rule on leaf symbol `{}` cannot recurse",
                        self.input.name(a)
                    )));
                }
                self.leaf_rules.entry((a, q)).or_default().push(fragment);
                Ok(())
            }
            Rank::Unranked => Err(MachineError::IllTyped(
                "top-down transducers run on ranked trees".into(),
            )),
        }
    }

    /// The input alphabet.
    pub fn input_alphabet(&self) -> &Arc<Alphabet> {
        &self.input
    }

    /// The output alphabet.
    pub fn output_alphabet(&self) -> &Arc<Alphabet> {
        &self.output
    }

    /// Deterministic evaluation. Errors on nondeterministic choice or a
    /// missing rule (the transformation is partial).
    pub fn eval(&self, t: &BinaryTree) -> Result<BinaryTree, MachineError> {
        if !Alphabet::same(&self.input, t.alphabet()) {
            return Err(MachineError::Tree(TreeError::AlphabetMismatch));
        }
        let mut builder = BinaryTreeBuilder::new(&self.output);
        let root = self.eval_at(t, t.root(), self.initial, &mut builder)?;
        Ok(builder.finish(root))
    }

    fn eval_at(
        &self,
        t: &BinaryTree,
        n: NodeId,
        q: State,
        builder: &mut BinaryTreeBuilder,
    ) -> Result<NodeId, MachineError> {
        let a = t.symbol(n);
        let rules = if t.is_leaf(n) {
            self.leaf_rules.get(&(a, q))
        } else {
            self.node_rules.get(&(a, q))
        };
        let rules = rules.map(Vec::as_slice).unwrap_or(&[]);
        match rules {
            [] => Err(MachineError::Stuck {
                state: format!("q{}", q.0),
            }),
            [fragment] => self.emit(t, n, fragment, builder),
            _ => Err(MachineError::Nondeterministic {
                state: format!("q{}", q.0),
            }),
        }
    }

    fn emit(
        &self,
        t: &BinaryTree,
        n: NodeId,
        fragment: &Fragment,
        builder: &mut BinaryTreeBuilder,
    ) -> Result<NodeId, MachineError> {
        match fragment {
            Fragment::Leaf(s) => Ok(builder.leaf(*s)?),
            Fragment::Node(s, l, r) => {
                let lid = self.emit(t, n, l, builder)?;
                let rid = self.emit(t, n, r, builder)?;
                Ok(builder.node(*s, lid, rid)?)
            }
            Fragment::Recurse { child, state } => {
                let (l, r) = t
                    .children(n)
                    .expect("recursion only in node rules, checked at add_rule");
                let target = if *child == 1 { l } else { r };
                self.eval_at(t, target, *state, builder)
            }
        }
    }

    /// The Section 3.1 embedding: an equivalent 1-pebble transducer.
    ///
    /// Each rule becomes a `stay`-dispatched chain of `output` rules over
    /// its fragment; each `(ξᵢ, q)` leaf becomes a `down` move into the
    /// dispatch state of `q`.
    pub fn to_pebble(&self) -> Result<PebbleTransducer, MachineError> {
        let mut b = TransducerBuilder::new(&self.input, &self.output, 1);
        // dispatch[q]: the pebble machine state entered to run TD state q
        // at the current node.
        let dispatch: Vec<State> = (0..self.n_states)
            .map(|q| b.state(&format!("q{q}"), 1))
            .collect::<Result<_, _>>()?;

        let mut emit_fragment = EmitCtx {
            b: &mut b,
            dispatch: &dispatch,
            counter: 0,
        };
        for (rules, _is_leaf) in [(&self.leaf_rules, true), (&self.node_rules, false)] {
            for (&(a, q), fragments) in rules {
                for fragment in fragments {
                    let entry = emit_fragment.fragment_state(fragment)?;
                    emit_fragment.b.move_rule(
                        SymSpec::One(a),
                        dispatch[q.index()],
                        Guard::any(),
                        Move::Stay,
                        entry,
                    )?;
                }
            }
        }
        b.set_initial(dispatch[self.initial.index()]);
        b.build()
    }
}

/// Helper generating one pebble-machine state per fragment node.
struct EmitCtx<'a> {
    b: &'a mut TransducerBuilder,
    dispatch: &'a [State],
    counter: usize,
}

impl<'a> EmitCtx<'a> {
    fn fresh(&mut self) -> Result<State, MachineError> {
        self.counter += 1;
        self.b.state(&format!("frag{}", self.counter), 1)
    }

    /// Returns a state that, at the current input node, emits the fragment.
    fn fragment_state(&mut self, f: &Fragment) -> Result<State, MachineError> {
        match f {
            Fragment::Leaf(s) => {
                let st = self.fresh()?;
                self.b.output0(SymSpec::Any, st, Guard::any(), *s)?;
                Ok(st)
            }
            Fragment::Node(s, l, r) => {
                let st = self.fresh()?;
                let ls = self.fragment_state(l)?;
                let rs = self.fragment_state(r)?;
                self.b.output2(SymSpec::Any, st, Guard::any(), *s, ls, rs)?;
                Ok(st)
            }
            Fragment::Recurse { child, state } => {
                let st = self.fresh()?;
                let mv = if *child == 1 {
                    Move::DownLeft
                } else {
                    Move::DownRight
                };
                self.b.move_rule(
                    SymSpec::Binaries,
                    st,
                    Guard::any(),
                    mv,
                    self.dispatch[state.index()],
                )?;
                Ok(st)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval as pebble_eval;

    fn alpha() -> Arc<Alphabet> {
        Alphabet::ranked(&["x", "y"], &["f", "g"])
    }

    /// Mirror: swaps children at every level and relabels f↔g.
    fn mirror(al: &Arc<Alphabet>) -> TopDownTransducer {
        let f = al.get("f").unwrap();
        let g = al.get("g").unwrap();
        let x = al.get("x").unwrap();
        let y = al.get("y").unwrap();
        let q = State(0);
        let mut t = TopDownTransducer::new(al, al, 1, q);
        t.add_rule(
            f,
            q,
            Fragment::node(g, Fragment::recurse(2, q), Fragment::recurse(1, q)),
        )
        .unwrap();
        t.add_rule(
            g,
            q,
            Fragment::node(f, Fragment::recurse(2, q), Fragment::recurse(1, q)),
        )
        .unwrap();
        t.add_rule(x, q, Fragment::Leaf(y)).unwrap();
        t.add_rule(y, q, Fragment::Leaf(x)).unwrap();
        t
    }

    #[test]
    fn direct_eval() {
        let al = alpha();
        let t = mirror(&al);
        let input = BinaryTree::parse("f(x, g(y, x))", &al).unwrap();
        let out = t.eval(&input).unwrap();
        assert_eq!(out.to_string(), "g(f(y, x), y)");
    }

    #[test]
    fn pebble_embedding_agrees() {
        let al = alpha();
        let td = mirror(&al);
        let pebble = td.to_pebble().unwrap();
        assert_eq!(pebble.k(), 1);
        for src in ["x", "f(x, y)", "g(f(x, x), y)", "f(f(x, y), g(y, x))"] {
            let input = BinaryTree::parse(src, &al).unwrap();
            let expected = td.eval(&input).unwrap();
            let got = pebble_eval(&pebble, &input).unwrap();
            assert_eq!(got, expected, "on {src}");
        }
    }

    #[test]
    fn fragments_can_duplicate_children() {
        // (a, q) → f(ξ₁q, ξ₁q): copying transducers are top-down too.
        let al = alpha();
        let f = al.get("f").unwrap();
        let x = al.get("x").unwrap();
        let q = State(0);
        let mut t = TopDownTransducer::new(&al, &al, 1, q);
        t.add_rule(
            f,
            q,
            Fragment::node(f, Fragment::recurse(1, q), Fragment::recurse(1, q)),
        )
        .unwrap();
        t.add_rule(al.get("g").unwrap(), q, Fragment::Leaf(x))
            .unwrap();
        t.add_rule(x, q, Fragment::Leaf(x)).unwrap();
        t.add_rule(al.get("y").unwrap(), q, Fragment::Leaf(x))
            .unwrap();
        let input = BinaryTree::parse("f(y, x)", &al).unwrap();
        assert_eq!(t.eval(&input).unwrap().to_string(), "f(x, x)");
        let pebble = t.to_pebble().unwrap();
        assert_eq!(pebble_eval(&pebble, &input).unwrap().to_string(), "f(x, x)");
    }

    #[test]
    fn leaf_rules_cannot_recurse() {
        let al = alpha();
        let x = al.get("x").unwrap();
        let q = State(0);
        let mut t = TopDownTransducer::new(&al, &al, 1, q);
        assert!(t.add_rule(x, q, Fragment::recurse(1, q)).is_err());
    }

    #[test]
    fn partiality_and_nondeterminism_reported() {
        let al = alpha();
        let _f = al.get("f").unwrap();
        let x = al.get("x").unwrap();
        let q = State(0);
        let mut t = TopDownTransducer::new(&al, &al, 1, q);
        t.add_rule(x, q, Fragment::Leaf(x)).unwrap();
        t.add_rule(x, q, Fragment::Leaf(al.get("y").unwrap()))
            .unwrap();
        let leaf = BinaryTree::parse("x", &al).unwrap();
        assert!(matches!(
            t.eval(&leaf),
            Err(MachineError::Nondeterministic { .. })
        ));
        let node = BinaryTree::parse("f(x, x)", &al).unwrap();
        assert!(matches!(t.eval(&node), Err(MachineError::Stuck { .. })));
        // The nondeterministic machine still embeds; Prop 3.8 counts both
        // outputs.
        let pebble = t.to_pebble().unwrap();
        let outs = crate::outputs(&pebble, &leaf, 3, 10).unwrap();
        assert_eq!(outs.len(), 2);
    }
}
