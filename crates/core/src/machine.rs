//! Machine definitions: states, guards, actions, builders, and one-step
//! semantics shared by transducers and automata.

use crate::error::MachineError;
use std::sync::Arc;
use xmltc_automata::State;
use xmltc_trees::{Alphabet, BinaryTree, ChildSide, FxHashMap, NodeId, Rank, Symbol};

/// A move-transition direction (Definition 3.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Move {
    /// Keep the current pebble in place, change state only.
    Stay,
    /// Move the current pebble to the left child.
    DownLeft,
    /// Move the current pebble to the right child.
    DownRight,
    /// Move the current pebble to the parent — applicable only when the
    /// current node is a *left* child (this is how the machine senses which
    /// side it came from).
    UpLeft,
    /// Move up from a *right* child.
    UpRight,
    /// Place pebble `i+1` on the root; it becomes the current pebble.
    PlaceNew,
    /// Remove the current pebble `i > 1`; pebble `i-1` becomes current.
    PickCurrent,
}

/// A per-pebble presence test in a guard.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Presence {
    /// Don't care.
    Any,
    /// The pebble must sit on the current node (`bⱼ = 1`).
    Present,
    /// The pebble must not sit on the current node (`bⱼ = 0`).
    Absent,
}

/// A guard over the lower pebbles: entry `j` constrains pebble `j+1`
/// (1-based pebble `j+1`, i.e. the paper's `b_{j+1}`). Entries beyond the
/// vector's length are `Any`. A state of level `i` may constrain pebbles
/// `1..i-1` only.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Guard(pub Vec<Presence>);

impl Guard {
    /// The trivial guard (all `Any`).
    pub fn any() -> Guard {
        Guard(Vec::new())
    }

    /// Guard requiring pebble `j` (1-based) to be present on the current
    /// node.
    pub fn present(j: usize) -> Guard {
        let mut v = vec![Presence::Any; j];
        v[j - 1] = Presence::Present;
        Guard(v)
    }

    /// Guard requiring pebble `j` (1-based) to be absent from the current
    /// node.
    pub fn absent(j: usize) -> Guard {
        let mut v = vec![Presence::Any; j];
        v[j - 1] = Presence::Absent;
        Guard(v)
    }

    /// Does the guard match the given pebble positions at `current`?
    /// `positions` holds pebbles `1..=i`; the guard constrains `1..i`.
    pub fn matches(&self, positions: &[NodeId], current: NodeId) -> bool {
        self.0.iter().enumerate().all(|(j, p)| match p {
            Presence::Any => true,
            Presence::Present => positions.get(j) == Some(&current),
            Presence::Absent => positions.get(j) != Some(&current),
        })
    }
}

/// The action of a rule.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Action {
    /// A move transition entering the given state.
    Move(Move, State),
    /// Transducer: emit a leaf labeled with the output symbol; the branch
    /// halts.
    Output0(Symbol),
    /// Transducer: emit a binary output node and spawn two branches
    /// computing its children; both inherit all pebble positions.
    Output2(Symbol, State, State),
    /// Automaton: accept this branch.
    Branch0,
    /// Automaton: fork into two branches (and-alternation); the input head
    /// does not move.
    Branch2(State, State),
}

/// Selects which input symbols a rule covers, resolved at build time.
#[derive(Clone, Debug)]
pub enum SymSpec {
    /// A single symbol.
    One(Symbol),
    /// Every leaf symbol (`Σ₀`).
    Leaves,
    /// Every binary symbol (`Σ₂`).
    Binaries,
    /// Every symbol.
    Any,
    /// An explicit list.
    AnyOf(Vec<Symbol>),
    /// Every symbol except the listed ones.
    AllExcept(Vec<Symbol>),
}

impl SymSpec {
    fn resolve(&self, alphabet: &Alphabet) -> Vec<Symbol> {
        match self {
            SymSpec::One(s) => vec![*s],
            SymSpec::Leaves => alphabet.leaves(),
            SymSpec::Binaries => alphabet.binaries(),
            SymSpec::Any => alphabet.symbols().collect(),
            SymSpec::AnyOf(v) => v.clone(),
            SymSpec::AllExcept(v) => alphabet.symbols().filter(|s| !v.contains(s)).collect(),
        }
    }
}

/// A machine configuration `γ = (i, q⁽ⁱ⁾, x̄)`: the state determines the
/// level `i`, and `pebbles` holds the positions of pebbles `1..=i` (the
/// last entry is the current node).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Config {
    /// The machine state.
    pub state: State,
    /// Positions of pebbles `1..=level(state)`.
    pub pebbles: Vec<NodeId>,
}

impl Config {
    /// The node under the current pebble.
    pub fn current(&self) -> NodeId {
        *self.pebbles.last().expect("configs have at least pebble 1")
    }
}

/// One-step successor of a configuration.
#[derive(Clone, Debug)]
pub enum StepResult {
    /// A move transition produced a new configuration.
    Moved(Config),
    /// `output0`: a leaf is emitted; the branch halts.
    Output0(Symbol),
    /// `output2`: a binary node is emitted; two branches continue.
    Output2(Symbol, Config, Config),
    /// `branch0`: the branch accepts.
    Branch0,
    /// `branch2`: the branch forks.
    Branch2(Config, Config),
}

/// The state/rule core shared by transducers and automata.
#[derive(Clone, Debug)]
pub struct MachineCore {
    input: Arc<Alphabet>,
    k: u8,
    levels: Vec<u8>,
    names: Vec<String>,
    initial: State,
    rules: FxHashMap<(Symbol, State), Vec<(Guard, Action)>>,
}

impl MachineCore {
    /// The input alphabet.
    pub fn input_alphabet(&self) -> &Arc<Alphabet> {
        &self.input
    }

    /// The number of pebbles `k`.
    pub fn k(&self) -> u8 {
        self.k
    }

    /// Number of states.
    pub fn n_states(&self) -> u32 {
        self.levels.len() as u32
    }

    /// The level (`1..=k`) of a state.
    pub fn level(&self, q: State) -> u8 {
        self.levels[q.index()]
    }

    /// The state's name.
    pub fn state_name(&self, q: State) -> &str {
        &self.names[q.index()]
    }

    /// The initial state (level 1).
    pub fn initial(&self) -> State {
        self.initial
    }

    /// Total number of rules.
    pub fn n_rules(&self) -> usize {
        self.rules.values().map(Vec::len).sum()
    }

    /// Iterates over all rules as `(symbol, state, guard, action)`.
    pub fn rules(&self) -> impl Iterator<Item = (Symbol, State, &Guard, &Action)> + '_ {
        self.rules
            .iter()
            .flat_map(|(&(a, q), v)| v.iter().map(move |(g, act)| (a, q, g, act)))
    }

    /// The initial configuration on `t`: pebble 1 on the root, initial
    /// state.
    pub fn initial_config(&self, t: &BinaryTree) -> Config {
        Config {
            state: self.initial,
            pebbles: vec![t.root()],
        }
    }

    /// All one-step successors of `cfg` on `t` (one entry per applicable
    /// rule; move transitions whose direction is impossible are skipped, as
    /// per the paper: "if a move in the specified direction is not
    /// possible, the transition does not apply").
    pub fn successors(&self, t: &BinaryTree, cfg: &Config) -> Vec<StepResult> {
        let current = cfg.current();
        let symbol = t.symbol(current);
        let mut out = Vec::new();
        let Some(rules) = self.rules.get(&(symbol, cfg.state)) else {
            return out;
        };
        for (guard, action) in rules {
            if !guard.matches(&cfg.pebbles, current) {
                continue;
            }
            match action {
                Action::Move(m, q) => {
                    if let Some(cfg2) = self.apply_move(t, cfg, *m, *q) {
                        out.push(StepResult::Moved(cfg2));
                    }
                }
                Action::Output0(a) => out.push(StepResult::Output0(*a)),
                Action::Output2(a, q1, q2) => out.push(StepResult::Output2(
                    *a,
                    Config {
                        state: *q1,
                        pebbles: cfg.pebbles.clone(),
                    },
                    Config {
                        state: *q2,
                        pebbles: cfg.pebbles.clone(),
                    },
                )),
                Action::Branch0 => out.push(StepResult::Branch0),
                Action::Branch2(q1, q2) => out.push(StepResult::Branch2(
                    Config {
                        state: *q1,
                        pebbles: cfg.pebbles.clone(),
                    },
                    Config {
                        state: *q2,
                        pebbles: cfg.pebbles.clone(),
                    },
                )),
            }
        }
        out
    }

    fn apply_move(&self, t: &BinaryTree, cfg: &Config, m: Move, q: State) -> Option<Config> {
        let current = cfg.current();
        let mut pebbles = cfg.pebbles.clone();
        match m {
            Move::Stay => {}
            Move::DownLeft => {
                let (l, _) = t.children(current)?;
                *pebbles.last_mut().expect("nonempty") = l;
            }
            Move::DownRight => {
                let (_, r) = t.children(current)?;
                *pebbles.last_mut().expect("nonempty") = r;
            }
            Move::UpLeft => {
                let (parent, side) = t.parent(current)?;
                if side != ChildSide::Left {
                    return None;
                }
                *pebbles.last_mut().expect("nonempty") = parent;
            }
            Move::UpRight => {
                let (parent, side) = t.parent(current)?;
                if side != ChildSide::Right {
                    return None;
                }
                *pebbles.last_mut().expect("nonempty") = parent;
            }
            Move::PlaceNew => pebbles.push(t.root()),
            Move::PickCurrent => {
                pebbles.pop();
            }
        }
        Some(Config { state: q, pebbles })
    }
}

/// A k-pebble tree transducer `T = (Σ, Σ', Q, q₀, P)` (Definition 3.1).
#[derive(Clone, Debug)]
pub struct PebbleTransducer {
    core: MachineCore,
    output: Arc<Alphabet>,
}

impl PebbleTransducer {
    /// The shared machine core (states, rules, step semantics).
    pub fn core(&self) -> &MachineCore {
        &self.core
    }

    /// The output alphabet `Σ'`.
    pub fn output_alphabet(&self) -> &Arc<Alphabet> {
        &self.output
    }

    /// The input alphabet `Σ`.
    pub fn input_alphabet(&self) -> &Arc<Alphabet> {
        self.core.input_alphabet()
    }

    /// The number of pebbles.
    pub fn k(&self) -> u8 {
        self.core.k()
    }
}

/// A k-pebble tree automaton (Definition 4.5): a transducer whose output
/// transitions are replaced by `branch0` / `branch2`.
#[derive(Clone, Debug)]
pub struct PebbleAutomaton {
    core: MachineCore,
}

impl PebbleAutomaton {
    /// The shared machine core.
    pub fn core(&self) -> &MachineCore {
        &self.core
    }

    /// The input alphabet.
    pub fn input_alphabet(&self) -> &Arc<Alphabet> {
        self.core.input_alphabet()
    }

    /// The number of pebbles.
    pub fn k(&self) -> u8 {
        self.core.k()
    }

    /// Assembles an automaton from a pre-validated core (used by the
    /// Proposition 4.6 product construction).
    pub fn from_core(core: MachineCore) -> PebbleAutomaton {
        PebbleAutomaton { core }
    }

    /// Removes states unreachable in the rule graph (a tree-independent
    /// over-approximation of configuration reachability), renumbering the
    /// rest. Sound: a configuration `(q, x̄)` can only arise if `q` is
    /// rule-graph reachable from the initial state. Products built by the
    /// Proposition 4.6 construction shrink substantially under this trim.
    pub fn trim_states(&self) -> PebbleAutomaton {
        let core = &self.core;
        let n = core.n_states() as usize;
        let mut reach = vec![false; n];
        reach[core.initial.index()] = true;
        let mut changed = true;
        while changed {
            changed = false;
            for (_, q, _, action) in core.rules() {
                if !reach[q.index()] {
                    continue;
                }
                let targets: &[State] = match action {
                    Action::Move(_, t) => std::slice::from_ref(t),
                    Action::Branch2(a, b) => {
                        if !reach[a.index()] {
                            reach[a.index()] = true;
                            changed = true;
                        }
                        std::slice::from_ref(b)
                    }
                    _ => &[],
                };
                for t in targets {
                    if !reach[t.index()] {
                        reach[t.index()] = true;
                        changed = true;
                    }
                }
            }
        }
        let mut remap: Vec<Option<State>> = vec![None; n];
        let mut levels = Vec::new();
        let mut names = Vec::new();
        for i in 0..n {
            if reach[i] {
                remap[i] = Some(State(levels.len() as u32));
                levels.push(core.levels[i]);
                names.push(core.names[i].clone());
            }
        }
        let mut rules: FxHashMap<(Symbol, State), Vec<(Guard, Action)>> = FxHashMap::default();
        for (sym, q, guard, action) in core.rules() {
            let Some(nq) = remap[q.index()] else { continue };
            let new_action = match action {
                Action::Move(m, t) => match remap[t.index()] {
                    Some(nt) => Action::Move(*m, nt),
                    None => continue,
                },
                Action::Branch2(a, b) => match (remap[a.index()], remap[b.index()]) {
                    (Some(na), Some(nb)) => Action::Branch2(na, nb),
                    _ => continue,
                },
                other => other.clone(),
            };
            rules
                .entry((sym, nq))
                .or_default()
                .push((guard.clone(), new_action));
        }
        PebbleAutomaton {
            core: MachineCore {
                input: Arc::clone(&core.input),
                k: core.k,
                levels,
                names,
                initial: remap[core.initial.index()].expect("initial is reachable"),
                rules,
            },
        }
    }
}

struct BuilderCore {
    input: Arc<Alphabet>,
    k: u8,
    levels: Vec<u8>,
    names: Vec<String>,
    initial: Option<State>,
    rules: FxHashMap<(Symbol, State), Vec<(Guard, Action)>>,
}

impl BuilderCore {
    fn new(input: &Arc<Alphabet>, k: u8) -> BuilderCore {
        BuilderCore {
            input: Arc::clone(input),
            k,
            levels: Vec::new(),
            names: Vec::new(),
            initial: None,
            rules: FxHashMap::default(),
        }
    }

    fn state(&mut self, name: &str, level: u8) -> Result<State, MachineError> {
        if level == 0 || level > self.k {
            return Err(MachineError::IllTyped(format!(
                "state `{name}` declared at level {level}, but k = {}",
                self.k
            )));
        }
        let q = State(self.levels.len() as u32);
        self.levels.push(level);
        self.names.push(name.to_string());
        Ok(q)
    }

    fn check_state(&self, q: State) -> Result<(), MachineError> {
        if q.index() >= self.levels.len() {
            return Err(MachineError::IllTyped(format!("unknown state {q:?}")));
        }
        Ok(())
    }

    fn check_move(&self, q: State, m: Move, target: State) -> Result<(), MachineError> {
        self.check_state(q)?;
        self.check_state(target)?;
        let lq = self.levels[q.index()];
        let lt = self.levels[target.index()];
        let ok = match m {
            Move::Stay | Move::DownLeft | Move::DownRight | Move::UpLeft | Move::UpRight => {
                lq == lt
            }
            Move::PlaceNew => lt == lq + 1 && lt <= self.k,
            Move::PickCurrent => lq >= 2 && lt == lq - 1,
        };
        if !ok {
            return Err(MachineError::IllTyped(format!(
                "move {m:?} from `{}` (level {lq}) to `{}` (level {lt}) violates the stack discipline",
                self.names[q.index()],
                self.names[target.index()],
            )));
        }
        Ok(())
    }

    fn check_guard(&self, q: State, guard: &Guard) -> Result<(), MachineError> {
        let lq = self.levels[q.index()] as usize;
        if guard.0.len() > lq - 1 {
            return Err(MachineError::IllTyped(format!(
                "guard on `{}` (level {lq}) tests pebble {} — only pebbles 1..{} may be tested",
                self.names[q.index()],
                guard.0.len(),
                lq - 1
            )));
        }
        Ok(())
    }

    fn check_same_level(&self, q: State, q1: State, q2: State) -> Result<(), MachineError> {
        self.check_state(q)?;
        self.check_state(q1)?;
        self.check_state(q2)?;
        let l = self.levels[q.index()];
        if self.levels[q1.index()] != l || self.levels[q2.index()] != l {
            return Err(MachineError::IllTyped(format!(
                "spawned branches of `{}` must stay at level {l}",
                self.names[q.index()]
            )));
        }
        Ok(())
    }

    fn add_rule(
        &mut self,
        spec: &SymSpec,
        q: State,
        guard: Guard,
        action: Action,
    ) -> Result<(), MachineError> {
        self.check_state(q)?;
        self.check_guard(q, &guard)?;
        for a in spec.resolve(&self.input) {
            self.rules
                .entry((a, q))
                .or_default()
                .push((guard.clone(), action.clone()));
        }
        Ok(())
    }

    fn finish(self) -> Result<MachineCore, MachineError> {
        let initial = self
            .initial
            .ok_or_else(|| MachineError::IllTyped("no initial state set".into()))?;
        if self.levels[initial.index()] != 1 {
            return Err(MachineError::IllTyped(
                "the initial state must be at level 1".into(),
            ));
        }
        Ok(MachineCore {
            input: self.input,
            k: self.k,
            levels: self.levels,
            names: self.names,
            initial,
            rules: self.rules,
        })
    }
}

/// Builder for [`PebbleTransducer`]s; all rules are validated against the
/// stack discipline, level typing, and output-alphabet ranks as they are
/// added.
pub struct TransducerBuilder {
    core: BuilderCore,
    output: Arc<Alphabet>,
}

impl TransducerBuilder {
    /// Starts a transducer with the given alphabets and pebble count.
    pub fn new(input: &Arc<Alphabet>, output: &Arc<Alphabet>, k: u8) -> TransducerBuilder {
        TransducerBuilder {
            core: BuilderCore::new(input, k),
            output: Arc::clone(output),
        }
    }

    /// Declares a state at the given pebble level (1-based).
    pub fn state(&mut self, name: &str, level: u8) -> Result<State, MachineError> {
        self.core.state(name, level)
    }

    /// Sets the initial state (must be level 1).
    pub fn set_initial(&mut self, q: State) {
        self.core.initial = Some(q);
    }

    /// Adds a move rule `(a, guard, q) → (target, m)`.
    pub fn move_rule(
        &mut self,
        spec: SymSpec,
        q: State,
        guard: Guard,
        m: Move,
        target: State,
    ) -> Result<(), MachineError> {
        self.core.check_move(q, m, target)?;
        self.core.add_rule(&spec, q, guard, Action::Move(m, target))
    }

    /// Adds an output rule `(a, guard, q) → (a'₀, output0)`.
    pub fn output0(
        &mut self,
        spec: SymSpec,
        q: State,
        guard: Guard,
        out: Symbol,
    ) -> Result<(), MachineError> {
        if self.output.rank(out) != Rank::Leaf {
            return Err(MachineError::IllTyped(format!(
                "output0 symbol `{}` is not a leaf symbol of Σ'",
                self.output.name(out)
            )));
        }
        self.core.add_rule(&spec, q, guard, Action::Output0(out))
    }

    /// Adds an output rule `(a, guard, q) → (a'₂(q₁, q₂), output2)`.
    pub fn output2(
        &mut self,
        spec: SymSpec,
        q: State,
        guard: Guard,
        out: Symbol,
        q1: State,
        q2: State,
    ) -> Result<(), MachineError> {
        if self.output.rank(out) != Rank::Binary {
            return Err(MachineError::IllTyped(format!(
                "output2 symbol `{}` is not a binary symbol of Σ'",
                self.output.name(out)
            )));
        }
        self.core.check_same_level(q, q1, q2)?;
        self.core
            .add_rule(&spec, q, guard, Action::Output2(out, q1, q2))
    }

    /// Finalizes the transducer.
    pub fn build(self) -> Result<PebbleTransducer, MachineError> {
        Ok(PebbleTransducer {
            core: self.core.finish()?,
            output: self.output,
        })
    }
}

/// Rule-construction operations common to [`TransducerBuilder`] and
/// [`AutomatonBuilder`], so that reusable "subroutines" (like the pre-order
/// traversal of Example 3.4) can be spliced into either machine kind.
pub trait BuildRules {
    /// Declares a state at the given pebble level.
    fn mk_state(&mut self, name: &str, level: u8) -> Result<State, MachineError>;
    /// Adds a move rule.
    fn mk_move(
        &mut self,
        spec: SymSpec,
        q: State,
        guard: Guard,
        m: Move,
        target: State,
    ) -> Result<(), MachineError>;
}

impl BuildRules for TransducerBuilder {
    fn mk_state(&mut self, name: &str, level: u8) -> Result<State, MachineError> {
        self.state(name, level)
    }
    fn mk_move(
        &mut self,
        spec: SymSpec,
        q: State,
        guard: Guard,
        m: Move,
        target: State,
    ) -> Result<(), MachineError> {
        self.move_rule(spec, q, guard, m, target)
    }
}

/// Builder for [`PebbleAutomaton`]s.
pub struct AutomatonBuilder {
    core: BuilderCore,
}

impl AutomatonBuilder {
    /// Starts an automaton with the given input alphabet and pebble count.
    pub fn new(input: &Arc<Alphabet>, k: u8) -> AutomatonBuilder {
        AutomatonBuilder {
            core: BuilderCore::new(input, k),
        }
    }

    /// Declares a state at the given pebble level (1-based).
    pub fn state(&mut self, name: &str, level: u8) -> Result<State, MachineError> {
        self.core.state(name, level)
    }

    /// Sets the initial state (must be level 1).
    pub fn set_initial(&mut self, q: State) {
        self.core.initial = Some(q);
    }

    /// Adds a move rule.
    pub fn move_rule(
        &mut self,
        spec: SymSpec,
        q: State,
        guard: Guard,
        m: Move,
        target: State,
    ) -> Result<(), MachineError> {
        self.core.check_move(q, m, target)?;
        self.core.add_rule(&spec, q, guard, Action::Move(m, target))
    }

    /// Adds an accepting rule `(a, guard, q) → branch0`.
    pub fn branch0(&mut self, spec: SymSpec, q: State, guard: Guard) -> Result<(), MachineError> {
        self.core.add_rule(&spec, q, guard, Action::Branch0)
    }

    /// Adds a forking rule `(a, guard, q) → ((q₁, q₂), branch2)`.
    pub fn branch2(
        &mut self,
        spec: SymSpec,
        q: State,
        guard: Guard,
        q1: State,
        q2: State,
    ) -> Result<(), MachineError> {
        self.core.check_same_level(q, q1, q2)?;
        self.core.add_rule(&spec, q, guard, Action::Branch2(q1, q2))
    }

    /// Finalizes the automaton.
    pub fn build(self) -> Result<PebbleAutomaton, MachineError> {
        Ok(PebbleAutomaton {
            core: self.core.finish()?,
        })
    }
}

impl BuildRules for AutomatonBuilder {
    fn mk_state(&mut self, name: &str, level: u8) -> Result<State, MachineError> {
        self.state(name, level)
    }
    fn mk_move(
        &mut self,
        spec: SymSpec,
        q: State,
        guard: Guard,
        m: Move,
        target: State,
    ) -> Result<(), MachineError> {
        self.move_rule(spec, q, guard, m, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alphas() -> (Arc<Alphabet>, Arc<Alphabet>) {
        (
            Alphabet::ranked(&["x", "y"], &["f"]),
            Alphabet::ranked(&["x", "y"], &["f"]),
        )
    }

    #[test]
    fn level_typing_enforced() {
        let (i, o) = alphas();
        let mut b = TransducerBuilder::new(&i, &o, 2);
        let q1 = b.state("q1", 1).unwrap();
        let q2 = b.state("q2", 2).unwrap();
        // place must go one level up.
        assert!(b
            .move_rule(SymSpec::Any, q1, Guard::any(), Move::PlaceNew, q2)
            .is_ok());
        assert!(b
            .move_rule(SymSpec::Any, q1, Guard::any(), Move::PlaceNew, q1)
            .is_err());
        // pick must go one level down, and never from level 1.
        assert!(b
            .move_rule(SymSpec::Any, q2, Guard::any(), Move::PickCurrent, q1)
            .is_ok());
        assert!(b
            .move_rule(SymSpec::Any, q1, Guard::any(), Move::PickCurrent, q1)
            .is_err());
        // plain moves stay on level.
        assert!(b
            .move_rule(SymSpec::Any, q1, Guard::any(), Move::DownLeft, q2)
            .is_err());
    }

    #[test]
    fn state_level_bounds() {
        let (i, o) = alphas();
        let mut b = TransducerBuilder::new(&i, &o, 1);
        assert!(b.state("ok", 1).is_ok());
        assert!(b.state("bad", 2).is_err());
        assert!(b.state("bad0", 0).is_err());
    }

    #[test]
    fn guards_limited_to_lower_pebbles() {
        let (i, o) = alphas();
        let mut b = TransducerBuilder::new(&i, &o, 2);
        let q1 = b.state("q1", 1).unwrap();
        let q2 = b.state("q2", 2).unwrap();
        // level 1: no guard allowed.
        assert!(b
            .move_rule(SymSpec::Any, q1, Guard::present(1), Move::Stay, q1)
            .is_err());
        // level 2: pebble 1 may be tested.
        assert!(b
            .move_rule(SymSpec::Any, q2, Guard::present(1), Move::Stay, q2)
            .is_ok());
    }

    #[test]
    fn output_rank_checked() {
        let (i, o) = alphas();
        let mut b = TransducerBuilder::new(&i, &o, 1);
        let q = b.state("q", 1).unwrap();
        let x = o.get("x").unwrap();
        let f = o.get("f").unwrap();
        assert!(b.output0(SymSpec::Any, q, Guard::any(), x).is_ok());
        assert!(b.output0(SymSpec::Any, q, Guard::any(), f).is_err());
        assert!(b.output2(SymSpec::Any, q, Guard::any(), f, q, q).is_ok());
        assert!(b.output2(SymSpec::Any, q, Guard::any(), x, q, q).is_err());
    }

    #[test]
    fn initial_must_be_level_one() {
        let (i, _) = alphas();
        let mut b = AutomatonBuilder::new(&i, 2);
        let q2 = b.state("q2", 2).unwrap();
        b.set_initial(q2);
        assert!(b.build().is_err());
        let mut b = AutomatonBuilder::new(&i, 2);
        let _ = b.state("x", 1).unwrap();
        assert!(b.build().is_err()); // no initial set
    }

    #[test]
    fn guard_matching() {
        let g = Guard(vec![Presence::Present, Presence::Absent]);
        let n = |i| NodeId(i);
        // pebbles 1,2 at nodes 5 and 7; current = pebble 3 at node 5.
        assert!(g.matches(&[n(5), n(7), n(5)], n(5)));
        // pebble 1 elsewhere.
        assert!(!g.matches(&[n(4), n(7), n(5)], n(5)));
        // pebble 2 on current.
        assert!(!g.matches(&[n(5), n(5), n(5)], n(5)));
        assert!(Guard::any().matches(&[n(1)], n(1)));
    }

    #[test]
    fn successors_respect_directions() {
        let (i, o) = alphas();
        let mut b = TransducerBuilder::new(&i, &o, 1);
        let q = b.state("q", 1).unwrap();
        let q2 = b.state("q2", 1).unwrap();
        b.move_rule(SymSpec::Any, q, Guard::any(), Move::DownLeft, q2)
            .unwrap();
        b.move_rule(SymSpec::Any, q, Guard::any(), Move::UpLeft, q2)
            .unwrap();
        b.set_initial(q);
        let t = b.build().unwrap();
        let tree = BinaryTree::parse("f(x, y)", &i).unwrap();
        // At the root: down-left applies, up-left does not.
        let cfg = t.core().initial_config(&tree);
        let succs = t.core().successors(&tree, &cfg);
        assert_eq!(succs.len(), 1);
        match &succs[0] {
            StepResult::Moved(c) => {
                assert_eq!(c.state, q2);
                assert_eq!(tree.symbol(c.current()), i.get("x").unwrap());
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
