//! The paper's worked example machines (Section 3.2), ready-built.

use crate::error::MachineError;
use crate::machine::{BuildRules, Guard, Move, PebbleTransducer, SymSpec, TransducerBuilder};
use std::sync::Arc;
use xmltc_automata::State;
use xmltc_trees::{Alphabet, AlphabetBuilder, Rank, Symbol};

/// **Example 3.3** — the 1-pebble transducer that copies its input:
///
/// ```text
/// (a₂, q)  → (a₂(q₁, q₂), output2)
/// (a₂, q₁) → (q, down-left)
/// (a₂, q₂) → (q, down-right)
/// (a₀, q)  → (a₀, output0)
/// ```
pub fn copy(alphabet: &Arc<Alphabet>) -> Result<PebbleTransducer, MachineError> {
    relabel(alphabet, alphabet, |s| s)
}

/// A top-down relabeling transducer: copies the tree, mapping each symbol
/// through `f` (which must preserve rank between the two alphabets).
/// With `f = identity` this is exactly the Example 3.3 copy machine.
pub fn relabel(
    input: &Arc<Alphabet>,
    output: &Arc<Alphabet>,
    f: impl Fn(Symbol) -> Symbol,
) -> Result<PebbleTransducer, MachineError> {
    let mut b = TransducerBuilder::new(input, output, 1);
    let q = b.state("q", 1)?;
    let q1 = b.state("q1", 1)?;
    let q2 = b.state("q2", 1)?;
    b.set_initial(q);
    for a in input.binaries() {
        b.output2(SymSpec::One(a), q, Guard::any(), f(a), q1, q2)?;
    }
    for a in input.leaves() {
        b.output0(SymSpec::One(a), q, Guard::any(), f(a))?;
    }
    b.move_rule(SymSpec::Binaries, q1, Guard::any(), Move::DownLeft, q)?;
    b.move_rule(SymSpec::Binaries, q2, Guard::any(), Move::DownRight, q)?;
    b.build()
}

/// **Example 3.4** — splices the "advance the current pebble to the next
/// node in pre-order" subroutine into a machine under construction.
///
/// Returns the entry state: entering it with the current pebble on node `v`
/// eventually reaches `done` with the pebble on the pre-order successor of
/// `v`, or `exhausted` (pebble back on the root) when `v` was the last
/// node. Following the paper, the root must be identifiable by its symbol:
/// `root_symbol` must label the root and only the root.
///
/// ```text
/// (a₂, q₁) → (q₂, down-left)      // next = left child
/// (a₀, q₁) → (q₃, stay)           // leaf: prepare to move up
/// (a,  q₃) → (q₃, up-right)       // climb while coming from the right
/// (a,  q₃) → (q₄, up-left)        // one move up from a left child …
/// (a,  q₄) → (q₂, down-right)     // … then down to the right sibling
/// (r,  q₃) → (q_y, stay)          // climbed to the root: tree exhausted
/// ```
pub fn add_preorder_next<B: BuildRules>(
    b: &mut B,
    prefix: &str,
    level: u8,
    root_symbol: Symbol,
    done: State,
    exhausted: State,
) -> Result<State, MachineError> {
    let q1 = b.mk_state(&format!("{prefix}.next"), level)?;
    let q3 = b.mk_state(&format!("{prefix}.climb"), level)?;
    let q4 = b.mk_state(&format!("{prefix}.over"), level)?;
    b.mk_move(SymSpec::Binaries, q1, Guard::any(), Move::DownLeft, done)?;
    b.mk_move(SymSpec::Leaves, q1, Guard::any(), Move::Stay, q3)?;
    b.mk_move(
        SymSpec::AllExcept(vec![root_symbol]),
        q3,
        Guard::any(),
        Move::UpRight,
        q3,
    )?;
    b.mk_move(
        SymSpec::AllExcept(vec![root_symbol]),
        q3,
        Guard::any(),
        Move::UpLeft,
        q4,
    )?;
    b.mk_move(SymSpec::Any, q4, Guard::any(), Move::DownRight, done)?;
    b.mk_move(
        SymSpec::One(root_symbol),
        q3,
        Guard::any(),
        Move::Stay,
        exhausted,
    )?;
    Ok(q1)
}

/// The output alphabet of [`duplicator`]: the input alphabet plus a fresh
/// binary symbol `z`.
pub fn duplicator_alphabet(input: &Arc<Alphabet>) -> (Arc<Alphabet>, Symbol) {
    let mut b = AlphabetBuilder::new();
    for s in input.symbols() {
        b.add(input.name(s), input.rank(s));
    }
    let z = b.add("z", Rank::Binary);
    (b.finish(), z)
}

/// **Example 3.6** — the exponential duplicator mapping `t ↦ f(t)` with
///
/// ```text
/// f(a(t₁,t₂)) = z(a(f(t₁), f(t₂)), a(f(t₁), f(t₂)))
/// f(a())      = z(a(), a())
/// ```
///
/// The output has size exponential in the input size, while the
/// Proposition 3.8 automaton stays polynomial — the workload for
/// experiment E3.
pub fn duplicator(
    input: &Arc<Alphabet>,
) -> Result<(PebbleTransducer, Arc<Alphabet>), MachineError> {
    let (output, z) = duplicator_alphabet(input);
    let mut b = TransducerBuilder::new(input, &output, 1);
    let q1 = b.state("q1", 1)?;
    let q2 = b.state("q2", 1)?;
    let q3 = b.state("q3", 1)?;
    let q4 = b.state("q4", 1)?;
    b.set_initial(q1);
    b.output2(SymSpec::Any, q1, Guard::any(), z, q2, q2)?;
    for a in input.leaves() {
        // Output ids: shared prefix of the two alphabets, so `a` is valid
        // in the output alphabet with the same rank.
        b.output0(SymSpec::One(a), q2, Guard::any(), a)?;
    }
    for a in input.binaries() {
        b.output2(SymSpec::One(a), q2, Guard::any(), a, q3, q4)?;
    }
    b.move_rule(SymSpec::Binaries, q3, Guard::any(), Move::DownLeft, q1)?;
    b.move_rule(SymSpec::Binaries, q4, Guard::any(), Move::DownRight, q1)?;
    let t = b.build()?;
    Ok((t, output))
}

/// Output alphabet of [`rotation`]: the input alphabet, plus leaf symbols
/// `m` and `n` (the two extra nodes of Figure 2).
pub fn rotation_alphabet(input: &Arc<Alphabet>) -> (Arc<Alphabet>, Symbol, Symbol) {
    let mut b = AlphabetBuilder::new();
    for s in input.symbols() {
        b.add(input.name(s), input.rank(s));
    }
    let m = b.add("m", Rank::Leaf);
    let n = b.add("n", Rank::Leaf);
    (b.finish(), m, n)
}

/// **Example 3.7 / Figure 2** — the rotation transducer: finds the first
/// leaf labeled `s0` (pre-order) and re-roots the tree around it. The new
/// root is labeled `s2` (the binary counterpart of `s0`); two fresh leaves
/// `m` and `n` pad the old leaf position and the old root. Children of each
/// output node are read counterclockwise, as in the figure.
///
/// Requirements, as in the paper: `root_symbol` labels the root and only
/// the root, and `s2 ∈ Σ₂` is the binary counterpart of `s0 ∈ Σ₀`.
///
/// In particular, applied to a right-comb encoding of a string this
/// transducer *reverses the string* (the paper's closing remark in the
/// example).
pub fn rotation(
    input: &Arc<Alphabet>,
    s0: Symbol,
    s2: Symbol,
    root_symbol: Symbol,
) -> Result<(PebbleTransducer, Arc<Alphabet>), MachineError> {
    let (output, m, n) = rotation_alphabet(input);
    let mut b = TransducerBuilder::new(input, &output, 1);

    // Phase 1: walk pre-order until the pebble sits on an s0 leaf.
    let check = b.state("check", 1)?;
    let stuck = b.state("no_s0", 1)?; // dead state: no s0 in the tree
    b.set_initial(check);

    // Phase 2 states.
    let q_m = b.state("emit_m", 1)?;
    let go_up = b.state("go_up", 1)?;
    let from_left = b.state("from_left", 1)?;
    let from_right = b.state("from_right", 1)?;
    let from_parent = b.state("from_parent", 1)?;
    let go_dl = b.state("go_down_left", 1)?;
    let go_dr = b.state("go_down_right", 1)?;

    // Pre-order search: on s0 start rotating, otherwise advance.
    let next = add_preorder_next(&mut b, "scan", 1, root_symbol, check, stuck)?;
    b.move_rule(
        SymSpec::AllExcept(vec![s0]),
        check,
        Guard::any(),
        Move::Stay,
        next,
    )?;

    // (s0, q) → (s2(q', q_up), output2): the new root.
    b.output2(SymSpec::One(s0), check, Guard::any(), s2, q_m, go_up)?;
    // (s0, q') → (m, output0): the extra node m.
    b.output0(SymSpec::One(s0), q_m, Guard::any(), m)?;

    // Climbing out of the current node: direction determines the arrival
    // state at the parent; at the (old) root there is no parent — emit n.
    b.move_rule(
        SymSpec::AllExcept(vec![root_symbol]),
        go_up,
        Guard::any(),
        Move::UpLeft,
        from_left,
    )?;
    b.move_rule(
        SymSpec::AllExcept(vec![root_symbol]),
        go_up,
        Guard::any(),
        Move::UpRight,
        from_right,
    )?;
    b.output0(SymSpec::One(root_symbol), go_up, Guard::any(), n)?;

    // Arrival states emit the current node with its remaining neighbors,
    // counterclockwise.
    for a in input.binaries() {
        // came up from the left child: neighbors = right child, parent.
        b.output2(SymSpec::One(a), from_left, Guard::any(), a, go_dr, go_up)?;
        // came up from the right child: neighbors = parent, left child.
        b.output2(SymSpec::One(a), from_right, Guard::any(), a, go_up, go_dl)?;
        // came down from the parent: neighbors = left child, right child.
        b.output2(SymSpec::One(a), from_parent, Guard::any(), a, go_dl, go_dr)?;
    }
    for a in input.leaves() {
        b.output0(SymSpec::One(a), from_parent, Guard::any(), a)?;
    }
    b.move_rule(
        SymSpec::Binaries,
        go_dl,
        Guard::any(),
        Move::DownLeft,
        from_parent,
    )?;
    b.move_rule(
        SymSpec::Binaries,
        go_dr,
        Guard::any(),
        Move::DownRight,
        from_parent,
    )?;

    let t = b.build()?;
    Ok((t, output))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use xmltc_trees::BinaryTree;

    #[test]
    fn duplicator_output_shape() {
        let al = Alphabet::ranked(&["x"], &["f"]);
        let (t, out_al) = duplicator(&al).unwrap();
        let tree = BinaryTree::parse("x", &al).unwrap();
        let out = eval(&t, &tree).unwrap();
        assert_eq!(out.to_string(), "z(x, x)");
        let tree = BinaryTree::parse("f(x, x)", &al).unwrap();
        let out = eval(&t, &tree).unwrap();
        assert_eq!(
            out.to_string(),
            "z(f(z(x, x), z(x, x)), f(z(x, x), z(x, x)))"
        );
        let _ = out_al;
    }

    #[test]
    fn duplicator_is_exponential() {
        // Input: right comb of depth d has n = 2d-1 nodes; output size
        // doubles per level.
        let al = Alphabet::ranked(&["x"], &["f"]);
        let (t, _) = duplicator(&al).unwrap();
        let mut sizes = Vec::new();
        for d in 1..=5 {
            let f = al.get("f").unwrap();
            let x = al.get("x").unwrap();
            let tree = xmltc_trees::generate::full_binary(d, f, x, &al).unwrap();
            let out = eval(&t, &tree).unwrap();
            sizes.push(out.len());
        }
        // Strictly super-linear growth: each step more than doubles.
        for w in sizes.windows(2) {
            assert!(w[1] > 2 * w[0], "sizes {sizes:?}");
        }
    }

    #[test]
    fn rotation_of_small_tree() {
        // Rotate f(s, y) around the leaf s: new root s2 with children m and
        // f-seen-from-left = f(y-processed, parent-processed=n).
        let al = Alphabet::ranked(&["s", "x", "y"], &["f", "s2"]);
        let s0 = al.get("s").unwrap();
        let s2 = al.get("s2").unwrap();
        let f = al.get("f").unwrap();
        let (t, _) = rotation(&al, s0, s2, f).unwrap();
        let tree = BinaryTree::parse("f(s, y)", &al).unwrap();
        let out = eval(&t, &tree).unwrap();
        // s was the left child of the root f: arriving from-left at f emits
        // f(go-down-right → y, go-up → n).
        assert_eq!(out.to_string(), "s2(m, f(y, n))");
    }

    #[test]
    fn rotation_figure_two() {
        // A tree like Figure 2: s deeper in the tree; checks neighbor
        // ordering is counterclockwise.
        let al = Alphabet::ranked(&["s", "x", "y"], &["r", "f", "g", "s2"]);
        let s0 = al.get("s").unwrap();
        let s2 = al.get("s2").unwrap();
        let r = al.get("r").unwrap();
        let (t, _) = rotation(&al, s0, s2, r).unwrap();
        // r(f(s, x), y): s is the left child of f, f the left child of r.
        let tree = BinaryTree::parse("r(f(s, x), y)", &al).unwrap();
        let out = eval(&t, &tree).unwrap();
        // From s: new root s2(m, f-from-left). f-from-left = f(x, r-from-left).
        // r-from-left = r(y, n).
        assert_eq!(out.to_string(), "s2(m, f(x, r(y, n)))");
    }

    #[test]
    fn rotation_reverses_combs() {
        // The closing remark of Example 3.7: on right-linear combs the
        // rotation reverses the string. Encode "abc" as
        // r(pad, a(pad, b(pad, c(pad, s)))) — spine symbols in order — and
        // check the output spine reads in reverse.
        let al = Alphabet::ranked(&["s", "pad"], &["r", "a", "b", "c", "s2"]);
        let s0 = al.get("s").unwrap();
        let s2 = al.get("s2").unwrap();
        let r = al.get("r").unwrap();
        let (t, _) = rotation(&al, s0, s2, r).unwrap();
        let tree = BinaryTree::parse("r(pad, a(pad, b(pad, c(pad, s))))", &al).unwrap();
        let out = eval(&t, &tree).unwrap();
        // Every spine node is reached from its right child, so it emits
        // (parent, left-child) = (rest-of-spine, pad): the spine reads
        // s2, c, b, a, r — reversed.
        assert_eq!(out.to_string(), "s2(m, c(b(a(r(n, pad), pad), pad), pad))");
    }

    #[test]
    fn rotation_searches_preorder() {
        // s0 not at the leftmost position: the pre-order scan must find it.
        let al = Alphabet::ranked(&["s", "x", "y"], &["r", "f", "s2"]);
        let s0 = al.get("s").unwrap();
        let s2 = al.get("s2").unwrap();
        let r = al.get("r").unwrap();
        let (t, _) = rotation(&al, s0, s2, r).unwrap();
        let tree = BinaryTree::parse("r(f(x, s), y)", &al).unwrap();
        let out = eval(&t, &tree).unwrap();
        // s is the right child of f: s2(m, f-from-right);
        // f-from-right = f(go-up → r-from-left, go-down-left → x);
        // r-from-left = r(y, n).
        assert_eq!(out.to_string(), "s2(m, f(r(y, n), x))");
    }

    #[test]
    fn rotation_without_s0_is_stuck() {
        let al = Alphabet::ranked(&["s", "x"], &["r", "s2"]);
        let s0 = al.get("s").unwrap();
        let s2 = al.get("s2").unwrap();
        let r = al.get("r").unwrap();
        let (t, _) = rotation(&al, s0, s2, r).unwrap();
        let tree = BinaryTree::parse("r(x, x)", &al).unwrap();
        assert!(matches!(eval(&t, &tree), Err(MachineError::Stuck { .. })));
    }

    #[test]
    fn relabel_maps_symbols() {
        let al = Alphabet::ranked(&["x", "y"], &["f", "g"]);
        let x = al.get("x").unwrap();
        let y = al.get("y").unwrap();
        let f = al.get("f").unwrap();
        let g = al.get("g").unwrap();
        let t = relabel(&al, &al, |s| {
            if s == x {
                y
            } else if s == f {
                g
            } else {
                s
            }
        })
        .unwrap();
        let tree = BinaryTree::parse("f(x, g(y, x))", &al).unwrap();
        let out = eval(&t, &tree).unwrap();
        assert_eq!(out.to_string(), "g(y, g(y, y))");
    }
}
