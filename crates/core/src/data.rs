//! Data values with unary predicates — the decidable fragment of
//! Section 5's "Data Values" extension.
//!
//! XML leaves carry text (#PCDATA) from an infinite domain. Transducers
//! that *join* on data values (`x = y`) make typechecking undecidable
//! (Section 1), but transducers that only test **unary predicates** on
//! values (`x > 5`, `x like 'Smith'`) stay decidable: the paper (citing
//! the technique of Abiteboul-Vianu \[1\]) replaces the infinite domain by
//! one constant per *predicate signature* — with `m` predicates, at most
//! `2^m` constants, one for each realizable truth-vector.
//!
//! This module implements that abstraction:
//!
//! * [`UnaryPredicates`] — named predicates with a concrete evaluator and
//!   a declared set of *realizable* signatures (e.g. `x > 10` implies
//!   `x > 5`, so `{ >10 } \ { >5 }` is unrealizable and excluded);
//! * [`DataAbstraction::build`] — extends a ranked alphabet with one leaf
//!   symbol per realizable signature of a designated data leaf;
//! * [`DataAbstraction::abstract_value`] / [`abstract_leaves`] — maps
//!   concrete values / trees into the abstract alphabet;
//! * [`DataAbstraction::sym_if`] — the `SymSpec` selecting signatures that
//!   satisfy (or falsify) a predicate, for use in transducer guards;
//!   "copy the data value to the output" is `output0` of the current
//!   (signature) symbol, which is exact at the type level: types cannot
//!   distinguish values with equal signatures.
//!
//! The resulting machines are ordinary k-pebble transducers/automata, so
//! the entire typechecking pipeline applies unchanged — see the
//! `data_values` integration test for a filter query proved correct for
//! *every* value assignment.

use crate::machine::SymSpec;
use std::sync::Arc;
use xmltc_trees::tree::BinaryTreeBuilder;
use xmltc_trees::{Alphabet, AlphabetBuilder, BinaryTree, Rank, Symbol, TreeError};

/// A set of named unary predicates over a concrete value type `V`.
pub struct UnaryPredicates<V> {
    names: Vec<String>,
    #[allow(clippy::type_complexity)]
    evals: Vec<Box<dyn Fn(&V) -> bool>>,
    /// Realizable signatures (bitmask per predicate). Defaults to all
    /// `2^m` if never restricted.
    realizable: Vec<u32>,
}

impl<V> UnaryPredicates<V> {
    /// Starts with no predicates (one empty signature).
    pub fn new() -> UnaryPredicates<V> {
        UnaryPredicates {
            names: Vec::new(),
            evals: Vec::new(),
            realizable: Vec::new(),
        }
    }

    /// Adds a predicate; returns its index. At most 31 predicates are
    /// supported (signatures are `u32` bitmasks, and `2^m` constants is
    /// already astronomically past practical use).
    pub fn add(&mut self, name: &str, eval: impl Fn(&V) -> bool + 'static) -> usize {
        assert!(self.names.len() < 31, "at most 31 unary predicates");
        self.names.push(name.to_string());
        self.evals.push(Box::new(eval));
        self.names.len() - 1
    }

    /// Restricts the realizable signatures (bitmask: bit `i` = predicate
    /// `i` holds). Unset = all `2^m` signatures are considered realizable.
    pub fn set_realizable(&mut self, signatures: Vec<u32>) {
        self.realizable = signatures;
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when there are no predicates.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The signature of a concrete value.
    pub fn signature(&self, v: &V) -> u32 {
        self.evals
            .iter()
            .enumerate()
            .fold(0, |acc, (i, p)| acc | ((p(v) as u32) << i))
    }

    fn signatures(&self) -> Vec<u32> {
        if self.realizable.is_empty() {
            (0..(1u32 << self.names.len())).collect()
        } else {
            let mut v = self.realizable.clone();
            v.sort_unstable();
            v.dedup();
            v
        }
    }
}

impl<V> Default for UnaryPredicates<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// The abstract alphabet for one data-leaf symbol: the base alphabet with
/// the data leaf replaced by one leaf per realizable signature.
pub struct DataAbstraction {
    abstract_alphabet: Arc<Alphabet>,
    /// `sig_syms[i]` = abstract symbol for `signatures[i]`.
    sig_syms: Vec<Symbol>,
    signatures: Vec<u32>,
}

impl DataAbstraction {
    /// Builds the abstraction. `base` supplies all non-data symbols;
    /// `data_leaf_name` names the data leaf (`#PCDATA` position); one
    /// abstract leaf `data_leaf_name@S` is created per realizable
    /// signature `S` (rendered in binary, low bit = predicate 0).
    pub fn build<V>(
        base: &Arc<Alphabet>,
        data_leaf_name: &str,
        preds: &UnaryPredicates<V>,
    ) -> DataAbstraction {
        let mut b = AlphabetBuilder::new();
        for s in base.symbols() {
            if base.name(s) != data_leaf_name {
                b.add(base.name(s), base.rank(s));
            }
        }
        let signatures = preds.signatures();
        let mut sig_syms = Vec::with_capacity(signatures.len());
        for &sig in &signatures {
            let name = format!(
                "{data_leaf_name}@{:0width$b}",
                sig,
                width = preds.len().max(1)
            );
            sig_syms.push(b.add(&name, Rank::Leaf));
        }
        DataAbstraction {
            abstract_alphabet: b.finish(),
            sig_syms,
            signatures,
        }
    }

    /// The abstract alphabet.
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        &self.abstract_alphabet
    }

    /// All abstract data-leaf symbols.
    pub fn data_symbols(&self) -> &[Symbol] {
        &self.sig_syms
    }

    /// The abstract symbol of a concrete value (`None` when its signature
    /// was declared unrealizable — a predicate-set modeling error).
    pub fn abstract_value<V>(&self, preds: &UnaryPredicates<V>, v: &V) -> Option<Symbol> {
        let sig = preds.signature(v);
        self.signatures
            .iter()
            .position(|&s| s == sig)
            .map(|i| self.sig_syms[i])
    }

    /// A `SymSpec` matching the data leaves on which predicate `i` is
    /// `value` — the guard form `(x > 5)` of the extended transducers.
    pub fn sym_if(&self, pred: usize, value: bool) -> SymSpec {
        SymSpec::AnyOf(
            self.signatures
                .iter()
                .zip(&self.sig_syms)
                .filter(|(&sig, _)| (sig >> pred) & 1 == value as u32)
                .map(|(_, &s)| s)
                .collect(),
        )
    }

    /// A `SymSpec` matching every data leaf.
    pub fn sym_any_data(&self) -> SymSpec {
        SymSpec::AnyOf(self.sig_syms.clone())
    }
}

/// Per-node content when abstracting a concrete tree: either a regular
/// symbol name, or a data value to abstract.
pub enum LeafContent<V> {
    /// A regular symbol (resolved by name in the abstract alphabet).
    Symbol(String),
    /// A data value.
    Value(V),
}

/// Rebuilds `shape` (a tree over any alphabet) into the abstract alphabet,
/// mapping each node through `content`.
pub fn abstract_leaves<V>(
    shape: &BinaryTree,
    abstraction: &DataAbstraction,
    preds: &UnaryPredicates<V>,
    mut content: impl FnMut(xmltc_trees::NodeId) -> LeafContent<V>,
) -> Result<BinaryTree, TreeError> {
    let al = abstraction.alphabet();
    let mut b = BinaryTreeBuilder::new(al);
    // The arena orders children before parents, so one forward pass works.
    let mut ids: Vec<Option<xmltc_trees::NodeId>> = vec![None; shape.len()];
    for i in 0..shape.len() {
        let n = xmltc_trees::NodeId(i as u32);
        let sym = match content(n) {
            LeafContent::Symbol(name) => al.require(&name)?,
            LeafContent::Value(v) => abstraction.abstract_value(preds, &v).ok_or_else(|| {
                TreeError::MalformedEncoding("value has an unrealizable signature".into())
            })?,
        };
        ids[i] = Some(match shape.children(n) {
            None => b.leaf(sym)?,
            Some((l, r)) => b.node(
                sym,
                ids[l.index()].expect("children first"),
                ids[r.index()].expect("children first"),
            )?,
        });
    }
    Ok(b.finish(ids[shape.root().index()].expect("root built")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn preds() -> UnaryPredicates<i64> {
        let mut p = UnaryPredicates::new();
        p.add("gt5", |v: &i64| *v > 5);
        p.add("gt10", |v: &i64| *v > 10);
        // x > 10 implies x > 5: {gt10} alone is unrealizable.
        p.set_realizable(vec![0b00, 0b01, 0b11]);
        p
    }

    #[test]
    fn signatures() {
        let p = preds();
        assert_eq!(p.signature(&3), 0b00);
        assert_eq!(p.signature(&7), 0b01);
        assert_eq!(p.signature(&12), 0b11);
    }

    #[test]
    fn abstraction_alphabet() {
        let base = Alphabet::ranked(&["x", "d"], &["f"]);
        let p = preds();
        let a = DataAbstraction::build(&base, "d", &p);
        // x, f survive; three signature leaves.
        assert_eq!(a.alphabet().len(), 2 + 3);
        assert_eq!(a.data_symbols().len(), 3);
        assert!(a.alphabet().get("d@00").is_some());
        assert!(a.alphabet().get("d@11").is_some());
        assert!(a.alphabet().get("d@10").is_none(), "unrealizable excluded");
    }

    #[test]
    fn value_abstraction_and_guards() {
        let base = Alphabet::ranked(&["x", "d"], &["f"]);
        let p = preds();
        let a = DataAbstraction::build(&base, "d", &p);
        let s7 = a.abstract_value(&p, &7).unwrap();
        assert_eq!(a.alphabet().name(s7), "d@01");
        // sym_if(gt5, true) covers signatures 01 and 11.
        match a.sym_if(0, true) {
            SymSpec::AnyOf(v) => assert_eq!(v.len(), 2),
            _ => unreachable!(),
        }
        match a.sym_if(1, true) {
            SymSpec::AnyOf(v) => assert_eq!(v.len(), 1),
            _ => unreachable!(),
        }
    }

    #[test]
    fn tree_abstraction() {
        let base = Alphabet::ranked(&["x", "d"], &["f"]);
        let p = preds();
        let a = DataAbstraction::build(&base, "d", &p);
        // Shape f(d, x) where the d leaf holds the value 12.
        let shape = BinaryTree::parse("f(d, x)", &base).unwrap();
        let d = base.get("d").unwrap();
        let out = abstract_leaves(&shape, &a, &p, |n| {
            if shape.symbol(n) == d {
                LeafContent::Value(12i64)
            } else {
                LeafContent::Symbol(base.name(shape.symbol(n)).to_string())
            }
        })
        .unwrap();
        assert_eq!(out.to_string(), "f(d@11, x)");
        // Unrealizable value signatures are rejected: fake a predicate set
        // that declares only signature 00 realizable.
        let mut p2 = UnaryPredicates::new();
        p2.add("gt5", |v: &i64| *v > 5);
        p2.set_realizable(vec![0b0]);
        let a2 = DataAbstraction::build(&base, "d", &p2);
        let bad = abstract_leaves(&shape, &a2, &p2, |n| {
            if shape.symbol(n) == d {
                LeafContent::Value(12i64)
            } else {
                LeafContent::Symbol(base.name(shape.symbol(n)).to_string())
            }
        });
        assert!(bad.is_err());
    }
}
