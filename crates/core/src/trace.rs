//! Guided replay: re-deriving a specific output tree through the real
//! transducer, recording the run.
//!
//! The typechecker's counterexample (`TypecheckOutcome::CounterExample`)
//! claims that on some valid input the transducer *can* produce a bad
//! output. [`guided_trace`] substantiates that claim by actually running
//! the machine: a backtracking search over the one-step semantics
//! ([`MachineCore::successors`], Definition 3.1) that only follows
//! branches consistent with the target tree. Success yields the full run
//! — per-step state, pebble positions and the rule fired — which is
//! simultaneously the *replay proof* that `target ∈ T(input)` (sound even
//! for nondeterministic transducers, where [`crate::eval::eval`] refuses
//! to run) and the *annotated trace* shown by `xmltc explain`.
//!
//! The search mirrors [`crate::eval`]'s branch structure: between two
//! output actions the machine moves silently, so failed configurations
//! are memoized per silent segment (the remaining obligation — the
//! current output node — is constant there, making the memo sound).

use crate::error::MachineError;
use crate::machine::{Config, PebbleTransducer, StepResult};
use xmltc_automata::witness::node_path;
use xmltc_trees::{Alphabet, BinaryTree, FxHashSet, NodeId, TreeError};

/// Default search budget (successor expansions) for [`guided_trace`].
pub const DEFAULT_TRACE_LIMIT: usize = 1_000_000;

/// One step of a replayed transducer run. All fields are rendered to
/// strings so the trace can cross crate boundaries into the obs report
/// without dragging machine internals along.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceStep {
    /// State name before the step.
    pub state: String,
    /// Pebble level of that state (1-based).
    pub level: u8,
    /// Input symbol under the highest pebble.
    pub input_symbol: String,
    /// Node paths of the pebbles, lowest first.
    pub pebbles: Vec<String>,
    /// The rule fired, rendered.
    pub action: String,
    /// Path of the output node this step works toward.
    pub out_path: String,
}

/// Searches for a run of `t` on `input` producing exactly `target`,
/// returning the recorded steps, or `None` when `target ∉ T(input)`.
///
/// `limit` bounds the number of successor expansions explored (including
/// backtracked ones); exceeding it is [`MachineError::StepLimit`].
pub fn guided_trace(
    t: &PebbleTransducer,
    input: &BinaryTree,
    target: &BinaryTree,
    limit: usize,
) -> Result<Option<Vec<TraceStep>>, MachineError> {
    if !Alphabet::same(t.input_alphabet(), input.alphabet())
        || !Alphabet::same(t.output_alphabet(), target.alphabet())
    {
        return Err(MachineError::Tree(TreeError::AlphabetMismatch));
    }
    let mut steps = Vec::new();
    let mut budget = limit;
    let init = t.core().initial_config(input);
    let mut visited = FxHashSet::default();
    visited.insert(init.clone());
    let found = search(
        t,
        input,
        target,
        init,
        target.root(),
        "/",
        &mut visited,
        &mut steps,
        &mut budget,
    )?;
    Ok(if found { Some(steps) } else { None })
}

/// Tries every successor of `cfg` toward producing `target[out_node]`.
/// `visited` memoizes configurations that already failed (or are on the
/// current path) within this silent segment.
#[allow(clippy::too_many_arguments)]
fn search(
    t: &PebbleTransducer,
    input: &BinaryTree,
    target: &BinaryTree,
    cfg: Config,
    out_node: NodeId,
    out_path: &str,
    visited: &mut FxHashSet<Config>,
    steps: &mut Vec<TraceStep>,
    budget: &mut usize,
) -> Result<bool, MachineError> {
    if *budget == 0 {
        return Err(MachineError::StepLimit);
    }
    *budget -= 1;
    for step in t.core().successors(input, &cfg) {
        match step {
            StepResult::Moved(next) => {
                if !visited.insert(next.clone()) {
                    continue;
                }
                let mark = steps.len();
                steps.push(record(
                    t,
                    input,
                    &cfg,
                    move_action(t, input, &cfg, &next),
                    out_path,
                ));
                if search(
                    t, input, target, next, out_node, out_path, visited, steps, budget,
                )? {
                    return Ok(true);
                }
                // Backtrack the steps but keep `next` memoized: with the
                // same output obligation it can only fail again.
                steps.truncate(mark);
            }
            StepResult::Output0(a) => {
                if target.children(out_node).is_none() && target.symbol(out_node) == a {
                    let name = t.output_alphabet().name(a).to_string();
                    steps.push(record(t, input, &cfg, format!("output0 {name}"), out_path));
                    return Ok(true);
                }
            }
            StepResult::Output2(a, c1, c2) => {
                let Some((l, r)) = target.children(out_node) else {
                    continue;
                };
                if target.symbol(out_node) != a {
                    continue;
                }
                let mark = steps.len();
                let action = format!(
                    "output2 {} -> ({}, {})",
                    t.output_alphabet().name(a),
                    t.core().state_name(c1.state),
                    t.core().state_name(c2.state)
                );
                steps.push(record(t, input, &cfg, action, out_path));
                let lp = child_path(out_path, 'L');
                let rp = child_path(out_path, 'R');
                let mut vl = FxHashSet::default();
                vl.insert(c1.clone());
                let mut done = search(t, input, target, c1, l, &lp, &mut vl, steps, budget)?;
                if done {
                    let mut vr = FxHashSet::default();
                    vr.insert(c2.clone());
                    done = search(t, input, target, c2, r, &rp, &mut vr, steps, budget)?;
                }
                if done {
                    return Ok(true);
                }
                steps.truncate(mark);
            }
            StepResult::Branch0 | StepResult::Branch2(..) => {
                unreachable!("transducers have no branch transitions")
            }
        }
    }
    Ok(false)
}

fn child_path(out_path: &str, side: char) -> String {
    if out_path == "/" {
        format!("/{side}")
    } else {
        format!("{out_path}/{side}")
    }
}

fn record(
    t: &PebbleTransducer,
    input: &BinaryTree,
    cfg: &Config,
    action: String,
    out_path: &str,
) -> TraceStep {
    TraceStep {
        state: t.core().state_name(cfg.state).to_string(),
        level: t.core().level(cfg.state),
        input_symbol: t
            .input_alphabet()
            .name(input.symbol(cfg.current()))
            .to_string(),
        pebbles: cfg.pebbles.iter().map(|&n| node_path(input, n)).collect(),
        action,
        out_path: out_path.to_string(),
    }
}

fn move_action(t: &PebbleTransducer, input: &BinaryTree, cfg: &Config, next: &Config) -> String {
    let q = t.core().state_name(next.state);
    let at = node_path(input, next.current());
    match next.pebbles.len().cmp(&cfg.pebbles.len()) {
        std::cmp::Ordering::Greater => {
            format!("place pebble {} -> {q} @ {at}", next.pebbles.len())
        }
        std::cmp::Ordering::Less => {
            format!("pick pebble {} -> {q} @ {at}", cfg.pebbles.len())
        }
        std::cmp::Ordering::Equal => format!("move -> {q} @ {at}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::library;
    use std::sync::Arc;
    use xmltc_trees::Alphabet;

    fn alpha() -> Arc<Alphabet> {
        Alphabet::ranked(&["x", "y"], &["f", "g"])
    }

    #[test]
    fn trace_reproduces_the_deterministic_output() {
        let al = alpha();
        let t = library::copy(&al).unwrap();
        let input = BinaryTree::parse("f(x, g(y, x))", &al).unwrap();
        let out = eval(&t, &input).unwrap();
        let trace = guided_trace(&t, &input, &out, DEFAULT_TRACE_LIMIT)
            .unwrap()
            .expect("the evaluated output must replay");
        // One output step per output node, plus the moves between them.
        let output_steps = trace
            .iter()
            .filter(|s| s.action.starts_with("output"))
            .count();
        assert_eq!(output_steps, out.len());
        // The first step starts at the initial state on the input root.
        assert_eq!(trace[0].pebbles, vec!["/".to_string()]);
        assert_eq!(trace[0].out_path, "/");
    }

    #[test]
    fn wrong_target_is_refused() {
        let al = alpha();
        let t = library::copy(&al).unwrap();
        let input = BinaryTree::parse("f(x, y)", &al).unwrap();
        let wrong = BinaryTree::parse("f(y, y)", &al).unwrap();
        assert!(guided_trace(&t, &input, &wrong, DEFAULT_TRACE_LIMIT)
            .unwrap()
            .is_none());
    }

    #[test]
    fn budget_exhaustion_is_an_error() {
        let al = alpha();
        let t = library::copy(&al).unwrap();
        let input = BinaryTree::parse("f(x, y)", &al).unwrap();
        let out = eval(&t, &input).unwrap();
        assert!(matches!(
            guided_trace(&t, &input, &out, 1),
            Err(MachineError::StepLimit)
        ));
    }
}
