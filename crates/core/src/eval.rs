//! Transducer evaluation and the Proposition 3.8 output-language automaton.

use crate::error::MachineError;
use crate::machine::{Config, PebbleTransducer, StepResult};
use std::collections::VecDeque;
use xmltc_automata::{State, TdTa};
use xmltc_trees::tree::BinaryTreeBuilder;
use xmltc_trees::{Alphabet, BinaryTree, FxHashMap, FxHashSet, NodeId, TreeError};

/// Default step budget for [`eval`].
pub const DEFAULT_STEP_LIMIT: usize = 10_000_000;

/// Evaluates a *deterministic* transducer on `t`, producing the output tree.
///
/// Errors when the transducer is nondeterministic on this input
/// ([`MachineError::Nondeterministic`]), gets stuck
/// ([`MachineError::Stuck`]), loops without producing output
/// ([`MachineError::NonTerminating`]), or exceeds [`DEFAULT_STEP_LIMIT`]
/// total steps (use [`eval_with_limit`] for a custom budget — remember the
/// output can be exponentially larger than the input, Example 3.6).
pub fn eval(t: &PebbleTransducer, tree: &BinaryTree) -> Result<BinaryTree, MachineError> {
    eval_with_limit(t, tree, DEFAULT_STEP_LIMIT)
}

/// [`eval`] with an explicit step budget.
pub fn eval_with_limit(
    t: &PebbleTransducer,
    tree: &BinaryTree,
    limit: usize,
) -> Result<BinaryTree, MachineError> {
    if !Alphabet::same(t.input_alphabet(), tree.alphabet()) {
        return Err(MachineError::Tree(TreeError::AlphabetMismatch));
    }
    let mut builder = BinaryTreeBuilder::new(t.output_alphabet());
    let mut steps = 0usize;
    let root = run_branch(
        t,
        tree,
        t.core().initial_config(tree),
        &mut builder,
        &mut steps,
        limit,
    )?;
    Ok(builder.finish(root))
}

fn run_branch(
    t: &PebbleTransducer,
    tree: &BinaryTree,
    mut cfg: Config,
    builder: &mut BinaryTreeBuilder,
    steps: &mut usize,
    limit: usize,
) -> Result<NodeId, MachineError> {
    // Configurations visited since the last output on this branch; a repeat
    // means the deterministic machine loops forever.
    let mut visited: FxHashSet<Config> = FxHashSet::default();
    visited.insert(cfg.clone());
    loop {
        *steps += 1;
        if *steps > limit {
            return Err(MachineError::StepLimit);
        }
        let mut succs = t.core().successors(tree, &cfg);
        if succs.len() > 1 {
            return Err(MachineError::Nondeterministic {
                state: t.core().state_name(cfg.state).to_string(),
            });
        }
        match succs.pop() {
            None => {
                return Err(MachineError::Stuck {
                    state: t.core().state_name(cfg.state).to_string(),
                })
            }
            Some(StepResult::Moved(next)) => {
                if !visited.insert(next.clone()) {
                    return Err(MachineError::NonTerminating {
                        state: t.core().state_name(next.state).to_string(),
                    });
                }
                cfg = next;
            }
            Some(StepResult::Output0(a)) => return Ok(builder.leaf(a)?),
            Some(StepResult::Output2(a, c1, c2)) => {
                let l = run_branch(t, tree, c1, builder, steps, limit)?;
                let r = run_branch(t, tree, c2, builder, steps, limit)?;
                return Ok(builder.node(a, l, r)?);
            }
            Some(StepResult::Branch0) | Some(StepResult::Branch2(..)) => {
                unreachable!("transducers have no branch transitions")
            }
        }
    }
}

/// **Proposition 3.8**: constructs, in time polynomial in `|tree|` (for
/// fixed `T`), a top-down tree automaton with silent transitions accepting
/// exactly `T(tree)` — the set of possible outputs of the (possibly
/// nondeterministic) transducer on this input.
///
/// States are the reachable configurations of `T` on `tree`; move
/// transitions become silent steps, `output2` becomes a branching
/// transition, `output0` becomes a final pair. The automaton doubles as a
/// DAG-sized encoding of the output set, which can be exponentially larger
/// than the input (Example 3.6) or even infinite.
pub fn output_automaton(t: &PebbleTransducer, tree: &BinaryTree) -> Result<TdTa, MachineError> {
    if !Alphabet::same(t.input_alphabet(), tree.alphabet()) {
        return Err(MachineError::Tree(TreeError::AlphabetMismatch));
    }
    let mut index: FxHashMap<Config, State> = FxHashMap::default();
    let mut queue: VecDeque<Config> = VecDeque::new();
    let init = t.core().initial_config(tree);
    let mut automaton = TdTa::new(t.output_alphabet(), 1, State(0));
    index.insert(init.clone(), State(0));
    queue.push_back(init);

    // Interns a configuration, allocating an automaton state on first sight.
    fn intern(
        cfg: Config,
        index: &mut FxHashMap<Config, State>,
        queue: &mut VecDeque<Config>,
        automaton: &mut TdTa,
    ) -> State {
        if let Some(&q) = index.get(&cfg) {
            return q;
        }
        let q = automaton.add_state();
        index.insert(cfg.clone(), q);
        queue.push_back(cfg);
        q
    }

    while let Some(cfg) = queue.pop_front() {
        let q = index[&cfg];
        for step in t.core().successors(tree, &cfg) {
            match step {
                StepResult::Moved(next) => {
                    let qn = intern(next, &mut index, &mut queue, &mut automaton);
                    automaton.add_silent_any(q, qn);
                }
                StepResult::Output0(a) => automaton.add_final_pair(a, q),
                StepResult::Output2(a, c1, c2) => {
                    let q1 = intern(c1, &mut index, &mut queue, &mut automaton);
                    let q2 = intern(c2, &mut index, &mut queue, &mut automaton);
                    automaton.add_transition(a, q, q1, q2);
                }
                StepResult::Branch0 | StepResult::Branch2(..) => {
                    unreachable!("transducers have no branch transitions")
                }
            }
        }
    }
    Ok(automaton)
}

/// Enumerates outputs of a (possibly nondeterministic) transducer on `tree`:
/// distinct trees of `T(tree)` with depth ≤ `max_depth`, at most `limit`.
pub fn outputs(
    t: &PebbleTransducer,
    tree: &BinaryTree,
    max_depth: usize,
    limit: usize,
) -> Result<Vec<BinaryTree>, MachineError> {
    let a = output_automaton(t, tree)?;
    Ok(xmltc_automata::enumerate::trees_up_to(
        &a.to_nta(),
        max_depth,
        limit,
    ))
}

/// Decision problem from Section 3.3: is `candidate ∈ T(tree)`? Polynomial
/// in `|tree|` and `|candidate|`.
pub fn is_output(
    t: &PebbleTransducer,
    tree: &BinaryTree,
    candidate: &BinaryTree,
) -> Result<bool, MachineError> {
    let a = output_automaton(t, tree)?;
    Ok(a.accepts(candidate)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use std::sync::Arc;

    fn alpha() -> Arc<Alphabet> {
        Alphabet::ranked(&["x", "y"], &["f", "g"])
    }

    #[test]
    fn copy_transducer_is_identity() {
        let al = alpha();
        let t = library::copy(&al).unwrap();
        for src in ["x", "f(x, y)", "g(f(x, x), y)", "f(f(x, y), g(y, x))"] {
            let tree = BinaryTree::parse(src, &al).unwrap();
            let out = eval(&t, &tree).unwrap();
            assert_eq!(out.to_string(), tree.to_string(), "copy of {src}");
        }
    }

    #[test]
    fn output_automaton_accepts_exactly_the_output() {
        let al = alpha();
        let t = library::copy(&al).unwrap();
        let tree = BinaryTree::parse("f(x, g(y, x))", &al).unwrap();
        let a = output_automaton(&t, &tree).unwrap();
        assert!(a.accepts(&tree).unwrap());
        let other = BinaryTree::parse("f(x, g(x, x))", &al).unwrap();
        assert!(!a.accepts(&other).unwrap());
        // And enumeration returns the single output.
        let outs = outputs(&t, &tree, 10, 10).unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0], tree);
    }

    #[test]
    fn is_output_decision() {
        let al = alpha();
        let t = library::copy(&al).unwrap();
        let tree = BinaryTree::parse("f(x, y)", &al).unwrap();
        assert!(is_output(&t, &tree, &tree).unwrap());
        let wrong = BinaryTree::parse("x", &al).unwrap();
        assert!(!is_output(&t, &tree, &wrong).unwrap());
    }

    #[test]
    fn step_limit_enforced() {
        let al = alpha();
        let t = library::copy(&al).unwrap();
        let tree = BinaryTree::parse("f(f(x, x), f(x, x))", &al).unwrap();
        assert!(matches!(
            eval_with_limit(&t, &tree, 3),
            Err(MachineError::StepLimit)
        ));
    }

    #[test]
    fn alphabet_mismatch() {
        let al = alpha();
        let other = alpha();
        let t = library::copy(&al).unwrap();
        let tree = BinaryTree::parse("x", &other).unwrap();
        assert!(eval(&t, &tree).is_err());
        assert!(output_automaton(&t, &tree).is_err());
    }
}
