//! Acceptance for k-pebble automata via the Alternating Graph Accessibility
//! Problem (AGAP) least fixpoint — the and/or configuration graph from the
//! proof of Theorem 4.7.

use crate::machine::{Config, PebbleAutomaton, StepResult};
use std::collections::VecDeque;
use xmltc_trees::{Alphabet, BinaryTree, FxHashMap, TreeError};

/// Does the k-pebble automaton accept the tree?
///
/// Semantics (Definition 4.5): the initial configuration rewrites to the
/// empty word — equivalently, the initial node of the and/or configuration
/// graph is *accessible*: an or-choice among applicable rules where
/// `branch0` is immediately accessible, a move is accessible when its
/// target is, and `branch2` is accessible when **both** spawned
/// configurations are. Computed as a least fixpoint with counters, linear
/// in the size of the configuration graph (`O(|t|^k · |Q|)` nodes).
pub fn accepts(a: &PebbleAutomaton, tree: &BinaryTree) -> Result<bool, TreeError> {
    if !Alphabet::same(a.input_alphabet(), tree.alphabet()) {
        return Err(TreeError::AlphabetMismatch);
    }

    // Phase 1: forward-explore reachable configurations; record each
    // configuration's disjuncts (one per applicable rule), where a disjunct
    // is the list of configurations that must *all* be accessible.
    let mut index: FxHashMap<Config, usize> = FxHashMap::default();
    let mut disjuncts: Vec<Vec<Vec<usize>>> = Vec::new();
    let mut queue: VecDeque<Config> = VecDeque::new();

    let init = a.core().initial_config(tree);
    index.insert(init.clone(), 0);
    disjuncts.push(Vec::new());
    queue.push_back(init);

    fn intern(
        cfg: Config,
        index: &mut FxHashMap<Config, usize>,
        disjuncts: &mut Vec<Vec<Vec<usize>>>,
        queue: &mut VecDeque<Config>,
    ) -> usize {
        if let Some(&i) = index.get(&cfg) {
            return i;
        }
        let i = disjuncts.len();
        index.insert(cfg.clone(), i);
        disjuncts.push(Vec::new());
        queue.push_back(cfg);
        i
    }

    while let Some(cfg) = queue.pop_front() {
        let i = index[&cfg];
        for step in a.core().successors(tree, &cfg) {
            let members = match step {
                StepResult::Branch0 => Vec::new(),
                StepResult::Moved(c) => {
                    vec![intern(c, &mut index, &mut disjuncts, &mut queue)]
                }
                StepResult::Branch2(c1, c2) => {
                    let i1 = intern(c1, &mut index, &mut disjuncts, &mut queue);
                    let i2 = intern(c2, &mut index, &mut disjuncts, &mut queue);
                    vec![i1, i2]
                }
                StepResult::Output0(..) | StepResult::Output2(..) => {
                    unreachable!("automata have no output transitions")
                }
            };
            disjuncts[i].push(members);
        }
    }

    // Phase 2: least fixpoint with per-disjunct unsatisfied counters.
    let n = disjuncts.len();
    let mut value = vec![false; n];
    // watchers[c] = (config, disjunct index) pairs containing c.
    let mut watchers: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    let mut pending: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut worklist: Vec<usize> = Vec::new();
    for (c, ds) in disjuncts.iter().enumerate() {
        pending[c] = ds.iter().map(Vec::len).collect();
        for (d, members) in ds.iter().enumerate() {
            if members.is_empty() && !value[c] {
                value[c] = true;
                worklist.push(c);
            }
            for &m in members {
                watchers[m].push((c, d));
            }
        }
    }
    while let Some(c) = worklist.pop() {
        for &(cfg, d) in &watchers[c] {
            // A member may appear twice in one disjunct (branch2 into the
            // same configuration) — decrement once per occurrence.
            let occurrences = disjuncts[cfg][d].iter().filter(|&&m| m == c).count();
            if pending[cfg][d] >= occurrences {
                pending[cfg][d] -= occurrences;
            }
            if pending[cfg][d] == 0 && !value[cfg] {
                value[cfg] = true;
                worklist.push(cfg);
            }
        }
    }
    Ok(value[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{AutomatonBuilder, Guard, Move, SymSpec};
    use std::sync::Arc;

    fn alpha() -> Arc<Alphabet> {
        Alphabet::ranked(&["x", "y"], &["f"])
    }

    fn t(al: &Arc<Alphabet>, s: &str) -> BinaryTree {
        BinaryTree::parse(s, al).unwrap()
    }

    /// 1-pebble automaton: accepts iff some leaf is labeled `y`, by walking
    /// depth-first.
    fn some_y(al: &Arc<Alphabet>) -> PebbleAutomaton {
        let y = al.get("y").unwrap();
        let mut b = AutomatonBuilder::new(al, 1);
        let q = b.state("search", 1).unwrap();
        b.set_initial(q);
        b.branch0(SymSpec::One(y), q, Guard::any()).unwrap();
        b.move_rule(SymSpec::Binaries, q, Guard::any(), Move::DownLeft, q)
            .unwrap();
        b.move_rule(SymSpec::Binaries, q, Guard::any(), Move::DownRight, q)
            .unwrap();
        b.build().unwrap()
    }

    /// 1-pebble automaton with branching: accepts iff *all* leaves are `x`
    /// (and-alternation via branch2 at internal nodes).
    fn all_x(al: &Arc<Alphabet>) -> PebbleAutomaton {
        let x = al.get("x").unwrap();
        let mut b = AutomatonBuilder::new(al, 1);
        let q = b.state("check", 1).unwrap();
        let l = b.state("left", 1).unwrap();
        let r = b.state("right", 1).unwrap();
        b.set_initial(q);
        b.branch0(SymSpec::One(x), q, Guard::any()).unwrap();
        b.branch2(SymSpec::Binaries, q, Guard::any(), l, r).unwrap();
        b.move_rule(SymSpec::Binaries, l, Guard::any(), Move::DownLeft, q)
            .unwrap();
        b.move_rule(SymSpec::Binaries, r, Guard::any(), Move::DownRight, q)
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn or_nondeterminism_searches() {
        let al = alpha();
        let a = some_y(&al);
        assert!(accepts(&a, &t(&al, "y")).unwrap());
        assert!(accepts(&a, &t(&al, "f(x, y)")).unwrap());
        assert!(accepts(&a, &t(&al, "f(f(x, x), f(x, y))")).unwrap());
        assert!(!accepts(&a, &t(&al, "x")).unwrap());
        assert!(!accepts(&a, &t(&al, "f(x, f(x, x))")).unwrap());
    }

    #[test]
    fn and_alternation_checks_all() {
        let al = alpha();
        let a = all_x(&al);
        assert!(accepts(&a, &t(&al, "x")).unwrap());
        assert!(accepts(&a, &t(&al, "f(x, f(x, x))")).unwrap());
        assert!(!accepts(&a, &t(&al, "f(x, f(x, y))")).unwrap());
        assert!(!accepts(&a, &t(&al, "y")).unwrap());
    }

    /// Two pebbles with a guard: accept iff the tree has ≥ 2 leaves (pebble
    /// 2 finds a leaf that pebble 1 does not sit on).
    #[test]
    fn pebble_guard_used() {
        let al = alpha();
        let mut b = AutomatonBuilder::new(&al, 2);
        let q1 = b.state("q1", 1).unwrap();
        let q2 = b.state("q2", 2).unwrap();
        b.set_initial(q1);
        // Pebble 1 walks to the leftmost leaf.
        b.move_rule(SymSpec::Binaries, q1, Guard::any(), Move::DownLeft, q1)
            .unwrap();
        b.move_rule(SymSpec::Leaves, q1, Guard::any(), Move::PlaceNew, q2)
            .unwrap();
        // Pebble 2 searches for a leaf where pebble 1 is absent.
        b.move_rule(SymSpec::Binaries, q2, Guard::any(), Move::DownLeft, q2)
            .unwrap();
        b.move_rule(SymSpec::Binaries, q2, Guard::any(), Move::DownRight, q2)
            .unwrap();
        b.branch0(SymSpec::Leaves, q2, Guard::absent(1)).unwrap();
        let a = b.build().unwrap();
        assert!(!accepts(&a, &t(&al, "x")).unwrap());
        assert!(accepts(&a, &t(&al, "f(x, x)")).unwrap());
        assert!(accepts(&a, &t(&al, "f(f(x, y), x)")).unwrap());
    }

    /// Cycles in the configuration graph must not cause false acceptance
    /// (least — not greatest — fixpoint).
    #[test]
    fn cycles_do_not_accept() {
        let al = alpha();
        let mut b = AutomatonBuilder::new(&al, 1);
        let q = b.state("spin", 1).unwrap();
        let p = b.state("spin2", 1).unwrap();
        b.set_initial(q);
        b.move_rule(SymSpec::Any, q, Guard::any(), Move::Stay, p)
            .unwrap();
        b.move_rule(SymSpec::Any, p, Guard::any(), Move::Stay, q)
            .unwrap();
        let a = b.build().unwrap();
        assert!(!accepts(&a, &t(&al, "x")).unwrap());
        assert!(!accepts(&a, &t(&al, "f(x, y)")).unwrap());
    }
}
