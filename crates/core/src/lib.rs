//! # xmltc-core
//!
//! The paper's machine model: **k-pebble tree transducers** (Definition 3.1)
//! and **k-pebble tree automata** (Definition 4.5).
//!
//! A k-pebble machine walks a complete binary input tree with up to `k`
//! pebbles under a stack discipline — pebbles are placed in order, removed
//! in reverse order, and only the highest-numbered pebble moves. Its states
//! are partitioned into levels `Q = Q₁ ∪ … ∪ Q_k`, level `i` controlling
//! pebble `i`. Transitions are guarded by the current symbol, the
//! presence/absence of lower pebbles on the current node, and the state:
//!
//! * **move** transitions (`stay`, `down-left`, `down-right`, `up-left`,
//!   `up-right`, `place-new-pebble`, `pick-current-pebble`) reconfigure the
//!   machine;
//! * a **transducer** additionally has *output* transitions: `output0`
//!   emits a leaf and halts the branch, `output2` emits a binary node and
//!   spawns two independent branches that inherit all pebble positions;
//! * an **automaton** instead has *branch* transitions (`branch0` accepts
//!   the branch, `branch2` forks), Definition 4.5.
//!
//! Provided here:
//!
//! * [`PebbleTransducer`] / [`PebbleAutomaton`] with a validated
//!   builder API enforcing the stack discipline and level typing;
//! * deterministic and nondeterministic **evaluation** of transducers
//!   ([`eval::eval`]) with loop detection;
//! * **Proposition 3.8**: the output language `T(t)` of a fixed input tree
//!   as a top-down tree automaton with silent transitions, computed in
//!   PTIME in `|t|` ([`eval::output_automaton`]) — a DAG-sized encoding of
//!   a possibly exponential (even infinite) output set;
//! * **AGAP acceptance** for pebble automata ([`accept`]): the and/or
//!   configuration graph least fixpoint from the proof of Theorem 4.7;
//! * the paper's worked examples as a [`library`]: the copy transducer
//!   (Example 3.3), the pre-order traversal subroutine (Example 3.4), the
//!   exponential duplicator (Example 3.6), the rotation transducer
//!   (Example 3.7 / Figure 2), and a string reverser.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accept;
pub mod data;
pub mod error;
pub mod eval;
pub mod library;
pub mod machine;
pub mod topdown_transducer;
pub mod trace;

pub use accept::accepts;
pub use error::MachineError;
pub use eval::{eval, is_output, output_automaton, outputs};
pub use machine::{
    Action, AutomatonBuilder, Guard, Move, PebbleAutomaton, PebbleTransducer, SymSpec,
    TransducerBuilder,
};
pub use topdown_transducer::{Fragment, TopDownTransducer};
pub use trace::{guided_trace, TraceStep, DEFAULT_TRACE_LIMIT};
