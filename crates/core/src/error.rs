//! Errors for machine construction and evaluation.

use std::fmt;
use xmltc_trees::TreeError;

/// Errors raised while building or running a pebble machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// A rule violates the stack discipline or level typing, e.g. a
    /// `place-new-pebble` targeting a state of the wrong level.
    IllTyped(String),
    /// Deterministic evaluation found two applicable rules in one
    /// configuration.
    Nondeterministic {
        /// The state name where the choice arose.
        state: String,
    },
    /// Evaluation revisited a configuration without emitting output: the
    /// machine loops and this branch never terminates.
    NonTerminating {
        /// The state name in the repeated configuration.
        state: String,
    },
    /// Evaluation got stuck: no rule applies in a configuration, so the
    /// transformation is undefined for this input (transducers are
    /// partial).
    Stuck {
        /// The state name of the stuck configuration.
        state: String,
    },
    /// Evaluation exceeded the caller-supplied step budget.
    StepLimit,
    /// Underlying tree error (alphabet mismatch etc.).
    Tree(TreeError),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::IllTyped(msg) => write!(f, "ill-typed machine: {msg}"),
            MachineError::Nondeterministic { state } => {
                write!(f, "nondeterministic choice in state `{state}`")
            }
            MachineError::NonTerminating { state } => {
                write!(f, "non-terminating loop through state `{state}`")
            }
            MachineError::Stuck { state } => {
                write!(f, "no applicable transition in state `{state}`")
            }
            MachineError::StepLimit => write!(f, "step limit exceeded"),
            MachineError::Tree(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MachineError {}

impl From<TreeError> for MachineError {
    fn from(e: TreeError) -> Self {
        MachineError::Tree(e)
    }
}
