//! # xmltc-xml
//!
//! Minimal XML concrete syntax for the paper's data model (Section 2.2):
//! element-only documents — nested tags, no attributes, no text content,
//! no references, exactly the simplifying assumptions the paper makes.
//!
//! ```
//! use xmltc_xml::{parse_document, to_xml};
//! use xmltc_trees::Alphabet;
//!
//! let al = Alphabet::unranked(&["a", "b", "c", "d", "e"]);
//! let doc = parse_document("<a> <b/> <b></b> <c><d/></c> <e/> </a>", &al).unwrap();
//! assert_eq!(doc.to_string(), "a(b, b, c(d), e)");
//! assert_eq!(to_xml(&doc), "<a><b/><b/><c><d/></c><e/></a>");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::Arc;
use xmltc_trees::{Alphabet, RawTree, UnrankedTree};

/// XML parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Description.
    pub message: String,
    /// Byte offset.
    pub offset: usize,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

/// Parses an element-only XML document into a [`RawTree`].
pub fn parse_raw(input: &str) -> Result<RawTree, XmlError> {
    let mut p = Parser {
        s: input.as_bytes(),
        i: 0,
    };
    p.ws();
    let t = p.element()?;
    p.ws();
    if p.i != p.s.len() {
        return Err(p.err("trailing content after the root element"));
    }
    Ok(t)
}

/// Parses an XML document into an [`UnrankedTree`] over the given alphabet.
pub fn parse_document(input: &str, alphabet: &Arc<Alphabet>) -> Result<UnrankedTree, XmlError> {
    let raw = parse_raw(input)?;
    UnrankedTree::from_raw(&raw, alphabet).map_err(|e| XmlError {
        message: e.to_string(),
        offset: 0,
    })
}

/// Serializes an unranked tree as compact XML (self-closing empty
/// elements).
pub fn to_xml(t: &UnrankedTree) -> String {
    let mut out = String::new();
    write_raw(&t.to_raw(), &mut out);
    out
}

/// Serializes a [`RawTree`] as compact XML.
pub fn raw_to_xml(t: &RawTree) -> String {
    let mut out = String::new();
    write_raw(t, &mut out);
    out
}

fn write_raw(t: &RawTree, out: &mut String) {
    if t.children.is_empty() {
        out.push('<');
        out.push_str(&t.name);
        out.push_str("/>");
    } else {
        out.push('<');
        out.push_str(&t.name);
        out.push('>');
        for c in &t.children {
            write_raw(c, out);
        }
        out.push_str("</");
        out.push_str(&t.name);
        out.push('>');
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, m: &str) -> XmlError {
        XmlError {
            message: m.to_string(),
            offset: self.i,
        }
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.i;
        while self
            .s
            .get(self.i)
            .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_' || *c == b'-' || *c == b'.')
        {
            self.i += 1;
        }
        if self.i == start {
            return Err(self.err("expected a tag name"));
        }
        Ok(std::str::from_utf8(&self.s[start..self.i])
            .expect("ascii")
            .to_string())
    }

    fn expect(&mut self, c: u8) -> Result<(), XmlError> {
        if self.s.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn element(&mut self) -> Result<RawTree, XmlError> {
        self.expect(b'<')?;
        let name = self.name()?;
        self.ws();
        // Self-closing?
        if self.s.get(self.i) == Some(&b'/') {
            self.i += 1;
            self.expect(b'>')?;
            return Ok(RawTree::leaf(name));
        }
        self.expect(b'>')?;
        let mut children = Vec::new();
        loop {
            self.ws();
            if self.s.get(self.i) == Some(&b'<') && self.s.get(self.i + 1) == Some(&b'/') {
                self.i += 2;
                let close = self.name()?;
                if close != name {
                    return Err(self.err(&format!(
                        "mismatched close tag: expected </{name}>, found </{close}>"
                    )));
                }
                self.ws();
                self.expect(b'>')?;
                return Ok(RawTree::node(name, children));
            }
            if self.s.get(self.i) == Some(&b'<') {
                children.push(self.element()?);
            } else {
                return Err(self.err("expected a child element or a close tag"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alpha() -> Arc<Alphabet> {
        Alphabet::unranked(&["a", "b", "c", "d", "e"])
    }

    #[test]
    fn paper_example_document() {
        // Section 2.2's serialization of the Figure 1 tree.
        let al = alpha();
        let doc = parse_document("<a> <b></b> <b></b> <c><d></d></c> <e></e> </a>", &al).unwrap();
        assert_eq!(doc.to_string(), "a(b, b, c(d), e)");
    }

    #[test]
    fn self_closing_and_mixed() {
        let al = alpha();
        let doc = parse_document("<a><b/><c><d/></c></a>", &al).unwrap();
        assert_eq!(doc.to_string(), "a(b, c(d))");
    }

    #[test]
    fn round_trip() {
        let al = alpha();
        for src in ["<a/>", "<a><b/></a>", "<a><b/><b/><c><d/></c><e/></a>"] {
            let doc = parse_document(src, &al).unwrap();
            let xml = to_xml(&doc);
            let doc2 = parse_document(&xml, &al).unwrap();
            assert_eq!(doc, doc2, "{src}");
        }
    }

    #[test]
    fn errors() {
        assert!(parse_raw("").is_err());
        assert!(parse_raw("<a>").is_err());
        assert!(parse_raw("<a></b>").is_err());
        assert!(parse_raw("<a/><b/>").is_err());
        assert!(parse_raw("<a>text</a>").is_err());
        assert!(parse_raw("< a/>").is_err());
    }

    #[test]
    fn unknown_tags_rejected_by_alphabet() {
        let al = alpha();
        assert!(parse_document("<zz/>", &al).is_err());
    }

    #[test]
    fn validate_against_dtd() {
        let dtd =
            xmltc_dtd::Dtd::parse_text("a := b*.c.e\nb := @eps\nc := d*\nd := @eps\ne := @eps")
                .unwrap();
        let doc = parse_document("<a><b/><b/><c><d/></c><e/></a>", dtd.alphabet()).unwrap();
        assert!(dtd.validate(&doc).is_ok());
        let bad = parse_document("<a><e/><b/></a>", dtd.alphabet()).unwrap();
        assert!(dtd.validate(&bad).is_err());
    }
}
