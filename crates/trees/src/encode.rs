//! The binary encoding of unranked trees (Section 2.1, Figure 1).
//!
//! Unranked trees over `Σ` are encoded into complete binary trees over
//! `Σ' = Σ ∪ {-, #}` where `-` (the paper's `−`) is a binary list-cons
//! symbol and `#` (the paper's `|`) is the nil leaf:
//!
//! ```text
//! encode(a(t₁ … tₙ)) = a(encodeF(t₁ … tₙ), #)
//! encodeF([])        = #
//! encodeF(t · F)     = -(encode(t), encodeF(F))
//! ```
//!
//! Note on fidelity: the paper's displayed equations make a singleton forest
//! encode without a final cons cell, but its own worked example
//! (`encode(a(b,b,c(d),e)) = a(−(b, −(b, −(c(−(d,|),|), −(e,|)))), |)`)
//! uses a uniform nil-terminated cons list — the two disagree. We follow the
//! worked example: the uniform encoding is a bijection with a trivially
//! checkable image and the same one-to-one, label-preserving node mapping,
//! and the paper's regular-path-expression translation (`a.c ↦ a.(−)*.c`)
//! is sound for it.

use crate::error::TreeError;
use crate::symbol::{Alphabet, AlphabetBuilder, Rank, Symbol};
use crate::tree::{BinaryTree, BinaryTreeBuilder, NodeId as BNodeId};
use crate::unranked::{NodeId as UNodeId, UnrankedTree};
use std::sync::Arc;

/// The ranked alphabet `Σ ∪ {-, #}` derived from an unranked alphabet `Σ`,
/// with every original symbol re-ranked as binary.
///
/// Original symbols keep their ids: `Symbol(i)` names the same tag in the
/// source and encoded alphabets for `i < source.len()`.
#[derive(Clone, Debug)]
pub struct EncodedAlphabet {
    source: Arc<Alphabet>,
    encoded: Arc<Alphabet>,
    cons: Symbol,
    nil: Symbol,
}

impl EncodedAlphabet {
    /// Derives the encoded alphabet from an unranked source alphabet.
    pub fn new(source: &Arc<Alphabet>) -> Self {
        let mut b = AlphabetBuilder::new();
        for s in source.symbols() {
            b.add(source.name(s), Rank::Binary);
        }
        let cons = b.add("-", Rank::Binary);
        let nil = b.add("#", Rank::Leaf);
        EncodedAlphabet {
            source: Arc::clone(source),
            encoded: b.finish(),
            cons,
            nil,
        }
    }

    /// The source (unranked) alphabet `Σ`.
    pub fn source(&self) -> &Arc<Alphabet> {
        &self.source
    }

    /// The encoded (ranked) alphabet `Σ ∪ {-, #}`.
    pub fn encoded(&self) -> &Arc<Alphabet> {
        &self.encoded
    }

    /// The list-cons symbol `-`.
    pub fn cons(&self) -> Symbol {
        self.cons
    }

    /// The nil leaf symbol `#`.
    pub fn nil(&self) -> Symbol {
        self.nil
    }

    /// True if `s` (a symbol of the *encoded* alphabet) is an original tag.
    pub fn is_original(&self, s: Symbol) -> bool {
        s.index() < self.source.len()
    }
}

/// Encodes an unranked tree into its complete binary representation.
///
/// The tree must be over `enc.source()`.
pub fn encode(t: &UnrankedTree, enc: &EncodedAlphabet) -> Result<BinaryTree, TreeError> {
    if !Alphabet::same(t.alphabet(), enc.source()) {
        return Err(TreeError::AlphabetMismatch);
    }
    let mut builder = BinaryTreeBuilder::new(enc.encoded());
    let root = encode_tree(t, t.root(), enc, &mut builder)?;
    Ok(builder.finish(root))
}

fn encode_tree(
    t: &UnrankedTree,
    n: UNodeId,
    enc: &EncodedAlphabet,
    builder: &mut BinaryTreeBuilder,
) -> Result<BNodeId, TreeError> {
    let forest = encode_forest(t, t.children(n), enc, builder)?;
    let nil = builder.leaf(enc.nil())?;
    // Symbol ids are shared between source and encoded alphabets.
    builder.node(t.symbol(n), forest, nil)
}

fn encode_forest(
    t: &UnrankedTree,
    kids: &[UNodeId],
    enc: &EncodedAlphabet,
    builder: &mut BinaryTreeBuilder,
) -> Result<BNodeId, TreeError> {
    match kids.split_first() {
        None => builder.leaf(enc.nil()),
        Some((&head, rest)) => {
            let h = encode_tree(t, head, enc, builder)?;
            let r = encode_forest(t, rest, enc, builder)?;
            builder.node(enc.cons(), h, r)
        }
    }
}

/// Decodes a binary tree back into the unranked tree it encodes.
///
/// Errors with [`TreeError::MalformedEncoding`] when the input is not in the
/// image of [`encode`].
pub fn decode(t: &BinaryTree, enc: &EncodedAlphabet) -> Result<UnrankedTree, TreeError> {
    if !Alphabet::same(t.alphabet(), enc.encoded()) {
        return Err(TreeError::AlphabetMismatch);
    }
    let raw = decode_tree(t, t.root(), enc)?;
    UnrankedTree::from_raw(&raw, enc.source())
}

fn decode_tree(
    t: &BinaryTree,
    n: BNodeId,
    enc: &EncodedAlphabet,
) -> Result<crate::raw::RawTree, TreeError> {
    let sym = t.symbol(n);
    if !enc.is_original(sym) {
        return Err(TreeError::MalformedEncoding(format!(
            "expected an element symbol, found `{}`",
            t.alphabet().name(sym)
        )));
    }
    let (forest, nil) = t
        .children(n)
        .ok_or_else(|| TreeError::MalformedEncoding("element node must be internal".into()))?;
    if t.symbol(nil) != enc.nil() {
        return Err(TreeError::MalformedEncoding(
            "element's right child must be `#`".into(),
        ));
    }
    let mut children = Vec::new();
    decode_forest(t, forest, enc, &mut children)?;
    Ok(crate::raw::RawTree {
        name: enc.source().name(sym).to_string(),
        children,
    })
}

fn decode_forest(
    t: &BinaryTree,
    mut n: BNodeId,
    enc: &EncodedAlphabet,
    out: &mut Vec<crate::raw::RawTree>,
) -> Result<(), TreeError> {
    loop {
        let sym = t.symbol(n);
        if sym == enc.nil() {
            return Ok(());
        }
        if sym != enc.cons() {
            return Err(TreeError::MalformedEncoding(format!(
                "expected `-` or `#` in forest position, found `{}`",
                t.alphabet().name(sym)
            )));
        }
        let (head, tail) = t
            .children(n)
            .expect("`-` is binary by construction of the encoded alphabet");
        out.push(decode_tree(t, head, enc)?);
        n = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Arc<Alphabet>, EncodedAlphabet) {
        let src = Alphabet::unranked(&["a", "b", "c", "d", "e"]);
        let enc = EncodedAlphabet::new(&src);
        (src, enc)
    }

    #[test]
    fn figure_one_example() {
        // Figure 1: encode(a(b,b,c(d),e)).
        let (src, enc) = setup();
        let t = UnrankedTree::parse("a(b, b, c(d), e)", &src).unwrap();
        let bt = encode(&t, &enc).unwrap();
        // Uniform nil-terminated cons encoding, matching the paper's
        // worked example with explicit leaf children spelled out.
        let expected = "a(-(b(#, #), -(b(#, #), -(c(-(d(#, #), #), #), -(e(#, #), #)))), #)";
        assert_eq!(bt.to_string(), expected);
    }

    #[test]
    fn encoded_alphabet_ranks() {
        let (src, enc) = setup();
        let e = enc.encoded();
        assert_eq!(e.len(), src.len() + 2);
        assert_eq!(e.rank(enc.cons()), Rank::Binary);
        assert_eq!(e.rank(enc.nil()), Rank::Leaf);
        for s in src.symbols() {
            assert_eq!(e.rank(s), Rank::Binary);
            assert_eq!(e.name(s), src.name(s));
        }
        assert!(enc.is_original(Symbol(0)));
        assert!(!enc.is_original(enc.cons()));
    }

    #[test]
    fn round_trip_small() {
        let (src, enc) = setup();
        for s in ["a", "a(b)", "a(b, c)", "a(b(c, d), e)", "a(a(a(a)))"] {
            let t = UnrankedTree::parse(s, &src).unwrap();
            let bt = encode(&t, &enc).unwrap();
            let back = decode(&bt, &enc).unwrap();
            assert_eq!(t, back, "round trip failed for {s}");
        }
    }

    #[test]
    fn node_count_preserved_in_elements() {
        // The encoding maps nodes one-to-one: every element node of the
        // unranked tree appears exactly once in the binary tree.
        let (src, enc) = setup();
        let t = UnrankedTree::parse("a(b, b, c(d), e)", &src).unwrap();
        let bt = encode(&t, &enc).unwrap();
        let element_count = bt
            .preorder()
            .filter(|&n| enc.is_original(bt.symbol(n)))
            .count();
        assert_eq!(element_count, t.len());
    }

    #[test]
    fn decode_rejects_garbage() {
        let (_, enc) = setup();
        let e = enc.encoded();
        // `-` at the root is not a valid element.
        let bad = BinaryTree::parse("-(a(#, #), #)", e).unwrap();
        assert!(decode(&bad, &enc).is_err());
        // element whose right child is not `#`.
        let bad2 = BinaryTree::parse("a(#, a(#, #))", e).unwrap();
        assert!(decode(&bad2, &enc).is_err());
        // element symbol in forest tail position.
        let bad3 = BinaryTree::parse("a(-(b(#, #), b(#, #)), #)", e).unwrap();
        assert!(decode(&bad3, &enc).is_err());
    }

    #[test]
    fn alphabet_mismatch_detected() {
        let (src, enc) = setup();
        let other = Alphabet::unranked(&["a", "b", "c", "d", "e"]);
        let t = UnrankedTree::parse("a(b)", &other).unwrap();
        assert!(matches!(encode(&t, &enc), Err(TreeError::AlphabetMismatch)));
        let _ = src;
    }
}
