//! Unranked ordered trees — the paper's model of XML documents.
//!
//! Section 2.1: unranked trees over `Σ` have node labels from `Σ` and no
//! bound on the number of children; children are ordered. A *forest* is a
//! list of trees. XML documents are identified with unranked trees
//! (Section 2.2).

use crate::error::TreeError;
use crate::raw::RawTree;
use crate::symbol::{Alphabet, Symbol};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

pub use crate::tree::NodeId;

#[derive(Clone, Debug)]
struct UNode {
    symbol: Symbol,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
}

/// An ordered unranked tree over an (unranked) alphabet.
///
/// Equality and hashing are structural.
#[derive(Clone)]
pub struct UnrankedTree {
    alphabet: Arc<Alphabet>,
    nodes: Vec<UNode>,
    root: NodeId,
}

impl UnrankedTree {
    /// Parses from term syntax, e.g. `"a(b, b, c(d), e)"` (the tree of
    /// Figure 1 in the paper).
    pub fn parse(input: &str, alphabet: &Arc<Alphabet>) -> Result<Self, TreeError> {
        let raw = RawTree::parse(input)?;
        Self::from_raw(&raw, alphabet)
    }

    /// Builds from a [`RawTree`], validating symbol names.
    pub fn from_raw(raw: &RawTree, alphabet: &Arc<Alphabet>) -> Result<Self, TreeError> {
        let mut nodes = Vec::with_capacity(raw.size());
        let root = Self::build(raw, alphabet, None, &mut nodes)?;
        Ok(UnrankedTree {
            alphabet: Arc::clone(alphabet),
            nodes,
            root,
        })
    }

    fn build(
        raw: &RawTree,
        alphabet: &Arc<Alphabet>,
        parent: Option<NodeId>,
        nodes: &mut Vec<UNode>,
    ) -> Result<NodeId, TreeError> {
        let symbol = alphabet.require(&raw.name)?;
        alphabet.check_arity(symbol, raw.children.len())?;
        let id = NodeId(nodes.len() as u32);
        nodes.push(UNode {
            symbol,
            parent,
            children: Vec::with_capacity(raw.children.len()),
        });
        for c in &raw.children {
            let cid = Self::build(c, alphabet, Some(id), nodes)?;
            nodes[id.index()].children.push(cid);
        }
        Ok(id)
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the arena is empty (never for a constructed tree).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The label of a node.
    #[inline]
    pub fn symbol(&self, n: NodeId) -> Symbol {
        self.nodes[n.index()].symbol
    }

    /// The ordered children of a node.
    #[inline]
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.nodes[n.index()].children
    }

    /// The parent of a node.
    #[inline]
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.index()].parent
    }

    /// True if the node has no children.
    #[inline]
    pub fn is_leaf(&self, n: NodeId) -> bool {
        self.nodes[n.index()].children.is_empty()
    }

    /// Depth of the tree (a single node has depth 1).
    pub fn depth(&self) -> usize {
        self.depth_at(self.root)
    }

    fn depth_at(&self, n: NodeId) -> usize {
        1 + self
            .children(n)
            .iter()
            .map(|&c| self.depth_at(c))
            .max()
            .unwrap_or(0)
    }

    /// Pre-order traversal of all nodes.
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.children(n).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// The children symbol word of a node — the word checked against DTD
    /// content models.
    pub fn child_word(&self, n: NodeId) -> Vec<Symbol> {
        self.children(n).iter().map(|&c| self.symbol(c)).collect()
    }

    /// Converts back to [`RawTree`].
    pub fn to_raw(&self) -> RawTree {
        self.raw_at(self.root)
    }

    fn raw_at(&self, n: NodeId) -> RawTree {
        RawTree {
            name: self.alphabet.name(self.symbol(n)).to_string(),
            children: self.children(n).iter().map(|&c| self.raw_at(c)).collect(),
        }
    }

    /// Structural subtree equality.
    pub fn subtree_eq(&self, a: NodeId, other: &UnrankedTree, b: NodeId) -> bool {
        if self.symbol(a) != other.symbol(b) || self.children(a).len() != other.children(b).len() {
            return false;
        }
        self.children(a)
            .iter()
            .zip(other.children(b))
            .all(|(&x, &y)| self.subtree_eq(x, other, y))
    }
}

impl PartialEq for UnrankedTree {
    fn eq(&self, other: &Self) -> bool {
        Alphabet::same(&self.alphabet, &other.alphabet)
            && self.subtree_eq(self.root, other, other.root)
    }
}

impl Eq for UnrankedTree {}

impl Hash for UnrankedTree {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for n in self.preorder() {
            self.symbol(n).hash(state);
            self.children(n).len().hash(state);
        }
    }
}

impl fmt::Display for UnrankedTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_raw())
    }
}

impl fmt::Debug for UnrankedTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UnrankedTree({})", self.to_raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alpha() -> Arc<Alphabet> {
        Alphabet::unranked(&["a", "b", "c", "d", "e"])
    }

    #[test]
    fn figure_one_tree() {
        // The unranked tree of Figure 1: a(b, b, c(d), e).
        let al = alpha();
        let t = UnrankedTree::parse("a(b, b, c(d), e)", &al).unwrap();
        assert_eq!(t.len(), 6);
        assert_eq!(t.depth(), 3);
        let kids = t.children(t.root());
        assert_eq!(kids.len(), 4);
        let names: Vec<&str> = kids.iter().map(|&c| al.name(t.symbol(c))).collect();
        assert_eq!(names, vec!["b", "b", "c", "e"]);
        assert_eq!(t.child_word(t.root()).len(), 4);
    }

    #[test]
    fn preorder_matches_document_order() {
        let al = alpha();
        let t = UnrankedTree::parse("a(b(c, d), e)", &al).unwrap();
        let names: Vec<&str> = t
            .preorder()
            .into_iter()
            .map(|n| al.name(t.symbol(n)))
            .collect();
        assert_eq!(names, vec!["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn equality_and_display() {
        let al = alpha();
        let t1 = UnrankedTree::parse("a(b, c)", &al).unwrap();
        let t2 = UnrankedTree::parse(" a ( b , c ) ", &al).unwrap();
        let t3 = UnrankedTree::parse("a(c, b)", &al).unwrap();
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
        assert_eq!(t1.to_string(), "a(b, c)");
    }

    #[test]
    fn unknown_symbol_rejected() {
        let al = alpha();
        assert!(UnrankedTree::parse("a(zz)", &al).is_err());
    }

    #[test]
    fn parents_linked() {
        let al = alpha();
        let t = UnrankedTree::parse("a(b(c))", &al).unwrap();
        let b = t.children(t.root())[0];
        let c = t.children(b)[0];
        assert_eq!(t.parent(c), Some(b));
        assert_eq!(t.parent(b), Some(t.root()));
        assert_eq!(t.parent(t.root()), None);
        assert!(t.is_leaf(c));
        assert!(!t.is_leaf(b));
    }
}
