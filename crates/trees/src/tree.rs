//! Ranked (complete binary) trees, arena-allocated with parent links.
//!
//! Section 2.1 of the paper restricts ranked trees to *complete binary*
//! trees: every node labeled from `Σ₀` is a leaf, every node labeled from
//! `Σ₂` has exactly two children. Pebble transducers and automata walk up
//! and down these trees, so nodes carry parent links and child-side tags and
//! are addressed by compact [`NodeId`]s suitable for configuration tuples.

use crate::error::TreeError;
use crate::raw::RawTree;
use crate::symbol::{Alphabet, Rank, Symbol};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Index of a node within its tree's arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Which child of its parent a node is.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ChildSide {
    /// First (left) child.
    Left,
    /// Second (right) child.
    Right,
}

#[derive(Clone, Debug)]
struct Node {
    symbol: Symbol,
    parent: Option<(NodeId, ChildSide)>,
    children: Option<(NodeId, NodeId)>,
}

/// A complete binary tree over a ranked alphabet.
///
/// Construct with [`BinaryTree::from_raw`], [`BinaryTree::parse`],
/// [`BinaryTreeBuilder::leaf`]/[`BinaryTreeBuilder::node`] style building via
/// [`BinaryTreeBuilder`], or the generators in [`crate::generate`].
///
/// Equality and hashing are *structural* (same shape and labels), not
/// arena-layout dependent.
#[derive(Clone)]
pub struct BinaryTree {
    alphabet: Arc<Alphabet>,
    nodes: Vec<Node>,
    root: NodeId,
}

impl BinaryTree {
    /// Parses a tree from term syntax, e.g. `"f(a, g(b, c))"`.
    pub fn parse(input: &str, alphabet: &Arc<Alphabet>) -> Result<Self, TreeError> {
        let raw = RawTree::parse(input)?;
        Self::from_raw(&raw, alphabet)
    }

    /// Builds a tree from a [`RawTree`], validating symbol names and ranks.
    pub fn from_raw(raw: &RawTree, alphabet: &Arc<Alphabet>) -> Result<Self, TreeError> {
        let mut builder = BinaryTreeBuilder::new(alphabet);
        let root = Self::build_raw(raw, alphabet, &mut builder)?;
        Ok(builder.finish(root))
    }

    fn build_raw(
        raw: &RawTree,
        alphabet: &Arc<Alphabet>,
        builder: &mut BinaryTreeBuilder,
    ) -> Result<NodeId, TreeError> {
        let sym = alphabet.require(&raw.name)?;
        alphabet.check_arity(sym, raw.children.len())?;
        match raw.children.len() {
            0 => builder.leaf(sym),
            2 => {
                let l = Self::build_raw(&raw.children[0], alphabet, builder)?;
                let r = Self::build_raw(&raw.children[1], alphabet, builder)?;
                builder.node(sym, l, r)
            }
            n => Err(TreeError::RankMismatch {
                symbol: raw.name.clone(),
                expected: if n < 2 { 0 } else { 2 },
                got: n,
            }),
        }
    }

    /// Builds a single-leaf tree.
    pub fn singleton(symbol: Symbol, alphabet: &Arc<Alphabet>) -> Result<Self, TreeError> {
        let mut b = BinaryTreeBuilder::new(alphabet);
        let root = b.leaf(symbol)?;
        Ok(b.finish(root))
    }

    /// The alphabet this tree is labeled over.
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the arena is empty (never true for a constructed tree).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The label of a node.
    #[inline]
    pub fn symbol(&self, n: NodeId) -> Symbol {
        self.nodes[n.index()].symbol
    }

    /// The two children of a node, if it is internal.
    #[inline]
    pub fn children(&self, n: NodeId) -> Option<(NodeId, NodeId)> {
        self.nodes[n.index()].children
    }

    /// The parent of a node together with which side `n` hangs on, if any.
    #[inline]
    pub fn parent(&self, n: NodeId) -> Option<(NodeId, ChildSide)> {
        self.nodes[n.index()].parent
    }

    /// True if `n` is a leaf.
    #[inline]
    pub fn is_leaf(&self, n: NodeId) -> bool {
        self.nodes[n.index()].children.is_none()
    }

    /// True if `n` is the root.
    #[inline]
    pub fn is_root(&self, n: NodeId) -> bool {
        n == self.root
    }

    /// Which side of its parent `n` is on (`None` for the root).
    #[inline]
    pub fn side(&self, n: NodeId) -> Option<ChildSide> {
        self.nodes[n.index()].parent.map(|(_, s)| s)
    }

    /// Depth of the tree (a single leaf has depth 1).
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        let mut max = 0;
        // Arena ids are created bottom-up by the builder, so children always
        // precede parents; a single forward pass computes heights.
        for (i, node) in self.nodes.iter().enumerate() {
            let h = match node.children {
                None => 1,
                Some((l, r)) => 1 + depth[l.index()].max(depth[r.index()]),
            };
            depth[i] = h;
            max = max.max(h);
        }
        max
    }

    /// Pre-order traversal (node before children, left before right).
    pub fn preorder(&self) -> Preorder<'_> {
        Preorder {
            tree: self,
            stack: vec![self.root],
        }
    }

    /// Nodes of the subtree rooted at `n`, in pre-order.
    pub fn subtree_nodes(&self, n: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![n];
        while let Some(x) = stack.pop() {
            out.push(x);
            if let Some((l, r)) = self.children(x) {
                stack.push(r);
                stack.push(l);
            }
        }
        out
    }

    /// Converts back to a [`RawTree`] (for printing and cross-checking).
    pub fn to_raw(&self) -> RawTree {
        self.raw_at(self.root)
    }

    fn raw_at(&self, n: NodeId) -> RawTree {
        let name = self.alphabet.name(self.symbol(n)).to_string();
        match self.children(n) {
            None => RawTree::leaf(name),
            Some((l, r)) => RawTree::node(name, vec![self.raw_at(l), self.raw_at(r)]),
        }
    }

    /// Builds a new tree `symbol(left, right)` from two existing trees
    /// (copying both).
    pub fn graft(
        symbol: Symbol,
        left: &BinaryTree,
        right: &BinaryTree,
    ) -> Result<BinaryTree, TreeError> {
        if !Alphabet::same(&left.alphabet, &right.alphabet) {
            return Err(TreeError::AlphabetMismatch);
        }
        let mut b = BinaryTreeBuilder::new(&left.alphabet);
        let l = copy_subtree(left, left.root, &mut b)?;
        let r = copy_subtree(right, right.root, &mut b)?;
        let root = b.node(symbol, l, r)?;
        Ok(b.finish(root))
    }

    /// Structural equality of two subtrees within (possibly different)
    /// trees over the same alphabet.
    pub fn subtree_eq(&self, a: NodeId, other: &BinaryTree, b: NodeId) -> bool {
        let mut stack = vec![(a, b)];
        while let Some((x, y)) = stack.pop() {
            if self.symbol(x) != other.symbol(y) {
                return false;
            }
            match (self.children(x), other.children(y)) {
                (None, None) => {}
                (Some((xl, xr)), Some((yl, yr))) => {
                    stack.push((xl, yl));
                    stack.push((xr, yr));
                }
                _ => return false,
            }
        }
        true
    }
}

impl PartialEq for BinaryTree {
    fn eq(&self, other: &Self) -> bool {
        Alphabet::same(&self.alphabet, &other.alphabet)
            && self.subtree_eq(self.root, other, other.root)
    }
}

impl Eq for BinaryTree {}

impl Hash for BinaryTree {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash the pre-order symbol sequence with arity markers; structural.
        for n in self.preorder() {
            self.symbol(n).hash(state);
            self.is_leaf(n).hash(state);
        }
    }
}

impl fmt::Display for BinaryTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_raw())
    }
}

impl fmt::Debug for BinaryTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BinaryTree({})", self.to_raw())
    }
}

/// Copies the subtree of `src` rooted at `node` into `builder`, returning
/// the id of the copy's root.
pub fn copy_subtree(
    src: &BinaryTree,
    node: NodeId,
    builder: &mut BinaryTreeBuilder,
) -> Result<NodeId, TreeError> {
    match src.children(node) {
        None => builder.leaf(src.symbol(node)),
        Some((l, r)) => {
            let lc = copy_subtree(src, l, builder)?;
            let rc = copy_subtree(src, r, builder)?;
            builder.node(src.symbol(node), lc, rc)
        }
    }
}

/// Pre-order iterator over a [`BinaryTree`].
pub struct Preorder<'a> {
    tree: &'a BinaryTree,
    stack: Vec<NodeId>,
}

impl<'a> Iterator for Preorder<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let n = self.stack.pop()?;
        if let Some((l, r)) = self.tree.children(n) {
            self.stack.push(r);
            self.stack.push(l);
        }
        Some(n)
    }
}

/// Bottom-up builder for [`BinaryTree`].
///
/// Children must be created before their parent; each node may be used as a
/// child at most once; exactly one node (the one passed to
/// [`finish`](Self::finish)) must remain parentless.
pub struct BinaryTreeBuilder {
    alphabet: Arc<Alphabet>,
    nodes: Vec<Node>,
}

impl BinaryTreeBuilder {
    /// Creates a builder over the given alphabet.
    pub fn new(alphabet: &Arc<Alphabet>) -> Self {
        Self {
            alphabet: Arc::clone(alphabet),
            nodes: Vec::new(),
        }
    }

    /// Creates a leaf node. Errors if `symbol` is not a leaf symbol.
    pub fn leaf(&mut self, symbol: Symbol) -> Result<NodeId, TreeError> {
        match self.alphabet.rank(symbol) {
            Rank::Leaf => {}
            other => {
                return Err(TreeError::RankMismatch {
                    symbol: self.alphabet.name(symbol).to_string(),
                    expected: other.arity().unwrap_or(0),
                    got: 0,
                })
            }
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            symbol,
            parent: None,
            children: None,
        });
        Ok(id)
    }

    /// Creates an internal node over two previously created children.
    /// Errors if `symbol` is not binary or a child already has a parent.
    pub fn node(
        &mut self,
        symbol: Symbol,
        left: NodeId,
        right: NodeId,
    ) -> Result<NodeId, TreeError> {
        match self.alphabet.rank(symbol) {
            Rank::Binary => {}
            other => {
                return Err(TreeError::RankMismatch {
                    symbol: self.alphabet.name(symbol).to_string(),
                    expected: other.arity().unwrap_or(2),
                    got: 2,
                })
            }
        }
        let id = NodeId(self.nodes.len() as u32);
        for (child, side) in [(left, ChildSide::Left), (right, ChildSide::Right)] {
            let slot = &mut self.nodes[child.index()].parent;
            assert!(slot.is_none(), "node reused as child");
            *slot = Some((id, side));
        }
        self.nodes.push(Node {
            symbol,
            parent: None,
            children: Some((left, right)),
        });
        Ok(id)
    }

    /// Finalizes the tree with `root` as its root.
    pub fn finish(self, root: NodeId) -> BinaryTree {
        assert!(
            self.nodes[root.index()].parent.is_none(),
            "root must be parentless"
        );
        BinaryTree {
            alphabet: self.alphabet,
            nodes: self.nodes,
            root,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alpha() -> Arc<Alphabet> {
        Alphabet::ranked(&["a", "b", "c"], &["f", "g"])
    }

    #[test]
    fn parse_and_navigate() {
        let al = alpha();
        let t = BinaryTree::parse("f(a, g(b, c))", &al).unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.depth(), 3);
        let root = t.root();
        assert_eq!(al.name(t.symbol(root)), "f");
        let (l, r) = t.children(root).unwrap();
        assert_eq!(al.name(t.symbol(l)), "a");
        assert!(t.is_leaf(l));
        assert_eq!(al.name(t.symbol(r)), "g");
        assert_eq!(t.parent(r), Some((root, ChildSide::Right)));
        assert_eq!(t.side(l), Some(ChildSide::Left));
        assert_eq!(t.side(root), None);
        assert!(t.is_root(root));
    }

    #[test]
    fn preorder_order() {
        let al = alpha();
        let t = BinaryTree::parse("f(g(a, b), c)", &al).unwrap();
        let names: Vec<&str> = t.preorder().map(|n| al.name(t.symbol(n))).collect();
        assert_eq!(names, vec!["f", "g", "a", "b", "c"]);
    }

    #[test]
    fn structural_equality() {
        let al = alpha();
        let t1 = BinaryTree::parse("f(a, b)", &al).unwrap();
        let t2 = BinaryTree::parse("f(a, b)", &al).unwrap();
        let t3 = BinaryTree::parse("f(b, a)", &al).unwrap();
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
        use std::collections::hash_map::DefaultHasher;
        let h = |t: &BinaryTree| {
            let mut s = DefaultHasher::new();
            t.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&t1), h(&t2));
    }

    #[test]
    fn display_round_trip() {
        let al = alpha();
        let src = "f(a, g(b, c))";
        let t = BinaryTree::parse(src, &al).unwrap();
        let t2 = BinaryTree::parse(&t.to_string(), &al).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn rank_mismatch_rejected() {
        let al = alpha();
        assert!(BinaryTree::parse("a(b, c)", &al).is_err());
        assert!(BinaryTree::parse("f(a)", &al).is_err());
        assert!(BinaryTree::parse("f", &al).is_err());
        assert!(BinaryTree::parse("zz", &al).is_err());
    }

    #[test]
    fn subtree_nodes_and_eq() {
        let al = alpha();
        let t = BinaryTree::parse("f(g(a, b), g(a, b))", &al).unwrap();
        let (l, r) = t.children(t.root()).unwrap();
        assert!(t.subtree_eq(l, &t, r));
        assert!(!t.subtree_eq(l, &t, t.root()));
        assert_eq!(t.subtree_nodes(l).len(), 3);
    }

    #[test]
    fn builder_manual() {
        let al = alpha();
        let mut b = BinaryTreeBuilder::new(&al);
        let a = b.leaf(al.get("a").unwrap()).unwrap();
        let c = b.leaf(al.get("c").unwrap()).unwrap();
        let f = b.node(al.get("f").unwrap(), a, c).unwrap();
        let t = b.finish(f);
        assert_eq!(t.to_string(), "f(a, c)");
    }

    #[test]
    fn builder_rank_enforced() {
        let al = alpha();
        let mut b = BinaryTreeBuilder::new(&al);
        assert!(b.leaf(al.get("f").unwrap()).is_err());
        let a = b.leaf(al.get("a").unwrap()).unwrap();
        let c = b.leaf(al.get("c").unwrap()).unwrap();
        assert!(b.node(al.get("a").unwrap(), a, c).is_err());
    }
}
