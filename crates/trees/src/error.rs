//! Error type shared by the tree structures.

use std::fmt;

/// Errors produced while building, parsing or converting trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// A symbol name was looked up in an alphabet that does not contain it.
    UnknownSymbol(String),
    /// A symbol was used with the wrong number of children for its rank.
    RankMismatch {
        /// The offending symbol name.
        symbol: String,
        /// The rank recorded in the alphabet (0 or 2; unranked is never a
        /// mismatch).
        expected: usize,
        /// The number of children actually supplied.
        got: usize,
    },
    /// Term-syntax parse error with a human-readable description and byte
    /// offset into the input.
    Parse {
        /// What went wrong.
        message: String,
        /// Byte offset of the error in the input string.
        offset: usize,
    },
    /// A tree claimed to be a paper-style binary encoding was malformed
    /// (e.g. a `#` in an element position, or a `-` spine ending wrongly).
    MalformedEncoding(String),
    /// An operation mixing trees/automata over different alphabets.
    AlphabetMismatch,
    /// The alphabet has no symbol of the required rank (e.g. generating a
    /// ranked tree from an alphabet with no leaf symbols).
    NoSymbolOfRank(&'static str),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::UnknownSymbol(name) => write!(f, "unknown symbol `{name}`"),
            TreeError::RankMismatch {
                symbol,
                expected,
                got,
            } => write!(
                f,
                "symbol `{symbol}` has rank {expected} but was given {got} children"
            ),
            TreeError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            TreeError::MalformedEncoding(msg) => write!(f, "malformed binary encoding: {msg}"),
            TreeError::AlphabetMismatch => write!(f, "operands use different alphabets"),
            TreeError::NoSymbolOfRank(rank) => {
                write!(f, "alphabet has no symbol of rank `{rank}`")
            }
        }
    }
}

impl std::error::Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TreeError::RankMismatch {
            symbol: "a".into(),
            expected: 2,
            got: 3,
        };
        let s = e.to_string();
        assert!(s.contains('a') && s.contains('2') && s.contains('3'));
        assert!(TreeError::UnknownSymbol("zz".into())
            .to_string()
            .contains("zz"));
    }
}
