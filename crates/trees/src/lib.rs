//! # xmltc-trees
//!
//! Foundational tree data structures for the `xmltc` reproduction of
//! *Typechecking for XML Transformers* (Milo, Suciu, Vianu; PODS 2000).
//!
//! This crate implements Section 2.1 of the paper:
//!
//! * **Interned symbols and alphabets** ([`Symbol`], [`Alphabet`]) — the
//!   paper's finite alphabet `Σ`, optionally partitioned into leaf symbols
//!   `Σ₀` and binary symbols `Σ₂` for ranked trees.
//! * **Ranked binary trees** ([`BinaryTree`]) — arena-allocated, with
//!   parent links so that pebble configurations can navigate in O(1).
//! * **Unranked trees** ([`UnrankedTree`]) — the XML document model.
//! * **The binary encoding** ([`encode::encode`],
//!   [`encode::decode`]) of unranked trees into complete binary
//!   trees, exactly as in Figure 1 of the paper.
//! * A small **term syntax** (`a(b, c(d))`) parser/printer ([`RawTree`]) used
//!   pervasively by tests, examples and front-ends.
//! * **Random generators** ([`generate`]) for property tests and benchmarks,
//!   driven by the built-in seedable [`rng::SmallRng`].
//!
//! The crate is dependency-free by design (the workspace builds offline). A
//! deterministic FxHash-style hasher lives in [`fx`] so that hot paths avoid
//! SipHash, and [`rng`] provides a splitmix64 generator, without pulling a
//! crate in for either.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encode;
pub mod error;
pub mod fx;
pub mod generate;
pub mod raw;
pub mod rng;
pub mod symbol;
pub mod tree;
pub mod unranked;

pub use encode::{decode, encode, EncodedAlphabet};
pub use error::TreeError;
pub use fx::{FxHashMap, FxHashSet};
pub use raw::RawTree;
pub use rng::SmallRng;
pub use symbol::{Alphabet, AlphabetBuilder, Rank, Symbol};
pub use tree::{BinaryTree, ChildSide, NodeId};
pub use unranked::UnrankedTree;
