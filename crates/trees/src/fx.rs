//! A small, deterministic, fast hasher for interned-id keys.
//!
//! The Rust Performance Book recommends replacing SipHash with a cheaper
//! hash for integer-keyed maps on hot paths. Rather than adding an external
//! dependency, this module implements the well-known FxHash mixing function
//! (as used by rustc): a multiply-and-rotate word hash. It is *not* DoS
//! resistant, which is fine: every key in this workspace is an interned id
//! or small tuple produced by our own code, never attacker-controlled.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style hasher: wrapping multiply by a large odd constant with a
/// rotate, folded over the input words.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// A `HashMap` using [`FxHasher`]. Deterministic iteration is still *not*
/// guaranteed; sort keys when determinism matters (e.g. canonical printing).
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_values() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u32(1);
        b.write_u32(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        s.insert((1, 2));
        assert!(s.contains(&(1, 2)));
        assert!(!s.contains(&(2, 1)));
    }

    #[test]
    fn hashes_byte_slices() {
        let mut a = FxHasher::default();
        a.write(b"hello world, this is more than eight bytes");
        let mut b = FxHasher::default();
        b.write(b"hello world, this is more than eight bytes");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"hello world, this is more than eight bytez");
        assert_ne!(a.finish(), c.finish());
    }
}
