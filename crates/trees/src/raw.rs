//! Term syntax: a tiny, alphabet-agnostic tree notation.
//!
//! `a(b, c(d), e)` denotes the unranked tree the paper writes the same way;
//! leaves may omit the parentheses (`a` ≡ `a()`). Symbol names are
//! identifiers (`[A-Za-z0-9_@]+`) or the single-character specials `-`, `#`,
//! `|` used by the binary encoding. Whitespace is insignificant.

use crate::error::TreeError;
use std::fmt;

/// An uninterned tree: names as strings, arbitrary arity.
///
/// [`RawTree`] is the lingua franca between the parser, the printers, and
/// the typed tree builders ([`crate::BinaryTree::from_raw`],
/// [`crate::UnrankedTree::from_raw`]).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RawTree {
    /// The node's symbol name.
    pub name: String,
    /// Child subtrees, in order.
    pub children: Vec<RawTree>,
}

impl RawTree {
    /// A leaf node.
    pub fn leaf(name: impl Into<String>) -> RawTree {
        RawTree {
            name: name.into(),
            children: Vec::new(),
        }
    }

    /// An internal node.
    pub fn node(name: impl Into<String>, children: Vec<RawTree>) -> RawTree {
        RawTree {
            name: name.into(),
            children,
        }
    }

    /// Total number of nodes.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(RawTree::size).sum::<usize>()
    }

    /// Height of the tree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(RawTree::depth).max().unwrap_or(0)
    }

    /// Parses term syntax.
    pub fn parse(input: &str) -> Result<RawTree, TreeError> {
        let mut p = Parser {
            input: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let t = p.tree()?;
        p.skip_ws();
        if p.pos != p.input.len() {
            return Err(p.err("trailing input"));
        }
        Ok(t)
    }
}

impl fmt::Display for RawTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.children.is_empty() {
            write!(f, "(")?;
            for (i, c) in self.children.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> TreeError {
        TreeError::Parse {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn name(&mut self) -> Result<String, TreeError> {
        let start = self.pos;
        match self.peek() {
            Some(b'-') | Some(b'#') | Some(b'|') => {
                self.pos += 1;
                return Ok((self.input[start] as char).to_string());
            }
            _ => {}
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'@' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a symbol name"));
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .expect("ascii")
            .to_string())
    }

    fn tree(&mut self) -> Result<RawTree, TreeError> {
        let name = self.name()?;
        self.skip_ws();
        let mut children = Vec::new();
        if self.peek() == Some(b'(') {
            self.pos += 1;
            self.skip_ws();
            if self.peek() == Some(b')') {
                self.pos += 1; // `a()` is a leaf
            } else {
                loop {
                    children.push(self.tree()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                            self.skip_ws();
                        }
                        Some(b')') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.err("expected `,` or `)`")),
                    }
                }
            }
        }
        Ok(RawTree { name, children })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_leaf() {
        assert_eq!(RawTree::parse("a").unwrap(), RawTree::leaf("a"));
        assert_eq!(RawTree::parse("a()").unwrap(), RawTree::leaf("a"));
        assert_eq!(RawTree::parse("  abc_1  ").unwrap(), RawTree::leaf("abc_1"));
    }

    #[test]
    fn parse_nested() {
        let t = RawTree::parse("a(b, c(d), e)").unwrap();
        assert_eq!(t.name, "a");
        assert_eq!(t.children.len(), 3);
        assert_eq!(t.children[1].children[0].name, "d");
        assert_eq!(t.size(), 5);
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn parse_specials() {
        let t = RawTree::parse("a(-(b, #), #)").unwrap();
        assert_eq!(t.children[0].name, "-");
        assert_eq!(t.children[1].name, "#");
    }

    #[test]
    fn display_round_trip() {
        for src in ["a", "a(b, c)", "a(-(b, -(b, #)), #)", "x(y(z))"] {
            let t = RawTree::parse(src).unwrap();
            let t2 = RawTree::parse(&t.to_string()).unwrap();
            assert_eq!(t, t2);
        }
    }

    #[test]
    fn parse_errors() {
        assert!(RawTree::parse("").is_err());
        assert!(RawTree::parse("a(").is_err());
        assert!(RawTree::parse("a(b,)").is_err());
        assert!(RawTree::parse("a)b").is_err());
        assert!(RawTree::parse("a b").is_err());
        assert!(RawTree::parse("(a)").is_err());
    }

    #[test]
    fn error_offsets() {
        match RawTree::parse("a(b,)") {
            Err(TreeError::Parse { offset, .. }) => assert_eq!(offset, 4),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
