//! Tree generators for property tests and benchmark workloads.

use crate::error::TreeError;
use crate::rng::SmallRng;
use crate::symbol::{Alphabet, Symbol};
use crate::tree::{BinaryTree, BinaryTreeBuilder, NodeId};
use crate::unranked::UnrankedTree;
use std::sync::Arc;

/// Generates a random complete binary tree of depth at most `max_depth`.
///
/// Internal nodes are generated with probability `branch_prob` while depth
/// remains; labels are drawn uniformly from the symbols of matching rank.
/// Errors if the alphabet lacks leaf symbols (or binary symbols when
/// `max_depth > 1` would require them — binary symbols are only needed if
/// branching actually happens).
pub fn random_binary(
    alphabet: &Arc<Alphabet>,
    max_depth: usize,
    branch_prob: f64,
    rng: &mut SmallRng,
) -> Result<BinaryTree, TreeError> {
    let leaves = alphabet.leaves();
    let binaries = alphabet.binaries();
    if leaves.is_empty() {
        return Err(TreeError::NoSymbolOfRank("leaf"));
    }
    let mut b = BinaryTreeBuilder::new(alphabet);
    let root = gen_binary(&leaves, &binaries, max_depth, branch_prob, rng, &mut b)?;
    Ok(b.finish(root))
}

fn gen_binary(
    leaves: &[Symbol],
    binaries: &[Symbol],
    depth: usize,
    branch_prob: f64,
    rng: &mut SmallRng,
    b: &mut BinaryTreeBuilder,
) -> Result<NodeId, TreeError> {
    let branch = depth > 1 && !binaries.is_empty() && rng.gen_bool(branch_prob);
    if branch {
        let l = gen_binary(leaves, binaries, depth - 1, branch_prob, rng, b)?;
        let r = gen_binary(leaves, binaries, depth - 1, branch_prob, rng, b)?;
        b.node(*rng.choose(binaries), l, r)
    } else {
        b.leaf(*rng.choose(leaves))
    }
}

/// Generates a random unranked tree with at most `max_depth` levels and at
/// most `max_children` children per node.
pub fn random_unranked(
    alphabet: &Arc<Alphabet>,
    max_depth: usize,
    max_children: usize,
    rng: &mut SmallRng,
) -> Result<UnrankedTree, TreeError> {
    if alphabet.is_empty() {
        return Err(TreeError::NoSymbolOfRank("any"));
    }
    let raw = gen_unranked(alphabet, max_depth, max_children, rng);
    UnrankedTree::from_raw(&raw, alphabet)
}

fn gen_unranked(
    alphabet: &Arc<Alphabet>,
    depth: usize,
    max_children: usize,
    rng: &mut SmallRng,
) -> crate::raw::RawTree {
    let sym = Symbol(rng.gen_range(0..alphabet.len()) as u32);
    let n_children = if depth <= 1 {
        0
    } else {
        rng.gen_range(0..max_children + 1)
    };
    crate::raw::RawTree {
        name: alphabet.name(sym).to_string(),
        children: (0..n_children)
            .map(|_| gen_unranked(alphabet, depth - 1, max_children, rng))
            .collect(),
    }
}

/// Builds the right-linear "comb" encoding of a string, as in the proof of
/// Theorem 4.8: `enc(a·v) = a₂(filler, enc(v))`, `enc(a) = a₀`.
///
/// `word` gives, for each position except the last, the binary symbol; the
/// final position is `last` (a leaf symbol); `filler` labels the dangling
/// left leaves.
pub fn right_comb(
    word: &[Symbol],
    last: Symbol,
    filler: Symbol,
    alphabet: &Arc<Alphabet>,
) -> Result<BinaryTree, TreeError> {
    let mut b = BinaryTreeBuilder::new(alphabet);
    let mut acc = b.leaf(last)?;
    for &s in word.iter().rev() {
        let f = b.leaf(filler)?;
        acc = b.node(s, f, acc)?;
    }
    Ok(b.finish(acc))
}

/// Builds the full (perfect) binary tree of the given depth: all internal
/// nodes labeled `internal`, all leaves labeled `leaf`. Depth 1 is a single
/// leaf.
pub fn full_binary(
    depth: usize,
    internal: Symbol,
    leaf: Symbol,
    alphabet: &Arc<Alphabet>,
) -> Result<BinaryTree, TreeError> {
    assert!(depth >= 1, "depth must be at least 1");
    let mut b = BinaryTreeBuilder::new(alphabet);
    let root = full_at(depth, internal, leaf, &mut b)?;
    Ok(b.finish(root))
}

fn full_at(
    depth: usize,
    internal: Symbol,
    leaf: Symbol,
    b: &mut BinaryTreeBuilder,
) -> Result<NodeId, TreeError> {
    if depth == 1 {
        b.leaf(leaf)
    } else {
        let l = full_at(depth - 1, internal, leaf, b)?;
        let r = full_at(depth - 1, internal, leaf, b)?;
        b.node(internal, l, r)
    }
}

/// Builds the flat unranked tree `root(a, a, …, a)` with `n` identical
/// children — the `a^n` documents of Examples 4.2/4.3.
pub fn flat(
    root: Symbol,
    child: Symbol,
    n: usize,
    alphabet: &Arc<Alphabet>,
) -> Result<UnrankedTree, TreeError> {
    let raw = crate::raw::RawTree {
        name: alphabet.name(root).to_string(),
        children: vec![crate::raw::RawTree::leaf(alphabet.name(child)); n],
    };
    UnrankedTree::from_raw(&raw, alphabet)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_binary_respects_depth() {
        let al = Alphabet::ranked(&["x", "y"], &["f"]);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            let t = random_binary(&al, 5, 0.7, &mut rng).unwrap();
            assert!(t.depth() <= 5);
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn random_binary_needs_leaves() {
        let al = Alphabet::ranked::<&str>(&[], &["f"]);
        let mut rng = SmallRng::seed_from_u64(7);
        assert!(random_binary(&al, 3, 0.5, &mut rng).is_err());
    }

    #[test]
    fn random_unranked_respects_bounds() {
        let al = Alphabet::unranked(&["a", "b"]);
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..50 {
            let t = random_unranked(&al, 4, 3, &mut rng).unwrap();
            assert!(t.depth() <= 4);
            for n in t.preorder() {
                assert!(t.children(n).len() <= 3);
            }
        }
    }

    #[test]
    fn right_comb_shape() {
        let al = Alphabet::ranked(&["z", "pad"], &["a", "b"]);
        let a = al.get("a").unwrap();
        let b = al.get("b").unwrap();
        let z = al.get("z").unwrap();
        let pad = al.get("pad").unwrap();
        let t = right_comb(&[a, b, a], z, pad, &al).unwrap();
        assert_eq!(t.to_string(), "a(pad, b(pad, a(pad, z)))");
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn full_binary_size() {
        let al = Alphabet::ranked(&["x"], &["f"]);
        let f = al.get("f").unwrap();
        let x = al.get("x").unwrap();
        let t = full_binary(4, f, x, &al).unwrap();
        assert_eq!(t.len(), 15);
        assert_eq!(t.depth(), 4);
    }

    #[test]
    fn flat_tree() {
        let al = Alphabet::unranked(&["root", "a"]);
        let t = flat(al.get("root").unwrap(), al.get("a").unwrap(), 3, &al).unwrap();
        assert_eq!(t.to_string(), "root(a, a, a)");
        let t0 = flat(al.get("root").unwrap(), al.get("a").unwrap(), 0, &al).unwrap();
        assert_eq!(t0.to_string(), "root");
    }
}
