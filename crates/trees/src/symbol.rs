//! Interned symbols and alphabets.
//!
//! The paper fixes a finite alphabet `Σ` of XML tags (Section 2.2: "Fixed
//! set of tags"). For ranked trees the alphabet is partitioned as
//! `Σ = Σ₀ ∪ Σ₂` (Section 2.1). We intern symbol names once into an
//! [`Alphabet`] and pass around `u32` [`Symbol`] ids, per the performance
//! guidance of keeping strings out of hot paths.

use crate::error::TreeError;
use crate::fx::FxHashMap;
use std::fmt;
use std::sync::Arc;

/// An interned symbol: an index into its [`Alphabet`].
///
/// Symbols from different alphabets must not be mixed; structures carrying
/// symbols also carry an `Arc<Alphabet>` and compare them with
/// [`Alphabet::same`] where it matters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The index of the symbol within its alphabet.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The rank of a symbol.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Rank {
    /// A leaf symbol (`Σ₀`): labels nodes with no children.
    Leaf,
    /// A binary symbol (`Σ₂`): labels nodes with exactly two children.
    Binary,
    /// An unranked symbol: labels unranked-tree nodes with any number of
    /// children (the XML model of Section 2.2).
    Unranked,
}

impl Rank {
    /// Number of children demanded by this rank, if fixed.
    pub fn arity(self) -> Option<usize> {
        match self {
            Rank::Leaf => Some(0),
            Rank::Binary => Some(2),
            Rank::Unranked => None,
        }
    }
}

/// A finite alphabet of interned symbols with per-symbol ranks.
///
/// Alphabets are immutable once built (see [`AlphabetBuilder`]) and shared
/// via `Arc`. Two independently built alphabets are never considered the
/// same, even with identical contents — this catches cross-alphabet mix-ups
/// early.
#[derive(Debug)]
pub struct Alphabet {
    names: Vec<String>,
    ranks: Vec<Rank>,
    index: FxHashMap<String, Symbol>,
}

impl Alphabet {
    /// Builds a ranked alphabet from leaf names and binary names, in order:
    /// leaves first, then binary symbols.
    pub fn ranked<S: AsRef<str>>(leaves: &[S], binary: &[S]) -> Arc<Alphabet> {
        let mut b = AlphabetBuilder::new();
        for n in leaves {
            b.add(n.as_ref(), Rank::Leaf);
        }
        for n in binary {
            b.add(n.as_ref(), Rank::Binary);
        }
        b.finish()
    }

    /// Builds an unranked alphabet (every symbol may have any number of
    /// children).
    pub fn unranked<S: AsRef<str>>(names: &[S]) -> Arc<Alphabet> {
        let mut b = AlphabetBuilder::new();
        for n in names {
            b.add(n.as_ref(), Rank::Unranked);
        }
        b.finish()
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The name of a symbol.
    pub fn name(&self, s: Symbol) -> &str {
        &self.names[s.index()]
    }

    /// The rank of a symbol.
    pub fn rank(&self, s: Symbol) -> Rank {
        self.ranks[s.index()]
    }

    /// Looks a symbol up by name.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.index.get(name).copied()
    }

    /// Looks a symbol up by name, or errors.
    pub fn require(&self, name: &str) -> Result<Symbol, TreeError> {
        self.get(name)
            .ok_or_else(|| TreeError::UnknownSymbol(name.to_string()))
    }

    /// Iterates over all symbols in id order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.names.len() as u32).map(Symbol)
    }

    /// Iterates over symbols of a given rank.
    pub fn symbols_of_rank(&self, rank: Rank) -> impl Iterator<Item = Symbol> + '_ {
        self.symbols().filter(move |s| self.rank(*s) == rank)
    }

    /// All leaf symbols (`Σ₀`).
    pub fn leaves(&self) -> Vec<Symbol> {
        self.symbols_of_rank(Rank::Leaf).collect()
    }

    /// All binary symbols (`Σ₂`).
    pub fn binaries(&self) -> Vec<Symbol> {
        self.symbols_of_rank(Rank::Binary).collect()
    }

    /// Pointer identity of alphabets: the only sanctioned notion of alphabet
    /// equality across structures.
    pub fn same(a: &Arc<Alphabet>, b: &Arc<Alphabet>) -> bool {
        Arc::ptr_eq(a, b)
    }

    /// Checks that `s` has the expected number of children, per its rank.
    pub fn check_arity(&self, s: Symbol, children: usize) -> Result<(), TreeError> {
        match self.rank(s).arity() {
            Some(a) if a != children => Err(TreeError::RankMismatch {
                symbol: self.name(s).to_string(),
                expected: a,
                got: children,
            }),
            _ => Ok(()),
        }
    }
}

/// Incremental construction of an [`Alphabet`].
#[derive(Default)]
pub struct AlphabetBuilder {
    names: Vec<String>,
    ranks: Vec<Rank>,
    index: FxHashMap<String, Symbol>,
}

impl AlphabetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a symbol with the given rank, returning its id. Adding an
    /// existing name with the same rank is idempotent; with a different rank
    /// it panics (programming error — alphabets are fixed per Section 2.2).
    pub fn add(&mut self, name: &str, rank: Rank) -> Symbol {
        if let Some(&s) = self.index.get(name) {
            assert_eq!(
                self.ranks[s.index()],
                rank,
                "symbol `{name}` re-added with different rank"
            );
            return s;
        }
        let s = Symbol(self.names.len() as u32);
        self.names.push(name.to_string());
        self.ranks.push(rank);
        self.index.insert(name.to_string(), s);
        s
    }

    /// Number of symbols added so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no symbols have been added yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Finalizes the alphabet.
    pub fn finish(self) -> Arc<Alphabet> {
        Arc::new(Alphabet {
            names: self.names,
            ranks: self.ranks,
            index: self.index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranked_alphabet_partitions() {
        let a = Alphabet::ranked(&["x", "y"], &["f", "g"]);
        assert_eq!(a.len(), 4);
        let x = a.get("x").unwrap();
        let f = a.get("f").unwrap();
        assert_eq!(a.rank(x), Rank::Leaf);
        assert_eq!(a.rank(f), Rank::Binary);
        assert_eq!(a.leaves().len(), 2);
        assert_eq!(a.binaries().len(), 2);
        assert_eq!(a.name(x), "x");
    }

    #[test]
    fn lookup_and_require() {
        let a = Alphabet::unranked(&["a", "b"]);
        assert!(a.get("a").is_some());
        assert!(a.get("zz").is_none());
        assert!(matches!(
            a.require("zz"),
            Err(TreeError::UnknownSymbol(n)) if n == "zz"
        ));
    }

    #[test]
    fn idempotent_add() {
        let mut b = AlphabetBuilder::new();
        let s1 = b.add("a", Rank::Leaf);
        let s2 = b.add("a", Rank::Leaf);
        assert_eq!(s1, s2);
        assert_eq!(b.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different rank")]
    fn conflicting_rank_panics() {
        let mut b = AlphabetBuilder::new();
        b.add("a", Rank::Leaf);
        b.add("a", Rank::Binary);
    }

    #[test]
    fn arity_checks() {
        let a = Alphabet::ranked(&["x"], &["f"]);
        let x = a.get("x").unwrap();
        let f = a.get("f").unwrap();
        assert!(a.check_arity(x, 0).is_ok());
        assert!(a.check_arity(x, 1).is_err());
        assert!(a.check_arity(f, 2).is_ok());
        assert!(a.check_arity(f, 0).is_err());
        let u = Alphabet::unranked(&["e"]);
        let e = u.get("e").unwrap();
        for n in 0..5 {
            assert!(u.check_arity(e, n).is_ok());
        }
    }

    #[test]
    fn identity_not_structural() {
        let a = Alphabet::unranked(&["a"]);
        let b = Alphabet::unranked(&["a"]);
        assert!(Alphabet::same(&a, &a.clone()));
        assert!(!Alphabet::same(&a, &b));
    }
}
