//! A small, seedable, deterministic pseudo-random number generator.
//!
//! The workspace builds offline with no external crates, so the generators
//! in [`crate::generate`], the property-test drivers and the benchmark
//! workloads all draw from this splitmix64-based generator instead of the
//! `rand` crate. It is emphatically **not** cryptographic — it exists to
//! produce reproducible test and benchmark inputs from a fixed seed.

/// A splitmix64 pseudo-random generator (Steele, Lea & Flood's mixer; the
/// same finalizer Java's `SplittableRandom` and xoshiro's seeder use).
/// Identical seeds yield identical streams on every platform.
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        SmallRng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`. Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Multiply-shift with rejection of the biased tail (Lemire).
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (n as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= n || lo >= n.wrapping_neg() % n {
                return hi;
            }
        }
    }

    /// A uniform `usize` in the half-open `range`. Panics when empty.
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.below((range.end - range.start) as u64) as usize
    }

    /// A uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.gen_range(0..slice.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.below(5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 200 draws");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn gen_range_endpoints() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let v = rng.gen_range(4..7);
            assert!((4..7).contains(&v));
        }
        assert_eq!(rng.gen_range(9..10), 9);
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = SmallRng::seed_from_u64(9);
        let items = ["a", "b", "c"];
        for _ in 0..20 {
            assert!(items.contains(rng.choose(&items)));
        }
    }
}
