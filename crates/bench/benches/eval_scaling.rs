//! E4/E12 — Section 3.3: transducer evaluation has polynomial data
//! complexity. Timing vs input size for the copy machine, the Example 3.7
//! rotation, and the Example 4.3 XSLT query.

use xmltc_bench::harness::Group;
use xmltc_bench::{flat_doc, full_tree, q2_fixture, ranked_alphabet};
use xmltc_core::{eval, library};
use xmltc_trees::{encode, Alphabet};

fn main() {
    let al = ranked_alphabet();
    let copy = library::copy(&al).unwrap();
    let mut group = Group::new("E12_eval_copy");
    for depth in [6usize, 9, 12] {
        let t = full_tree(&al, depth);
        group.bench(format!("{}", t.len()), || eval(&copy, &t).unwrap());
    }
    group.finish();

    // E4: rotation on right combs of growing length.
    let al2 = Alphabet::ranked(&["s", "pad"], &["r", "a", "s2"]);
    let (rot, _) = library::rotation(
        &al2,
        al2.get("s").unwrap(),
        al2.get("s2").unwrap(),
        al2.get("r").unwrap(),
    )
    .unwrap();
    let a = al2.get("a").unwrap();
    let mut group = Group::new("E4_rotation");
    for len in [8usize, 32, 128] {
        let mut word = vec![al2.get("r").unwrap()];
        word.extend(std::iter::repeat_n(a, len));
        let comb = xmltc_trees::generate::right_comb(
            &word,
            al2.get("s").unwrap(),
            al2.get("pad").unwrap(),
            &al2,
        )
        .unwrap();
        group.bench(format!("{}", comb.len()), || eval(&rot, &comb).unwrap());
    }
    group.finish();

    let fx = q2_fixture();
    let doc_al = fx.enc_in.source().clone();
    let mut group = Group::new("E12_eval_q2");
    for n in [8usize, 64, 256] {
        let doc = flat_doc(&doc_al, n);
        let encoded = encode(&doc, &fx.enc_in).unwrap();
        group.bench(format!("{n}"), || eval(&fx.transducer, &encoded).unwrap());
    }
    group.finish();
}
