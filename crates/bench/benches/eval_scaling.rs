//! E4/E12 — Section 3.3: transducer evaluation has polynomial data
//! complexity. Timing vs input size for the copy machine, the Example 3.7
//! rotation, and the Example 4.3 XSLT query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xmltc_bench::{flat_doc, full_tree, q2_fixture, ranked_alphabet};
use xmltc_core::{eval, library};
use xmltc_trees::{encode, Alphabet};

fn bench_eval(c: &mut Criterion) {
    let al = ranked_alphabet();
    let copy = library::copy(&al).unwrap();
    let mut group = c.benchmark_group("E12_eval_copy");
    group.sample_size(20);
    for depth in [6usize, 9, 12] {
        let t = full_tree(&al, depth);
        group.bench_with_input(BenchmarkId::from_parameter(t.len()), &t, |b, t| {
            b.iter(|| eval(&copy, t).unwrap())
        });
    }
    group.finish();
}

fn bench_rotation(c: &mut Criterion) {
    // E4: rotation on right combs of growing length.
    let al = Alphabet::ranked(&["s", "pad"], &["r", "a", "s2"]);
    let (rot, _) = library::rotation(
        &al,
        al.get("s").unwrap(),
        al.get("s2").unwrap(),
        al.get("r").unwrap(),
    )
    .unwrap();
    let a = al.get("a").unwrap();
    let mut group = c.benchmark_group("E4_rotation");
    group.sample_size(20);
    for len in [8usize, 32, 128] {
        let mut word = vec![al.get("r").unwrap()];
        word.extend(std::iter::repeat_n(a, len));
        let comb = xmltc_trees::generate::right_comb(
            &word,
            al.get("s").unwrap(),
            al.get("pad").unwrap(),
            &al,
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(comb.len()), &comb, |b, t| {
            b.iter(|| eval(&rot, t).unwrap())
        });
    }
    group.finish();
}

fn bench_xslt(c: &mut Criterion) {
    let fx = q2_fixture();
    let al = fx.enc_in.source().clone();
    let mut group = c.benchmark_group("E12_eval_q2");
    group.sample_size(20);
    for n in [8usize, 64, 256] {
        let doc = flat_doc(&al, n);
        let encoded = encode(&doc, &fx.enc_in).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &encoded, |b, t| {
            b.iter(|| eval(&fx.transducer, t).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eval, bench_rotation, bench_xslt);
criterion_main!(benches);
