//! E2/E3 — Proposition 3.8: the output-language automaton of a fixed
//! transducer on input `t` is computable in PTIME in `|t|`, with state
//! space `O(|t|^k)`; meanwhile the *materialized* output of Example 3.6's
//! duplicator grows exponentially while its automaton stays polynomial.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xmltc_bench::{full_tree, ranked_alphabet};
use xmltc_core::eval::{eval_with_limit, output_automaton};
use xmltc_core::library;

fn bench_prop38_scaling(c: &mut Criterion) {
    let al = ranked_alphabet();
    let copy = library::copy(&al).unwrap();

    let mut group = c.benchmark_group("E2_prop38_copy_k1");
    group.sample_size(10);
    for depth in [4usize, 6, 8, 10] {
        let t = full_tree(&al, depth);
        group.bench_with_input(BenchmarkId::from_parameter(t.len()), &t, |b, t| {
            b.iter(|| output_automaton(&copy, t).unwrap())
        });
    }
    group.finish();

    // Example 4.2's Q1 — a 3-pebble machine: configuration space O(n³).
    let (q1, _) = xmltc_xmlql::query::example_q1();
    let (trans, enc_in, _) = q1.compile().unwrap();
    let doc_al = enc_in.source().clone();
    let mut group = c.benchmark_group("E2_prop38_q1_k3");
    group.sample_size(10);
    for n in [2usize, 4, 6] {
        let doc = xmltc_trees::generate::flat(
            doc_al.get("root").unwrap(),
            doc_al.get("a").unwrap(),
            n,
            &doc_al,
        )
        .unwrap();
        let encoded = xmltc_trees::encode(&doc, &enc_in).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(encoded.len()), &encoded, |b, t| {
            b.iter(|| output_automaton(&trans, t).unwrap())
        });
    }
    group.finish();
}

fn bench_exponential_output(c: &mut Criterion) {
    let al = ranked_alphabet();
    let (dup, _) = library::duplicator(&al).unwrap();

    let mut group = c.benchmark_group("E3_duplicator");
    group.sample_size(10);
    for depth in [3usize, 5, 7] {
        let t = full_tree(&al, depth);
        // Materializing the exponential output…
        group.bench_with_input(BenchmarkId::new("materialize", t.len()), &t, |b, t| {
            b.iter(|| eval_with_limit(&dup, t, 200_000_000).unwrap())
        });
        // …vs the DAG-sized Prop 3.8 automaton.
        group.bench_with_input(BenchmarkId::new("dag_automaton", t.len()), &t, |b, t| {
            b.iter(|| output_automaton(&dup, t).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prop38_scaling, bench_exponential_output);
criterion_main!(benches);
