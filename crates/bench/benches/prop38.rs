//! E2/E3 — Proposition 3.8: the output-language automaton of a fixed
//! transducer on input `t` is computable in PTIME in `|t|`, with state
//! space `O(|t|^k)`; meanwhile the *materialized* output of Example 3.6's
//! duplicator grows exponentially while its automaton stays polynomial.

use xmltc_bench::harness::Group;
use xmltc_bench::{full_tree, ranked_alphabet};
use xmltc_core::eval::{eval_with_limit, output_automaton};
use xmltc_core::library;

fn main() {
    let al = ranked_alphabet();
    let copy = library::copy(&al).unwrap();

    let mut group = Group::new("E2_prop38_copy_k1");
    for depth in [4usize, 6, 8, 10] {
        let t = full_tree(&al, depth);
        group.bench(format!("{}", t.len()), || {
            output_automaton(&copy, &t).unwrap()
        });
    }
    group.finish();

    // Example 4.2's Q1 — a 3-pebble machine: configuration space O(n³).
    let (q1, _) = xmltc_xmlql::query::example_q1();
    let (trans, enc_in, _) = q1.compile().unwrap();
    let doc_al = enc_in.source().clone();
    let mut group = Group::new("E2_prop38_q1_k3");
    for n in [2usize, 4, 6] {
        let doc = xmltc_trees::generate::flat(
            doc_al.get("root").unwrap(),
            doc_al.get("a").unwrap(),
            n,
            &doc_al,
        )
        .unwrap();
        let encoded = xmltc_trees::encode(&doc, &enc_in).unwrap();
        group.bench(format!("{}", encoded.len()), || {
            output_automaton(&trans, &encoded).unwrap()
        });
    }
    group.finish();

    let (dup, _) = library::duplicator(&al).unwrap();
    let mut group = Group::new("E3_duplicator");
    for depth in [3usize, 5, 7] {
        let t = full_tree(&al, depth);
        // Materializing the exponential output…
        group.bench(format!("materialize/{}", t.len()), || {
            eval_with_limit(&dup, &t, 200_000_000).unwrap()
        });
        // …vs the DAG-sized Prop 3.8 automaton.
        group.bench(format!("dag_automaton/{}", t.len()), || {
            output_automaton(&dup, &t).unwrap()
        });
    }
    group.finish();
}
