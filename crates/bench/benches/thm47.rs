//! E8/E9 — Theorem 4.7 both ways, and the Theorem 4.8 cost wall.
//!
//! * behaviour route vs MSO route on the same 1-pebble machines (who wins,
//!   by what factor);
//! * MSO-route cost as the machine grows — the non-elementary trend, with
//!   a state budget so the bench terminates.

use xmltc_bench::harness::Group;
use xmltc_bench::{ranked_alphabet, walking_chain};
use xmltc_typecheck::mso_route::pebble_to_nta;
use xmltc_typecheck::walk::walking_to_dbta;

fn main() {
    let al = ranked_alphabet();

    let mut group = Group::new("E8_walk_route");
    for m in [1usize, 3, 5, 7] {
        let a = walking_chain(&al, m);
        group.bench(format!("{}", a.core().n_states()), || {
            walking_to_dbta(&a).unwrap()
        });
    }
    group.finish();

    let mut group = Group::new("E9_mso_route");
    for m in [1usize, 2, 3] {
        let a = walking_chain(&al, m);
        group.bench(format!("{}", a.core().n_states()), || {
            // A generous budget; growth in max_states is the story.
            pebble_to_nta(&a, 2_000_000).unwrap()
        });
    }
    group.finish();
}
