//! E8/E9 — Theorem 4.7 both ways, and the Theorem 4.8 cost wall.
//!
//! * behaviour route vs MSO route on the same 1-pebble machines (who wins,
//!   by what factor);
//! * MSO-route cost as the machine grows — the non-elementary trend, with
//!   a state budget so the bench terminates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xmltc_bench::{ranked_alphabet, walking_chain};
use xmltc_typecheck::mso_route::pebble_to_nta;
use xmltc_typecheck::walk::walking_to_dbta;

fn bench_routes(c: &mut Criterion) {
    let al = ranked_alphabet();

    let mut group = c.benchmark_group("E8_walk_route");
    group.sample_size(10);
    for m in [1usize, 3, 5, 7] {
        let a = walking_chain(&al, m);
        group.bench_with_input(
            BenchmarkId::from_parameter(a.core().n_states()),
            &a,
            |b, a| b.iter(|| walking_to_dbta(a).unwrap()),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("E9_mso_route");
    group.sample_size(10);
    for m in [1usize, 2, 3] {
        let a = walking_chain(&al, m);
        group.bench_with_input(
            BenchmarkId::from_parameter(a.core().n_states()),
            &a,
            |b, a| {
                b.iter(|| {
                    // A generous budget; growth in max_states is the story.
                    pebble_to_nta(a, 2_000_000).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_routes);
criterion_main!(benches);
