//! E1 — Figure 1 / Section 2.1: the binary encoding is a linear-time
//! bijection. Timing series for encode and decode over growing documents.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xmltc_trees::{decode, encode, Alphabet, EncodedAlphabet};

fn bench_encoding(c: &mut Criterion) {
    let al = Alphabet::unranked(&["a", "b", "c"]);
    let enc = EncodedAlphabet::new(&al);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);

    let mut group = c.benchmark_group("E1_encoding");
    group.sample_size(20);
    for depth in [4usize, 6, 8, 10] {
        let doc = xmltc_trees::generate::random_unranked(&al, depth, 4, &mut rng).unwrap();
        let n = doc.len();
        group.bench_with_input(BenchmarkId::new("encode", n), &doc, |b, doc| {
            b.iter(|| encode(doc, &enc).unwrap())
        });
        let bt = encode(&doc, &enc).unwrap();
        group.bench_with_input(BenchmarkId::new("decode", n), &bt, |b, bt| {
            b.iter(|| decode(bt, &enc).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encoding);
criterion_main!(benches);
