//! E1 — Figure 1 / Section 2.1: the binary encoding is a linear-time
//! bijection. Timing series for encode and decode over growing documents.

use xmltc_bench::harness::Group;
use xmltc_trees::{decode, encode, Alphabet, EncodedAlphabet, SmallRng};

fn main() {
    let al = Alphabet::unranked(&["a", "b", "c"]);
    let enc = EncodedAlphabet::new(&al);
    let mut rng = SmallRng::seed_from_u64(42);

    let mut group = Group::new("E1_encoding");
    for depth in [4usize, 6, 8, 10] {
        let doc = xmltc_trees::generate::random_unranked(&al, depth, 4, &mut rng).unwrap();
        let n = doc.len();
        group.bench(format!("encode/{n}"), || encode(&doc, &enc).unwrap());
        let bt = encode(&doc, &enc).unwrap();
        group.bench(format!("decode/{n}"), || decode(&bt, &enc).unwrap());
    }
    group.finish();
}
