//! E6/E7 — Theorem 4.4 in practice: end-to-end typechecking cost for the
//! Example 4.3 pipeline, exact (behaviour route) vs the forward-inference
//! baseline, on passing and failing specs — with the final emptiness check
//! run by both the eager (materializing) and the lazy (on-the-fly) engine.
//!
//! Besides the timing table, this bench dumps a machine-readable comparison
//! to `BENCH_typecheck.json` at the workspace root (schema 6): one
//! instrumented [`PipelineReport`](xmltc_obs::PipelineReport) per engine
//! (the same shape `xmltc typecheck --json` emits), a side-by-side summary
//! of wall times and state counts, a `route_walk` breakdown of the
//! Theorem 4.7 walk construction — sequential (`--threads 1`) vs parallel
//! wall time, pairs explored, memo hit rate, and thread count — and a
//! `service` section timing the same instance through `xmltc serve`: a
//! cold request that builds every artifact vs a warm repeat answered from
//! the verdict cache (asserted byte-identical). On a typechecks-OK
//! instance the lazy engine must materialize strictly fewer states than
//! the eager product, and the walk construction must reach the same
//! verdict at every thread count.
//!
//! Schema 6 adds `walk_scaling`: threads × instance-size curves over the
//! seeded `walk-scale` family (see [`xmltc_bench::scaled`]), whose
//! frontier saturates by construction. Every curve point must build the
//! same DBTA; on hosts with ≥ 4 cores the parallel points must never
//! regress past sequential, and the largest instance's 4-thread build
//! must be at least 2× faster than `--threads 1`.
//!
//! `XMLTC_BENCH_QUICK=1` skips the calibrated timing loops and runs only
//! the instrumented comparisons and their assertions (the CI smoke mode).
//! `XMLTC_BENCH_OUT=path` redirects the JSON dump — and emits it even in
//! quick mode, producing a candidate file for `xmltc bench-diff`.

use xmltc_bench::harness::Group;
use xmltc_bench::q2_fixture;
use xmltc_obs::{self as obs, Json};
use xmltc_service::{Client, ServeConfig, Server};
use xmltc_typecheck::walk::resolve_threads;
use xmltc_typecheck::{typecheck, Engine, TypecheckOptions};

fn main() {
    let quick = std::env::var("XMLTC_BENCH_QUICK").is_ok();
    let fx = q2_fixture();
    let eager = TypecheckOptions {
        engine: Engine::Eager,
        ..Default::default()
    };
    let lazy = TypecheckOptions {
        engine: Engine::Lazy,
        ..Default::default()
    };

    if !quick {
        let mut group = Group::new("E7_typecheck_q2");
        group.bench("eager_mod3_pass", || {
            let out = typecheck(&fx.transducer, &fx.tau1, &fx.tau2_mod3, &eager).unwrap();
            assert!(out.is_ok());
        });
        group.bench("lazy_mod3_pass", || {
            let out = typecheck(&fx.transducer, &fx.tau1, &fx.tau2_mod3, &lazy).unwrap();
            assert!(out.is_ok());
        });
        group.bench("eager_coarse_pass", || {
            let out = typecheck(&fx.transducer, &fx.tau1, &fx.tau2_coarse, &eager).unwrap();
            assert!(out.is_ok());
        });
        group.bench("lazy_coarse_pass", || {
            let out = typecheck(&fx.transducer, &fx.tau1, &fx.tau2_coarse, &lazy).unwrap();
            assert!(out.is_ok());
        });
        group.bench("forward_coarse_pass", || {
            assert!(fx.forward_image.subset_of(&fx.tau2_coarse));
        });
        group.bench("forward_mod3_spurious_reject", || {
            assert!(!fx.forward_image.subset_of(&fx.tau2_mod3));
        });
        group.finish();
    }

    // One instrumented run per configuration, dumped side by side.
    let run = |opts: &TypecheckOptions| {
        let (outcome, report) = obs::with_report(|| {
            let out = typecheck(&fx.transducer, &fx.tau1, &fx.tau2_mod3, opts).unwrap();
            obs::record("verdict.ok", out.is_ok() as u64);
            out
        });
        assert!(outcome.is_ok());
        report
    };
    let eager_report = run(&eager);
    let lazy_report = run(&lazy);

    let eager_states = eager_report
        .span_metric("typecheck.emptiness", "intersection.states")
        .expect("eager run reports the materialized product size");
    let lazy_states = lazy_report
        .span_metric("typecheck.emptiness", "lazy.states_materialized")
        .expect("lazy run reports the configurations it materialized");
    let lazy_bound = lazy_report
        .span_metric("typecheck.emptiness", "lazy.states_eager")
        .expect("lazy run reports the eager product bound");
    assert!(
        lazy_states < eager_states,
        "lazy must materialize strictly fewer states than the eager product \
         on a typechecks-OK instance ({lazy_states} vs {eager_states})"
    );

    // The walk-route breakdown: the same instance at --threads 1 and at a
    // genuinely parallel thread count. Both runs must agree on the verdict
    // (asserted inside `run`) and on every walk counter — the construction
    // is deterministic by design.
    let par_threads = resolve_threads(0).max(4);
    let seq_report = run(&TypecheckOptions { threads: 1, ..lazy });
    let par_report = run(&TypecheckOptions {
        threads: par_threads,
        ..lazy
    });
    let walk_metric = |r: &obs::PipelineReport, m: &str| {
        r.span_metric("route.walk", m)
            .unwrap_or_else(|| panic!("walk run reports {m}"))
    };
    for metric in [
        "walk.pairs",
        "walk.compositions",
        "walk.memo_hits",
        "walk.dbta_states",
    ] {
        assert_eq!(
            walk_metric(&seq_report, metric),
            walk_metric(&par_report, metric),
            "thread count changed {metric}"
        );
    }
    assert_eq!(walk_metric(&seq_report, "walk.threads"), 1);
    assert_eq!(walk_metric(&par_report, "walk.threads"), par_threads as u64);
    let walk_ms =
        |r: &obs::PipelineReport| r.span("route.walk").map(|s| s.wall_ms()).unwrap_or(0.0);
    let pairs = walk_metric(&seq_report, "walk.pairs");
    let compositions = walk_metric(&seq_report, "walk.compositions");
    let memo_hits = walk_metric(&seq_report, "walk.memo_hits");
    let memo_misses = walk_metric(&seq_report, "walk.memo_misses");
    assert_eq!(
        memo_hits + memo_misses,
        compositions,
        "memo hits + misses must account for every composition (leaves + pairs)"
    );
    assert!(
        memo_hits > 0,
        "the flagship's repeating structure must produce memo hits"
    );
    let memo_hit_rate = if memo_hits + memo_misses > 0 {
        memo_hits as f64 / (memo_hits + memo_misses) as f64
    } else {
        0.0
    };

    // The service rows: the same instance through `xmltc serve`, cold then
    // warm over one TCP connection. The cold request builds every artifact
    // layer (verdict miss); the warm repeat must be answered entirely from
    // the verdict cache with a byte-identical result payload.
    let fixture_text = |name: &str| {
        let path = format!("{}/../../fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
    };
    let request = Json::obj(vec![
        ("cmd", Json::Str("typecheck".into())),
        ("input_dtd", Json::Str(fixture_text("q2.dtd"))),
        ("stylesheet", Json::Str(fixture_text("q2.xsl"))),
        ("output_dtd", Json::Str(fixture_text("q2_mod3_out.dtd"))),
    ]);
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..Default::default()
    })
    .expect("bind service on an ephemeral port");
    let addr = server.local_addr().expect("service address").to_string();
    let server = std::thread::spawn(move || server.run());
    let mut conn = Client::connect(&addr).expect("connect to service");
    let cold = conn.roundtrip(&request).expect("cold response");
    let warm = conn.roundtrip(&request).expect("warm response");
    let verdict_outcome = |r: &Json| {
        r.at("cache.verdict")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    assert_eq!(verdict_outcome(&cold), "miss", "cold run must build");
    assert_eq!(verdict_outcome(&warm), "hit", "warm run must hit the cache");
    assert_eq!(
        cold.get("result").map(Json::encode),
        warm.get("result").map(Json::encode),
        "warm verdict must be byte-identical to the cold one"
    );
    let wall = |r: &Json| r.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
    let cache_count = |r: &Json, k: &str| {
        r.get("cache")
            .and_then(|c| c.get(k))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    conn.roundtrip(&Json::obj(vec![("cmd", Json::Str("shutdown".into()))]))
        .expect("shutdown response");
    server.join().expect("service thread exits");

    // The scaling curves: the seeded walk-scale family at each thread
    // count, forced past the job-count gate (see `scaled::scale_curve`).
    // The closure is size-invariant by construction, so the size axis
    // isolates per-job kernel cost; the thread axis isolates the
    // work-stealing crew. Speedup assertions only fire on hosts with
    // enough cores to mean anything.
    let host_cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let specs = xmltc_bench::scaled::walk_scale_specs(quick);
    let thread_axis: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let curve_reps = if quick { 1 } else { 2 };
    let mut scaling_rows = Vec::new();
    for (si, spec) in specs.iter().enumerate() {
        let a = xmltc_bench::scaled::build(spec);
        let (points, dbta_states) = xmltc_bench::scaled::scale_curve(&a, thread_axis, curve_reps);
        let seq_ms = points[0].wall_ms;
        if host_cores >= 4 {
            for p in &points[1..] {
                assert!(
                    p.wall_ms <= seq_ms * 1.15,
                    "{}: {} threads regressed past sequential ({:.1}ms vs {:.1}ms)",
                    spec.name,
                    p.threads,
                    p.wall_ms,
                    seq_ms
                );
            }
            if si + 1 == specs.len() && !quick {
                let four = points.iter().find(|p| p.threads == 4).unwrap();
                assert!(
                    four.wall_ms * 2.0 <= seq_ms,
                    "{}: 4-thread walk must be ≥2× sequential ({:.1}ms vs {:.1}ms)",
                    spec.name,
                    four.wall_ms,
                    seq_ms
                );
            }
        }
        println!(
            "walk-scale {}: dbta={} jobs={} {}",
            spec.name,
            dbta_states,
            points[0].stats.memo_misses,
            points
                .iter()
                .map(|p| format!("{}T={:.0}ms", p.threads, p.wall_ms))
                .collect::<Vec<_>>()
                .join(" ")
        );
        scaling_rows.push(Json::obj(vec![
            ("name", Json::Str(spec.name.into())),
            ("states", Json::U64(spec.states as u64)),
            ("dbta_states", Json::U64(dbta_states)),
            ("jobs", Json::U64(points[0].stats.memo_misses)),
            ("pairs", Json::U64(points[0].stats.pairs)),
            ("fixpoint_steps", Json::U64(points[0].stats.fixpoint_steps)),
            ("rounds", Json::U64(points[0].stats.rounds)),
            ("kernel_words", Json::U64(points[0].stats.words)),
            (
                "curve",
                Json::Array(
                    points
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("threads", Json::U64(p.threads as u64)),
                                ("wall_ms", Json::F64(p.wall_ms)),
                                ("speedup", Json::F64(seq_ms / p.wall_ms.max(1e-9))),
                                ("parallel_batches", Json::U64(p.stats.parallel_batches)),
                                ("chunk_size", Json::U64(p.stats.chunk_size)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
    }

    let emptiness_ms = |r: &obs::PipelineReport| {
        r.span("typecheck.emptiness")
            .map(|s| s.wall_ms())
            .unwrap_or(0.0)
    };
    let json = Json::obj(vec![
        ("schema", Json::Str("xmltc.bench-typecheck/6".into())),
        (
            "comparison",
            Json::obj(vec![
                ("instance", Json::Str("Q2 vs mod-3 (typechecks)".into())),
                ("eager_wall_ms", Json::F64(eager_report.total_ms())),
                ("lazy_wall_ms", Json::F64(lazy_report.total_ms())),
                ("eager_emptiness_ms", Json::F64(emptiness_ms(&eager_report))),
                ("lazy_emptiness_ms", Json::F64(emptiness_ms(&lazy_report))),
                ("eager_states", Json::U64(eager_states)),
                ("lazy_states_materialized", Json::U64(lazy_states)),
                ("lazy_states_eager_bound", Json::U64(lazy_bound)),
            ]),
        ),
        (
            "route_walk",
            Json::obj(vec![
                ("instance", Json::Str("Q2 vs mod-3 (typechecks)".into())),
                ("sequential_wall_ms", Json::F64(walk_ms(&seq_report))),
                ("parallel_wall_ms", Json::F64(walk_ms(&par_report))),
                ("parallel_threads", Json::U64(par_threads as u64)),
                ("pairs", Json::U64(pairs)),
                ("compositions", Json::U64(compositions)),
                ("memo_hits", Json::U64(memo_hits)),
                ("memo_misses", Json::U64(memo_misses)),
                ("memo_hit_rate", Json::F64(memo_hit_rate)),
                (
                    "fixpoint_steps",
                    Json::U64(walk_metric(&seq_report, "walk.fixpoint_steps")),
                ),
                (
                    "dbta_states",
                    Json::U64(walk_metric(&seq_report, "walk.dbta_states")),
                ),
                (
                    "kernel_words",
                    Json::U64(walk_metric(&seq_report, "walk.kernel.words")),
                ),
                (
                    "kernel_rows",
                    Json::U64(walk_metric(&seq_report, "walk.kernel.rows")),
                ),
                (
                    "projections_interned",
                    Json::U64(walk_metric(&seq_report, "walk.kernel.projections")),
                ),
            ]),
        ),
        (
            "service",
            Json::obj(vec![
                (
                    "instance",
                    Json::Str("Q2 vs mod-3 via xmltc serve (verdict cache)".into()),
                ),
                ("cold_wall_ms", Json::F64(wall(&cold))),
                ("warm_wall_ms", Json::F64(wall(&warm))),
                ("cold_misses", Json::U64(cache_count(&cold, "misses"))),
                ("warm_hits", Json::U64(cache_count(&warm, "hits"))),
                ("warm_misses", Json::U64(cache_count(&warm, "misses"))),
            ]),
        ),
        (
            "walk_scaling",
            Json::obj(vec![
                ("family", Json::Str("walk-scale".into())),
                ("host_cores", Json::U64(host_cores as u64)),
                ("quick", Json::U64(quick as u64)),
                ("instances", Json::Array(scaling_rows)),
            ]),
        ),
        (
            "engines",
            Json::obj(vec![
                ("eager", eager_report.to_json()),
                ("lazy", lazy_report.to_json()),
            ]),
        ),
    ]);
    // `XMLTC_BENCH_OUT=path` redirects the dump — and forces it even in
    // quick mode, so CI can produce a candidate file for `bench-diff`
    // without paying for the calibrated timing loops.
    let out_override = std::env::var("XMLTC_BENCH_OUT")
        .ok()
        .filter(|p| !p.is_empty());
    if quick && out_override.is_none() {
        println!("quick mode: instrumented comparisons passed (threads 1 vs {par_threads} agree)");
        return;
    }
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_typecheck.json");
    let path = out_override.unwrap_or_else(|| default_path.to_string());
    match std::fs::write(&path, json.encode_pretty()) {
        Ok(()) => println!("\n(engine comparison written to {path})"),
        Err(e) => eprintln!("\n(could not write {path}: {e})"),
    }
}
