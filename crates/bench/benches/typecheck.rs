//! E6/E7 — Theorem 4.4 in practice: end-to-end typechecking cost for the
//! Example 4.3 pipeline, exact (behaviour route) vs the forward-inference
//! baseline, on passing and failing specs.
//!
//! Besides the timing table, this bench dumps a full machine-readable
//! [`PipelineReport`](xmltc_obs::PipelineReport) of one instrumented exact
//! run to `BENCH_typecheck.json` at the workspace root — the same shape
//! `xmltc typecheck --json` emits.

use xmltc_bench::harness::Group;
use xmltc_bench::q2_fixture;
use xmltc_obs as obs;
use xmltc_typecheck::{typecheck, TypecheckOptions};

fn main() {
    let fx = q2_fixture();
    let opts = TypecheckOptions::default();

    let mut group = Group::new("E7_typecheck_q2");
    group.bench("exact_mod3_pass", || {
        let out = typecheck(&fx.transducer, &fx.tau1, &fx.tau2_mod3, &opts).unwrap();
        assert!(out.is_ok());
    });
    group.bench("exact_coarse_pass", || {
        let out = typecheck(&fx.transducer, &fx.tau1, &fx.tau2_coarse, &opts).unwrap();
        assert!(out.is_ok());
    });
    group.bench("forward_coarse_pass", || {
        assert!(fx.forward_image.subset_of(&fx.tau2_coarse));
    });
    group.bench("forward_mod3_spurious_reject", || {
        assert!(!fx.forward_image.subset_of(&fx.tau2_mod3));
    });
    group.finish();

    // One instrumented run, dumped in the `--json` report shape.
    let (outcome, report) = obs::with_report(|| {
        let out = typecheck(&fx.transducer, &fx.tau1, &fx.tau2_mod3, &opts).unwrap();
        obs::record("verdict.ok", out.is_ok() as u64);
        out
    });
    assert!(outcome.is_ok());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_typecheck.json");
    match std::fs::write(path, report.to_json_string()) {
        Ok(()) => println!("\n(pipeline report written to {path})"),
        Err(e) => eprintln!("\n(could not write {path}: {e})"),
    }
}
