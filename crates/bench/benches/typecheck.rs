//! E6/E7 — Theorem 4.4 in practice: end-to-end typechecking cost for the
//! Example 4.3 pipeline, exact (behaviour route) vs the forward-inference
//! baseline, on passing and failing specs — with the final emptiness check
//! run by both the eager (materializing) and the lazy (on-the-fly) engine.
//!
//! Besides the timing table, this bench dumps a machine-readable comparison
//! to `BENCH_typecheck.json` at the workspace root: one instrumented
//! [`PipelineReport`](xmltc_obs::PipelineReport) per engine (the same shape
//! `xmltc typecheck --json` emits) plus a side-by-side summary of wall
//! times and state counts. On a typechecks-OK instance the lazy engine must
//! materialize strictly fewer states than the eager product.

use xmltc_bench::harness::Group;
use xmltc_bench::q2_fixture;
use xmltc_obs::{self as obs, Json};
use xmltc_typecheck::{typecheck, Engine, TypecheckOptions};

fn main() {
    let fx = q2_fixture();
    let eager = TypecheckOptions {
        engine: Engine::Eager,
        ..Default::default()
    };
    let lazy = TypecheckOptions {
        engine: Engine::Lazy,
        ..Default::default()
    };

    let mut group = Group::new("E7_typecheck_q2");
    group.bench("eager_mod3_pass", || {
        let out = typecheck(&fx.transducer, &fx.tau1, &fx.tau2_mod3, &eager).unwrap();
        assert!(out.is_ok());
    });
    group.bench("lazy_mod3_pass", || {
        let out = typecheck(&fx.transducer, &fx.tau1, &fx.tau2_mod3, &lazy).unwrap();
        assert!(out.is_ok());
    });
    group.bench("eager_coarse_pass", || {
        let out = typecheck(&fx.transducer, &fx.tau1, &fx.tau2_coarse, &eager).unwrap();
        assert!(out.is_ok());
    });
    group.bench("lazy_coarse_pass", || {
        let out = typecheck(&fx.transducer, &fx.tau1, &fx.tau2_coarse, &lazy).unwrap();
        assert!(out.is_ok());
    });
    group.bench("forward_coarse_pass", || {
        assert!(fx.forward_image.subset_of(&fx.tau2_coarse));
    });
    group.bench("forward_mod3_spurious_reject", || {
        assert!(!fx.forward_image.subset_of(&fx.tau2_mod3));
    });
    group.finish();

    // One instrumented run per engine, dumped side by side.
    let run = |opts: &TypecheckOptions| {
        let (outcome, report) = obs::with_report(|| {
            let out = typecheck(&fx.transducer, &fx.tau1, &fx.tau2_mod3, opts).unwrap();
            obs::record("verdict.ok", out.is_ok() as u64);
            out
        });
        assert!(outcome.is_ok());
        report
    };
    let eager_report = run(&eager);
    let lazy_report = run(&lazy);

    let eager_states = eager_report
        .span_metric("typecheck.emptiness", "intersection.states")
        .expect("eager run reports the materialized product size");
    let lazy_states = lazy_report
        .span_metric("typecheck.emptiness", "lazy.states_materialized")
        .expect("lazy run reports the configurations it materialized");
    let lazy_bound = lazy_report
        .span_metric("typecheck.emptiness", "lazy.states_eager")
        .expect("lazy run reports the eager product bound");
    assert!(
        lazy_states < eager_states,
        "lazy must materialize strictly fewer states than the eager product \
         on a typechecks-OK instance ({lazy_states} vs {eager_states})"
    );

    let emptiness_ms = |r: &obs::PipelineReport| {
        r.span("typecheck.emptiness")
            .map(|s| s.wall_ms())
            .unwrap_or(0.0)
    };
    let json = Json::obj(vec![
        ("schema", Json::Str("xmltc.bench-typecheck/2".into())),
        (
            "comparison",
            Json::obj(vec![
                ("instance", Json::Str("Q2 vs mod-3 (typechecks)".into())),
                ("eager_wall_ms", Json::F64(eager_report.total_ms())),
                ("lazy_wall_ms", Json::F64(lazy_report.total_ms())),
                ("eager_emptiness_ms", Json::F64(emptiness_ms(&eager_report))),
                ("lazy_emptiness_ms", Json::F64(emptiness_ms(&lazy_report))),
                ("eager_states", Json::U64(eager_states)),
                ("lazy_states_materialized", Json::U64(lazy_states)),
                ("lazy_states_eager_bound", Json::U64(lazy_bound)),
            ]),
        ),
        (
            "engines",
            Json::obj(vec![
                ("eager", eager_report.to_json()),
                ("lazy", lazy_report.to_json()),
            ]),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_typecheck.json");
    match std::fs::write(path, json.encode_pretty()) {
        Ok(()) => println!("\n(engine comparison written to {path})"),
        Err(e) => eprintln!("\n(could not write {path}: {e})"),
    }
}
