//! E6/E7 — Theorem 4.4 in practice: end-to-end typechecking cost for the
//! Example 4.3 pipeline, exact (behaviour route) vs the forward-inference
//! baseline, on passing and failing specs.

use criterion::{criterion_group, criterion_main, Criterion};
use xmltc_bench::q2_fixture;
use xmltc_typecheck::{typecheck, TypecheckOptions};

fn bench_typecheck(c: &mut Criterion) {
    let fx = q2_fixture();
    let opts = TypecheckOptions::default();

    let mut group = c.benchmark_group("E7_typecheck_q2");
    group.sample_size(10);
    group.bench_function("exact_mod3_pass", |b| {
        b.iter(|| {
            let out = typecheck(&fx.transducer, &fx.tau1, &fx.tau2_mod3, &opts).unwrap();
            assert!(out.is_ok());
        })
    });
    group.bench_function("exact_coarse_pass", |b| {
        b.iter(|| {
            let out = typecheck(&fx.transducer, &fx.tau1, &fx.tau2_coarse, &opts).unwrap();
            assert!(out.is_ok());
        })
    });
    group.bench_function("forward_coarse_pass", |b| {
        b.iter(|| {
            assert!(fx.forward_image.subset_of(&fx.tau2_coarse));
        })
    });
    group.bench_function("forward_mod3_spurious_reject", |b| {
        b.iter(|| {
            assert!(!fx.forward_image.subset_of(&fx.tau2_mod3));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_typecheck);
criterion_main!(benches);
