//! Service smoke bench: round-trip latency of the `xmltc serve` protocol
//! over a loopback TCP connection, on the Example 4.3 (Q2) instance.
//!
//! The interesting number is the *warm* typecheck round-trip — request
//! parsing, one verdict-cache hit, response encoding, and the TCP hop —
//! which bounds the steady-state latency a long-running service adds over
//! the raw in-process lookup. `stats` and a repeated `validate` (DTD
//! compilation cached, document validation per request) ride along for
//! scale.
//!
//! `XMLTC_BENCH_QUICK=1` skips the calibrated timing loops and runs only
//! the cold/warm assertions — the CI `service-smoke` mode: the cold
//! request must miss and build every layer, the warm repeat must be a
//! pure verdict-cache hit with a byte-identical result payload.

use xmltc_bench::harness::Group;
use xmltc_obs::Json;
use xmltc_service::{Client, ServeConfig, Server};

fn fixture_text(name: &str) -> String {
    let path = format!("{}/../../fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn main() {
    let quick = std::env::var("XMLTC_BENCH_QUICK").is_ok();
    let input_dtd = fixture_text("q2.dtd");
    let typecheck = Json::obj(vec![
        ("cmd", Json::Str("typecheck".into())),
        ("input_dtd", Json::Str(input_dtd.clone())),
        ("stylesheet", Json::Str(fixture_text("q2.xsl"))),
        ("output_dtd", Json::Str(fixture_text("q2_mod3_out.dtd"))),
    ]);
    let validate = Json::obj(vec![
        ("cmd", Json::Str("validate".into())),
        ("input_dtd", Json::Str(input_dtd)),
        ("document", Json::Str("<root><a/><a/><a/></root>".into())),
    ]);
    let stats = Json::obj(vec![("cmd", Json::Str("stats".into()))]);

    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..Default::default()
    })
    .expect("bind service on an ephemeral port");
    let addr = server.local_addr().expect("service address").to_string();
    let server = std::thread::spawn(move || server.run());
    let mut conn = Client::connect(&addr).expect("connect to service");

    // Prime the cache and pin the contract the bench relies on: cold
    // builds, warm hits, identical verdict bytes.
    let verdict = |r: &Json| {
        r.at("cache.verdict")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let cold = conn.roundtrip(&typecheck).expect("cold response");
    assert_eq!(cold.get("ok"), Some(&Json::Bool(true)), "cold request ok");
    assert_eq!(verdict(&cold), "miss", "cold run must build the verdict");
    let warm = conn.roundtrip(&typecheck).expect("warm response");
    assert_eq!(verdict(&warm), "hit", "warm run must hit the cache");
    assert_eq!(
        cold.get("result").map(Json::encode),
        warm.get("result").map(Json::encode),
        "warm verdict must be byte-identical to the cold one"
    );
    assert_eq!(
        conn.roundtrip(&validate)
            .expect("validate response")
            .at("result.verdict")
            .and_then(Json::as_str),
        Some("valid")
    );

    if !quick {
        let mut group = Group::new("service_smoke (loopback TCP)");
        group.bench("warm_typecheck_roundtrip", || {
            conn.roundtrip(&typecheck).expect("warm roundtrip")
        });
        group.bench("validate_roundtrip", || {
            conn.roundtrip(&validate).expect("validate roundtrip")
        });
        group.bench("stats_roundtrip", || {
            conn.roundtrip(&stats).expect("stats roundtrip")
        });
        group.finish();
    } else {
        println!("quick mode: cold miss / warm hit verified, verdict byte-identical");
    }

    conn.roundtrip(&Json::obj(vec![("cmd", Json::Str("shutdown".into()))]))
        .expect("shutdown response");
    let report = server.join().expect("service thread exits");
    let metric = |k: &str| {
        report
            .metrics
            .iter()
            .find(|(name, _)| name == k)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    println!(
        "served {} requests: cache {} hits / {} misses, {} entries, {} bytes",
        metric("serve.requests"),
        metric("cache.hits"),
        metric("cache.misses"),
        metric("cache.entries"),
        metric("cache.bytes"),
    );
}
