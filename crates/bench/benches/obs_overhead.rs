//! Overhead budget of the observability layer: what does instrumentation
//! cost when nobody is looking, and when the journal records?
//!
//! The contract (see DESIGN.md) is that a *disabled* journal adds only a
//! relaxed atomic load per call site, so the uninstrumented pipeline pays
//! near-zero for carrying spans and counters. This bench measures the
//! span/record/counter paths in three regimes — fully off, collector-only
//! (`with_report`), and journal-on — and prints the per-call costs side
//! by side. The journal-on rows are expected to be markedly slower (they
//! build the timeline); the off rows must stay in the nanoseconds.
//!
//! The journal-on regime periodically drains the global sink (`take` +
//! re-`enable`) so repeated calibration batches cannot grow the event
//! buffers without bound.

use std::hint::black_box;
use xmltc_bench::harness::Group;
use xmltc_obs as obs;

/// One representative instrumented unit of work: a span wrapping a
/// recorded gauge and an additive counter.
fn instrumented_unit() -> u64 {
    let _s = obs::span("bench.unit");
    obs::record("bench.gauge", 7);
    obs::add("bench.total", 1);
    black_box(3u64) * 14
}

fn main() {
    let mut group = Group::new("obs_overhead");

    // Regime 1: everything off — the pipeline's default. This is the
    // number that must stay near zero.
    group.bench("span_off", instrumented_unit);

    // Regime 2: the thread-local collector aggregates totals (the
    // `--stats`/`--json` path). The report is rebuilt per batch; costs
    // include the span-record bookkeeping.
    group.bench("span_collector", || {
        let (v, _report) = obs::with_report(instrumented_unit);
        v
    });

    // Regime 3: the journal records the timeline (the `--trace-out`
    // path): every call appends timestamped events to a thread-local
    // buffer.
    obs::journal::enable();
    let mut calls = 0u64;
    group.bench("span_journal", || {
        calls += 1;
        if calls.is_multiple_of(1 << 16) {
            // Drain so buffers stay bounded across calibration batches.
            let _ = obs::journal::take();
            obs::journal::enable();
        }
        instrumented_unit()
    });
    let drained = obs::journal::take();
    assert!(
        !drained.is_empty(),
        "journal-on regime must have recorded events"
    );

    group.finish();
}
