//! A small, dependency-free timing harness for the `harness = false`
//! benches (the workspace builds offline, so Criterion is not available).
//!
//! Usage mirrors a Criterion group:
//!
//! ```
//! use xmltc_bench::harness::Group;
//! let mut g = Group::new("demo");
//! g.bench("sum/1000", || (0u64..1000).sum::<u64>());
//! g.finish();
//! ```
//!
//! Each benchmark is auto-calibrated: the closure is batched until one
//! sample takes ≳1 ms, then timed over several samples; the report prints
//! min / median / mean per iteration.

use std::hint::black_box;
use std::time::Instant;

/// Target wall time for a single timed sample.
const SAMPLE_TARGET_NS: u64 = 1_000_000;
/// Samples per benchmark (subject to the total budget).
const MAX_SAMPLES: usize = 15;
/// Total wall-time budget per benchmark.
const BENCH_BUDGET_NS: u64 = 500_000_000;

/// One benchmark's measurements, per iteration, in nanoseconds.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Display label.
    pub label: String,
    /// Inner iterations per sample.
    pub iters: u32,
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest sample, per iteration.
    pub min_ns: u64,
    /// Median sample, per iteration.
    pub median_ns: u64,
    /// Mean over all samples, per iteration.
    pub mean_ns: u64,
}

/// A named group of benchmarks, printed as a table on [`Group::finish`].
pub struct Group {
    name: String,
    rows: Vec<Measurement>,
}

impl Group {
    /// Creates a group with a display name (mirrors a Criterion group).
    pub fn new(name: impl Into<String>) -> Group {
        Group {
            name: name.into(),
            rows: Vec::new(),
        }
    }

    /// Times `f`, auto-calibrating the batch size.
    pub fn bench<R>(&mut self, label: impl Into<String>, mut f: impl FnMut() -> R) {
        // Warm up and estimate a single-call cost.
        let t0 = Instant::now();
        black_box(f());
        let once_ns = t0.elapsed().as_nanos().max(1) as u64;

        let iters = (SAMPLE_TARGET_NS / once_ns).clamp(1, 1_000_000) as u32;
        let mut samples_ns = Vec::with_capacity(MAX_SAMPLES);
        let budget = Instant::now();
        for _ in 0..MAX_SAMPLES {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let total = t0.elapsed().as_nanos() as u64;
            samples_ns.push(total / iters as u64);
            if budget.elapsed().as_nanos() as u64 > BENCH_BUDGET_NS {
                break;
            }
        }
        samples_ns.sort_unstable();
        let samples = samples_ns.len();
        let m = Measurement {
            label: label.into(),
            iters,
            samples,
            min_ns: samples_ns[0],
            median_ns: samples_ns[samples / 2],
            mean_ns: samples_ns.iter().sum::<u64>() / samples as u64,
        };
        self.rows.push(m);
    }

    /// The measurements so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.rows
    }

    /// Prints the group's table to stdout.
    pub fn finish(self) {
        println!("\n{}", self.name);
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(0)
            .max(9);
        println!(
            "  {:<label_w$}  {:>10}  {:>10}  {:>10}  {:>12}",
            "benchmark", "min", "median", "mean", "samples"
        );
        for r in &self.rows {
            println!(
                "  {:<label_w$}  {:>10}  {:>10}  {:>10}  {:>7} × {:<4}",
                r.label,
                fmt_ns(r.min_ns),
                fmt_ns(r.median_ns),
                fmt_ns(r.mean_ns),
                r.samples,
                r.iters,
            );
        }
    }
}

/// Renders a duration in the unit that keeps 3–4 significant digits.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrates_and_measures() {
        let mut g = Group::new("test");
        g.bench("noop", || 1u64 + 1);
        let m = &g.measurements()[0];
        assert!(m.iters >= 1);
        assert!(m.samples >= 1);
        assert!(m.min_ns <= m.median_ns);
        assert!(m.median_ns <= m.mean_ns * 2);
    }

    #[test]
    fn formats_units() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert_eq!(fmt_ns(1_500), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00 s");
    }
}
