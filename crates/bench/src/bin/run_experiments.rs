//! Regenerates every experiment table in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p xmltc-bench --bin run_experiments
//! ```
//!
//! Each experiment Eₙ maps to a claim of the paper (see DESIGN.md's
//! experiment index); output is markdown, and a machine-readable JSON dump
//! is written to `target/experiments.json`.

use std::time::Instant;
use xmltc_bench::*;
use xmltc_core::eval::{eval_with_limit, output_automaton};
use xmltc_core::{eval, library};
use xmltc_dtd::{Dtd, SpecializedDtd, TypeId};
use xmltc_obs::{Json, ToJson};
use xmltc_regex::Regex;
use xmltc_trees::{decode, encode, Alphabet, EncodedAlphabet, SmallRng, UnrankedTree};
use xmltc_typecheck::mso_route::pebble_to_nta;
use xmltc_typecheck::walk::walking_to_dbta;
use xmltc_typecheck::{typecheck, Engine, TypecheckOptions, TypecheckOutcome};

#[derive(Default)]
struct Report {
    rows: Vec<(String, Json)>,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let mut report = Report::default();
    e1_encoding(&mut report);
    e2_prop38(&mut report);
    e3_duplicator(&mut report);
    e4_rotation(&mut report);
    e5_q1(&mut report);
    e6_precision(&mut report);
    e7_suite(&mut report);
    e8_routes(&mut report);
    e9_blowup(&mut report);
    e10_datajoin(&mut report);
    e11_separation(&mut report);
    e12_eval(&mut report);

    let json = Json::Array(
        report
            .rows
            .iter()
            .map(|(k, v)| Json::Array(vec![Json::Str(k.clone()), v.clone()]))
            .collect(),
    )
    .encode_pretty();
    let path = std::path::Path::new("target");
    let _ = std::fs::create_dir_all(path);
    let file = path.join("experiments.json");
    if std::fs::write(&file, json).is_ok() {
        println!("\n(JSON dump written to {})", file.display());
    }
}

fn record(report: &mut Report, key: &str, value: impl ToJson) {
    report.rows.push((key.to_string(), value.to_json()));
}

/// E1 — Figure 1: the encoding is a linear-time bijection.
fn e1_encoding(report: &mut Report) {
    println!("\n## E1 — binary encoding (Figure 1): linear-time bijection\n");
    println!("| nodes | encode (ms) | decode (ms) | round-trip |");
    println!("|---|---|---|---|");
    let al = Alphabet::unranked(&["a", "b", "c"]);
    let enc = EncodedAlphabet::new(&al);
    let mut rng = SmallRng::seed_from_u64(7);
    for depth in [6usize, 9, 12, 14] {
        let doc = xmltc_trees::generate::random_unranked(&al, depth, 3, &mut rng).unwrap();
        let t0 = Instant::now();
        let bt = encode(&doc, &enc).unwrap();
        let t_enc = ms(t0);
        let t0 = Instant::now();
        let back = decode(&bt, &enc).unwrap();
        let t_dec = ms(t0);
        let ok = back == doc;
        println!(
            "| {} | {t_enc:.3} | {t_dec:.3} | {} |",
            doc.len(),
            if ok { "ok" } else { "FAIL" }
        );
        record(report, "E1", (doc.len(), t_enc, t_dec, ok));
        assert!(ok);
    }
}

/// E2 — Prop 3.8: output automaton size O(|t|^k), PTIME construction.
fn e2_prop38(report: &mut Report) {
    println!("\n## E2 — Proposition 3.8: output-language automata in PTIME\n");
    println!("| machine | k | input nodes | A_t states | build (ms) |");
    println!("|---|---|---|---|---|");
    let al = ranked_alphabet();
    let copy = library::copy(&al).unwrap();
    for depth in [5usize, 8, 11] {
        let t = full_tree(&al, depth);
        let t0 = Instant::now();
        let a = output_automaton(&copy, &t).unwrap();
        let dt = ms(t0);
        println!(
            "| copy (Ex 3.3) | 1 | {} | {} | {dt:.2} |",
            t.len(),
            a.n_states()
        );
        record(report, "E2.copy", (t.len(), a.n_states(), dt));
    }
    let (q1, doc_al) = xmltc_xmlql::query::example_q1();
    let (trans, enc_in, _) = q1.compile().unwrap();
    for n in [2usize, 4, 6, 8] {
        let doc = flat_doc(&doc_al, n);
        let encoded = encode(&doc, &enc_in).unwrap();
        let t0 = Instant::now();
        let a = output_automaton(&trans, &encoded).unwrap();
        let dt = ms(t0);
        println!(
            "| Q1 (Ex 4.2) | 3 | {} | {} | {dt:.2} |",
            encoded.len(),
            a.n_states()
        );
        record(report, "E2.q1", (encoded.len(), a.n_states(), dt));
    }
}

/// E3 — Example 3.6: output exponential, automaton polynomial.
fn e3_duplicator(report: &mut Report) {
    println!("\n## E3 — Example 3.6: exponential outputs, DAG-sized automata\n");
    println!("| input nodes | output nodes | A_t states | materialize (ms) | automaton (ms) |");
    println!("|---|---|---|---|---|");
    let al = ranked_alphabet();
    let (dup, _) = library::duplicator(&al).unwrap();
    for depth in [3usize, 5, 7, 9] {
        let t = full_tree(&al, depth);
        let t0 = Instant::now();
        let out = eval_with_limit(&dup, &t, 500_000_000).unwrap();
        let t_mat = ms(t0);
        let t0 = Instant::now();
        let a = output_automaton(&dup, &t).unwrap();
        let t_aut = ms(t0);
        println!(
            "| {} | {} | {} | {t_mat:.2} | {t_aut:.2} |",
            t.len(),
            out.len(),
            a.n_states()
        );
        record(
            report,
            "E3",
            (t.len(), out.len(), a.n_states(), t_mat, t_aut),
        );
    }
}

/// E4 — Example 3.7 / Figure 2: rotation, including string reversal.
fn e4_rotation(report: &mut Report) {
    println!("\n## E4 — Example 3.7: rotation around a leaf (Figure 2)\n");
    let al = Alphabet::ranked(&["s", "x", "y"], &["r", "f", "g", "s2"]);
    let (t, _) = library::rotation(
        &al,
        al.get("s").unwrap(),
        al.get("s2").unwrap(),
        al.get("r").unwrap(),
    )
    .unwrap();
    let input = xmltc_trees::BinaryTree::parse("r(f(s, x), y)", &al).unwrap();
    let out = eval(&t, &input).unwrap();
    println!("- `r(f(s, x), y)` ↦ `{out}` (new root s2; fresh leaves m, n)");
    record(report, "E4.figure2", out.to_string());

    // String reversal timing on combs.
    println!("\n| comb nodes | rotate (ms) |");
    println!("|---|---|");
    let al2 = Alphabet::ranked(&["s", "pad"], &["r", "a", "s2"]);
    let (rot, _) = library::rotation(
        &al2,
        al2.get("s").unwrap(),
        al2.get("s2").unwrap(),
        al2.get("r").unwrap(),
    )
    .unwrap();
    for len in [16usize, 64, 256, 1024] {
        let mut word = vec![al2.get("r").unwrap()];
        word.extend(std::iter::repeat_n(al2.get("a").unwrap(), len));
        let comb = xmltc_trees::generate::right_comb(
            &word,
            al2.get("s").unwrap(),
            al2.get("pad").unwrap(),
            &al2,
        )
        .unwrap();
        let t0 = Instant::now();
        let _ = eval(&rot, &comb).unwrap();
        let dt = ms(t0);
        println!("| {} | {dt:.2} |", comb.len());
        record(report, "E4.comb", (comb.len(), dt));
    }
}

/// E5 — Example 4.2: Q1, non-regular image, inverse typing pointwise.
fn e5_q1(report: &mut Report) {
    println!("\n## E5 — Example 4.2: Q1 maps aⁿ to bⁿ²; inverse of (b.b)* is (a.a)*\n");
    println!("| n | output | T(aⁿ) ⊆ (b.b)* | expected (n even) |");
    println!("|---|---|---|---|");
    let (q, al) = xmltc_xmlql::query::example_q1();
    let (t, enc_in, enc_out) = q.compile().unwrap();
    let tau2 = Dtd::parse_text_with("result := (b.b)*\nb := @eps", enc_out.source())
        .unwrap()
        .compile(&enc_out)
        .unwrap()
        .complement()
        .to_nta();
    for n in 0..=6usize {
        let doc = flat_doc(&al, n);
        let encoded = encode(&doc, &enc_in).unwrap();
        let lang = output_automaton(&t, &encoded).unwrap().to_nta();
        let conforms = lang.intersect(&tau2).is_empty();
        println!(
            "| {n} | result(b^{}) | {} | {} |",
            n * n,
            conforms,
            n % 2 == 0
        );
        record(report, "E5", (n, n * n, conforms));
        assert_eq!(conforms, n % 2 == 0);
    }
    println!("\n(Q1 is a 3-pebble machine: its exact Theorem 4.7 conversion is priced by the");
    println!("non-elementary Theorem 4.8 — see E9; the pointwise checks above are exact.)");
}

/// E6 — Example 4.3: exact typechecking vs forward inference precision.
fn e6_precision(report: &mut Report) {
    println!("\n## E6 — Example 4.3: exact vs forward-inference typechecking of Q2\n");
    println!("| output spec | truth | exact verdict | forward verdict |");
    println!("|---|---|---|---|");
    let fx = q2_fixture();
    let opts = TypecheckOptions::default();
    let specs: Vec<(&str, &xmltc_automata::Nta, bool)> = vec![
        ("children ≡ 0 (mod 3)", &fx.tau2_mod3, true),
        ("b.a*.b.a*.b.a*", &fx.tau2_coarse, true),
    ];
    for (name, tau2, truth) in specs {
        let exact = typecheck(&fx.transducer, &fx.tau1, tau2, &opts)
            .unwrap()
            .is_ok();
        let fwd = fx.forward_image.subset_of(tau2);
        println!("| {name} | holds | {} | {} |", verdict(exact), verdict(fwd));
        record(report, "E6", (name, truth, exact, fwd));
        assert!(exact, "exact typechecker must prove a true spec");
    }
    println!("\nThe mod-3 spec is *true* but the decoupling over-approximation cannot prove");
    println!("it — the incompleteness of forward inference the paper's Related Work notes.");
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "typechecks"
    } else {
        "rejected"
    }
}

/// E7 — Theorem 4.4: the decision procedure with counterexamples, final
/// emptiness decided by both the eager and the lazy engine.
fn e7_suite(report: &mut Report) {
    println!("\n## E7 — Theorem 4.4: end-to-end typechecking suite (exact, k = 1)\n");
    println!(
        "| case | verdict | counterexample input | eager (ms) | eager states | lazy (ms) | lazy states |"
    );
    println!("|---|---|---|---|---|---|---|");
    let fx = q2_fixture();
    let bad_spec = Dtd::parse_text_with(
        "result := a*.b?.a*\na := @eps\nb := @eps",
        fx.enc_out.source(),
    )
    .unwrap()
    .compile(&fx.enc_out)
    .unwrap();
    let cases: Vec<(&str, &xmltc_automata::Nta)> = vec![
        ("Q2 vs mod-3 (true)", &fx.tau2_mod3),
        ("Q2 vs b.a*.b.a*.b.a* (true)", &fx.tau2_coarse),
        ("Q2 vs ≤1 b (false)", &bad_spec),
    ];
    for (name, tau2) in cases {
        let run = |engine, states_key| {
            let opts = TypecheckOptions {
                engine,
                ..Default::default()
            };
            let t0 = Instant::now();
            let (out, rep) = xmltc_obs::with_report(|| {
                typecheck(&fx.transducer, &fx.tau1, tau2, &opts).unwrap()
            });
            let dt = ms(t0);
            let states = rep
                .span_metric("typecheck.emptiness", states_key)
                .unwrap_or(0);
            (out, dt, states)
        };
        let (eager_out, t_eager, s_eager) = run(Engine::Eager, "intersection.states");
        let (lazy_out, t_lazy, s_lazy) = run(Engine::Lazy, "lazy.states_materialized");
        assert_eq!(
            eager_out.is_ok(),
            lazy_out.is_ok(),
            "engines disagree: {name}"
        );
        match eager_out {
            TypecheckOutcome::Ok => {
                assert!(
                    s_lazy < s_eager,
                    "{name}: lazy must materialize strictly fewer states"
                );
                println!(
                    "| {name} | typechecks | — | {t_eager:.1} | {s_eager} | {t_lazy:.1} | {s_lazy} |"
                );
                record(report, "E7", (name, true, t_eager, s_eager, t_lazy, s_lazy));
            }
            TypecheckOutcome::CounterExample { input, .. } => {
                let doc = decode(&input, &fx.enc_in)
                    .map(|d| d.to_string())
                    .unwrap_or_else(|_| input.to_string());
                println!(
                    "| {name} | REJECTED | `{doc}` | {t_eager:.1} | {s_eager} | {t_lazy:.1} | {s_lazy} |"
                );
                record(
                    report,
                    "E7",
                    (name, false, t_eager, s_eager, t_lazy, s_lazy),
                );
            }
        }
    }
    println!("\nState counts are the final emptiness check's: the eager engine's trimmed");
    println!("τ₁ × violations product vs the configurations the lazy search ever touched.");
}

/// E8 — Theorem 4.7: behaviour route vs MSO route, same machines.
fn e8_routes(report: &mut Report) {
    println!("\n## E8 — Theorem 4.7: k-pebble → regular, two constructions\n");
    println!(
        "| machine states | walk (ms) | walk result states | MSO (ms) | MSO peak states | agree |"
    );
    println!("|---|---|---|---|---|---|");
    let al = ranked_alphabet();
    for m in [1usize, 2, 3, 4] {
        let a = walking_chain(&al, m);
        let t0 = Instant::now();
        let d = walking_to_dbta(&a).unwrap();
        let t_walk = ms(t0);
        let t0 = Instant::now();
        let (nta, stats) = pebble_to_nta(&a, 4_000_000).unwrap();
        let t_mso = ms(t0);
        // Agreement on a tree sample.
        let mut agree = true;
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..30 {
            let t = xmltc_trees::generate::random_binary(&al, 4, 0.7, &mut rng).unwrap();
            agree &= d.accepts(&t).unwrap() == nta.accepts(&t).unwrap();
        }
        println!(
            "| {} | {t_walk:.1} | {} | {t_mso:.1} | {} | {} |",
            a.core().n_states(),
            d.n_states(),
            stats.max_states,
            agree
        );
        record(
            report,
            "E8",
            (
                a.core().n_states(),
                t_walk,
                d.n_states(),
                t_mso,
                stats.max_states,
                agree,
            ),
        );
        assert!(agree);
    }
}

/// E9 — Theorem 4.8: the non-elementary wall.
fn e9_blowup(report: &mut Report) {
    println!("\n## E9 — Theorem 4.8: typechecking cost explodes with machine size / pebbles\n");
    println!("| machine | states | k | MSO peak states | determinizations | time (ms) | outcome |");
    println!("|---|---|---|---|---|---|---|");
    let al = ranked_alphabet();
    let budget = 300_000;
    for m in [1usize, 3, 5, 7] {
        let a = walking_chain(&al, m);
        run_mso_case(report, &format!("chain({m})"), &a, budget);
    }
    for k in [1u8, 2, 3] {
        let a = pebble_tower(&al, k);
        run_mso_case(report, &format!("tower(k={k})"), &a, budget);
    }
    let a = two_y_leaves(&al);
    run_mso_case(report, "two-y-leaves (k=2, guard)", &a, budget);
    println!("\nThe walk route handles the same chain machines in microseconds (E8): the");
    println!("pebble count — not the state count — is the fundamental price (Theorem 4.8).");

    // The lower bound's engine: star-free generalized expressions, whose
    // minimal DFAs explode with complement depth (Stockmeyer). Theorem 4.8
    // reduces their emptiness to k-pebble typechecking.
    println!("\n### E9b — star-free expressions (the Theorem 4.8 reduction source)\n");
    println!("One complement = one determinization = up to one exponential; nested");
    println!("complements tower (Stockmeyer). The classical witness `Σ*·a·Σ^(k-1)`:\n");
    println!("| k | expression size | minimal DFA states | compile (ms) |");
    println!("|---|---|---|---|");
    for k in [4usize, 8, 12, 16] {
        let (e, universe) = xmltc_regex::starfree::kth_from_end(k);
        let t0 = Instant::now();
        let d = e.to_dfa(&universe).minimize();
        let dt = ms(t0);
        println!("| {k} | {} | {} | {dt:.1} |", e.size(), d.len());
        record(report, "E9b", (k, e.size(), d.len(), dt));
        assert_eq!(d.len(), 1usize << k);
    }
}

fn run_mso_case(
    report: &mut Report,
    name: &str,
    a: &xmltc_core::machine::PebbleAutomaton,
    budget: u32,
) {
    let t0 = Instant::now();
    match pebble_to_nta(a, budget) {
        Ok((_, stats)) => {
            let dt = ms(t0);
            println!(
                "| {name} | {} | {} | {} | {} | {dt:.1} | completed |",
                a.core().n_states(),
                a.k(),
                stats.max_states,
                stats.determinizations
            );
            record(
                report,
                "E9",
                (name, a.core().n_states(), a.k(), stats.max_states, dt, true),
            );
        }
        Err(e) => {
            let dt = ms(t0);
            println!(
                "| {name} | {} | {} | > {budget} | — | {dt:.1} | aborted ({e}) |",
                a.core().n_states(),
                a.k()
            );
            record(
                report,
                "E9",
                (name, a.core().n_states(), a.k(), budget, dt, false),
            );
        }
    }
}

/// E10 — Section 5: data-value joins via independent nondeterministic
/// guesses.
fn e10_datajoin(report: &mut Report) {
    println!("\n## E10 — Section 5: independent data joins as nondeterministic guesses\n");
    // A relational-export shape: rows(pair*), pair := @eps. The "join"
    // compares each pair's two (abstracted) data values; per Section 5 the
    // comparison is replaced by a nondeterministic guess emitting eq or
    // neq. Typechecking must hold for EVERY guess outcome.
    use xmltc_core::machine::{Guard, Move};
    use xmltc_transducer_dsl::{MachineSpec, Syms};
    let input_dtd = Dtd::parse_text("rows := pair*\npair := @eps").unwrap();
    let enc_in = EncodedAlphabet::new(input_dtd.alphabet());
    let out_al = Alphabet::unranked(&["out", "eq", "neq"]);
    let enc_out = EncodedAlphabet::new(&out_al);
    let cons_in = enc_in.encoded().name(enc_in.cons()).to_string();
    let nil_in = enc_in.encoded().name(enc_in.nil()).to_string();
    let cons_out = enc_out.encoded().name(enc_out.cons()).to_string();
    let nil_out = enc_out.encoded().name(enc_out.nil()).to_string();

    let mut m = MachineSpec::new("datajoin", 1);
    m.state("start", 1)
        .state("nil", 1)
        .state("walk", 1)
        .state("enter", 1)
        .state("guess", 1)
        .state("adv", 1)
        .initial("start");
    m.emit_leaf(Syms::Any, "nil", Guard::any(), &nil_out);
    m.emit_node(Syms::Any, "start", Guard::any(), "out", "enter", "nil");
    m.walk(Syms::Any, "enter", Guard::any(), Move::DownLeft, "walk");
    // At a cons cell: one guessed verdict per pair — the x = y test of the
    // extended transducer replaced by a nondeterministic choice.
    m.emit_node(
        Syms::one(&cons_in),
        "walk",
        Guard::any(),
        &cons_out,
        "guess",
        "adv",
    );
    m.emit_node(
        Syms::one(&cons_in),
        "guess",
        Guard::any(),
        "eq",
        "nil",
        "nil",
    );
    m.emit_node(
        Syms::one(&cons_in),
        "guess",
        Guard::any(),
        "neq",
        "nil",
        "nil",
    );
    m.walk(
        Syms::one(&cons_in),
        "adv",
        Guard::any(),
        Move::DownRight,
        "walk",
    );
    m.emit_leaf(Syms::one(&nil_in), "walk", Guard::any(), &nil_out);
    let t = m
        .build_transducer(enc_in.encoded(), enc_out.encoded())
        .unwrap();

    let tau1 = input_dtd.compile(&enc_in).unwrap();
    let tau2 = Dtd::parse_text_with(
        "out := (eq|neq)*\neq := @eps\nneq := @eps",
        enc_out.source(),
    )
    .unwrap()
    .compile(&enc_out)
    .unwrap();
    let t0 = Instant::now();
    let outcome = typecheck(&t, &tau1, &tau2, &TypecheckOptions::default()).unwrap();
    let dt = ms(t0);
    println!(
        "- nondeterministic join-abstraction typechecks over ALL guess outcomes: {} ({dt:.1} ms)",
        outcome.is_ok()
    );
    record(report, "E10", (outcome.is_ok(), dt));
    assert!(outcome.is_ok());

    // And a wrong spec (`eq` only) is caught: some guess emits neq.
    let tau2_eq = Dtd::parse_text_with("out := eq*\neq := @eps\nneq := @eps", enc_out.source())
        .unwrap()
        .compile(&enc_out)
        .unwrap();
    let outcome = typecheck(&t, &tau1, &tau2_eq, &TypecheckOptions::default()).unwrap();
    println!(
        "- spec `out := eq*` correctly rejected (a guess can emit neq): {}",
        !outcome.is_ok()
    );
    assert!(!outcome.is_ok());
}

/// E11 — Section 2.3: DTDs ⊊ specialized DTDs.
fn e11_separation(report: &mut Report) {
    println!("\n## E11 — Section 2.3: decoupled tags separate DTDs from regular tree languages\n");
    let al = Alphabet::unranked(&["a", "b", "c", "d"]);
    let a = al.get("a").unwrap();
    let b = al.get("b").unwrap();
    let c = al.get("c").unwrap();
    let d = al.get("d").unwrap();
    let spec = SpecializedDtd::new(
        &al,
        vec!["A".into(), "Bc".into(), "Bd".into(), "C".into(), "D".into()],
        vec![a, b, b, c, d],
        vec![
            Regex::sym(TypeId(1)).concat(Regex::sym(TypeId(2))),
            Regex::sym(TypeId(3)),
            Regex::sym(TypeId(4)),
            Regex::Epsilon,
            Regex::Epsilon,
        ],
        TypeId(0),
    );
    // The best plain DTD for the same documents: a := b.b; b := c|d.
    let mut dtd = Dtd::new(&al, a);
    dtd.set_rule(a, Regex::sym(b).concat(Regex::sym(b)));
    dtd.set_rule(b, Regex::sym(c).alt(Regex::sym(d)));
    let mut spec_count = 0;
    let mut dtd_count = 0;
    for doc in [
        "a(b(c), b(d))",
        "a(b(d), b(c))",
        "a(b(c), b(c))",
        "a(b(d), b(d))",
    ] {
        let t = UnrankedTree::parse(doc, &al).unwrap();
        let in_spec = spec.validates(&t).unwrap();
        let in_dtd = dtd.is_valid(&t);
        spec_count += in_spec as usize;
        dtd_count += in_dtd as usize;
        println!("- `{doc}`: specialized {} | best DTD {}", in_spec, in_dtd);
    }
    println!(
        "\nspecialized DTD pins the single intended document ({spec_count}/4); a plain DTD \
         cannot give the two b's different content ({dtd_count}/4 accepted)."
    );
    record(report, "E11", (spec_count, dtd_count));
    assert_eq!((spec_count, dtd_count), (1, 4));
}

/// E12 — Section 3.3: PTIME data complexity of evaluation.
fn e12_eval(report: &mut Report) {
    println!("\n## E12 — Section 3.3: evaluation scales polynomially\n");
    println!("| machine | input nodes | eval (ms) |");
    println!("|---|---|---|");
    let al = ranked_alphabet();
    let copy = library::copy(&al).unwrap();
    for depth in [8usize, 11, 14] {
        let t = full_tree(&al, depth);
        let t0 = Instant::now();
        let _ = eval(&copy, &t).unwrap();
        let dt = ms(t0);
        println!("| copy | {} | {dt:.2} |", t.len());
        record(report, "E12.copy", (t.len(), dt));
    }
    let fx = q2_fixture();
    let doc_al = fx.enc_in.source().clone();
    for n in [64usize, 256, 1024] {
        let doc = flat_doc(&doc_al, n);
        let encoded = encode(&doc, &fx.enc_in).unwrap();
        let t0 = Instant::now();
        let _ = eval(&fx.transducer, &encoded).unwrap();
        let dt = ms(t0);
        println!("| Q2 (XSLT) | {} | {dt:.2} |", encoded.len());
        record(report, "E12.q2", (encoded.len(), dt));
    }
}
