//! Shared fixtures for the experiment harness: the workloads, machines and
//! types used by both the timing benches (see [`harness`]) and
//! `run_experiments`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod scaled;

use std::sync::Arc;
use xmltc_automata::Nta;
use xmltc_core::machine::{Guard, Move, PebbleAutomaton, Presence};
use xmltc_core::PebbleTransducer;
use xmltc_dtd::Dtd;
use xmltc_transducer_dsl::{MachineSpec, Syms};
use xmltc_trees::{Alphabet, BinaryTree, EncodedAlphabet, UnrankedTree};

/// The standard small ranked alphabet used by machine-level experiments.
pub fn ranked_alphabet() -> Arc<Alphabet> {
    Alphabet::ranked(&["x", "y"], &["f", "g"])
}

/// A full binary tree with `2^depth - 1` nodes over [`ranked_alphabet`].
pub fn full_tree(al: &Arc<Alphabet>, depth: usize) -> BinaryTree {
    xmltc_trees::generate::full_binary(depth, al.get("f").unwrap(), al.get("x").unwrap(), al)
        .unwrap()
}

/// The flat documents `root(aⁿ)` of Examples 4.2/4.3.
pub fn flat_doc(al: &Arc<Alphabet>, n: usize) -> UnrankedTree {
    xmltc_trees::generate::flat(al.get("root").unwrap(), al.get("a").unwrap(), n, al).unwrap()
}

/// The Example 4.3 pipeline: Q2's transducer, alphabets, input type
/// `root := a*` and the mod-3 output type the exact checker proves.
pub struct Q2Fixture {
    /// The compiled 1-pebble transducer.
    pub transducer: PebbleTransducer,
    /// Input encoding.
    pub enc_in: EncodedAlphabet,
    /// Output encoding.
    pub enc_out: EncodedAlphabet,
    /// `τ₁` = encodings of `root := a*`.
    pub tau1: Nta,
    /// `τ₂` = children count ≡ 0 (mod 3) — exact-only.
    pub tau2_mod3: Nta,
    /// `τ₂` = `b.a*.b.a*.b.a*` — provable by both routes.
    pub tau2_coarse: Nta,
    /// The forward-inference baseline's over-approximate image (decoupled
    /// specialized DTD, compiled).
    pub forward_image: Nta,
}

/// Builds the Q2 fixture.
pub fn q2_fixture() -> Q2Fixture {
    let q2 = xmltc_xmlql::xslt::example_q2();
    let input_dtd = Dtd::parse_text("root := a*\na := @eps").unwrap();
    let (transducer, enc_in, enc_out) = q2.compile(input_dtd.alphabet()).unwrap();
    let tau1 = input_dtd.compile(&enc_in).unwrap();
    let forward_image = q2
        .infer_image(&input_dtd, enc_out.source())
        .unwrap()
        .compile(&enc_out)
        .unwrap();
    let tau2_mod3 = Dtd::parse_text_with(
        "result := ((a|b).(a|b).(a|b))*\na := @eps\nb := @eps",
        enc_out.source(),
    )
    .unwrap()
    .compile(&enc_out)
    .unwrap();
    let tau2_coarse = Dtd::parse_text_with(
        "result := b.a*.b.a*.b.a*\na := @eps\nb := @eps",
        enc_out.source(),
    )
    .unwrap()
    .compile(&enc_out)
    .unwrap();
    Q2Fixture {
        transducer,
        enc_in,
        enc_out,
        tau1,
        tau2_mod3,
        tau2_coarse,
        forward_image,
    }
}

/// A family of 1-pebble (tree-walking) automata of growing state count for
/// the Theorem 4.7 / Theorem 4.8 cost experiments: `chain(m)` walks to the
/// leftmost leaf through `m` intermediate states and accepts iff it is `y`,
/// after also and-branching at the root.
pub fn walking_chain(al: &Arc<Alphabet>, m: usize) -> PebbleAutomaton {
    let n = m.max(1);
    let mut s = MachineSpec::new("walking_chain", 1);
    for i in 0..n {
        s.state(format!("c{i}"), 1);
    }
    s.state("check", 1).state("lw", 1).state("rw", 1);
    s.initial("c0");
    // Chain of stays, then a branch: left walk and right walk must both
    // find y at their extreme leaf.
    for i in 0..n - 1 {
        s.walk(
            Syms::Any,
            format!("c{i}"),
            Guard::any(),
            Move::Stay,
            format!("c{}", i + 1),
        );
    }
    let last = format!("c{}", n - 1);
    s.fork(Syms::Binaries, &last, Guard::any(), "lw", "rw");
    s.walk(Syms::one("y"), &last, Guard::any(), Move::Stay, "check");
    s.accept(Syms::one("y"), "check", Guard::any());
    s.walk(Syms::Binaries, "lw", Guard::any(), Move::DownLeft, &last);
    s.walk(Syms::Binaries, "rw", Guard::any(), Move::DownRight, &last);
    s.build_automaton(al).unwrap()
}

/// A genuinely two-pebble automaton: accepts trees containing two
/// *distinct* `y` leaves. Pebble 1 walks nondeterministically to a `y`
/// leaf, places pebble 2, which must find another `y` leaf where pebble 1
/// is absent — the presence guard doing real work. (The language is
/// regular, as Theorem 4.7 promises; the machine is not expressible
/// without the pebble test.)
pub fn two_y_leaves(al: &Arc<Alphabet>) -> PebbleAutomaton {
    let mut s = MachineSpec::new("two_y_leaves", 2);
    s.state("w1", 1).state("w2", 2).initial("w1");
    s.walk(Syms::Binaries, "w1", Guard::any(), Move::DownLeft, "w1");
    s.walk(Syms::Binaries, "w1", Guard::any(), Move::DownRight, "w1");
    s.walk(Syms::one("y"), "w1", Guard::any(), Move::PlaceNew, "w2");
    s.walk(Syms::Binaries, "w2", Guard::any(), Move::DownLeft, "w2");
    s.walk(Syms::Binaries, "w2", Guard::any(), Move::DownRight, "w2");
    s.accept(Syms::one("y"), "w2", Guard::absent(1));
    s.build_automaton(al).unwrap()
}

/// A k-pebble automaton family parameterized by pebble count: pebble i
/// walks to the leftmost leaf, places the next pebble; the last level
/// accepts where all previous pebbles are present. Exercises place/pick
/// and guards at every level — the Theorem 4.8 blow-up driver.
pub fn pebble_tower(al: &Arc<Alphabet>, k: u8) -> PebbleAutomaton {
    let mut s = MachineSpec::new("pebble_tower", k);
    for lvl in 1..=k {
        s.state(format!("w{lvl}"), lvl);
    }
    s.initial("w1");
    for lvl in 1..=k {
        let w = format!("w{lvl}");
        s.walk(Syms::Binaries, &w, Guard::any(), Move::DownLeft, &w);
        if lvl < k {
            s.walk(
                Syms::Leaves,
                &w,
                Guard::any(),
                Move::PlaceNew,
                format!("w{}", lvl + 1),
            );
        } else {
            // Accept at a leaf where every previous pebble sits too (all
            // walked to the same leftmost leaf).
            let guard = Guard(vec![Presence::Present; (k - 1) as usize]);
            s.accept(Syms::Leaves, &w, guard);
        }
    }
    s.build_automaton(al).unwrap()
}
