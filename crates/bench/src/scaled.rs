//! The scaled walk-route instance family: seeded, DSL-generated 1-pebble
//! walking automata engineered so the Theorem 4.7 frontier saturates and
//! the work-stealing crew has real work to steal.
//!
//! The flagship Q2/mod-3 instance collapses under projected memoization
//! (66 distinct fixpoint runs), so its frontier never reaches the parallel
//! gate — which is the *point* of the gate, but leaves nothing to measure
//! scaling on. The machines here are built in the opposite direction, in
//! two layers:
//!
//! * A fixed **diversity core** of [`CORE`] states carries all the
//!   behavioural nondeterminism: per-binary Down clusters, forks, sparse
//!   leaf accepts, and up-moves confined to [`UP_TARGETS`] core states so
//!   the exit-mask lattice is finite and the behaviour closure converges.
//!   (Scaling the *random* layer itself diverges: a 24-state draw at these
//!   densities already blows past 1200 behaviour classes.)
//! * **Padding** states `p_k` scale the instance: short Stay-chains whose
//!   rows are unions of sliding windows of core rows — deterministic
//!   functions of the core behaviour, so they add fixpoint steps, row
//!   width and projection entries without adding behaviour classes. Every
//!   binary's Down-target list is salted with its own padding residue
//!   class, which makes the per-symbol projections *fine-grained*: distinct
//!   behaviours stay distinct after projection, so the deduped job count
//!   approaches the full `B·m²` pair count instead of collapsing — a
//!   saturated frontier by construction.
//!
//! Each instance is a pure function of `(states, seed)` — byte-identical
//! machines on every host, which is what lets `tests/walk_determinism.rs`
//! replay the same frontier at 1/2/8 threads and assert a byte-identical
//! DBTA.

use std::sync::Arc;
use std::time::Instant;
use xmltc_core::machine::{Guard, Move, PebbleAutomaton};
use xmltc_transducer_dsl::{MachineSpec, Syms};
use xmltc_trees::{Alphabet, SmallRng};
use xmltc_typecheck::walk::{walking_to_dbta_with, WalkOptions, WalkStats};

/// Binary symbols in the scaled alphabet (each owns a target cluster).
pub const BINARIES: usize = 6;
/// Leaf symbols in the scaled alphabet.
pub const LEAVES: usize = 4;
/// Size of the diversity core. All nondeterministic structure lives here;
/// sized so the behaviour-class count lands near 460 — small enough that
/// the `6·m²` sequential pair replay stays a fraction of the job work the
/// crew can actually parallelize, large enough to keep thousands of
/// distinct jobs in flight.
pub const CORE: usize = 12;
/// Up-moves land only in core states `c0..c{UP_TARGETS}`, capping the
/// exit-mask lattice so the behaviour closure converges.
pub const UP_TARGETS: usize = 5;

/// The scaled ranked alphabet: leaves `l0..l3`, binaries `b0..b5` — wide
/// enough that per-symbol action tables and projections genuinely differ.
pub fn scaled_alphabet() -> Arc<Alphabet> {
    let leaves: Vec<String> = (0..LEAVES).map(|j| format!("l{j}")).collect();
    let bins: Vec<String> = (0..BINARIES).map(|j| format!("b{j}")).collect();
    Alphabet::ranked(&leaves, &bins)
}

/// One instance of the family: a name for bench rows, a state count, and
/// the RNG seed that makes the machine reproducible.
#[derive(Clone, Copy, Debug)]
pub struct ScaledSpec {
    /// Instance name as it appears in bench JSON and `--family` output.
    pub name: &'static str,
    /// Walking-automaton state count (core + padding).
    pub states: usize,
    /// Seed for the generator's RNG stream.
    pub seed: u64,
}

/// The `walk-scale` family roster, smallest first. `quick` keeps only the
/// smallest instance (the CI smoke budget).
pub fn walk_scale_specs(quick: bool) -> Vec<ScaledSpec> {
    let all = [
        ScaledSpec {
            name: "ws-128",
            states: 128,
            seed: 0xA11CE,
        },
        ScaledSpec {
            name: "ws-512",
            states: 512,
            seed: 0xA11CE,
        },
        ScaledSpec {
            name: "ws-1024",
            states: 1024,
            seed: 0xA11CE,
        },
    ];
    if quick {
        all[..1].to_vec()
    } else {
        all.to_vec()
    }
}

/// Generates one scaled walking automaton: a [`CORE`]-state random core
/// plus `n − CORE` pass-through padding states. Pure in `(n, seed)`, and
/// the RNG stream deliberately does **not** mix in `n`: every size of the
/// same seed shares one core machine, so the behaviour closure (classes,
/// rounds, job count) is provably identical across sizes and the size
/// axis of a scaling curve isolates per-job kernel cost.
pub fn scaled_walker(al: &Arc<Alphabet>, n: usize, seed: u64) -> PebbleAutomaton {
    gen_with(al, n, seed, GenParams::default())
}

/// Salt probability: chance per `(core state, binary)` of a DownRight rule
/// into the binary's exposed padding window (and, at half this rate, a
/// DownLeft one). Tuned by the `probe_convergence_across_sizes` sweep.
const SALT: f64 = 0.3;
/// Exposure width: how many padding slots per binary re-export core rows.
/// Wider ⇒ finer projections ⇒ more distinct jobs — but each salted rule
/// also enriches the closure, so this trades class count for job count.
const EXPOSE: usize = 5;
/// Ballast Stay-chain segment length (cost propagation depth per core-row
/// change).
const SEGMENT: usize = 16;
/// Ballast fan-out: Stay edges per ballast state into rotating core
/// states. Each in-edge is one more row union per recompute, fattening
/// per-job kernel cost without touching the closure.
const FAN: usize = 2;

/// Generator knobs threaded through [`gen_with`]; the tuned values live in
/// the module consts, the probe sweeps alternatives.
#[derive(Clone, Copy)]
struct GenParams {
    core: usize,
    salt: f64,
    expose: usize,
    up_targets: usize,
    fan: usize,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            core: CORE,
            salt: SALT,
            expose: EXPOSE,
            up_targets: UP_TARGETS,
            fan: FAN,
        }
    }
}

fn gen_with(al: &Arc<Alphabet>, n: usize, seed: u64, p: GenParams) -> PebbleAutomaton {
    let GenParams {
        core: core_n,
        salt,
        expose,
        up_targets,
        fan,
    } = p;
    let n = n.max(core_n + BINARIES * expose);
    let padding = n - core_n;
    let mut rng = SmallRng::seed_from_u64(seed);
    let core = |i: usize| format!("c{}", i % core_n);
    let pad = |k: usize| format!("p{}", k % padding);
    let bin = |j: usize| format!("b{}", j % BINARIES);
    let mut s = MachineSpec::new("walk_scale", 1);
    for i in 0..core_n {
        s.state(core(i), 1);
    }
    for k in 0..padding {
        s.state(pad(k), 1);
    }
    s.initial("c0");
    // Padding states are reached only through Down-target lists; the rule
    // graph from `c0` need not cover them for the fixpoint to use them.
    s.allow_unreachable();

    // Core backbone: every core state reachable without the RNG's help.
    for i in 0..core_n {
        s.walk(
            Syms::one(bin(i)),
            core(i),
            Guard::any(),
            Move::DownLeft,
            core(i + 1),
        );
    }
    // Each binary's core Down rules target its own cluster of core states,
    // so per-symbol action tables genuinely differ.
    let cluster = core_n / BINARIES + 1;
    for j in 0..BINARIES {
        for i in 0..core_n {
            if rng.gen_bool(0.25) {
                let target = (j * cluster + rng.gen_range(0..cluster)) % core_n;
                s.walk(
                    Syms::one(bin(j)),
                    core(i),
                    Guard::any(),
                    Move::DownRight,
                    core(target),
                );
            }
            if rng.gen_bool(0.12) {
                let target = ((j + 1) * cluster + rng.gen_range(0..cluster)) % core_n;
                s.walk(
                    Syms::one(bin(j)),
                    core(i),
                    Guard::any(),
                    Move::DownLeft,
                    core(target),
                );
            }
            if rng.gen_bool(0.08) {
                s.walk(
                    Syms::one(bin(j)),
                    core(i),
                    Guard::any(),
                    Move::UpLeft,
                    core(rng.gen_range(0..up_targets)),
                );
            }
            if rng.gen_bool(0.08) {
                s.walk(
                    Syms::one(bin(j)),
                    core(i),
                    Guard::any(),
                    Move::UpRight,
                    core(rng.gen_range(0..up_targets)),
                );
            }
            if rng.gen_bool(0.03) {
                s.fork(
                    Syms::one(bin(j)),
                    core(i),
                    Guard::any(),
                    core(rng.gen_range(0..core_n)),
                    core(rng.gen_range(0..core_n)),
                );
            }
        }
    }
    // Core Stay mixing.
    for i in 0..core_n {
        if rng.gen_bool(0.3) {
            s.walk(
                Syms::Any,
                core(i),
                Guard::any(),
                Move::Stay,
                core(rng.gen_range(0..core_n)),
            );
        }
    }
    // Leaf behaviour on the core: accepts and up-moves decide which exit
    // sets a leaf symbol's base behaviour exposes.
    for l in 0..LEAVES {
        let leaf = format!("l{l}");
        for i in 0..core_n {
            if rng.gen_bool(0.18) {
                s.accept(Syms::one(&leaf), core(i), Guard::any());
            }
            if rng.gen_bool(0.10) {
                s.walk(
                    Syms::one(&leaf),
                    core(i),
                    Guard::any(),
                    Move::UpLeft,
                    core(rng.gen_range(0..up_targets)),
                );
            }
            if rng.gen_bool(0.10) {
                s.walk(
                    Syms::one(&leaf),
                    core(i),
                    Guard::any(),
                    Move::UpRight,
                    core(rng.gen_range(0..up_targets)),
                );
            }
        }
    }
    // The projection salt. Each binary `b_j` owns the padding residue
    // class `{p_k : k ≡ j (mod B)}`; its first `expose` slots re-export a
    // random selection of core rows (the exposure list). Salted Down rules
    // from core states into those slots put the re-exported rows on
    // `b_j`'s projection key, so behaviours that differ *anywhere* on the
    // exposure stay distinct after projection — the frontier cannot
    // collapse the way the flagship's does. (The salted rules also enrich
    // the closure itself — extra Down rules mean extra unions at parents —
    // which is why `SALT`/`EXPOSE` are tuned against divergence.)
    let exposures: Vec<Vec<usize>> = (0..BINARIES)
        .map(|_| {
            let mut e: Vec<usize> = (0..core_n).collect();
            for t in 0..expose {
                let u = t + rng.gen_range(0..core_n - t);
                e.swap(t, u);
            }
            e.truncate(expose);
            e
        })
        .collect();
    for j in 0..BINARIES {
        for i in 0..core_n {
            if rng.gen_bool(salt) {
                let t = rng.gen_range(0..expose);
                s.walk(
                    Syms::one(bin(j)),
                    core(i),
                    Guard::any(),
                    Move::DownRight,
                    pad(j + BINARIES * t),
                );
            }
            if rng.gen_bool(salt / 2.0) {
                let t = rng.gen_range(0..expose);
                s.walk(
                    Syms::one(bin(j)),
                    core(i),
                    Guard::any(),
                    Move::DownLeft,
                    pad(j + BINARIES * t),
                );
            }
        }
    }
    // Exposed pass-through rows: `row(p_k) = row(c_{E_j[u]})` for slot `u`
    // of residue class `j` — exactly one Stay rule, so the projection key
    // re-exports a core row verbatim.
    let exposed = BINARIES * expose;
    for k in 0..exposed {
        let j = k % BINARIES;
        let u = k / BINARIES;
        s.walk(
            Syms::Any,
            pad(k),
            Guard::any(),
            Move::Stay,
            core(exposures[j][u]),
        );
    }
    // Ballast: the remaining padding states form Stay-chain segments that
    // drop into rotating core states. Their rows are suffix unions of core
    // rows — recomputed down the chain whenever a core row changes — but
    // NOTHING ever walks down into a ballast state, so they feed no values
    // back into the closure: classes, rounds and job counts are exactly
    // those of the `n = CORE + exposed` machine at every size, while
    // fixpoint steps, row storage and interning work scale with `n`. The
    // size axis of a scaling curve therefore isolates per-job kernel cost.
    for k in exposed..padding {
        let off = k - exposed;
        let mut drops = std::collections::BTreeSet::new();
        for f in 0..fan {
            drops.insert((off.wrapping_mul(5) + off / SEGMENT + f * 7) % core_n);
        }
        for t in drops {
            s.walk(Syms::Any, pad(k), Guard::any(), Move::Stay, core(t));
        }
        if !(off + 1).is_multiple_of(SEGMENT) && k + 1 < padding {
            s.walk(Syms::Any, pad(k), Guard::any(), Move::Stay, pad(k + 1));
        }
    }
    s.build_automaton(al)
        .expect("scaled walker spec is well-formed")
}

/// Builds the automaton for one roster entry.
pub fn build(spec: &ScaledSpec) -> PebbleAutomaton {
    scaled_walker(&scaled_alphabet(), spec.states, spec.seed)
}

/// One measured point on a scaling curve.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Worker threads requested.
    pub threads: usize,
    /// Best-of-reps wall time for the DBTA construction, milliseconds.
    pub wall_ms: f64,
    /// Construction counters from the measured run.
    pub stats: WalkStats,
}

/// Times `walking_to_dbta_with` on `a` at each requested thread count,
/// best-of-`reps`, forcing the worker crew past the job-count gate so the
/// curve measures the scheduler rather than the gate. Returns the points
/// plus the DBTA state count (identical at every thread count — asserted).
pub fn scale_curve(a: &PebbleAutomaton, threads: &[usize], reps: usize) -> (Vec<ScalePoint>, u64) {
    let mut points = Vec::new();
    let mut dbta_states = None;
    for &t in threads {
        let opts = WalkOptions {
            threads: t,
            parallel_threshold: 1,
            ..Default::default()
        };
        let mut best: Option<(f64, WalkStats, u32)> = None;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            let (d, stats) = walking_to_dbta_with(a, &opts).expect("scaled instance converges");
            let ms = start.elapsed().as_secs_f64() * 1e3;
            if best.as_ref().is_none_or(|(b, _, _)| ms < *b) {
                best = Some((ms, stats, d.n_states()));
            }
        }
        let (wall_ms, stats, states) = best.unwrap();
        match dbta_states {
            None => dbta_states = Some(states as u64),
            Some(prev) => assert_eq!(
                prev, states as u64,
                "thread count changed the DBTA state count"
            ),
        }
        points.push(ScalePoint {
            threads: t,
            wall_ms,
            stats,
        });
    }
    (points, dbta_states.unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_family_is_deterministic() {
        let al = scaled_alphabet();
        let a = scaled_walker(&al, 64, 0xA11CE);
        let b = scaled_walker(&al, 64, 0xA11CE);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    #[ignore = "tuning probe: run with --ignored --nocapture"]
    fn probe_convergence_across_sizes() {
        let al = scaled_alphabet();
        let opts = WalkOptions {
            limit: 2000,
            ..Default::default()
        };
        let show = |label: String, a: &xmltc_core::machine::PebbleAutomaton| {
            let t0 = Instant::now();
            match walking_to_dbta_with(a, &opts) {
                Ok((d, stats)) => println!(
                    "{label}: dbta={} misses={} pairs={} steps={} rounds={} wall={:.0}ms",
                    d.n_states(),
                    stats.memo_misses,
                    stats.pairs,
                    stats.fixpoint_steps,
                    stats.rounds,
                    t0.elapsed().as_secs_f64() * 1e3
                ),
                Err(e) => println!(
                    "{label}: DIVERGED past 2000 classes ({e:?}) after {:.0}ms",
                    t0.elapsed().as_secs_f64() * 1e3
                ),
            }
        };
        for (core, salt, expose, up) in [
            (12, 0.25, 4, 6),
            (12, 0.3, 5, 5),
            (13, 0.25, 4, 6),
            (14, 0.2, 4, 6),
            (14, 0.25, 3, 5),
        ] {
            let p = GenParams {
                core,
                salt,
                expose,
                up_targets: up,
                fan: FAN,
            };
            let a = gen_with(&al, 64, 0xA11CE, p);
            show(
                format!("n=64 core={core} salt={salt} expose={expose} up={up}"),
                &a,
            );
        }
        for n in [128usize, 256, 512, 1024] {
            let a = scaled_walker(&al, n, 0xA11CE);
            show(format!("n={n} (tuned)"), &a);
        }
    }

    #[test]
    fn smallest_instance_converges_and_saturates() {
        let spec = walk_scale_specs(true)[0];
        let a = build(&spec);
        // The explicit limit turns a generator regression (divergent
        // behaviour closure) into a fast test failure instead of a hang.
        let opts = WalkOptions {
            limit: 20_000,
            ..Default::default()
        };
        let (d, stats) = walking_to_dbta_with(&a, &opts).unwrap();
        println!(
            "ws-{}: dbta_states={} misses={} pairs={} steps={} rounds={}",
            spec.states,
            d.n_states(),
            stats.memo_misses,
            stats.pairs,
            stats.fixpoint_steps,
            stats.rounds
        );
        assert!(d.n_states() > 1, "family must not collapse to a point");
        assert!(
            stats.memo_misses > 1_000,
            "frontier must stay saturated under projected memoization \
             (got {} distinct jobs)",
            stats.memo_misses
        );
        assert_eq!(
            stats.memo_hits + stats.memo_misses,
            stats.compositions,
            "memo accounting must cover every composition"
        );
    }
}
