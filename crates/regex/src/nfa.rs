//! Nondeterministic finite word automata via the Glushkov (position)
//! construction — no epsilon transitions, one state per symbol occurrence.

use crate::ast::Regex;
use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;

/// A nondeterministic finite automaton over symbols `S`, without epsilon
/// transitions. State `0` is always the unique start state.
#[derive(Clone, Debug)]
pub struct Nfa<S> {
    /// `trans[q]` maps a symbol to the successor states of `q`.
    trans: Vec<HashMap<S, Vec<usize>>>,
    /// `finals[q]` is true when `q` accepts.
    finals: Vec<bool>,
}

impl<S: Copy + Eq + Hash + Ord> Nfa<S> {
    /// Builds the Glushkov automaton of a regular expression.
    ///
    /// The automaton has `1 + |positions|` states and recognizes exactly
    /// `L(regex)`.
    pub fn from_regex(regex: &Regex<S>) -> Nfa<S> {
        // Linearize: collect positions (occurrences of symbols) in order.
        let mut positions = Vec::new();
        linearize(regex, &mut positions);
        let info = glushkov(regex, &mut 0);

        let n = positions.len() + 1;
        let mut trans: Vec<HashMap<S, Vec<usize>>> = vec![HashMap::new(); n];
        for &p in &info.first {
            trans[0].entry(positions[p]).or_default().push(p + 1);
        }
        for (p, follows) in info.follow.iter().enumerate() {
            for &q in follows {
                trans[p + 1].entry(positions[q]).or_default().push(q + 1);
            }
        }
        let mut finals = vec![false; n];
        finals[0] = info.nullable;
        for &p in &info.last {
            finals[p + 1] = true;
        }
        Nfa { trans, finals }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.trans.len()
    }

    /// True when the automaton has no states (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.trans.is_empty()
    }

    /// Whether state `q` is accepting.
    pub fn is_final(&self, q: usize) -> bool {
        self.finals[q]
    }

    /// The successors of `q` on `s`.
    pub fn step(&self, q: usize, s: S) -> &[usize] {
        self.trans[q].get(&s).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All symbols labeling at least one transition.
    pub fn alphabet(&self) -> BTreeSet<S> {
        self.trans.iter().flat_map(|m| m.keys().copied()).collect()
    }

    /// Subset-simulation membership test.
    pub fn accepts(&self, word: &[S]) -> bool {
        let mut cur: BTreeSet<usize> = BTreeSet::from([0]);
        for &s in word {
            let mut next = BTreeSet::new();
            for &q in &cur {
                next.extend(self.step(q, s).iter().copied());
            }
            if next.is_empty() {
                return false;
            }
            cur = next;
        }
        cur.iter().any(|&q| self.finals[q])
    }

    /// The successor set of a state set on a symbol (used by the subset
    /// construction).
    pub fn step_set(&self, set: &BTreeSet<usize>, s: S) -> BTreeSet<usize> {
        let mut next = BTreeSet::new();
        for &q in set {
            next.extend(self.step(q, s).iter().copied());
        }
        next
    }
}

struct Glushkov {
    nullable: bool,
    first: BTreeSet<usize>,
    last: BTreeSet<usize>,
    /// `follow[p]` = positions that may follow position `p`.
    follow: Vec<BTreeSet<usize>>,
}

fn linearize<S: Copy>(r: &Regex<S>, out: &mut Vec<S>) {
    match r {
        Regex::Empty | Regex::Epsilon => {}
        Regex::Sym(s) => out.push(*s),
        Regex::Concat(a, b) | Regex::Alt(a, b) => {
            linearize(a, out);
            linearize(b, out);
        }
        Regex::Star(a) | Regex::Plus(a) | Regex::Opt(a) => linearize(a, out),
    }
}

fn glushkov<S>(r: &Regex<S>, next_pos: &mut usize) -> Glushkov {
    match r {
        Regex::Empty => Glushkov {
            nullable: false,
            first: BTreeSet::new(),
            last: BTreeSet::new(),
            follow: Vec::new(),
        },
        Regex::Epsilon => Glushkov {
            nullable: true,
            first: BTreeSet::new(),
            last: BTreeSet::new(),
            follow: Vec::new(),
        },
        Regex::Sym(_) => {
            let p = *next_pos;
            *next_pos += 1;
            Glushkov {
                nullable: false,
                first: BTreeSet::from([p]),
                last: BTreeSet::from([p]),
                follow: vec![BTreeSet::new()],
            }
        }
        Regex::Concat(a, b) => {
            let base_a = *next_pos;
            let ga = glushkov(a, next_pos);
            let gb = glushkov(b, next_pos);
            let mut follow = ga.follow;
            follow.extend(gb.follow);
            // last(a) × first(b)
            for &p in &ga.last {
                follow[p - base_a].extend(gb.first.iter().copied());
            }
            // Reindex: follow is indexed relative to base_a; positions are
            // global already because next_pos is threaded through.
            let mut first = ga.first.clone();
            if ga.nullable {
                first.extend(gb.first.iter().copied());
            }
            let mut last = gb.last.clone();
            if gb.nullable {
                last.extend(ga.last.iter().copied());
            }
            Glushkov {
                nullable: ga.nullable && gb.nullable,
                first,
                last,
                follow,
            }
        }
        Regex::Alt(a, b) => {
            let ga = glushkov(a, next_pos);
            let gb = glushkov(b, next_pos);
            let mut follow = ga.follow;
            follow.extend(gb.follow);
            Glushkov {
                nullable: ga.nullable || gb.nullable,
                first: ga.first.union(&gb.first).copied().collect(),
                last: ga.last.union(&gb.last).copied().collect(),
                follow,
            }
        }
        Regex::Star(a) | Regex::Plus(a) => {
            let base = *next_pos;
            let ga = glushkov(a, next_pos);
            let mut follow = ga.follow;
            for &p in &ga.last {
                follow[p - base].extend(ga.first.iter().copied());
            }
            Glushkov {
                nullable: matches!(r, Regex::Star(_)) || ga.nullable,
                first: ga.first,
                last: ga.last,
                follow,
            }
        }
        Regex::Opt(a) => {
            let ga = glushkov(a, next_pos);
            Glushkov {
                nullable: true,
                first: ga.first,
                last: ga.last,
                follow: ga.follow,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn nfa(src: &str) -> Nfa<char> {
        let r = parse(src).unwrap();
        let r = r.map(&mut |name: &String| {
            assert_eq!(name.len(), 1);
            name.chars().next().unwrap()
        });
        Nfa::from_regex(&r)
    }

    fn accepts(n: &Nfa<char>, w: &str) -> bool {
        n.accepts(&w.chars().collect::<Vec<_>>())
    }

    #[test]
    fn simple_word() {
        let n = nfa("a.b.c");
        assert!(accepts(&n, "abc"));
        assert!(!accepts(&n, "ab"));
        assert!(!accepts(&n, "abcc"));
        assert!(!accepts(&n, ""));
    }

    #[test]
    fn star_and_alt() {
        let n = nfa("a.(b|c)*.d");
        assert!(accepts(&n, "ad"));
        assert!(accepts(&n, "abd"));
        assert!(accepts(&n, "abcbccd"));
        assert!(!accepts(&n, "abca"));
        assert!(!accepts(&n, "d"));
    }

    #[test]
    fn nullable_expressions() {
        let n = nfa("a*");
        assert!(accepts(&n, ""));
        assert!(accepts(&n, "aaaa"));
        assert!(!accepts(&n, "ab"));
        let n = nfa("a?");
        assert!(accepts(&n, ""));
        assert!(accepts(&n, "a"));
        assert!(!accepts(&n, "aa"));
        let n = nfa("a+");
        assert!(!accepts(&n, ""));
        assert!(accepts(&n, "a"));
        assert!(accepts(&n, "aaa"));
    }

    #[test]
    fn even_pairs() {
        // (b.b)* — the output type of Example 4.2.
        let n = nfa("(b.b)*");
        for (w, want) in [
            ("", true),
            ("b", false),
            ("bb", true),
            ("bbb", false),
            ("bbbb", true),
        ] {
            assert_eq!(accepts(&n, w), want, "word {w:?}");
        }
    }

    #[test]
    fn empty_language() {
        let n = nfa("@empty");
        assert!(!accepts(&n, ""));
        assert!(!accepts(&n, "a"));
        let n = nfa("@eps");
        assert!(accepts(&n, ""));
        assert!(!accepts(&n, "a"));
    }

    #[test]
    fn glushkov_state_count() {
        // 1 + number of symbol occurrences.
        let n = nfa("a.(b|(c.d))*.e");
        assert_eq!(n.len(), 6);
    }

    #[test]
    fn duplicate_symbols() {
        let n = nfa("a.a|a");
        assert!(accepts(&n, "a"));
        assert!(accepts(&n, "aa"));
        assert!(!accepts(&n, "aaa"));
    }
}
