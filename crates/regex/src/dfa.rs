//! Deterministic finite word automata: subset construction, boolean
//! operations, decision procedures, Moore minimization, enumeration.

use crate::ast::Regex;
use crate::nfa::Nfa;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::hash::Hash;

/// A deterministic finite automaton over an explicit, fixed alphabet.
///
/// The transition function may be partial (`None` = dead); completion adds
/// an explicit sink. The alphabet is stored sorted, so automata built over
/// the same universe are directly composable.
#[derive(Clone, Debug)]
pub struct Dfa<S> {
    alphabet: Vec<S>,
    /// `trans[q][i]` = successor of `q` on `alphabet[i]`.
    trans: Vec<Vec<Option<u32>>>,
    start: u32,
    finals: Vec<bool>,
}

impl<S: Copy + Eq + Hash + Ord> Dfa<S> {
    /// Compiles a regular expression over the given universe (which must
    /// contain every symbol of the expression).
    pub fn from_regex(regex: &Regex<S>, universe: &[S]) -> Dfa<S> {
        let nfa = Nfa::from_regex(regex);
        Self::from_nfa(&nfa, universe)
    }

    /// Subset construction. `universe` must contain every symbol of the NFA.
    pub fn from_nfa(nfa: &Nfa<S>, universe: &[S]) -> Dfa<S> {
        let alphabet = sorted_dedup(universe);
        debug_assert!(
            nfa.alphabet()
                .iter()
                .all(|s| alphabet.binary_search(s).is_ok()),
            "universe must contain the NFA's alphabet"
        );
        let mut index: HashMap<BTreeSet<usize>, u32> = HashMap::new();
        let mut states: Vec<BTreeSet<usize>> = Vec::new();
        let mut trans: Vec<Vec<Option<u32>>> = Vec::new();
        let start_set = BTreeSet::from([0]);
        index.insert(start_set.clone(), 0);
        states.push(start_set);
        trans.push(vec![None; alphabet.len()]);
        let mut queue = VecDeque::from([0u32]);
        while let Some(q) = queue.pop_front() {
            for (i, &s) in alphabet.iter().enumerate() {
                let next = nfa.step_set(&states[q as usize], s);
                if next.is_empty() {
                    continue;
                }
                let id = *index.entry(next.clone()).or_insert_with(|| {
                    let id = states.len() as u32;
                    states.push(next);
                    trans.push(vec![None; alphabet.len()]);
                    queue.push_back(id);
                    id
                });
                trans[q as usize][i] = Some(id);
            }
        }
        let finals = states
            .iter()
            .map(|set| set.iter().any(|&q| nfa.is_final(q)))
            .collect();
        Dfa {
            alphabet,
            trans,
            start: 0,
            finals,
        }
    }

    /// Assembles a DFA from parts: `alphabet` must be sorted and
    /// deduplicated; `trans[q][i]` is the successor on `alphabet[i]`.
    pub fn from_parts(
        alphabet: Vec<S>,
        trans: Vec<Vec<Option<u32>>>,
        start: u32,
        finals: Vec<bool>,
    ) -> Dfa<S> {
        debug_assert!(alphabet.windows(2).all(|w| w[0] < w[1]));
        debug_assert_eq!(trans.len(), finals.len());
        Dfa {
            alphabet,
            trans,
            start,
            finals,
        }
    }

    /// A DFA accepting nothing, over the given universe.
    pub fn empty(universe: &[S]) -> Dfa<S> {
        let alphabet = sorted_dedup(universe);
        Dfa {
            trans: vec![vec![None; alphabet.len()]],
            alphabet,
            start: 0,
            finals: vec![false],
        }
    }

    /// The (sorted) alphabet.
    pub fn alphabet(&self) -> &[S] {
        &self.alphabet
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.trans.len()
    }

    /// True when there are no states (cannot happen for constructed DFAs).
    pub fn is_empty_automaton(&self) -> bool {
        self.trans.is_empty()
    }

    /// The start state.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Whether `q` accepts.
    pub fn is_final(&self, q: u32) -> bool {
        self.finals[q as usize]
    }

    fn sym_index(&self, s: S) -> Option<usize> {
        self.alphabet.binary_search(&s).ok()
    }

    /// The successor of `q` on `s` (`None` = dead or unknown symbol).
    pub fn step(&self, q: u32, s: S) -> Option<u32> {
        let i = self.sym_index(s)?;
        self.trans[q as usize][i]
    }

    /// Membership test.
    pub fn accepts(&self, word: &[S]) -> bool {
        let mut q = self.start;
        for &s in word {
            match self.step(q, s) {
                Some(next) => q = next,
                None => return false,
            }
        }
        self.finals[q as usize]
    }

    /// Re-bases the DFA onto a larger universe (new symbols are dead).
    pub fn extend_alphabet(&self, universe: &[S]) -> Dfa<S> {
        let alphabet = sorted_dedup_union(&self.alphabet, universe);
        let map: Vec<Option<usize>> = alphabet
            .iter()
            .map(|s| self.alphabet.binary_search(s).ok())
            .collect();
        let trans = self
            .trans
            .iter()
            .map(|row| map.iter().map(|m| m.and_then(|i| row[i])).collect())
            .collect();
        Dfa {
            alphabet,
            trans,
            start: self.start,
            finals: self.finals.clone(),
        }
    }

    /// Makes the transition function total by adding a rejecting sink.
    pub fn complete(&self) -> Dfa<S> {
        if self.trans.iter().all(|row| row.iter().all(Option::is_some)) {
            return self.clone();
        }
        let sink = self.trans.len() as u32;
        let mut trans: Vec<Vec<Option<u32>>> = self
            .trans
            .iter()
            .map(|row| row.iter().map(|t| t.or(Some(sink))).collect())
            .collect();
        trans.push(vec![Some(sink); self.alphabet.len()]);
        let mut finals = self.finals.clone();
        finals.push(false);
        Dfa {
            alphabet: self.alphabet.clone(),
            trans,
            start: self.start,
            finals,
        }
    }

    /// Complement relative to the given universe (must contain the DFA's
    /// alphabet).
    pub fn complement(&self, universe: &[S]) -> Dfa<S> {
        let mut d = self.extend_alphabet(universe).complete();
        for f in &mut d.finals {
            *f = !*f;
        }
        d
    }

    /// Product construction; `keep(a_final, b_final)` decides finality.
    /// Both automata are first re-based onto the union of their alphabets
    /// and completed, so ∧, ∨ and ∖ are all expressible.
    pub fn product(&self, other: &Dfa<S>, keep: impl Fn(bool, bool) -> bool) -> Dfa<S> {
        let universe = sorted_dedup_union(&self.alphabet, &other.alphabet);
        let a = self.extend_alphabet(&universe).complete();
        let b = other.extend_alphabet(&universe).complete();
        let mut index: HashMap<(u32, u32), u32> = HashMap::new();
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut trans: Vec<Vec<Option<u32>>> = Vec::new();
        index.insert((a.start, b.start), 0);
        pairs.push((a.start, b.start));
        trans.push(vec![None; universe.len()]);
        let mut queue = VecDeque::from([0u32]);
        while let Some(q) = queue.pop_front() {
            let (qa, qb) = pairs[q as usize];
            for i in 0..universe.len() {
                let na = a.trans[qa as usize][i].expect("complete");
                let nb = b.trans[qb as usize][i].expect("complete");
                let id = *index.entry((na, nb)).or_insert_with(|| {
                    let id = pairs.len() as u32;
                    pairs.push((na, nb));
                    trans.push(vec![None; universe.len()]);
                    queue.push_back(id);
                    id
                });
                trans[q as usize][i] = Some(id);
            }
        }
        let finals = pairs
            .iter()
            .map(|&(qa, qb)| keep(a.finals[qa as usize], b.finals[qb as usize]))
            .collect();
        Dfa {
            alphabet: universe,
            trans,
            start: 0,
            finals,
        }
    }

    /// Intersection.
    pub fn intersect(&self, other: &Dfa<S>) -> Dfa<S> {
        self.product(other, |a, b| a && b)
    }

    /// Union.
    pub fn union(&self, other: &Dfa<S>) -> Dfa<S> {
        self.product(other, |a, b| a || b)
    }

    /// Difference `L(self) ∖ L(other)`.
    pub fn difference(&self, other: &Dfa<S>) -> Dfa<S> {
        self.product(other, |a, b| a && !b)
    }

    /// A shortest accepted word, or `None` when the language is empty.
    pub fn witness(&self) -> Option<Vec<S>> {
        let mut pred: Vec<Option<(u32, S)>> = vec![None; self.trans.len()];
        let mut seen = vec![false; self.trans.len()];
        let mut queue = VecDeque::from([self.start]);
        seen[self.start as usize] = true;
        let mut hit = if self.finals[self.start as usize] {
            Some(self.start)
        } else {
            None
        };
        while hit.is_none() {
            let Some(q) = queue.pop_front() else { break };
            for (i, t) in self.trans[q as usize].iter().enumerate() {
                if let Some(next) = t {
                    if !seen[*next as usize] {
                        seen[*next as usize] = true;
                        pred[*next as usize] = Some((q, self.alphabet[i]));
                        if self.finals[*next as usize] {
                            hit = Some(*next);
                            break;
                        }
                        queue.push_back(*next);
                    }
                }
            }
        }
        let mut cur = hit?;
        let mut word = Vec::new();
        while let Some((p, s)) = pred[cur as usize] {
            word.push(s);
            cur = p;
        }
        word.reverse();
        Some(word)
    }

    /// Whether the language is empty.
    pub fn is_empty(&self) -> bool {
        self.witness().is_none()
    }

    /// Language inclusion `L(self) ⊆ L(other)`.
    pub fn subset_of(&self, other: &Dfa<S>) -> bool {
        self.difference(other).is_empty()
    }

    /// Language equivalence.
    pub fn equivalent(&self, other: &Dfa<S>) -> bool {
        self.subset_of(other) && other.subset_of(self)
    }

    /// Moore partition-refinement minimization (on the completed automaton,
    /// restricted to reachable states).
    pub fn minimize(&self) -> Dfa<S> {
        let d = self.complete().reachable();
        let n = d.trans.len();
        // partition ids per state; start from finality.
        let mut part: Vec<u32> = d.finals.iter().map(|&f| f as u32).collect();
        loop {
            let mut sig_index: BTreeMap<(u32, Vec<u32>), u32> = BTreeMap::new();
            let mut next_part = vec![0u32; n];
            for q in 0..n {
                let sig: Vec<u32> = d.trans[q]
                    .iter()
                    .map(|t| part[t.expect("complete") as usize])
                    .collect();
                let key = (part[q], sig);
                let next_id = sig_index.len() as u32;
                let id = *sig_index.entry(key).or_insert(next_id);
                next_part[q] = id;
            }
            if next_part == part {
                break;
            }
            part = next_part;
        }
        let classes = part.iter().copied().max().map_or(0, |m| m + 1) as usize;
        let mut trans = vec![vec![None; d.alphabet.len()]; classes];
        let mut finals = vec![false; classes];
        for q in 0..n {
            let c = part[q] as usize;
            finals[c] = d.finals[q];
            for (i, t) in d.trans[q].iter().enumerate() {
                trans[c][i] = Some(part[t.expect("complete") as usize]);
            }
        }
        Dfa {
            alphabet: d.alphabet,
            trans,
            start: part[d.start as usize],
            finals,
        }
    }

    /// Restricts to states reachable from the start state.
    pub fn reachable(&self) -> Dfa<S> {
        let mut map: Vec<Option<u32>> = vec![None; self.trans.len()];
        let mut order: Vec<u32> = Vec::new();
        let mut queue = VecDeque::from([self.start]);
        map[self.start as usize] = Some(0);
        order.push(self.start);
        while let Some(q) = queue.pop_front() {
            for next in self.trans[q as usize].iter().flatten() {
                if map[*next as usize].is_none() {
                    map[*next as usize] = Some(order.len() as u32);
                    order.push(*next);
                    queue.push_back(*next);
                }
            }
        }
        let trans = order
            .iter()
            .map(|&q| {
                self.trans[q as usize]
                    .iter()
                    .map(|t| t.map(|n| map[n as usize].expect("reachable")))
                    .collect()
            })
            .collect();
        let finals = order.iter().map(|&q| self.finals[q as usize]).collect();
        Dfa {
            alphabet: self.alphabet.clone(),
            trans,
            start: 0,
            finals,
        }
    }

    /// Converts back to a regular expression by state elimination
    /// (McNaughton–Yamada). The result can be large but islanguage-equivalent;
    /// used to render inferred types human-readably.
    pub fn to_regex(&self) -> Regex<S> {
        // GNFA: fresh initial I and final F; edges carry regexes.
        let n = self.trans.len();
        let init = n;
        let fin = n + 1;
        let mut edge: std::collections::HashMap<(usize, usize), Regex<S>> =
            std::collections::HashMap::new();
        let add = |edges: &mut std::collections::HashMap<(usize, usize), Regex<S>>,
                   from: usize,
                   to: usize,
                   r: Regex<S>| {
            let slot = edges.entry((from, to)).or_insert(Regex::Empty);
            *slot = std::mem::replace(slot, Regex::Empty).alt(r);
        };
        add(&mut edge, init, self.start as usize, Regex::Epsilon);
        for (q, row) in self.trans.iter().enumerate() {
            for (i, t) in row.iter().enumerate() {
                if let Some(next) = t {
                    add(&mut edge, q, *next as usize, Regex::Sym(self.alphabet[i]));
                }
            }
            if self.finals[q] {
                add(&mut edge, q, fin, Regex::Epsilon);
            }
        }
        // Eliminate original states one by one.
        for k in 0..n {
            let self_loop = edge.remove(&(k, k)).unwrap_or(Regex::Empty).star();
            let incoming: Vec<(usize, Regex<S>)> = edge
                .iter()
                .filter(|((_, to), _)| *to == k)
                .map(|((from, _), r)| (*from, r.clone()))
                .collect();
            let outgoing: Vec<(usize, Regex<S>)> = edge
                .iter()
                .filter(|((from, _), _)| *from == k)
                .map(|((_, to), r)| (*to, r.clone()))
                .collect();
            edge.retain(|(from, to), _| *from != k && *to != k);
            for (from, rin) in &incoming {
                if *from == k {
                    continue;
                }
                for (to, rout) in &outgoing {
                    if *to == k {
                        continue;
                    }
                    let path = rin.clone().concat(self_loop.clone()).concat(rout.clone());
                    add(&mut edge, *from, *to, path);
                }
            }
        }
        edge.remove(&(init, fin)).unwrap_or(Regex::Empty)
    }

    /// All accepted words of length at most `max_len`, in length-then-
    /// lexicographic order, up to `limit` words.
    pub fn words_up_to(&self, max_len: usize, limit: usize) -> Vec<Vec<S>> {
        let mut out = Vec::new();
        let mut layer: Vec<(u32, Vec<S>)> = vec![(self.start, Vec::new())];
        for len in 0..=max_len {
            for (q, w) in &layer {
                if self.finals[*q as usize] {
                    out.push(w.clone());
                    if out.len() >= limit {
                        return out;
                    }
                }
            }
            if len == max_len {
                break;
            }
            let mut next = Vec::new();
            for (q, w) in &layer {
                for (i, t) in self.trans[*q as usize].iter().enumerate() {
                    if let Some(n) = t {
                        let mut w2 = w.clone();
                        w2.push(self.alphabet[i]);
                        next.push((*n, w2));
                    }
                }
            }
            layer = next;
        }
        out
    }
}

fn sorted_dedup<S: Copy + Ord>(xs: &[S]) -> Vec<S> {
    let mut v = xs.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

fn sorted_dedup_union<S: Copy + Ord>(a: &[S], b: &[S]) -> Vec<S> {
    let mut v = a.to_vec();
    v.extend_from_slice(b);
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn rex(src: &str) -> Regex<char> {
        parse(src)
            .unwrap()
            .map(&mut |n: &String| n.chars().next().unwrap())
    }

    fn dfa(src: &str, universe: &str) -> Dfa<char> {
        Dfa::from_regex(&rex(src), &universe.chars().collect::<Vec<_>>())
    }

    fn acc(d: &Dfa<char>, w: &str) -> bool {
        d.accepts(&w.chars().collect::<Vec<_>>())
    }

    #[test]
    fn determinization_preserves_language() {
        let d = dfa("a.(b|c)*.d", "abcd");
        assert!(acc(&d, "ad"));
        assert!(acc(&d, "abcbd"));
        assert!(!acc(&d, "abc"));
        assert!(!acc(&d, ""));
    }

    #[test]
    fn complement() {
        let d = dfa("(b.b)*", "b").complement(&['b']);
        assert!(!acc(&d, ""));
        assert!(acc(&d, "b"));
        assert!(!acc(&d, "bb"));
        assert!(acc(&d, "bbb"));
    }

    #[test]
    fn complement_with_larger_universe() {
        let d = dfa("a*", "ab").complement(&['a', 'b']);
        assert!(!acc(&d, "aa"));
        assert!(acc(&d, "ab"));
        assert!(acc(&d, "b"));
    }

    #[test]
    fn products() {
        let even_a = dfa("(a.a)*", "a");
        let nonempty = dfa("a+", "a");
        let i = even_a.intersect(&nonempty);
        assert!(!acc(&i, ""));
        assert!(acc(&i, "aa"));
        assert!(!acc(&i, "aaa"));
        let u = even_a.union(&nonempty);
        assert!(acc(&u, ""));
        assert!(acc(&u, "aaa"));
        let diff = nonempty.difference(&even_a);
        assert!(acc(&diff, "a"));
        assert!(!acc(&diff, "aa"));
    }

    #[test]
    fn witness_and_emptiness() {
        let d = dfa("a.b.c", "abc");
        assert_eq!(d.witness(), Some(vec!['a', 'b', 'c']));
        assert!(!d.is_empty());
        let e = dfa("a", "ab").intersect(&dfa("b", "ab"));
        assert!(e.is_empty());
        assert_eq!(e.witness(), None);
        let eps = dfa("a*", "a");
        assert_eq!(eps.witness(), Some(vec![]));
    }

    #[test]
    fn inclusion_and_equivalence() {
        let d1 = dfa("a.a", "a");
        let d2 = dfa("(a.a)*", "a");
        let d3 = dfa("a*", "a");
        assert!(d1.subset_of(&d2));
        assert!(d2.subset_of(&d3));
        assert!(!d3.subset_of(&d2));
        assert!(d2.equivalent(&dfa("(a.a)*", "a")));
        assert!(!d2.equivalent(&d3));
    }

    #[test]
    fn minimization_reduces_and_preserves() {
        // (a|b)*.a.(a|b) has a 4-state minimal DFA (plus sink = 5 complete).
        let d = dfa("(a|b)*.a.(a|b)", "ab");
        let m = d.minimize();
        assert!(m.equivalent(&d));
        assert!(m.len() <= d.complete().len());
        for w in ["aa", "ab", "ba", "bb", "aab", "abab", ""] {
            assert_eq!(acc(&m, w), acc(&d, w), "word {w}");
        }
    }

    #[test]
    fn words_up_to_enumerates_in_order() {
        let d = dfa("a.b*", "ab");
        let ws = d.words_up_to(3, 10);
        let strings: Vec<String> = ws.iter().map(|w| w.iter().collect()).collect();
        assert_eq!(strings, vec!["a", "ab", "abb"]);
    }

    #[test]
    fn empty_automaton() {
        let d: Dfa<char> = Dfa::empty(&['a']);
        assert!(d.is_empty());
        assert!(!acc(&d, ""));
        let c = d.complement(&['a']);
        assert!(acc(&c, ""));
        assert!(acc(&c, "aaa"));
    }

    #[test]
    fn extend_alphabet_is_conservative() {
        let d = dfa("a*", "a");
        let e = d.extend_alphabet(&['a', 'b']);
        assert!(acc(&e, "aa"));
        assert!(!acc(&e, "ab"));
        assert_eq!(e.alphabet(), &['a', 'b']);
    }
}

#[cfg(test)]
mod to_regex_tests {
    use super::*;
    use crate::parse::parse;

    fn rex(src: &str) -> Regex<char> {
        parse(src)
            .unwrap()
            .map(&mut |n: &String| n.chars().next().unwrap())
    }

    #[test]
    fn round_trip_preserves_language() {
        for src in [
            "a.b.c",
            "(a|b)*",
            "a.(b|c)*.a",
            "(a.a)*",
            "a?",
            "@empty",
            "@eps",
            "(a|b)*.a.(a|b)",
        ] {
            let d = Dfa::from_regex(&rex(src), &['a', 'b', 'c']);
            let back = d.to_regex();
            let d2 = Dfa::from_regex(&back, &['a', 'b', 'c']);
            assert!(d.equivalent(&d2), "round trip failed for {src}: got {back}");
        }
    }

    #[test]
    fn minimized_inputs_give_compact_output() {
        let d = Dfa::from_regex(&rex("(b.b)*"), &['b']).minimize();
        let r = d.to_regex();
        let d2 = Dfa::from_regex(&r, &['b']);
        assert!(d.equivalent(&d2));
    }
}
