//! Star-free *generalized* regular expressions — the engine of the
//! Theorem 4.8 lower bound.
//!
//! These are expressions built from symbols, concatenation, union and
//! **complement** (no Kleene star). Deciding their emptiness is
//! non-elementary (Stockmeyer), and the paper reduces it to typechecking
//! deterministic k-pebble transducers: hence typechecking is
//! non-elementary too (Theorem 4.8), and emptiness of deterministic
//! k-pebble automata without branching likewise (Corollary 4.9).
//!
//! This module provides the expression algebra, compilation to DFAs (each
//! complement is one determinization — the tower), emptiness with witness,
//! and the classical *counting family* whose minimal DFAs grow one
//! exponential per nesting level, which experiment E9 measures.

use crate::ast::Regex;
use crate::dfa::Dfa;
use std::fmt;
use std::hash::Hash;

/// A star-free generalized regular expression over symbols `S`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StarFree<S> {
    /// `∅`.
    Empty,
    /// `{ε}`.
    Epsilon,
    /// A single symbol.
    Sym(S),
    /// Concatenation.
    Concat(Box<StarFree<S>>, Box<StarFree<S>>),
    /// Union.
    Union(Box<StarFree<S>>, Box<StarFree<S>>),
    /// Complement relative to `Σ*`.
    Not(Box<StarFree<S>>),
}

impl<S: Copy + Eq + Hash + Ord> StarFree<S> {
    /// `Σ*` as `¬∅` — definable without star, the hallmark of the class.
    pub fn universe() -> StarFree<S> {
        StarFree::Not(Box::new(StarFree::Empty))
    }

    /// Concatenation.
    pub fn then(self, other: StarFree<S>) -> StarFree<S> {
        StarFree::Concat(Box::new(self), Box::new(other))
    }

    /// Union.
    pub fn or(self, other: StarFree<S>) -> StarFree<S> {
        StarFree::Union(Box::new(self), Box::new(other))
    }

    /// Complement.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> StarFree<S> {
        StarFree::Not(Box::new(self))
    }

    /// Intersection, by De Morgan (costs two complement levels).
    pub fn and(self, other: StarFree<S>) -> StarFree<S> {
        self.not().or(other.not()).not()
    }

    /// Maximum complement-nesting depth — the parameter driving the
    /// non-elementary cost (and the pebble count of the Theorem 4.8
    /// reduction's automata).
    pub fn complement_depth(&self) -> usize {
        match self {
            StarFree::Empty | StarFree::Epsilon | StarFree::Sym(_) => 0,
            StarFree::Concat(a, b) | StarFree::Union(a, b) => {
                a.complement_depth().max(b.complement_depth())
            }
            StarFree::Not(a) => 1 + a.complement_depth(),
        }
    }

    /// Expression size (node count).
    pub fn size(&self) -> usize {
        match self {
            StarFree::Empty | StarFree::Epsilon | StarFree::Sym(_) => 1,
            StarFree::Concat(a, b) | StarFree::Union(a, b) => 1 + a.size() + b.size(),
            StarFree::Not(a) => 1 + a.size(),
        }
    }

    /// Compiles to a DFA over the given universe. Each complement performs
    /// a determinization: with nesting depth `d`, the intermediate automata
    /// can tower `d` exponentials high — by design; use
    /// [`StarFree::to_dfa_limited`] to bound the damage.
    pub fn to_dfa(&self, universe: &[S]) -> Dfa<S> {
        self.to_dfa_limited(universe, usize::MAX)
            .expect("unlimited compilation cannot hit the limit")
    }

    /// [`StarFree::to_dfa`] aborting with `None` once any intermediate DFA
    /// exceeds `state_limit` states.
    pub fn to_dfa_limited(&self, universe: &[S], state_limit: usize) -> Option<Dfa<S>> {
        let d = match self {
            StarFree::Empty => Dfa::empty(universe),
            StarFree::Epsilon => Dfa::from_regex(&Regex::Epsilon, universe),
            StarFree::Sym(s) => Dfa::from_regex(&Regex::Sym(*s), universe),
            StarFree::Concat(a, b) => {
                // Concatenate via NFA glue: L(a)·L(b) as a regex over the
                // two DFAs is awkward; instead use the product-free route:
                // translate both to regexes? Not available. Use the
                // standard ε-free construction on DFAs:
                let da = a.to_dfa_limited(universe, state_limit)?;
                let db = b.to_dfa_limited(universe, state_limit)?;
                concat_dfas(&da, &db, universe)
            }
            StarFree::Union(a, b) => {
                let da = a.to_dfa_limited(universe, state_limit)?;
                let db = b.to_dfa_limited(universe, state_limit)?;
                da.union(&db)
            }
            StarFree::Not(a) => a
                .to_dfa_limited(universe, state_limit)?
                .complement(universe),
        };
        let d = d.minimize();
        if d.len() > state_limit {
            return None;
        }
        Some(d)
    }

    /// Emptiness, with a witness word when nonempty.
    pub fn witness(&self, universe: &[S]) -> Option<Vec<S>> {
        self.to_dfa(universe).witness()
    }
}

/// DFA concatenation via subset construction over pairs: a run is in state
/// `(qa, B)` where `B` is the set of `b`-states reachable assuming the
/// split happened at some earlier point.
fn concat_dfas<S: Copy + Eq + Hash + Ord>(a: &Dfa<S>, b: &Dfa<S>, universe: &[S]) -> Dfa<S> {
    // Reuse the Glushkov machinery by going through an NFA encoding: build
    // an NFA with a's states, b's states, and ε-free bridging: any
    // transition into an accepting a-state also enters b's start
    // successors; if a accepts ε, b runs from the start too.
    // Implemented directly as a product-of-automata-free construction:
    use std::collections::{BTreeSet, HashMap, VecDeque};
    let a = a.complete();
    let b = b.complete();
    type Cfg = (u32, BTreeSet<u32>);
    let start_b: BTreeSet<u32> = if a.is_final(a.start()) {
        BTreeSet::from([b.start()])
    } else {
        BTreeSet::new()
    };
    let mut sorted_universe: Vec<S> = universe.to_vec();
    sorted_universe.sort_unstable();
    sorted_universe.dedup();
    let start: Cfg = (a.start(), start_b);
    let mut index: HashMap<Cfg, u32> = HashMap::new();
    let mut cfgs: Vec<Cfg> = vec![start.clone()];
    index.insert(start, 0);
    let mut trans: Vec<Vec<Option<u32>>> = vec![vec![None; sorted_universe.len()]];
    let mut queue = VecDeque::from([0u32]);
    while let Some(q) = queue.pop_front() {
        let (qa, bs) = cfgs[q as usize].clone();
        for (i, &s) in sorted_universe.iter().enumerate() {
            let na = a.step(qa, s).expect("complete");
            let mut nb: BTreeSet<u32> = bs.iter().filter_map(|&qb| b.step(qb, s)).collect();
            if a.is_final(na) {
                nb.insert(b.start());
            }
            let cfg = (na, nb);
            let id = *index.entry(cfg.clone()).or_insert_with(|| {
                let id = cfgs.len() as u32;
                cfgs.push(cfg);
                trans.push(vec![None; sorted_universe.len()]);
                queue.push_back(id);
                id
            });
            trans[q as usize][i] = Some(id);
        }
    }
    let finals: Vec<bool> = cfgs
        .iter()
        .map(|(_, bs)| bs.iter().any(|&qb| b.is_final(qb)))
        .collect();
    Dfa::from_parts(sorted_universe, trans, 0, finals)
}

impl<S: fmt::Display> fmt::Display for StarFree<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StarFree::Empty => write!(f, "∅"),
            StarFree::Epsilon => write!(f, "ε"),
            StarFree::Sym(s) => write!(f, "{s}"),
            StarFree::Concat(a, b) => write!(f, "({a}·{b})"),
            StarFree::Union(a, b) => write!(f, "({a}|{b})"),
            StarFree::Not(a) => write!(f, "¬({a})"),
        }
    }
}

/// The classical counting family over `{0, 1, #}`: `counter(k)` has size
/// polynomial in `k` but its minimal DFA needs a tower of exponentials —
/// the Stockmeyer-style hard inputs behind Theorem 4.8.
///
/// Level 0 forces blocks of exactly `#`; each level doubles the counting
/// requirement using complements. This implementation produces the
/// standard "all binary words of length k between #s" strengthening per
/// level: DFA sizes grow ≈ 2^k per level (single-exponential steps — the
/// measurable prefix of the tower).
pub fn counter(k: usize) -> (StarFree<char>, Vec<char>) {
    let universe = vec!['0', '1', '#'];
    let any = StarFree::<char>::universe();
    let bit = StarFree::Sym('0').or(StarFree::Sym('1'));
    // block(k) = exactly k bits.
    let mut block = StarFree::Epsilon;
    for _ in 0..k {
        block = block.then(bit.clone());
    }
    // L = # block # block # … : words where every maximal bit-run has
    // length exactly k, expressed negatively (no run of length ≠ k):
    // ¬( Σ*·#·(short-or-long-run)·#·Σ* ) ∧ shape constraints.
    let mut short = StarFree::Epsilon; // runs shorter than k: ε|bit|…|bit^(k-1)
    let mut shorts = StarFree::Epsilon;
    for _ in 1..k {
        short = short.then(bit.clone());
        shorts = shorts.or(short.clone());
    }
    let long = block.clone().then(bit.clone()).then(any.clone());
    let bad_run = shorts.or(long); // a run that is too short or too long
    let bad = any
        .clone()
        .then(StarFree::Sym('#'))
        .then(bad_run)
        .then(StarFree::Sym('#'))
        .then(any.clone());
    let shape = StarFree::Sym('#')
        .then(any.clone())
        .then(StarFree::Sym('#'));
    (shape.and(bad.not()), universe)
}

/// The classical succinctness witness: `kth_from_end(k)` = words over
/// `{a, b}` whose `k`-th letter from the end is `a`, i.e. `Σ*·a·Σ^{k-1}`.
/// Expression size is `O(k)`; the minimal DFA needs exactly `2^k` states —
/// one full exponential, paid at the complement/determinization step. Each
/// *nesting* of this pattern inside another complement pays another
/// exponential: the Stockmeyer tower behind Theorem 4.8.
pub fn kth_from_end(k: usize) -> (StarFree<char>, Vec<char>) {
    assert!(k >= 1);
    let universe = vec!['a', 'b'];
    let any_sym = StarFree::Sym('a').or(StarFree::Sym('b'));
    let mut e = StarFree::universe().then(StarFree::Sym('a'));
    for _ in 1..k {
        e = e.then(any_sym.clone());
    }
    (e, universe)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u() -> Vec<char> {
        vec!['a', 'b']
    }

    fn accepts(e: &StarFree<char>, w: &str) -> bool {
        e.to_dfa(&u()).accepts(&w.chars().collect::<Vec<_>>())
    }

    #[test]
    fn universe_without_star() {
        let e = StarFree::<char>::universe();
        assert!(accepts(&e, ""));
        assert!(accepts(&e, "abba"));
    }

    #[test]
    fn concat_and_union() {
        let e = StarFree::Sym('a')
            .then(StarFree::Sym('b'))
            .or(StarFree::Epsilon);
        assert!(accepts(&e, ""));
        assert!(accepts(&e, "ab"));
        assert!(!accepts(&e, "a"));
        assert!(!accepts(&e, "abab"));
    }

    #[test]
    fn complement_and_intersection() {
        // "contains a" ∧ "contains b" via De Morgan.
        let contains = |c| {
            StarFree::<char>::universe()
                .then(StarFree::Sym(c))
                .then(StarFree::universe())
        };
        let e = contains('a').and(contains('b'));
        assert!(accepts(&e, "ab"));
        assert!(accepts(&e, "bbba"));
        assert!(!accepts(&e, "aaa"));
        assert!(!accepts(&e, ""));
        // and() adds two complement levels atop universe()'s ¬∅.
        assert_eq!(e.complement_depth(), 3);
    }

    #[test]
    fn nested_complement_semantics() {
        // ¬¬L = L.
        let l = StarFree::Sym('a').then(StarFree::<char>::universe());
        let nn = l.clone().not().not();
        for w in ["", "a", "b", "ab", "ba"] {
            assert_eq!(accepts(&l, w), accepts(&nn, w), "{w}");
        }
    }

    #[test]
    fn witness_and_emptiness() {
        let e = StarFree::Sym('a').and(StarFree::Sym('b')); // a ∧ b = ∅
        assert!(e.witness(&u()).is_none());
        let e2 = StarFree::Sym('a').or(StarFree::Sym('b'));
        let w = e2.witness(&u()).unwrap();
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn concat_dfas_handles_overlap() {
        // (a|ab)·(b|ε): "ab" reachable two ways; "a", "abb" also in.
        let left = StarFree::Sym('a').or(StarFree::Sym('a').then(StarFree::Sym('b')));
        let right = StarFree::Sym('b').or(StarFree::Epsilon);
        let e = left.then(right);
        for (w, want) in [
            ("a", true),
            ("ab", true),
            ("abb", true),
            ("b", false),
            ("abbb", false),
        ] {
            assert_eq!(accepts(&e, w), want, "{w}");
        }
    }

    #[test]
    fn counter_family_semantics() {
        let (e, universe) = counter(2);
        let dfa = e.to_dfa(&universe);
        let acc = |w: &str| dfa.accepts(&w.chars().collect::<Vec<_>>());
        assert!(acc("#01#"));
        assert!(acc("#01#10#"));
        assert!(!acc("#0#")); // run too short
        assert!(!acc("#011#")); // run too long
        assert!(!acc("01")); // missing shape
    }

    #[test]
    fn counter_family_grows() {
        // Minimal DFA sizes grow with k — the measurable start of the
        // non-elementary tower.
        let mut last = 0;
        for k in 1..=4 {
            let (e, universe) = counter(k);
            let d = e.to_dfa(&universe).minimize();
            assert!(d.len() > last, "k={k}: {} vs {last}", d.len());
            last = d.len();
        }
    }

    #[test]
    fn state_limit_aborts() {
        let (e, universe) = counter(4);
        assert!(e.to_dfa_limited(&universe, 3).is_none());
    }

    #[test]
    fn kth_from_end_semantics_and_blowup() {
        let (e, universe) = kth_from_end(3);
        let d = e.to_dfa(&universe);
        let acc = |w: &str| d.accepts(&w.chars().collect::<Vec<_>>());
        assert!(acc("abb"));
        assert!(acc("babb")); // 3rd from end = a
        assert!(!acc("bbb"));
        assert!(!acc("ab")); // too short
                             // Minimal DFA has exactly 2^k states.
        for k in 1..=5usize {
            let (e, universe) = kth_from_end(k);
            let d = e.to_dfa(&universe).minimize();
            assert_eq!(d.len(), 1 << k, "k = {k}");
        }
    }
}
