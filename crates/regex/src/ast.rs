//! Regular expression syntax trees with smart constructors.

use std::collections::BTreeSet;
use std::fmt;
use std::hash::Hash;

/// A regular expression over symbols of type `S`.
///
/// The variants mirror the classical grammar; `Plus` and `Opt` are kept as
/// first-class constructors (XML DTDs use `+` and `?` heavily) rather than
/// desugared, so printed expressions stay readable.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Regex<S> {
    /// The empty language `∅`.
    Empty,
    /// The language `{ε}`.
    Epsilon,
    /// A single symbol.
    Sym(S),
    /// Concatenation `r.s`.
    Concat(Box<Regex<S>>, Box<Regex<S>>),
    /// Alternation `r|s`.
    Alt(Box<Regex<S>>, Box<Regex<S>>),
    /// Kleene star `r*`.
    Star(Box<Regex<S>>),
    /// One-or-more `r+`.
    Plus(Box<Regex<S>>),
    /// Zero-or-one `r?`.
    Opt(Box<Regex<S>>),
}

impl<S: Clone + Eq + Hash> Regex<S> {
    /// Single-symbol expression.
    pub fn sym(s: S) -> Regex<S> {
        Regex::Sym(s)
    }

    /// Concatenation with the obvious simplifications
    /// (`∅.r = ∅`, `ε.r = r`).
    pub fn concat(self, other: Regex<S>) -> Regex<S> {
        match (self, other) {
            (Regex::Empty, _) | (_, Regex::Empty) => Regex::Empty,
            (Regex::Epsilon, r) | (r, Regex::Epsilon) => r,
            (a, b) => Regex::Concat(Box::new(a), Box::new(b)),
        }
    }

    /// Alternation with the obvious simplifications (`∅|r = r`).
    pub fn alt(self, other: Regex<S>) -> Regex<S> {
        match (self, other) {
            (Regex::Empty, r) | (r, Regex::Empty) => r,
            (a, b) if a == b => a,
            (a, b) => Regex::Alt(Box::new(a), Box::new(b)),
        }
    }

    /// Kleene star with simplifications (`∅* = ε* = ε`, `(r*)* = r*`).
    pub fn star(self) -> Regex<S> {
        match self {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            r @ Regex::Star(_) => r,
            r => Regex::Star(Box::new(r)),
        }
    }

    /// One-or-more.
    pub fn plus(self) -> Regex<S> {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            r => Regex::Plus(Box::new(r)),
        }
    }

    /// Zero-or-one.
    pub fn opt(self) -> Regex<S> {
        match self {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            r => Regex::Opt(Box::new(r)),
        }
    }

    /// Concatenation of a sequence of expressions.
    pub fn seq(parts: impl IntoIterator<Item = Regex<S>>) -> Regex<S> {
        parts
            .into_iter()
            .fold(Regex::Epsilon, |acc, r| acc.concat(r))
    }

    /// Alternation of a sequence of expressions (empty sequence = `∅`).
    pub fn any(parts: impl IntoIterator<Item = Regex<S>>) -> Regex<S> {
        parts.into_iter().fold(Regex::Empty, |acc, r| acc.alt(r))
    }

    /// Whether `ε` is in the language.
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Sym(_) | Regex::Plus(_) => match self {
                Regex::Plus(r) => r.nullable(),
                _ => false,
            },
            Regex::Epsilon | Regex::Star(_) | Regex::Opt(_) => true,
            Regex::Concat(a, b) => a.nullable() && b.nullable(),
            Regex::Alt(a, b) => a.nullable() || b.nullable(),
        }
    }

    /// The mirror-image expression: `L(rev(r)) = { reverse(w) | w ∈ L(r) }`.
    /// Used by pattern matching, which checks path expressions "in reverse,
    /// along the way" up the tree (Example 3.5).
    pub fn reverse(&self) -> Regex<S> {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Sym(s) => Regex::Sym(s.clone()),
            Regex::Concat(a, b) => b.reverse().concat(a.reverse()),
            Regex::Alt(a, b) => a.reverse().alt(b.reverse()),
            Regex::Star(r) => r.reverse().star(),
            Regex::Plus(r) => r.reverse().plus(),
            Regex::Opt(r) => r.reverse().opt(),
        }
    }

    /// Maps symbols, preserving structure.
    pub fn map<T: Clone + Eq + Hash>(&self, f: &mut impl FnMut(&S) -> T) -> Regex<T> {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Sym(s) => Regex::Sym(f(s)),
            Regex::Concat(a, b) => Regex::Concat(Box::new(a.map(f)), Box::new(b.map(f))),
            Regex::Alt(a, b) => Regex::Alt(Box::new(a.map(f)), Box::new(b.map(f))),
            Regex::Star(r) => Regex::Star(Box::new(r.map(f))),
            Regex::Plus(r) => Regex::Plus(Box::new(r.map(f))),
            Regex::Opt(r) => Regex::Opt(Box::new(r.map(f))),
        }
    }

    /// Maps symbols fallibly.
    pub fn try_map<T: Clone + Eq + Hash, E>(
        &self,
        f: &mut impl FnMut(&S) -> Result<T, E>,
    ) -> Result<Regex<T>, E> {
        Ok(match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Sym(s) => Regex::Sym(f(s)?),
            Regex::Concat(a, b) => Regex::Concat(Box::new(a.try_map(f)?), Box::new(b.try_map(f)?)),
            Regex::Alt(a, b) => Regex::Alt(Box::new(a.try_map(f)?), Box::new(b.try_map(f)?)),
            Regex::Star(r) => Regex::Star(Box::new(r.try_map(f)?)),
            Regex::Plus(r) => Regex::Plus(Box::new(r.try_map(f)?)),
            Regex::Opt(r) => Regex::Opt(Box::new(r.try_map(f)?)),
        })
    }
}

impl<S: Clone + Ord + Eq + Hash> Regex<S> {
    /// The set of symbols occurring in the expression.
    pub fn symbols(&self) -> BTreeSet<S> {
        let mut out = BTreeSet::new();
        self.collect_symbols(&mut out);
        out
    }

    fn collect_symbols(&self, out: &mut BTreeSet<S>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Sym(s) => {
                out.insert(s.clone());
            }
            Regex::Concat(a, b) | Regex::Alt(a, b) => {
                a.collect_symbols(out);
                b.collect_symbols(out);
            }
            Regex::Star(r) | Regex::Plus(r) | Regex::Opt(r) => r.collect_symbols(out),
        }
    }
}

impl<S: fmt::Display> Regex<S> {
    fn prec(&self) -> u8 {
        match self {
            Regex::Alt(..) => 0,
            Regex::Concat(..) => 1,
            _ => 2,
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, min: u8) -> fmt::Result {
        let p = self.prec();
        if p < min {
            write!(f, "(")?;
        }
        match self {
            Regex::Empty => write!(f, "@empty")?,
            Regex::Epsilon => write!(f, "@eps")?,
            Regex::Sym(s) => write!(f, "{s}")?,
            // `.` and `|` are associative: print both operands at their own
            // precedence so nesting direction does not force parentheses.
            Regex::Concat(a, b) => {
                a.fmt_prec(f, 1)?;
                write!(f, ".")?;
                b.fmt_prec(f, 1)?;
            }
            Regex::Alt(a, b) => {
                a.fmt_prec(f, 0)?;
                write!(f, "|")?;
                b.fmt_prec(f, 0)?;
            }
            Regex::Star(r) => {
                r.fmt_prec(f, 3)?;
                write!(f, "*")?;
            }
            Regex::Plus(r) => {
                r.fmt_prec(f, 3)?;
                write!(f, "+")?;
            }
            Regex::Opt(r) => {
                r.fmt_prec(f, 3)?;
                write!(f, "?")?;
            }
        }
        if p < min {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl<S: fmt::Display> fmt::Display for Regex<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(c: char) -> Regex<char> {
        Regex::sym(c)
    }

    #[test]
    fn smart_constructors_simplify() {
        assert_eq!(s('a').concat(Regex::Empty), Regex::Empty);
        assert_eq!(s('a').concat(Regex::Epsilon), s('a'));
        assert_eq!(Regex::Empty.alt(s('b')), s('b'));
        assert_eq!(s('a').alt(s('a')), s('a'));
        assert_eq!(Regex::<char>::Epsilon.star(), Regex::Epsilon);
        assert_eq!(s('a').star().star(), s('a').star());
        assert_eq!(Regex::<char>::Empty.plus(), Regex::Empty);
        assert_eq!(Regex::<char>::Epsilon.opt(), Regex::Epsilon);
    }

    #[test]
    fn nullable() {
        assert!(!s('a').nullable());
        assert!(s('a').star().nullable());
        assert!(s('a').opt().nullable());
        assert!(!s('a').plus().nullable());
        assert!(s('a').star().concat(s('b').opt()).nullable());
        assert!(!s('a').concat(s('b').star()).nullable());
        assert!(s('a').alt(Regex::Epsilon).nullable());
        assert!(!Regex::<char>::Empty.nullable());
    }

    #[test]
    fn reverse() {
        let r = s('a').concat(s('b')).concat(s('c'));
        assert_eq!(r.reverse().to_string(), "c.b.a");
        let r2 = s('a').concat(s('b').alt(s('c')).star());
        assert_eq!(r2.reverse().to_string(), "(b|c)*.a");
        assert_eq!(r2.reverse().reverse(), r2);
    }

    #[test]
    fn display_precedence() {
        let r = s('a').alt(s('b')).concat(s('c')).star();
        assert_eq!(r.to_string(), "((a|b).c)*");
        let r2 = s('a').concat(s('b').alt(s('c')));
        assert_eq!(r2.to_string(), "a.(b|c)");
    }

    #[test]
    fn symbols_collected() {
        let r = s('a').concat(s('b').alt(s('a')).star());
        let syms = r.symbols();
        assert_eq!(syms.into_iter().collect::<Vec<_>>(), vec!['a', 'b']);
    }

    #[test]
    fn seq_and_any() {
        let r = Regex::seq([s('a'), s('b'), s('c')]);
        assert_eq!(r.to_string(), "a.b.c");
        let r = Regex::any([s('a'), s('b')]);
        assert_eq!(r.to_string(), "a|b");
        assert_eq!(Regex::<char>::any([]), Regex::Empty);
        assert_eq!(Regex::<char>::seq([]), Regex::Epsilon);
    }
}
