//! # xmltc-regex
//!
//! Regular expressions and finite word automata over *generic* alphabets.
//!
//! In the paper, word-regular machinery appears in three places:
//!
//! * **DTD content models** (Section 2.3): a DTD is an extended context-free
//!   grammar whose productions have regular expressions on the right-hand
//!   side;
//! * **(regular) path expressions** (Section 2.1) used by all XML query
//!   languages and by tree patterns (Section 2.2, Example 3.5);
//! * the **star-free generalized expressions** of the Theorem 4.8 lower
//!   bound.
//!
//! The alphabet is a type parameter (`S: Copy + Eq + Hash + Ord`) so that the
//! same engine serves interned tree symbols, automaton states (in silent
//! closure computations) and plain chars in tests.
//!
//! Provided: an AST with smart constructors ([`Regex`]), a parser for the
//! paper's dotted syntax (`a.(b|c)*.d`), the Glushkov position-automaton
//! construction ([`Nfa`]), subset-construction [`Dfa`]s, boolean operations
//! (product, union, complement relative to an explicit universe), decision
//! procedures (emptiness with witness, membership, inclusion, equivalence),
//! Moore minimization, reversal, and bounded word enumeration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod dfa;
pub mod nfa;
pub mod parse;
pub mod starfree;

pub use ast::Regex;
pub use dfa::Dfa;
pub use nfa::Nfa;
pub use parse::{parse, ParseError};
pub use starfree::StarFree;
