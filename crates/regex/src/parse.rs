//! Parser for the paper's dotted regular-expression syntax.
//!
//! Grammar (whitespace insignificant):
//!
//! ```text
//! alt  := cat ('|' cat)*
//! cat  := rep ('.' rep)*
//! rep  := atom ('*' | '+' | '?')*
//! atom := name | '(' alt ')' | '@eps' | '@empty'
//! name := [A-Za-z0-9_]+ | '-' | '#'
//! ```
//!
//! Examples from the paper parse directly: `a.(b|(c.d))*.e`,
//! `a.(-)*.c.(-)*.d`, `(b.b)*`.

use crate::ast::Regex;
use std::fmt;

/// Regular-expression parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the failure.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses the dotted syntax into a `Regex<String>` over symbol names.
pub fn parse(input: &str) -> Result<Regex<String>, ParseError> {
    let mut p = P {
        s: input.as_bytes(),
        i: 0,
    };
    p.ws();
    let r = p.alt()?;
    p.ws();
    if p.i != p.s.len() {
        return Err(p.err("trailing input"));
    }
    Ok(r)
}

struct P<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> P<'a> {
    fn err(&self, m: &str) -> ParseError {
        ParseError {
            message: m.to_string(),
            offset: self.i,
        }
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn alt(&mut self) -> Result<Regex<String>, ParseError> {
        let mut r = self.cat()?;
        loop {
            self.ws();
            if self.peek() == Some(b'|') {
                self.i += 1;
                self.ws();
                r = r.alt(self.cat()?);
            } else {
                return Ok(r);
            }
        }
    }

    fn cat(&mut self) -> Result<Regex<String>, ParseError> {
        let mut r = self.rep()?;
        loop {
            self.ws();
            if self.peek() == Some(b'.') {
                self.i += 1;
                self.ws();
                r = r.concat(self.rep()?);
            } else {
                return Ok(r);
            }
        }
    }

    fn rep(&mut self) -> Result<Regex<String>, ParseError> {
        let mut r = self.atom()?;
        loop {
            self.ws();
            match self.peek() {
                Some(b'*') => {
                    self.i += 1;
                    r = r.star();
                }
                Some(b'+') => {
                    self.i += 1;
                    r = r.plus();
                }
                Some(b'?') => {
                    self.i += 1;
                    r = r.opt();
                }
                _ => return Ok(r),
            }
        }
    }

    fn atom(&mut self) -> Result<Regex<String>, ParseError> {
        match self.peek() {
            Some(b'(') => {
                self.i += 1;
                self.ws();
                let r = self.alt()?;
                self.ws();
                if self.peek() != Some(b')') {
                    return Err(self.err("expected `)`"));
                }
                self.i += 1;
                Ok(r)
            }
            Some(b'@') => {
                let start = self.i;
                self.i += 1;
                while self
                    .peek()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
                {
                    self.i += 1;
                }
                match &self.s[start..self.i] {
                    b"@eps" => Ok(Regex::Epsilon),
                    b"@empty" => Ok(Regex::Empty),
                    _ => Err(self.err("unknown @-keyword (expected @eps or @empty)")),
                }
            }
            Some(b'-') | Some(b'#') => {
                let c = self.s[self.i] as char;
                self.i += 1;
                Ok(Regex::Sym(c.to_string()))
            }
            Some(c) if c.is_ascii_alphanumeric() || c == b'_' => {
                let start = self.i;
                while self
                    .peek()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
                {
                    self.i += 1;
                }
                Ok(Regex::Sym(
                    std::str::from_utf8(&self.s[start..self.i])
                        .expect("ascii")
                        .to_string(),
                ))
            }
            _ => Err(self.err("expected a symbol, `(`, `@eps` or `@empty`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples() {
        // Patterns used throughout the paper.
        for src in [
            "a.b",
            "c.(a|b)",
            "c*.a",
            "a.(b|(c.d))*.e",
            "a.(-)*.c.(-)*.d",
            "(b.b)*",
            "b*.c.e",
        ] {
            let r = parse(src).expect(src);
            // printing re-parses to the same AST
            let r2 = parse(&r.to_string()).unwrap();
            assert_eq!(r, r2, "round trip failed for {src}");
        }
    }

    #[test]
    fn keywords() {
        assert_eq!(parse("@eps").unwrap(), Regex::Epsilon);
        assert_eq!(parse("@empty").unwrap(), Regex::Empty);
        assert!(parse("@bogus").is_err());
    }

    #[test]
    fn postfix_operators() {
        let r = parse("a+?").unwrap();
        assert_eq!(r, Regex::sym("a".to_string()).plus().opt());
        let r = parse("(a.b)+").unwrap();
        assert_eq!(
            r,
            Regex::sym("a".to_string())
                .concat(Regex::sym("b".to_string()))
                .plus()
        );
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("a.(b").is_err());
        assert!(parse("a |").is_err());
        assert!(parse("a)").is_err());
        assert!(parse("*a").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(parse(" a . b "), parse("a.b"));
    }
}
