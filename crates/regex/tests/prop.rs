//! Property tests: the regex AST, Glushkov NFA, subset-construction DFA and
//! minimized DFA must all agree on membership; boolean operations must obey
//! their set-algebra laws.

use proptest::prelude::*;
use xmltc_regex::{Dfa, Nfa, Regex};

const UNIVERSE: [char; 3] = ['a', 'b', 'c'];

fn arb_regex() -> impl Strategy<Value = Regex<char>> {
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        prop::sample::select(&UNIVERSE[..]).prop_map(Regex::Sym),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Regex::Concat(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Regex::Alt(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Regex::Star(Box::new(a))),
            inner.clone().prop_map(|a| Regex::Plus(Box::new(a))),
            inner.prop_map(|a| Regex::Opt(Box::new(a))),
        ]
    })
}

fn arb_word() -> impl Strategy<Value = Vec<char>> {
    prop::collection::vec(prop::sample::select(&UNIVERSE[..]), 0..8)
}

/// Reference semantics: naive recursive matcher with memoized splits.
fn matches(r: &Regex<char>, w: &[char]) -> bool {
    match r {
        Regex::Empty => false,
        Regex::Epsilon => w.is_empty(),
        Regex::Sym(s) => w.len() == 1 && w[0] == *s,
        Regex::Concat(a, b) => (0..=w.len()).any(|i| matches(a, &w[..i]) && matches(b, &w[i..])),
        Regex::Alt(a, b) => matches(a, w) || matches(b, w),
        Regex::Star(a) => {
            w.is_empty()
                || (1..=w.len()).any(|i| matches(a, &w[..i]) && matches(&Regex::Star(a.clone()), &w[i..]))
        }
        Regex::Plus(a) => (1..=w.len())
            .any(|i| matches(a, &w[..i]) && (i == w.len() || matches(&Regex::Star(a.clone()), &w[i..])))
            || (w.is_empty() && matches(a, &[])),
        Regex::Opt(a) => w.is_empty() || matches(a, w),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn nfa_matches_reference(r in arb_regex(), w in arb_word()) {
        let nfa = Nfa::from_regex(&r);
        prop_assert_eq!(nfa.accepts(&w), matches(&r, &w));
    }

    #[test]
    fn dfa_matches_nfa(r in arb_regex(), w in arb_word()) {
        let nfa = Nfa::from_regex(&r);
        let dfa = Dfa::from_nfa(&nfa, &UNIVERSE);
        prop_assert_eq!(dfa.accepts(&w), nfa.accepts(&w));
    }

    #[test]
    fn minimized_dfa_equivalent(r in arb_regex()) {
        let dfa = Dfa::from_regex(&r, &UNIVERSE);
        let min = dfa.minimize();
        prop_assert!(min.equivalent(&dfa));
        prop_assert!(min.len() <= dfa.complete().len());
    }

    #[test]
    fn complement_involution(r in arb_regex(), w in arb_word()) {
        let dfa = Dfa::from_regex(&r, &UNIVERSE);
        let comp = dfa.complement(&UNIVERSE);
        prop_assert_eq!(comp.accepts(&w), !dfa.accepts(&w));
        prop_assert!(comp.complement(&UNIVERSE).equivalent(&dfa));
    }

    #[test]
    fn product_laws(r1 in arb_regex(), r2 in arb_regex(), w in arb_word()) {
        let d1 = Dfa::from_regex(&r1, &UNIVERSE);
        let d2 = Dfa::from_regex(&r2, &UNIVERSE);
        prop_assert_eq!(d1.intersect(&d2).accepts(&w), d1.accepts(&w) && d2.accepts(&w));
        prop_assert_eq!(d1.union(&d2).accepts(&w), d1.accepts(&w) || d2.accepts(&w));
        prop_assert_eq!(d1.difference(&d2).accepts(&w), d1.accepts(&w) && !d2.accepts(&w));
    }

    #[test]
    fn witness_is_accepted(r in arb_regex()) {
        let dfa = Dfa::from_regex(&r, &UNIVERSE);
        if let Some(w) = dfa.witness() {
            prop_assert!(dfa.accepts(&w));
            prop_assert!(matches(&r, &w));
        }
    }

    #[test]
    fn reversal_matches_reversed_words(r in arb_regex(), w in arb_word()) {
        let rev = r.reverse();
        let dfa = Dfa::from_regex(&rev, &UNIVERSE);
        let mut rw = w.clone();
        rw.reverse();
        prop_assert_eq!(dfa.accepts(&rw), matches(&r, &w));
    }

    #[test]
    fn enumerated_words_accepted(r in arb_regex()) {
        let dfa = Dfa::from_regex(&r, &UNIVERSE);
        for w in dfa.words_up_to(4, 50) {
            prop_assert!(matches(&r, &w));
        }
    }
}
