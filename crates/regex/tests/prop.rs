//! Property tests: the regex AST, Glushkov NFA, subset-construction DFA and
//! minimized DFA must all agree on membership; boolean operations must obey
//! their set-algebra laws.
//!
//! Driven by the workspace's deterministic [`SmallRng`] (no external
//! property-testing crate): each test runs a fixed number of random cases
//! from a fixed seed and reports the failing case index + a debug render of
//! the inputs on assertion failure.

use xmltc_regex::{Dfa, Nfa, Regex};
use xmltc_trees::SmallRng;

const UNIVERSE: [char; 3] = ['a', 'b', 'c'];
const CASES: usize = 256;

/// A random regex of depth at most `depth` over [`UNIVERSE`].
fn rand_regex(rng: &mut SmallRng, depth: usize) -> Regex<char> {
    if depth == 0 || rng.gen_bool(0.3) {
        return if rng.gen_bool(0.25) {
            Regex::Epsilon
        } else {
            Regex::Sym(*rng.choose(&UNIVERSE))
        };
    }
    match rng.gen_range(0..5) {
        0 => Regex::Concat(
            Box::new(rand_regex(rng, depth - 1)),
            Box::new(rand_regex(rng, depth - 1)),
        ),
        1 => Regex::Alt(
            Box::new(rand_regex(rng, depth - 1)),
            Box::new(rand_regex(rng, depth - 1)),
        ),
        2 => Regex::Star(Box::new(rand_regex(rng, depth - 1))),
        3 => Regex::Plus(Box::new(rand_regex(rng, depth - 1))),
        _ => Regex::Opt(Box::new(rand_regex(rng, depth - 1))),
    }
}

fn rand_word(rng: &mut SmallRng) -> Vec<char> {
    let n = rng.gen_range(0..8);
    (0..n).map(|_| *rng.choose(&UNIVERSE)).collect()
}

/// Reference semantics: naive recursive matcher.
fn matches(r: &Regex<char>, w: &[char]) -> bool {
    match r {
        Regex::Empty => false,
        Regex::Epsilon => w.is_empty(),
        Regex::Sym(s) => w.len() == 1 && w[0] == *s,
        Regex::Concat(a, b) => (0..=w.len()).any(|i| matches(a, &w[..i]) && matches(b, &w[i..])),
        Regex::Alt(a, b) => matches(a, w) || matches(b, w),
        Regex::Star(a) => {
            w.is_empty()
                || (1..=w.len())
                    .any(|i| matches(a, &w[..i]) && matches(&Regex::Star(a.clone()), &w[i..]))
        }
        Regex::Plus(a) => {
            (1..=w.len()).any(|i| {
                matches(a, &w[..i]) && (i == w.len() || matches(&Regex::Star(a.clone()), &w[i..]))
            }) || (w.is_empty() && matches(a, &[]))
        }
        Regex::Opt(a) => w.is_empty() || matches(a, w),
    }
}

/// Runs `f` on `CASES` seeded (regex, word) pairs.
fn for_cases(seed: u64, mut f: impl FnMut(&Regex<char>, &[char])) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for case in 0..CASES {
        let r = rand_regex(&mut rng, 4);
        let w = rand_word(&mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&r, &w)));
        if let Err(e) = result {
            eprintln!("case {case}: regex {r:?}, word {w:?}");
            std::panic::resume_unwind(e);
        }
    }
}

#[test]
fn nfa_matches_reference() {
    for_cases(0xB001, |r, w| {
        let nfa = Nfa::from_regex(r);
        assert_eq!(nfa.accepts(w), matches(r, w));
    });
}

#[test]
fn dfa_matches_nfa() {
    for_cases(0xB002, |r, w| {
        let nfa = Nfa::from_regex(r);
        let dfa = Dfa::from_nfa(&nfa, &UNIVERSE);
        assert_eq!(dfa.accepts(w), nfa.accepts(w));
    });
}

#[test]
fn minimized_dfa_equivalent() {
    for_cases(0xB003, |r, _| {
        let dfa = Dfa::from_regex(r, &UNIVERSE);
        let min = dfa.minimize();
        assert!(min.equivalent(&dfa));
        assert!(min.len() <= dfa.complete().len());
    });
}

#[test]
fn complement_involution() {
    for_cases(0xB004, |r, w| {
        let dfa = Dfa::from_regex(r, &UNIVERSE);
        let comp = dfa.complement(&UNIVERSE);
        assert_eq!(comp.accepts(w), !dfa.accepts(w));
        assert!(comp.complement(&UNIVERSE).equivalent(&dfa));
    });
}

#[test]
fn product_laws() {
    let mut rng = SmallRng::seed_from_u64(0xB005);
    for case in 0..CASES {
        let r1 = rand_regex(&mut rng, 4);
        let r2 = rand_regex(&mut rng, 4);
        let w = rand_word(&mut rng);
        let d1 = Dfa::from_regex(&r1, &UNIVERSE);
        let d2 = Dfa::from_regex(&r2, &UNIVERSE);
        let (a1, a2) = (d1.accepts(&w), d2.accepts(&w));
        assert_eq!(
            d1.intersect(&d2).accepts(&w),
            a1 && a2,
            "case {case}: {r1:?} ∩ {r2:?} on {w:?}"
        );
        assert_eq!(
            d1.union(&d2).accepts(&w),
            a1 || a2,
            "case {case}: {r1:?} ∪ {r2:?} on {w:?}"
        );
        assert_eq!(
            d1.difference(&d2).accepts(&w),
            a1 && !a2,
            "case {case}: {r1:?} \\ {r2:?} on {w:?}"
        );
    }
}

#[test]
fn witness_is_accepted() {
    for_cases(0xB006, |r, _| {
        let dfa = Dfa::from_regex(r, &UNIVERSE);
        if let Some(w) = dfa.witness() {
            assert!(dfa.accepts(&w));
            assert!(matches(r, &w));
        }
    });
}

#[test]
fn reversal_matches_reversed_words() {
    for_cases(0xB007, |r, w| {
        let rev = r.reverse();
        let dfa = Dfa::from_regex(&rev, &UNIVERSE);
        let mut rw = w.to_vec();
        rw.reverse();
        assert_eq!(dfa.accepts(&rw), matches(r, w));
    });
}

#[test]
fn enumerated_words_accepted() {
    for_cases(0xB008, |r, _| {
        let dfa = Dfa::from_regex(r, &UNIVERSE);
        for w in dfa.words_up_to(4, 50) {
            assert!(matches(r, &w), "enumerated {w:?} not matched by {r:?}");
        }
    });
}
