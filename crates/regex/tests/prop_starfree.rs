//! Property tests for star-free generalized expressions: the DFA
//! compilation must agree with the direct recursive semantics (complement
//! by negation, concatenation by split enumeration).

use proptest::prelude::*;
use xmltc_regex::StarFree;

const UNIVERSE: [char; 2] = ['a', 'b'];

fn matches(e: &StarFree<char>, w: &[char]) -> bool {
    match e {
        StarFree::Empty => false,
        StarFree::Epsilon => w.is_empty(),
        StarFree::Sym(s) => w.len() == 1 && w[0] == *s,
        StarFree::Concat(a, b) => {
            (0..=w.len()).any(|i| matches(a, &w[..i]) && matches(b, &w[i..]))
        }
        StarFree::Union(a, b) => matches(a, w) || matches(b, w),
        StarFree::Not(a) => !matches(a, w),
    }
}

fn arb_starfree() -> impl Strategy<Value = StarFree<char>> {
    let leaf = prop_oneof![
        Just(StarFree::Empty),
        Just(StarFree::Epsilon),
        prop::sample::select(&UNIVERSE[..]).prop_map(StarFree::Sym),
    ];
    leaf.prop_recursive(4, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| StarFree::Concat(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| StarFree::Union(Box::new(a), Box::new(b))),
            inner.prop_map(|a| StarFree::Not(Box::new(a))),
        ]
    })
}

fn arb_word() -> impl Strategy<Value = Vec<char>> {
    prop::collection::vec(prop::sample::select(&UNIVERSE[..]), 0..7)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dfa_matches_reference(e in arb_starfree(), w in arb_word()) {
        let dfa = e.to_dfa(&UNIVERSE);
        prop_assert_eq!(dfa.accepts(&w), matches(&e, &w), "on {:?} for {}", w, e);
    }

    #[test]
    fn witness_is_accepted(e in arb_starfree()) {
        match e.witness(&UNIVERSE) {
            Some(w) => prop_assert!(matches(&e, &w)),
            None => {
                // empty language: no word up to length 4 matches.
                for n in 0..=4usize {
                    for bits in 0..(1u32 << n) {
                        let w: Vec<char> = (0..n)
                            .map(|i| if bits >> i & 1 == 1 { 'b' } else { 'a' })
                            .collect();
                        prop_assert!(!matches(&e, &w));
                    }
                }
            }
        }
    }

    #[test]
    fn double_complement_is_identity(e in arb_starfree(), w in arb_word()) {
        let nn = e.clone().not().not();
        let d1 = e.to_dfa(&UNIVERSE);
        let d2 = nn.to_dfa(&UNIVERSE);
        prop_assert_eq!(d1.accepts(&w), d2.accepts(&w));
    }
}
