//! Property tests for star-free generalized expressions: the DFA
//! compilation must agree with the direct recursive semantics (complement
//! by negation, concatenation by split enumeration).
//!
//! Driven by the workspace's deterministic [`SmallRng`]; each test runs a
//! fixed number of seeded cases.

use xmltc_regex::StarFree;
use xmltc_trees::SmallRng;

const UNIVERSE: [char; 2] = ['a', 'b'];
const CASES: usize = 256;

fn matches(e: &StarFree<char>, w: &[char]) -> bool {
    match e {
        StarFree::Empty => false,
        StarFree::Epsilon => w.is_empty(),
        StarFree::Sym(s) => w.len() == 1 && w[0] == *s,
        StarFree::Concat(a, b) => (0..=w.len()).any(|i| matches(a, &w[..i]) && matches(b, &w[i..])),
        StarFree::Union(a, b) => matches(a, w) || matches(b, w),
        StarFree::Not(a) => !matches(a, w),
    }
}

fn rand_starfree(rng: &mut SmallRng, depth: usize) -> StarFree<char> {
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0..4) {
            0 => StarFree::Empty,
            1 => StarFree::Epsilon,
            _ => StarFree::Sym(*rng.choose(&UNIVERSE)),
        };
    }
    match rng.gen_range(0..3) {
        0 => StarFree::Concat(
            Box::new(rand_starfree(rng, depth - 1)),
            Box::new(rand_starfree(rng, depth - 1)),
        ),
        1 => StarFree::Union(
            Box::new(rand_starfree(rng, depth - 1)),
            Box::new(rand_starfree(rng, depth - 1)),
        ),
        _ => StarFree::Not(Box::new(rand_starfree(rng, depth - 1))),
    }
}

fn rand_word(rng: &mut SmallRng) -> Vec<char> {
    let n = rng.gen_range(0..7);
    (0..n).map(|_| *rng.choose(&UNIVERSE)).collect()
}

#[test]
fn dfa_matches_reference() {
    let mut rng = SmallRng::seed_from_u64(0x5F01);
    for case in 0..CASES {
        let e = rand_starfree(&mut rng, 4);
        let w = rand_word(&mut rng);
        let dfa = e.to_dfa(&UNIVERSE);
        assert_eq!(
            dfa.accepts(&w),
            matches(&e, &w),
            "case {case}: on {w:?} for {e}"
        );
    }
}

#[test]
fn witness_is_accepted() {
    let mut rng = SmallRng::seed_from_u64(0x5F02);
    for case in 0..CASES {
        let e = rand_starfree(&mut rng, 4);
        match e.witness(&UNIVERSE) {
            Some(w) => assert!(matches(&e, &w), "case {case}: witness {w:?} for {e}"),
            None => {
                // Empty language: no word up to length 4 matches.
                for n in 0..=4usize {
                    for bits in 0..(1u32 << n) {
                        let w: Vec<char> = (0..n)
                            .map(|i| if bits >> i & 1 == 1 { 'b' } else { 'a' })
                            .collect();
                        assert!(!matches(&e, &w), "case {case}: {w:?} matches {e}");
                    }
                }
            }
        }
    }
}

#[test]
fn double_complement_is_identity() {
    let mut rng = SmallRng::seed_from_u64(0x5F03);
    for case in 0..CASES {
        let e = rand_starfree(&mut rng, 4);
        let w = rand_word(&mut rng);
        let nn = e.clone().not().not();
        let d1 = e.to_dfa(&UNIVERSE);
        let d2 = nn.to_dfa(&UNIVERSE);
        assert_eq!(d1.accepts(&w), d2.accepts(&w), "case {case}: {e} on {w:?}");
    }
}
