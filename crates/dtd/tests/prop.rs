//! Property test: the direct DTD validator and the compiled tree automaton
//! over encoded binary trees must agree on every document.

use proptest::prelude::*;
use xmltc_dtd::Dtd;
use xmltc_trees::{encode, EncodedAlphabet, RawTree, UnrankedTree};

/// A small pool of content models over tags {a, b, c}.
const MODELS: [&str; 8] = ["@eps", "a*", "b.c", "(a|b)*", "a?.c*", "b+", "a.b?.c", "(a.b)*"];

fn arb_dtd() -> impl Strategy<Value = Dtd> {
    // root rule + rules for a, b, c drawn from the pool.
    (
        prop::sample::select(&MODELS[..]),
        prop::sample::select(&MODELS[..]),
        prop::sample::select(&MODELS[..]),
        prop::sample::select(&MODELS[..]),
    )
        .prop_map(|(r, ra, rb, rc)| {
            Dtd::parse_text(&format!(
                "root := {r}\na := {ra}\nb := {rb}\nc := {rc}"
            ))
            .unwrap()
        })
}

fn arb_doc() -> impl Strategy<Value = RawTree> {
    let leaf = prop::sample::select(vec!["a", "b", "c"]).prop_map(RawTree::leaf);
    let tree = leaf.prop_recursive(3, 20, 4, |inner| {
        (
            prop::sample::select(vec!["a", "b", "c"]),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, children)| RawTree::node(name, children))
    });
    prop::collection::vec(tree, 0..4).prop_map(|children| RawTree::node("root", children))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn validator_agrees_with_compiled_automaton(dtd in arb_dtd(), doc in arb_doc()) {
        let al = dtd.alphabet().clone();
        let t = UnrankedTree::from_raw(&doc, &al).unwrap();
        let enc = EncodedAlphabet::new(&al);
        let a = dtd.compile(&enc).unwrap();
        let bt = encode(&t, &enc).unwrap();
        prop_assert_eq!(a.accepts(&bt).unwrap(), dtd.is_valid(&t));
    }

    #[test]
    fn witness_of_compiled_automaton_is_valid(dtd in arb_dtd()) {
        let enc = EncodedAlphabet::new(dtd.alphabet());
        let a = dtd.compile(&enc).unwrap();
        if let Some(w) = a.witness() {
            let doc = xmltc_trees::decode(&w, &enc).unwrap();
            prop_assert!(dtd.is_valid(&doc));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// decompile ∘ compile is a language identity on random DTDs.
    #[test]
    fn decompile_round_trip(dtd in arb_dtd()) {
        let enc = EncodedAlphabet::new(dtd.alphabet());
        let original = dtd.compile(&enc).unwrap();
        let grammar = xmltc_dtd::decompile(&original, &enc);
        match grammar.compile() {
            Ok(back) => prop_assert!(back.equivalent(&original), "grammar:\n{}", grammar),
            // No roots ⇒ the grammar denotes ∅; the original must be empty
            // too (unsatisfiable content models, e.g. `b := b+`).
            Err(_) => prop_assert!(original.is_empty(), "grammar:\n{}", grammar),
        }
    }
}
