//! Property test: the direct DTD validator and the compiled tree automaton
//! over encoded binary trees must agree on every document.
//!
//! Driven by the workspace's deterministic [`SmallRng`]; each test runs a
//! fixed number of seeded cases.

use xmltc_dtd::Dtd;
use xmltc_trees::{encode, EncodedAlphabet, RawTree, SmallRng, UnrankedTree};

/// A small pool of content models over tags {a, b, c}.
const MODELS: [&str; 8] = [
    "@eps", "a*", "b.c", "(a|b)*", "a?.c*", "b+", "a.b?.c", "(a.b)*",
];

const TAGS: [&str; 3] = ["a", "b", "c"];

fn rand_dtd(rng: &mut SmallRng) -> Dtd {
    let r = *rng.choose(&MODELS);
    let ra = *rng.choose(&MODELS);
    let rb = *rng.choose(&MODELS);
    let rc = *rng.choose(&MODELS);
    Dtd::parse_text(&format!("root := {r}\na := {ra}\nb := {rb}\nc := {rc}")).unwrap()
}

fn rand_subtree(rng: &mut SmallRng, depth: usize) -> RawTree {
    let name = *rng.choose(&TAGS);
    if depth == 0 || rng.gen_bool(0.4) {
        return RawTree::leaf(name);
    }
    let n = rng.gen_range(0..4);
    RawTree::node(name, (0..n).map(|_| rand_subtree(rng, depth - 1)).collect())
}

fn rand_doc(rng: &mut SmallRng) -> RawTree {
    let n = rng.gen_range(0..4);
    RawTree::node("root", (0..n).map(|_| rand_subtree(rng, 2)).collect())
}

#[test]
fn validator_agrees_with_compiled_automaton() {
    let mut rng = SmallRng::seed_from_u64(0xD001);
    for case in 0..128 {
        let dtd = rand_dtd(&mut rng);
        let doc = rand_doc(&mut rng);
        let al = dtd.alphabet().clone();
        let t = UnrankedTree::from_raw(&doc, &al).unwrap();
        let enc = EncodedAlphabet::new(&al);
        let a = dtd.compile(&enc).unwrap();
        let bt = encode(&t, &enc).unwrap();
        assert_eq!(
            a.accepts(&bt).unwrap(),
            dtd.is_valid(&t),
            "case {case}: {dtd:?} on {doc:?}"
        );
    }
}

#[test]
fn witness_of_compiled_automaton_is_valid() {
    let mut rng = SmallRng::seed_from_u64(0xD002);
    for case in 0..128 {
        let dtd = rand_dtd(&mut rng);
        let enc = EncodedAlphabet::new(dtd.alphabet());
        let a = dtd.compile(&enc).unwrap();
        if let Some(w) = a.witness() {
            let doc = xmltc_trees::decode(&w, &enc).unwrap();
            assert!(dtd.is_valid(&doc), "case {case}: witness {doc} invalid");
        }
    }
}

/// decompile ∘ compile is a language identity on random DTDs.
#[test]
fn decompile_round_trip() {
    let mut rng = SmallRng::seed_from_u64(0xD003);
    for case in 0..64 {
        let dtd = rand_dtd(&mut rng);
        let enc = EncodedAlphabet::new(dtd.alphabet());
        let original = dtd.compile(&enc).unwrap();
        let grammar = xmltc_dtd::decompile(&original, &enc);
        match grammar.compile() {
            Ok(back) => assert!(
                back.equivalent(&original),
                "case {case}: grammar:\n{grammar}"
            ),
            // No roots ⇒ the grammar denotes ∅; the original must be empty
            // too (unsatisfiable content models, e.g. `b := b+`).
            Err(_) => assert!(original.is_empty(), "case {case}: grammar:\n{grammar}"),
        }
    }
}
