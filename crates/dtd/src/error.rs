//! DTD errors.

use std::fmt;
use xmltc_trees::TreeError;

/// Errors from DTD parsing, validation and compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DtdError {
    /// Text-syntax parse error.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// A tree node's children violate its content model.
    InvalidContent {
        /// The offending element's tag name.
        element: String,
        /// The children tag-word that failed to match.
        word: Vec<String>,
    },
    /// The root element's tag does not match the DTD root.
    WrongRoot {
        /// Expected root tag.
        expected: String,
        /// Actual root tag.
        got: String,
    },
    /// Underlying tree error (alphabet mismatch etc.).
    Tree(TreeError),
}

impl fmt::Display for DtdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtdError::Parse { line, message } => {
                write!(f, "DTD parse error on line {line}: {message}")
            }
            DtdError::InvalidContent { element, word } => write!(
                f,
                "children of <{element}> do not match its content model: [{}]",
                word.join(", ")
            ),
            DtdError::WrongRoot { expected, got } => {
                write!(f, "root element is <{got}>, DTD requires <{expected}>")
            }
            DtdError::Tree(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DtdError {}

impl From<TreeError> for DtdError {
    fn from(e: TreeError) -> Self {
        DtdError::Tree(e)
    }
}
