//! # xmltc-dtd
//!
//! Document Type Definitions and their automaton-theoretic semantics
//! (Section 2.3 of the paper).
//!
//! * [`Dtd`] — a DTD is an extended context-free grammar with nonterminals
//!   `Σ`: one regular-expression content model per tag. `inst(D)` is the set
//!   of unranked trees that are derivation trees of the grammar.
//! * [`SpecializedDtd`] — DTDs with *decoupled tags* (a.k.a. specialized
//!   DTDs): finitely many *types*, each carrying a tag label, with content
//!   models over types. The paper (citing [4, 32, 13]) notes these capture
//!   exactly the regular tree languages; plain DTDs are strictly weaker
//!   (the `{a(b(c), b(d))}` example).
//! * [`compile`](SpecializedDtd::compile) — compilation to a bottom-up tree
//!   automaton over the binary encoding, so DTD-typed inputs/outputs plug
//!   directly into the typechecking pipeline.
//! * A small text syntax ([`Dtd::parse_text`]) mirroring the paper's
//!   notation: `a := b*.c.e`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decompile;
pub mod dtd;
pub mod error;
pub mod specialized;

pub use decompile::{decompile, InferredGrammar};
pub use dtd::{Diagnosis, Dtd};
pub use error::DtdError;
pub use specialized::{SpecializedDtd, TypeId};
