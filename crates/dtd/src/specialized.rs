//! Specialized DTDs (decoupled tags) and compilation to tree automata.
//!
//! A specialized DTD has a finite set of *types*; each type carries a tag
//! label from `Σ` and a content model — a regular expression over *types*.
//! A tree is valid when its nodes can be assigned types so that the root
//! gets the root type, each node's label matches its type's label, and each
//! node's children type-word matches its type's content model. As the paper
//! notes (Section 2.3), specialized DTDs capture exactly the regular tree
//! languages of encoded binary trees.

use crate::error::DtdError;
use std::fmt;
use std::sync::Arc;
use xmltc_automata::{Nta, State};
use xmltc_regex::{Dfa, Regex};
use xmltc_trees::{Alphabet, EncodedAlphabet, Symbol, UnrankedTree};

/// A type (specialization) in a specialized DTD: an index into the DTD's
/// type table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

impl TypeId {
    /// The index as usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A specialized DTD over an unranked alphabet.
#[derive(Clone, Debug)]
pub struct SpecializedDtd {
    alphabet: Arc<Alphabet>,
    /// Human-readable type names (for diagnostics).
    names: Vec<String>,
    /// Tag label of each type.
    labels: Vec<Symbol>,
    /// Content model of each type, over types.
    rules: Vec<Regex<TypeId>>,
    root: TypeId,
}

impl SpecializedDtd {
    /// Creates a specialized DTD from parts. `names`, `labels` and `rules`
    /// must have equal lengths; `root` must index into them.
    pub fn new(
        alphabet: &Arc<Alphabet>,
        names: Vec<String>,
        labels: Vec<Symbol>,
        rules: Vec<Regex<TypeId>>,
        root: TypeId,
    ) -> SpecializedDtd {
        assert_eq!(names.len(), labels.len());
        assert_eq!(names.len(), rules.len());
        assert!(root.index() < names.len());
        SpecializedDtd {
            alphabet: Arc::clone(alphabet),
            names,
            labels,
            rules,
            root,
        }
    }

    /// The unranked source alphabet.
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    /// Number of types.
    pub fn n_types(&self) -> usize {
        self.names.len()
    }

    /// The root type.
    pub fn root(&self) -> TypeId {
        self.root
    }

    /// The tag label of a type.
    pub fn label(&self, t: TypeId) -> Symbol {
        self.labels[t.index()]
    }

    /// The content model of a type.
    pub fn rule(&self, t: TypeId) -> &Regex<TypeId> {
        &self.rules[t.index()]
    }

    /// The name of a type.
    pub fn name(&self, t: TypeId) -> &str {
        &self.names[t.index()]
    }

    /// Compiles to a bottom-up tree automaton over the binary encoding:
    /// `inst(result) = { encode(t) | t valid w.r.t. self }`.
    ///
    /// States: one `E(ty)` per type ("this subtree encodes a valid element
    /// of type `ty`"), one `F(ty, d)` per type and content-DFA state ("this
    /// subtree encodes a forest driving `ty`'s content DFA from `d` to a
    /// final state"), plus `Nil` for the `#` right-child of elements.
    pub fn compile(&self, enc: &EncodedAlphabet) -> Result<Nta, DtdError> {
        let _span = xmltc_obs::span("dtd.specialized.compile");
        xmltc_obs::record("dtd.types", self.n_types() as u64);
        if !Alphabet::same(&self.alphabet, enc.source()) {
            return Err(DtdError::Tree(xmltc_trees::TreeError::AlphabetMismatch));
        }
        let universe: Vec<TypeId> = (0..self.n_types() as u32).map(TypeId).collect();
        let dfas: Vec<Dfa<TypeId>> = self
            .rules
            .iter()
            .map(|r| Dfa::from_regex(r, &universe))
            .collect();

        // State numbering: E(ty) = ty; F(ty, d) = offset[ty] + d; Nil last.
        let n_types = self.n_types();
        let mut offset = Vec::with_capacity(n_types);
        let mut next = n_types as u32;
        for d in &dfas {
            offset.push(next);
            next += d.len() as u32;
        }
        let nil = State(next);
        let n_states = next + 1;

        let e_state = |ty: usize| State(ty as u32);
        let f_state = |ty: usize, d: u32| State(offset[ty] + d);

        let mut a = Nta::new(enc.encoded(), n_states);

        // `#` is the empty forest for every type whose DFA start... no:
        // `#` ends any forest: F(ty, d) for every *final* d; and `#` is Nil.
        a.add_leaf(enc.nil(), nil);
        for (ty, dfa) in dfas.iter().enumerate() {
            for d in 0..dfa.len() as u32 {
                if dfa.is_final(d) {
                    a.add_leaf(enc.nil(), f_state(ty, d));
                }
            }
        }

        // Element: label(ty)(F(ty, start), Nil) → E(ty).
        for (ty, dfa) in dfas.iter().enumerate() {
            a.add_node(self.labels[ty], f_state(ty, dfa.start()), nil, e_state(ty));
        }

        // Forest cons: -(E(tb), F(ty, d')) → F(ty, d) whenever
        // δ_ty(d, tb) = d'.
        for (ty, dfa) in dfas.iter().enumerate() {
            for d in 0..dfa.len() as u32 {
                for tb in 0..n_types {
                    if let Some(d2) = dfa.step(d, TypeId(tb as u32)) {
                        a.add_node(enc.cons(), e_state(tb), f_state(ty, d2), f_state(ty, d));
                    }
                }
            }
        }

        a.add_final(e_state(self.root.index()));
        xmltc_obs::record("dtd.states", a.n_states() as u64);
        xmltc_obs::record("dtd.transitions", a.n_transitions() as u64);
        Ok(a)
    }

    /// Validates an unranked tree by encoding it and running the compiled
    /// automaton. (For plain [`crate::Dtd`]s a direct, diagnostic-friendly
    /// validator also exists.)
    pub fn validates(&self, t: &UnrankedTree) -> Result<bool, DtdError> {
        let enc = EncodedAlphabet::new(&self.alphabet);
        let a = self.compile(&enc)?;
        let bt = xmltc_trees::encode(t, &enc)?;
        Ok(a.accepts(&bt)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's separating example: the singleton `{a(b(c), b(d))}` is
    /// not DTD-definable (the two `b`s need different content) but is a
    /// specialized-DTD language.
    fn separating() -> SpecializedDtd {
        let al = Alphabet::unranked(&["a", "b", "c", "d"]);
        let a = al.get("a").unwrap();
        let b = al.get("b").unwrap();
        let c = al.get("c").unwrap();
        let d = al.get("d").unwrap();
        // types: A=a(Bc.Bd), Bc=b(C), Bd=b(D), C=c(), D=d()
        SpecializedDtd::new(
            &al,
            vec!["A".into(), "Bc".into(), "Bd".into(), "C".into(), "D".into()],
            vec![a, b, b, c, d],
            vec![
                Regex::sym(TypeId(1)).concat(Regex::sym(TypeId(2))),
                Regex::sym(TypeId(3)),
                Regex::sym(TypeId(4)),
                Regex::Epsilon,
                Regex::Epsilon,
            ],
            TypeId(0),
        )
    }

    #[test]
    fn decoupled_tags_distinguish_b_types() {
        let s = separating();
        let al = s.alphabet().clone();
        let good = UnrankedTree::parse("a(b(c), b(d))", &al).unwrap();
        assert!(s.validates(&good).unwrap());
        for bad in [
            "a(b(d), b(c))",
            "a(b(c), b(c))",
            "a(b(c))",
            "a(b(c), b(d), b(c))",
            "a",
        ] {
            let t = UnrankedTree::parse(bad, &al).unwrap();
            assert!(!s.validates(&t).unwrap(), "{bad} should be invalid");
        }
    }

    #[test]
    fn compiled_automaton_accepts_exactly_encodings() {
        let s = separating();
        let enc = EncodedAlphabet::new(s.alphabet());
        let a = s.compile(&enc).unwrap();
        // The witness of the compiled automaton decodes to the single valid
        // document.
        let w = a.witness().unwrap();
        let back = xmltc_trees::decode(&w, &enc).unwrap();
        assert_eq!(back.to_string(), "a(b(c), b(d))");
    }

    #[test]
    fn starred_content_models() {
        let al = Alphabet::unranked(&["root", "item"]);
        let root = al.get("root").unwrap();
        let item = al.get("item").unwrap();
        let s = SpecializedDtd::new(
            &al,
            vec!["Root".into(), "Item".into()],
            vec![root, item],
            vec![Regex::sym(TypeId(1)).star(), Regex::Epsilon],
            TypeId(0),
        );
        for (doc, ok) in [
            ("root", true),
            ("root(item)", true),
            ("root(item, item, item)", true),
            ("root(item, root)", false),
            ("item", false),
        ] {
            let t = UnrankedTree::parse(doc, &al).unwrap();
            assert_eq!(s.validates(&t).unwrap(), ok, "{doc}");
        }
    }
}
