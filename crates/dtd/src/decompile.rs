//! Decompiling tree automata over encoded trees back into readable
//! specialized-DTD grammars.
//!
//! The typechecking pipeline produces *automata* — e.g. the inferred
//! inverse type `τ₂⁻¹` of Section 4. For human consumption we convert an
//! automaton over the binary encoding back into the grammar notation the
//! paper uses for (specialized) DTDs: one *type* per distinguishable
//! element role, each with a tag and a regular content model over types.
//!
//! Construction: determinize; each deterministic state reached at an
//! element position becomes a type `(tag, forest-state)`; the content
//! model of a type is the word language of element-type sequences driving
//! the forest spine — a word automaton over types read off the `cons`
//! transitions, rendered as a regular expression by state elimination.

use crate::error::DtdError;
use crate::specialized::{SpecializedDtd, TypeId};
use std::fmt;
use xmltc_automata::{Dbta, Nta, State};
use xmltc_regex::{Dfa, Regex};
use xmltc_trees::{EncodedAlphabet, FxHashMap, Symbol};

/// A readable grammar inferred from a tree automaton over encoded trees.
///
/// Like a [`SpecializedDtd`] but with a *set* of root types (an automaton
/// may accept documents with several root roles).
#[derive(Clone, Debug)]
pub struct InferredGrammar {
    enc: EncodedAlphabet,
    /// (tag, content model over types) per type.
    types: Vec<(Symbol, Regex<TypeId>)>,
    roots: Vec<TypeId>,
}

impl InferredGrammar {
    /// Number of types.
    pub fn n_types(&self) -> usize {
        self.types.len()
    }

    /// The root types.
    pub fn roots(&self) -> &[TypeId] {
        &self.roots
    }

    /// Converts to one [`SpecializedDtd`] per root type.
    pub fn to_specialized(&self) -> Vec<SpecializedDtd> {
        self.roots
            .iter()
            .map(|&root| {
                SpecializedDtd::new(
                    self.enc.source(),
                    (0..self.types.len()).map(|i| format!("t{i}")).collect(),
                    self.types.iter().map(|(tag, _)| *tag).collect(),
                    self.types.iter().map(|(_, r)| r.clone()).collect(),
                    root,
                )
            })
            .collect()
    }

    /// Re-compiles the grammar to a tree automaton over encodings (the
    /// union over all roots) — for verifying the decompilation.
    pub fn compile(&self) -> Result<Nta, DtdError> {
        let mut specs = self.to_specialized();
        let first = specs
            .pop()
            .ok_or_else(|| DtdError::Parse {
                line: 0,
                message: "grammar has no root types (empty language)".into(),
            })?
            .compile(&self.enc)?;
        specs
            .iter()
            .try_fold(first, |acc, s| Ok(acc.union(&s.compile(&self.enc)?)))
    }
}

impl fmt::Display for InferredGrammar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let src = self.enc.source();
        writeln!(
            f,
            "roots: {}",
            self.roots
                .iter()
                .map(|r| format!("t{}", r.0))
                .collect::<Vec<_>>()
                .join(" | ")
        )?;
        for (i, (tag, content)) in self.types.iter().enumerate() {
            let model = content
                .map(&mut |t: &TypeId| format!("t{}", t.0))
                .to_string();
            writeln!(f, "t{i} = <{}> ::= {}", src.name(*tag), model)?;
        }
        Ok(())
    }
}

/// Decompiles an automaton over encoded binary trees into an
/// [`InferredGrammar`] describing `inst(a) ∩ {valid encodings}`.
///
/// Trees outside the image of the encoding are ignored (the grammar
/// describes documents, and non-encodings are not documents).
pub fn decompile(a: &Nta, enc: &EncodedAlphabet) -> InferredGrammar {
    // Restrict to valid encodings first so junk transitions don't produce
    // junk types, then determinize.
    let valid = all_documents(enc);
    let d: Dbta = a.intersect(&valid).trim().determinize();

    let nil = d.leaf_state(enc.nil());
    let Some(nil) = nil else {
        return InferredGrammar {
            enc: enc.clone(),
            types: Vec::new(),
            roots: Vec::new(),
        };
    };

    // Types: (tag, element-state) pairs where element-state =
    // d.node(tag, forest-state, nil). Collect per element-state the
    // originating (tag, forest-state).
    let mut type_index: FxHashMap<(Symbol, State), TypeId> = FxHashMap::default();
    let mut type_info: Vec<(Symbol, State, State)> = Vec::new(); // (tag, forest, elem-state)
    for tag in enc.source().symbols() {
        for (key, &q) in d.node_transitions_map() {
            let &(sym, f, r) = key;
            if sym == tag && r == nil {
                let id = TypeId(type_info.len() as u32);
                type_index.entry((tag, f)).or_insert_with(|| {
                    type_info.push((tag, f, q));
                    id
                });
            }
        }
    }

    // Forest word automaton: states = D-states (used as forest states);
    // transition f --type t--> f' iff d.node(cons, elem-state(t), f) = f'.
    // Content model of type (tag, f) = reverse of the language from `nil`
    // to `f`.
    let universe: Vec<TypeId> = (0..type_info.len() as u32).map(TypeId).collect();
    let mut types = Vec::with_capacity(type_info.len());
    for &(tag, f_target, _q) in &type_info {
        let dfa = forest_language(&d, enc, nil, f_target, &type_index, &type_info);
        let content = dfa.to_regex().reverse();
        // Quick simplification pass: re-minimize via the word pipeline.
        let min = Dfa::from_regex(&content, &universe).minimize();
        let content = simplify(min.to_regex(), &content);
        types.push((tag, content));
    }

    // Roots: types whose element-state is final in D.
    let roots: Vec<TypeId> = type_info
        .iter()
        .enumerate()
        .filter(|(_, (_, _, q))| d.finals().contains(*q))
        .map(|(i, _)| TypeId(i as u32))
        .collect();

    // Drop unreachable/useless types? Keep all for now; reachable ones are
    // those participating in some root derivation. Prune for readability:
    prune(InferredGrammar {
        enc: enc.clone(),
        types,
        roots,
    })
}

/// Drops types unreachable from the roots (through content models) and
/// renumbers, for readability.
fn prune(g: InferredGrammar) -> InferredGrammar {
    let n = g.types.len();
    let mut keep = vec![false; n];
    let mut stack: Vec<usize> = g.roots.iter().map(|r| r.index()).collect();
    for &r in &stack {
        keep[r] = true;
    }
    while let Some(t) = stack.pop() {
        for s in g.types[t].1.symbols() {
            if !keep[s.index()] {
                keep[s.index()] = true;
                stack.push(s.index());
            }
        }
    }
    let mut remap: Vec<Option<TypeId>> = vec![None; n];
    let mut next = 0u32;
    for (i, &k) in keep.iter().enumerate() {
        if k {
            remap[i] = Some(TypeId(next));
            next += 1;
        }
    }
    let types = g
        .types
        .iter()
        .enumerate()
        .filter(|(i, _)| keep[*i])
        .map(|(_, (tag, r))| {
            (
                *tag,
                r.map(&mut |t: &TypeId| remap[t.index()].expect("kept types only reference kept")),
            )
        })
        .collect();
    let roots = g
        .roots
        .iter()
        .map(|r| remap[r.index()].expect("roots kept"))
        .collect();
    InferredGrammar {
        enc: g.enc,
        types,
        roots,
    }
}

/// Chooses the shorter of two equivalent regexes (state elimination output
/// is order-sensitive; the minimized round-trip often reads better).
fn simplify(a: Regex<TypeId>, b: &Regex<TypeId>) -> Regex<TypeId> {
    fn size(r: &Regex<TypeId>) -> usize {
        match r {
            Regex::Empty | Regex::Epsilon | Regex::Sym(_) => 1,
            Regex::Concat(x, y) | Regex::Alt(x, y) => 1 + size(x) + size(y),
            Regex::Star(x) | Regex::Plus(x) | Regex::Opt(x) => 1 + size(x),
        }
    }
    if size(&a) <= size(b) {
        a
    } else {
        b.clone()
    }
}

/// Word DFA over `TypeId` for the forest spine from `nil` to `target`.
fn forest_language(
    d: &Dbta,
    enc: &EncodedAlphabet,
    nil: State,
    target: State,
    type_index: &FxHashMap<(Symbol, State), TypeId>,
    type_info: &[(Symbol, State, State)],
) -> Dfa<TypeId> {
    // NFA over forest states; deterministic actually (D is deterministic
    // and each type has a unique element-state — but two types may share
    // an element-state, so letters can duplicate transitions: keep NFA
    // semantics via the regex pipeline).
    let _ = type_index;
    let n = d.n_states() as usize;
    let universe: Vec<TypeId> = (0..type_info.len() as u32).map(TypeId).collect();
    // Build as a DFA directly: trans[f][type] = d.node(cons, elem_state(type), f).
    let mut trans: Vec<Vec<Option<u32>>> = vec![vec![None; universe.len()]; n];
    for (f, row) in trans.iter_mut().enumerate() {
        for (ti, &(_, _, elem_state)) in type_info.iter().enumerate() {
            if let Some(next) = d.node_state(enc.cons(), elem_state, State(f as u32)) {
                row[ti] = Some(next.0);
            }
        }
    }
    let finals: Vec<bool> = (0..n).map(|q| q as u32 == target.0).collect();
    Dfa::from_parts(universe, trans, nil.0, finals)
}

/// The automaton of *all* valid encodings over the alphabet.
fn all_documents(enc: &EncodedAlphabet) -> Nta {
    let al = enc.encoded();
    // states: 0 = element, 1 = forest, 2 = nil-right-child sentinel.
    let mut a = Nta::new(al, 3);
    let elem = State(0);
    let forest = State(1);
    let nil = State(2);
    a.add_leaf(enc.nil(), nil);
    a.add_leaf(enc.nil(), forest);
    for tag in enc.source().symbols() {
        a.add_node(tag, forest, nil, elem);
    }
    a.add_node(enc.cons(), elem, forest, forest);
    a.add_final(elem);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtd::Dtd;

    fn round_trip(dtd_text: &str) {
        let dtd = Dtd::parse_text(dtd_text).unwrap();
        let enc = EncodedAlphabet::new(dtd.alphabet());
        let original = dtd.compile(&enc).unwrap();
        let grammar = decompile(&original, &enc);
        let back = grammar.compile().unwrap();
        assert!(
            back.equivalent(&original),
            "decompile round trip failed for:\n{dtd_text}\ngot grammar:\n{grammar}"
        );
    }

    #[test]
    fn round_trips_simple_dtds() {
        round_trip("root := a*\na := @eps");
        round_trip("a := b*.c.e\nb := @eps\nc := d*\nd := @eps\ne := @eps");
        round_trip("root := (a.a)*\na := @eps");
        round_trip("r := a?.b+\na := b*\nb := @eps");
    }

    #[test]
    fn decompiles_recursive_dtds() {
        round_trip("a := a*");
        round_trip("root := item*\nitem := item*");
    }

    #[test]
    fn display_is_readable() {
        let dtd = Dtd::parse_text("root := a*\na := @eps").unwrap();
        let enc = EncodedAlphabet::new(dtd.alphabet());
        let grammar = decompile(&dtd.compile(&enc).unwrap(), &enc);
        let s = grammar.to_string();
        assert!(s.contains("<root>"), "{s}");
        assert!(s.contains("<a>"), "{s}");
        assert!(s.contains("roots:"), "{s}");
    }

    #[test]
    fn empty_language_has_no_roots() {
        let dtd = Dtd::parse_text("root := a*\na := @eps").unwrap();
        let enc = EncodedAlphabet::new(dtd.alphabet());
        let a = dtd.compile(&enc).unwrap();
        let empty = a.intersect(&a.complement().to_nta());
        let grammar = decompile(&empty, &enc);
        assert!(grammar.roots().is_empty());
        assert!(grammar.compile().is_err());
    }
}
