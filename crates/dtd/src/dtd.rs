//! Plain DTDs: one content model per tag, direct validation, text syntax.

use crate::error::DtdError;
use crate::specialized::{SpecializedDtd, TypeId};
use std::sync::Arc;
use xmltc_automata::Nta;
use xmltc_regex::{Dfa, Regex};
use xmltc_trees::{Alphabet, EncodedAlphabet, FxHashMap, Rank, Symbol, UnrankedTree};

/// A Document Type Definition: an extended context-free grammar with
/// nonterminals `Σ` (Section 2.3). `inst(D)` is the set of derivation
/// trees: the root is labeled `root`, and every node's children word
/// matches its tag's content model. Tags without an explicit rule are
/// leaves (content model `ε`).
#[derive(Clone, Debug)]
pub struct Dtd {
    alphabet: Arc<Alphabet>,
    root: Symbol,
    rules: FxHashMap<Symbol, Regex<Symbol>>,
}

impl Dtd {
    /// Creates a DTD with the given root and no rules.
    pub fn new(alphabet: &Arc<Alphabet>, root: Symbol) -> Dtd {
        Dtd {
            alphabet: Arc::clone(alphabet),
            root,
            rules: FxHashMap::default(),
        }
    }

    /// Sets the content model of a tag (replacing any previous one).
    pub fn set_rule(&mut self, tag: Symbol, content: Regex<Symbol>) {
        self.rules.insert(tag, content);
    }

    /// Parses the paper's notation, e.g. the DTD of Figure 1:
    ///
    /// ```text
    /// a := b*.c.e
    /// b := @eps
    /// c := d*
    /// d := @eps
    /// e := @eps
    /// ```
    ///
    /// The first rule's left-hand side is the root. `//` starts a comment.
    /// A fresh unranked alphabet is built from all names that appear.
    pub fn parse_text(text: &str) -> Result<Dtd, DtdError> {
        Self::parse_entries(text, None)
    }

    /// Like [`Dtd::parse_text`] but over a pre-existing alphabet — required
    /// when the DTD must type trees produced by a machine that already
    /// fixed its (output) alphabet. All names in the text must exist in
    /// `alphabet`.
    pub fn parse_text_with(text: &str, alphabet: &Arc<Alphabet>) -> Result<Dtd, DtdError> {
        Self::parse_entries(text, Some(alphabet))
    }

    fn parse_entries(text: &str, fixed: Option<&Arc<Alphabet>>) -> Result<Dtd, DtdError> {
        let mut entries: Vec<(String, Regex<String>)> = Vec::new();
        for (lineno, raw_line) in text.lines().enumerate() {
            let line = match raw_line.find("//") {
                Some(i) => &raw_line[..i],
                None => raw_line,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let Some((lhs, rhs)) = line.split_once(":=") else {
                return Err(DtdError::Parse {
                    line: lineno + 1,
                    message: "expected `name := content-model`".into(),
                });
            };
            let name = lhs.trim().to_string();
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(DtdError::Parse {
                    line: lineno + 1,
                    message: format!("invalid tag name `{name}`"),
                });
            }
            let regex = xmltc_regex::parse(rhs.trim()).map_err(|e| DtdError::Parse {
                line: lineno + 1,
                message: e.to_string(),
            })?;
            entries.push((name, regex));
        }
        if entries.is_empty() {
            return Err(DtdError::Parse {
                line: 0,
                message: "empty DTD".into(),
            });
        }
        // Build the alphabet (all rule names plus all names in content
        // models, in order of first appearance) unless one was supplied.
        let alphabet = match fixed {
            Some(al) => Arc::clone(al),
            None => {
                let mut builder = xmltc_trees::AlphabetBuilder::new();
                for (name, regex) in &entries {
                    builder.add(name, Rank::Unranked);
                    for s in regex.symbols() {
                        builder.add(&s, Rank::Unranked);
                    }
                }
                builder.finish()
            }
        };
        let root = alphabet.get(&entries[0].0).ok_or_else(|| DtdError::Parse {
            line: 1,
            message: format!("root tag `{}` not in the supplied alphabet", entries[0].0),
        })?;
        let mut dtd = Dtd::new(&alphabet, root);
        for (name, regex) in &entries {
            let tag = alphabet.get(name).ok_or_else(|| DtdError::Parse {
                line: 0,
                message: format!("tag `{name}` not in the supplied alphabet"),
            })?;
            let content = regex.try_map(&mut |n: &String| alphabet.require(n))?;
            dtd.set_rule(tag, content);
        }
        Ok(dtd)
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    /// The root tag.
    pub fn root(&self) -> Symbol {
        self.root
    }

    /// The content model of a tag (`None` = implicit `ε`).
    pub fn rule(&self, tag: Symbol) -> Option<&Regex<Symbol>> {
        self.rules.get(&tag)
    }

    /// Validates an unranked tree, returning the first violation found (in
    /// pre-order).
    pub fn validate(&self, t: &UnrankedTree) -> Result<(), DtdError> {
        if !Alphabet::same(&self.alphabet, t.alphabet()) {
            return Err(DtdError::Tree(xmltc_trees::TreeError::AlphabetMismatch));
        }
        if t.symbol(t.root()) != self.root {
            return Err(DtdError::WrongRoot {
                expected: self.alphabet.name(self.root).to_string(),
                got: self.alphabet.name(t.symbol(t.root())).to_string(),
            });
        }
        // Compile each used content model once.
        let universe: Vec<Symbol> = self.alphabet.symbols().collect();
        let mut dfas: FxHashMap<Symbol, Dfa<Symbol>> = FxHashMap::default();
        for n in t.preorder() {
            let tag = t.symbol(n);
            let word = t.child_word(n);
            let ok = match self.rules.get(&tag) {
                None => word.is_empty(),
                Some(r) => {
                    let dfa = dfas
                        .entry(tag)
                        .or_insert_with(|| Dfa::from_regex(r, &universe));
                    dfa.accepts(&word)
                }
            };
            if !ok {
                return Err(DtdError::InvalidContent {
                    element: self.alphabet.name(tag).to_string(),
                    word: word
                        .iter()
                        .map(|&s| self.alphabet.name(s).to_string())
                        .collect(),
                });
            }
        }
        Ok(())
    }

    /// True when the tree is valid.
    pub fn is_valid(&self, t: &UnrankedTree) -> bool {
        self.validate(t).is_ok()
    }

    /// Explains the first violation found (same pre-order walk as
    /// [`Dtd::validate`], so both always implicate the same node). `None`
    /// when the tree is valid or over a different alphabet.
    ///
    /// For a content-model violation the diagnosis pins the failure inside
    /// the content DFA: the state sequence walked, the position where
    /// acceptance became impossible (a position past the end of the word
    /// means the content ended too early), and which symbols could still
    /// have led to acceptance there. "Impossible" is judged against the
    /// co-reachable states, so a transition into a dead-end sink already
    /// counts as the failure point.
    pub fn diagnose(&self, t: &UnrankedTree) -> Option<Diagnosis> {
        if !Alphabet::same(&self.alphabet, t.alphabet()) {
            return None;
        }
        let name = |s: Symbol| self.alphabet.name(s).to_string();
        if t.symbol(t.root()) != self.root {
            return Some(Diagnosis::WrongRoot {
                expected: name(self.root),
                got: name(t.symbol(t.root())),
            });
        }
        let universe: Vec<Symbol> = self.alphabet.symbols().collect();
        for n in t.preorder() {
            let tag = t.symbol(n);
            let word = t.child_word(n);
            let rendered_word: Vec<String> = word.iter().map(|&s| name(s)).collect();
            match self.rules.get(&tag) {
                None => {
                    if !word.is_empty() {
                        return Some(Diagnosis::InvalidContent {
                            path: unranked_path(t, n),
                            element: name(tag),
                            word: rendered_word,
                            production: format!("{} := @eps", name(tag)),
                            failed_at: 0,
                            dfa_states: vec![0],
                            expected: Vec::new(),
                        });
                    }
                }
                Some(r) => {
                    let dfa = Dfa::from_regex(r, &universe);
                    let co = co_reachable(&dfa);
                    let mut states = vec![dfa.start()];
                    let mut cur = dfa.start();
                    let mut failed_at = None;
                    if co[cur as usize] {
                        for (i, &s) in word.iter().enumerate() {
                            match dfa.step(cur, s) {
                                Some(q) if co[q as usize] => {
                                    cur = q;
                                    states.push(q);
                                }
                                _ => {
                                    failed_at = Some(i);
                                    break;
                                }
                            }
                        }
                    } else {
                        failed_at = Some(0);
                    }
                    if failed_at.is_none() && dfa.is_final(cur) {
                        continue; // this node is fine
                    }
                    let failed_at = failed_at.unwrap_or(word.len());
                    let expected = if co[cur as usize] {
                        universe
                            .iter()
                            .filter(|&&s| dfa.step(cur, s).is_some_and(|q| co[q as usize]))
                            .map(|&s| name(s))
                            .collect()
                    } else {
                        Vec::new()
                    };
                    return Some(Diagnosis::InvalidContent {
                        path: unranked_path(t, n),
                        element: name(tag),
                        word: rendered_word,
                        production: format!(
                            "{} := {}",
                            name(tag),
                            r.map(&mut |s: &Symbol| name(*s))
                        ),
                        failed_at,
                        dfa_states: states,
                        expected,
                    });
                }
            }
        }
        None
    }

    /// Views the DTD as a specialized DTD with one type per tag.
    pub fn to_specialized(&self) -> SpecializedDtd {
        let n = self.alphabet.len();
        let names = self
            .alphabet
            .symbols()
            .map(|s| self.alphabet.name(s).to_string())
            .collect();
        let labels = self.alphabet.symbols().collect();
        let rules = self
            .alphabet
            .symbols()
            .map(|s| match self.rules.get(&s) {
                None => Regex::Epsilon,
                Some(r) => r.map(&mut |sym: &Symbol| TypeId(sym.0)),
            })
            .collect();
        let _ = n;
        SpecializedDtd::new(&self.alphabet, names, labels, rules, TypeId(self.root.0))
    }

    /// Compiles to a bottom-up tree automaton over the binary encoding.
    pub fn compile(&self, enc: &EncodedAlphabet) -> Result<Nta, DtdError> {
        let _span = xmltc_obs::span("dtd.compile");
        let nta = self.to_specialized().compile(enc)?;
        xmltc_obs::record("dtd.states", nta.n_states() as u64);
        xmltc_obs::record("dtd.transitions", nta.n_transitions() as u64);
        Ok(nta)
    }
}

/// An explained DTD violation — the provenance-grade counterpart of
/// [`DtdError`], produced by [`Dtd::diagnose`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Diagnosis {
    /// The root element has the wrong tag.
    WrongRoot {
        /// The tag the DTD requires at the root.
        expected: String,
        /// The tag found there.
        got: String,
    },
    /// An element's children word violates its content model.
    InvalidContent {
        /// 1-based child-index path of the failing element (`/` = root,
        /// `/2/1` = first child of the root's second child).
        path: String,
        /// The failing element's tag.
        element: String,
        /// Its children word.
        word: Vec<String>,
        /// The implicated production, rendered (`@eps` for unruled tags).
        production: String,
        /// Index into `word` where acceptance became impossible;
        /// `word.len()` means the content ended before the model allowed.
        failed_at: usize,
        /// Content-DFA states walked, up to the failure point.
        dfa_states: Vec<u32>,
        /// Symbols that could still have led to acceptance at the
        /// failure point (empty when no continuation accepts).
        expected: Vec<String>,
    },
}

/// States of `dfa` from which some final state is reachable.
fn co_reachable(dfa: &Dfa<Symbol>) -> Vec<bool> {
    let n = dfa.len();
    let mut co: Vec<bool> = (0..n as u32).map(|q| dfa.is_final(q)).collect();
    let alphabet: Vec<Symbol> = dfa.alphabet().to_vec();
    let mut changed = true;
    while changed {
        changed = false;
        for q in 0..n as u32 {
            if co[q as usize] {
                continue;
            }
            if alphabet
                .iter()
                .any(|&s| dfa.step(q, s).is_some_and(|p| co[p as usize]))
            {
                co[q as usize] = true;
                changed = true;
            }
        }
    }
    co
}

/// 1-based child-index path of `n` in an unranked tree (`/` = root).
fn unranked_path(t: &UnrankedTree, n: xmltc_trees::NodeId) -> String {
    let mut segs = Vec::new();
    let mut cur = n;
    while let Some(p) = t.parent(cur) {
        let idx = t
            .children(p)
            .iter()
            .position(|&c| c == cur)
            .expect("child listed under its parent")
            + 1;
        segs.push(idx.to_string());
        cur = p;
    }
    if segs.is_empty() {
        return "/".to_string();
    }
    segs.reverse();
    let mut out = String::new();
    for s in segs {
        out.push('/');
        out.push_str(&s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltc_trees::encode;

    /// The DTD of Figure 1 / Section 2.3.
    fn figure_one() -> Dtd {
        Dtd::parse_text(
            "a := b*.c.e // root rule
             b := @eps
             c := d*
             d := @eps
             e := @eps",
        )
        .unwrap()
    }

    #[test]
    fn validates_figure_one_document() {
        let d = figure_one();
        let al = d.alphabet().clone();
        let t = UnrankedTree::parse("a(b, b, c(d), e)", &al).unwrap();
        assert!(d.validate(&t).is_ok());
    }

    #[test]
    fn rejects_invalid_documents() {
        let d = figure_one();
        let al = d.alphabet().clone();
        for (doc, why) in [
            ("a(c(d), b, e)", "b after c"),
            ("a(b, b)", "missing c.e"),
            ("a(b, c(b), e)", "b inside c"),
            ("b", "wrong root"),
            ("a(b(b), c, e)", "b must be empty"),
        ] {
            let t = UnrankedTree::parse(doc, &al).unwrap();
            assert!(d.validate(&t).is_err(), "{doc}: {why}");
        }
    }

    #[test]
    fn error_reports_are_specific() {
        let d = figure_one();
        let al = d.alphabet().clone();
        let t = UnrankedTree::parse("a(b, b)", &al).unwrap();
        match d.validate(&t) {
            Err(DtdError::InvalidContent { element, word }) => {
                assert_eq!(element, "a");
                assert_eq!(word, vec!["b", "b"]);
            }
            other => panic!("expected InvalidContent, got {other:?}"),
        }
        let t = UnrankedTree::parse("b", &al).unwrap();
        assert!(matches!(d.validate(&t), Err(DtdError::WrongRoot { .. })));
    }

    #[test]
    fn compiled_automaton_agrees_with_validator() {
        let d = figure_one();
        let al = d.alphabet().clone();
        let enc = EncodedAlphabet::new(&al);
        let a = d.compile(&enc).unwrap();
        for doc in [
            "a(b, b, c(d), e)",
            "a(c, e)",
            "a(c(d, d, d), e)",
            "a(b, c(d), e)",
            "a(c(d), b, e)",
            "a(b, b)",
            "b",
            "a(b(b), c, e)",
            "a(b, c(b), e)",
        ] {
            let t = UnrankedTree::parse(doc, &al).unwrap();
            let bt = encode(&t, &enc).unwrap();
            assert_eq!(
                a.accepts(&bt).unwrap(),
                d.is_valid(&t),
                "disagreement on {doc}"
            );
        }
    }

    #[test]
    fn compiled_rejects_non_encodings() {
        let d = figure_one();
        let enc = EncodedAlphabet::new(d.alphabet());
        let a = d.compile(&enc).unwrap();
        // `-` at the root is never a valid encoding.
        let junk = xmltc_trees::BinaryTree::parse("-(a(#, #), #)", enc.encoded()).unwrap();
        assert!(!a.accepts(&junk).unwrap());
    }

    #[test]
    fn example_42_dtd() {
        // Example 4.2: root := a* — the documents a^n.
        let d = Dtd::parse_text("root := a*\na := @eps").unwrap();
        let al = d.alphabet().clone();
        for n in 0..5 {
            let t = xmltc_trees::generate::flat(d.root(), al.get("a").unwrap(), n, &al).unwrap();
            assert!(d.is_valid(&t), "a^{n}");
        }
    }

    #[test]
    fn parse_errors() {
        assert!(Dtd::parse_text("").is_err());
        assert!(Dtd::parse_text("a = b").is_err());
        assert!(Dtd::parse_text("a := (b").is_err());
        assert!(Dtd::parse_text("a b := c").is_err());
    }

    #[test]
    fn unruled_tags_are_leaves() {
        let d = Dtd::parse_text("a := b*").unwrap();
        let al = d.alphabet().clone();
        assert!(d.is_valid(&UnrankedTree::parse("a(b, b)", &al).unwrap()));
        assert!(!d.is_valid(&UnrankedTree::parse("a(b(b))", &al).unwrap()));
    }

    #[test]
    fn diagnose_agrees_with_validate() {
        let d = figure_one();
        let al = d.alphabet().clone();
        for doc in [
            "a(b, b, c(d), e)",
            "a(c(d), b, e)",
            "a(b, b)",
            "a(b, c(b), e)",
            "b",
            "a(b(b), c, e)",
        ] {
            let t = UnrankedTree::parse(doc, &al).unwrap();
            assert_eq!(
                d.diagnose(&t).is_none(),
                d.validate(&t).is_ok(),
                "diagnose/validate disagree on {doc}"
            );
        }
    }

    #[test]
    fn diagnose_pins_the_failure_point() {
        let d = figure_one();
        let al = d.alphabet().clone();
        // `b` after `c`: position 1 of the root's content is dead.
        let t = UnrankedTree::parse("a(c(d), b, e)", &al).unwrap();
        match d.diagnose(&t).unwrap() {
            Diagnosis::InvalidContent {
                path,
                element,
                word,
                production,
                failed_at,
                dfa_states,
                expected,
            } => {
                assert_eq!(path, "/");
                assert_eq!(element, "a");
                assert_eq!(word, vec!["c", "b", "e"]);
                assert!(production.starts_with("a := "), "{production}");
                assert_eq!(failed_at, 1);
                assert_eq!(dfa_states.len(), 2); // start + after `c`
                assert_eq!(expected, vec!["e"]);
            }
            other => panic!("expected InvalidContent, got {other:?}"),
        }
    }

    #[test]
    fn diagnose_premature_end_and_nested_paths() {
        let d = figure_one();
        let al = d.alphabet().clone();
        // Content ends before the mandatory `c.e` tail.
        let t = UnrankedTree::parse("a(b, b)", &al).unwrap();
        match d.diagnose(&t).unwrap() {
            Diagnosis::InvalidContent {
                failed_at,
                word,
                expected,
                ..
            } => {
                assert_eq!(failed_at, word.len());
                assert!(expected.contains(&"b".to_string()));
                assert!(expected.contains(&"c".to_string()));
            }
            other => panic!("expected InvalidContent, got {other:?}"),
        }
        // The failing element is addressed by child index, and an unruled
        // tag with children reports the implicit `@eps` production.
        let t = UnrankedTree::parse("a(b, b, c(d(b)), e)", &al).unwrap();
        match d.diagnose(&t).unwrap() {
            Diagnosis::InvalidContent {
                path,
                element,
                production,
                ..
            } => {
                assert_eq!(path, "/3/1");
                assert_eq!(element, "d");
                assert_eq!(production, "d := @eps");
            }
            other => panic!("expected InvalidContent, got {other:?}"),
        }
        // Wrong root.
        let t = UnrankedTree::parse("b", &al).unwrap();
        assert_eq!(
            d.diagnose(&t),
            Some(Diagnosis::WrongRoot {
                expected: "a".into(),
                got: "b".into()
            })
        );
    }
}
