//! Plain DTDs: one content model per tag, direct validation, text syntax.

use crate::error::DtdError;
use crate::specialized::{SpecializedDtd, TypeId};
use std::sync::Arc;
use xmltc_automata::Nta;
use xmltc_regex::{Dfa, Regex};
use xmltc_trees::{Alphabet, EncodedAlphabet, FxHashMap, Rank, Symbol, UnrankedTree};

/// A Document Type Definition: an extended context-free grammar with
/// nonterminals `Σ` (Section 2.3). `inst(D)` is the set of derivation
/// trees: the root is labeled `root`, and every node's children word
/// matches its tag's content model. Tags without an explicit rule are
/// leaves (content model `ε`).
#[derive(Clone, Debug)]
pub struct Dtd {
    alphabet: Arc<Alphabet>,
    root: Symbol,
    rules: FxHashMap<Symbol, Regex<Symbol>>,
}

impl Dtd {
    /// Creates a DTD with the given root and no rules.
    pub fn new(alphabet: &Arc<Alphabet>, root: Symbol) -> Dtd {
        Dtd {
            alphabet: Arc::clone(alphabet),
            root,
            rules: FxHashMap::default(),
        }
    }

    /// Sets the content model of a tag (replacing any previous one).
    pub fn set_rule(&mut self, tag: Symbol, content: Regex<Symbol>) {
        self.rules.insert(tag, content);
    }

    /// Parses the paper's notation, e.g. the DTD of Figure 1:
    ///
    /// ```text
    /// a := b*.c.e
    /// b := @eps
    /// c := d*
    /// d := @eps
    /// e := @eps
    /// ```
    ///
    /// The first rule's left-hand side is the root. `//` starts a comment.
    /// A fresh unranked alphabet is built from all names that appear.
    pub fn parse_text(text: &str) -> Result<Dtd, DtdError> {
        Self::parse_entries(text, None)
    }

    /// Like [`Dtd::parse_text`] but over a pre-existing alphabet — required
    /// when the DTD must type trees produced by a machine that already
    /// fixed its (output) alphabet. All names in the text must exist in
    /// `alphabet`.
    pub fn parse_text_with(text: &str, alphabet: &Arc<Alphabet>) -> Result<Dtd, DtdError> {
        Self::parse_entries(text, Some(alphabet))
    }

    fn parse_entries(text: &str, fixed: Option<&Arc<Alphabet>>) -> Result<Dtd, DtdError> {
        let mut entries: Vec<(String, Regex<String>)> = Vec::new();
        for (lineno, raw_line) in text.lines().enumerate() {
            let line = match raw_line.find("//") {
                Some(i) => &raw_line[..i],
                None => raw_line,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let Some((lhs, rhs)) = line.split_once(":=") else {
                return Err(DtdError::Parse {
                    line: lineno + 1,
                    message: "expected `name := content-model`".into(),
                });
            };
            let name = lhs.trim().to_string();
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(DtdError::Parse {
                    line: lineno + 1,
                    message: format!("invalid tag name `{name}`"),
                });
            }
            let regex = xmltc_regex::parse(rhs.trim()).map_err(|e| DtdError::Parse {
                line: lineno + 1,
                message: e.to_string(),
            })?;
            entries.push((name, regex));
        }
        if entries.is_empty() {
            return Err(DtdError::Parse {
                line: 0,
                message: "empty DTD".into(),
            });
        }
        // Build the alphabet (all rule names plus all names in content
        // models, in order of first appearance) unless one was supplied.
        let alphabet = match fixed {
            Some(al) => Arc::clone(al),
            None => {
                let mut builder = xmltc_trees::AlphabetBuilder::new();
                for (name, regex) in &entries {
                    builder.add(name, Rank::Unranked);
                    for s in regex.symbols() {
                        builder.add(&s, Rank::Unranked);
                    }
                }
                builder.finish()
            }
        };
        let root = alphabet.get(&entries[0].0).ok_or_else(|| DtdError::Parse {
            line: 1,
            message: format!("root tag `{}` not in the supplied alphabet", entries[0].0),
        })?;
        let mut dtd = Dtd::new(&alphabet, root);
        for (name, regex) in &entries {
            let tag = alphabet.get(name).ok_or_else(|| DtdError::Parse {
                line: 0,
                message: format!("tag `{name}` not in the supplied alphabet"),
            })?;
            let content = regex.try_map(&mut |n: &String| alphabet.require(n))?;
            dtd.set_rule(tag, content);
        }
        Ok(dtd)
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    /// The root tag.
    pub fn root(&self) -> Symbol {
        self.root
    }

    /// The content model of a tag (`None` = implicit `ε`).
    pub fn rule(&self, tag: Symbol) -> Option<&Regex<Symbol>> {
        self.rules.get(&tag)
    }

    /// Validates an unranked tree, returning the first violation found (in
    /// pre-order).
    pub fn validate(&self, t: &UnrankedTree) -> Result<(), DtdError> {
        if !Alphabet::same(&self.alphabet, t.alphabet()) {
            return Err(DtdError::Tree(xmltc_trees::TreeError::AlphabetMismatch));
        }
        if t.symbol(t.root()) != self.root {
            return Err(DtdError::WrongRoot {
                expected: self.alphabet.name(self.root).to_string(),
                got: self.alphabet.name(t.symbol(t.root())).to_string(),
            });
        }
        // Compile each used content model once.
        let universe: Vec<Symbol> = self.alphabet.symbols().collect();
        let mut dfas: FxHashMap<Symbol, Dfa<Symbol>> = FxHashMap::default();
        for n in t.preorder() {
            let tag = t.symbol(n);
            let word = t.child_word(n);
            let ok = match self.rules.get(&tag) {
                None => word.is_empty(),
                Some(r) => {
                    let dfa = dfas
                        .entry(tag)
                        .or_insert_with(|| Dfa::from_regex(r, &universe));
                    dfa.accepts(&word)
                }
            };
            if !ok {
                return Err(DtdError::InvalidContent {
                    element: self.alphabet.name(tag).to_string(),
                    word: word
                        .iter()
                        .map(|&s| self.alphabet.name(s).to_string())
                        .collect(),
                });
            }
        }
        Ok(())
    }

    /// True when the tree is valid.
    pub fn is_valid(&self, t: &UnrankedTree) -> bool {
        self.validate(t).is_ok()
    }

    /// Views the DTD as a specialized DTD with one type per tag.
    pub fn to_specialized(&self) -> SpecializedDtd {
        let n = self.alphabet.len();
        let names = self
            .alphabet
            .symbols()
            .map(|s| self.alphabet.name(s).to_string())
            .collect();
        let labels = self.alphabet.symbols().collect();
        let rules = self
            .alphabet
            .symbols()
            .map(|s| match self.rules.get(&s) {
                None => Regex::Epsilon,
                Some(r) => r.map(&mut |sym: &Symbol| TypeId(sym.0)),
            })
            .collect();
        let _ = n;
        SpecializedDtd::new(&self.alphabet, names, labels, rules, TypeId(self.root.0))
    }

    /// Compiles to a bottom-up tree automaton over the binary encoding.
    pub fn compile(&self, enc: &EncodedAlphabet) -> Result<Nta, DtdError> {
        let _span = xmltc_obs::span("dtd.compile");
        let nta = self.to_specialized().compile(enc)?;
        xmltc_obs::record("dtd.states", nta.n_states() as u64);
        xmltc_obs::record("dtd.transitions", nta.n_transitions() as u64);
        Ok(nta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltc_trees::encode;

    /// The DTD of Figure 1 / Section 2.3.
    fn figure_one() -> Dtd {
        Dtd::parse_text(
            "a := b*.c.e // root rule
             b := @eps
             c := d*
             d := @eps
             e := @eps",
        )
        .unwrap()
    }

    #[test]
    fn validates_figure_one_document() {
        let d = figure_one();
        let al = d.alphabet().clone();
        let t = UnrankedTree::parse("a(b, b, c(d), e)", &al).unwrap();
        assert!(d.validate(&t).is_ok());
    }

    #[test]
    fn rejects_invalid_documents() {
        let d = figure_one();
        let al = d.alphabet().clone();
        for (doc, why) in [
            ("a(c(d), b, e)", "b after c"),
            ("a(b, b)", "missing c.e"),
            ("a(b, c(b), e)", "b inside c"),
            ("b", "wrong root"),
            ("a(b(b), c, e)", "b must be empty"),
        ] {
            let t = UnrankedTree::parse(doc, &al).unwrap();
            assert!(d.validate(&t).is_err(), "{doc}: {why}");
        }
    }

    #[test]
    fn error_reports_are_specific() {
        let d = figure_one();
        let al = d.alphabet().clone();
        let t = UnrankedTree::parse("a(b, b)", &al).unwrap();
        match d.validate(&t) {
            Err(DtdError::InvalidContent { element, word }) => {
                assert_eq!(element, "a");
                assert_eq!(word, vec!["b", "b"]);
            }
            other => panic!("expected InvalidContent, got {other:?}"),
        }
        let t = UnrankedTree::parse("b", &al).unwrap();
        assert!(matches!(d.validate(&t), Err(DtdError::WrongRoot { .. })));
    }

    #[test]
    fn compiled_automaton_agrees_with_validator() {
        let d = figure_one();
        let al = d.alphabet().clone();
        let enc = EncodedAlphabet::new(&al);
        let a = d.compile(&enc).unwrap();
        for doc in [
            "a(b, b, c(d), e)",
            "a(c, e)",
            "a(c(d, d, d), e)",
            "a(b, c(d), e)",
            "a(c(d), b, e)",
            "a(b, b)",
            "b",
            "a(b(b), c, e)",
            "a(b, c(b), e)",
        ] {
            let t = UnrankedTree::parse(doc, &al).unwrap();
            let bt = encode(&t, &enc).unwrap();
            assert_eq!(
                a.accepts(&bt).unwrap(),
                d.is_valid(&t),
                "disagreement on {doc}"
            );
        }
    }

    #[test]
    fn compiled_rejects_non_encodings() {
        let d = figure_one();
        let enc = EncodedAlphabet::new(d.alphabet());
        let a = d.compile(&enc).unwrap();
        // `-` at the root is never a valid encoding.
        let junk = xmltc_trees::BinaryTree::parse("-(a(#, #), #)", enc.encoded()).unwrap();
        assert!(!a.accepts(&junk).unwrap());
    }

    #[test]
    fn example_42_dtd() {
        // Example 4.2: root := a* — the documents a^n.
        let d = Dtd::parse_text("root := a*\na := @eps").unwrap();
        let al = d.alphabet().clone();
        for n in 0..5 {
            let t = xmltc_trees::generate::flat(d.root(), al.get("a").unwrap(), n, &al).unwrap();
            assert!(d.is_valid(&t), "a^{n}");
        }
    }

    #[test]
    fn parse_errors() {
        assert!(Dtd::parse_text("").is_err());
        assert!(Dtd::parse_text("a = b").is_err());
        assert!(Dtd::parse_text("a := (b").is_err());
        assert!(Dtd::parse_text("a b := c").is_err());
    }

    #[test]
    fn unruled_tags_are_leaves() {
        let d = Dtd::parse_text("a := b*").unwrap();
        let al = d.alphabet().clone();
        assert!(d.is_valid(&UnrankedTree::parse("a(b, b)", &al).unwrap()));
        assert!(!d.is_valid(&UnrankedTree::parse("a(b(b))", &al).unwrap()));
    }
}
