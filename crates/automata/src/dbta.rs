//! Deterministic bottom-up tree automata.

use crate::nta::Nta;
use crate::state::{State, StateSet};
use std::sync::Arc;
use xmltc_trees::{Alphabet, BinaryTree, FxHashMap, Symbol, TreeError};

/// A deterministic bottom-up tree automaton.
///
/// The transition maps may be partial; a missing entry means the run dies
/// (reject). [`Dbta::complete`] adds an explicit sink.
/// [`Nta::determinize`] produces automata that are total over their
/// reachable state space, which is all the boolean operations need.
#[derive(Clone, Debug)]
pub struct Dbta {
    alphabet: Arc<Alphabet>,
    n_states: u32,
    leaf: FxHashMap<Symbol, State>,
    node: FxHashMap<(Symbol, State, State), State>,
    finals: StateSet,
}

/// Structural equality: same alphabet, state count, transition tables, and
/// final set — i.e. literally the same automaton, not mere language
/// equivalence. This is what determinism tests over parallel constructions
/// compare.
impl PartialEq for Dbta {
    fn eq(&self, other: &Self) -> bool {
        Alphabet::same(&self.alphabet, &other.alphabet)
            && self.n_states == other.n_states
            && self.leaf == other.leaf
            && self.node == other.node
            && self.finals == other.finals
    }
}

impl Eq for Dbta {}

impl Dbta {
    /// Assembles a deterministic automaton from parts.
    pub fn from_parts(
        alphabet: &Arc<Alphabet>,
        n_states: u32,
        leaf: FxHashMap<Symbol, State>,
        node: FxHashMap<(Symbol, State, State), State>,
        finals: StateSet,
    ) -> Dbta {
        Dbta {
            alphabet: Arc::clone(alphabet),
            n_states,
            leaf,
            node,
            finals,
        }
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    /// Number of states.
    pub fn n_states(&self) -> u32 {
        self.n_states
    }

    /// Number of transition-table entries.
    pub fn n_transitions(&self) -> usize {
        self.leaf.len() + self.node.len()
    }

    /// The final states.
    pub fn finals(&self) -> &StateSet {
        &self.finals
    }

    /// The state of a leaf labeled `a`, if defined.
    pub fn leaf_state(&self, a: Symbol) -> Option<State> {
        self.leaf.get(&a).copied()
    }

    /// The state of an `a`-node over `(q₁, q₂)`, if defined.
    pub fn node_state(&self, a: Symbol, q1: State, q2: State) -> Option<State> {
        self.node.get(&(a, q1, q2)).copied()
    }

    /// The full internal-transition table (read-only view).
    pub fn node_transitions_map(&self) -> &FxHashMap<(Symbol, State, State), State> {
        &self.node
    }

    /// Runs the automaton; `None` when the run dies.
    pub fn state_of(&self, t: &BinaryTree) -> Result<Option<State>, TreeError> {
        if !Alphabet::same(&self.alphabet, t.alphabet()) {
            return Err(TreeError::AlphabetMismatch);
        }
        let mut states: Vec<Option<State>> = vec![None; t.len()];
        for i in 0..t.len() {
            let n = xmltc_trees::NodeId(i as u32);
            let a = t.symbol(n);
            states[i] = match t.children(n) {
                None => self.leaf_state(a),
                Some((l, r)) => match (states[l.index()], states[r.index()]) {
                    (Some(q1), Some(q2)) => self.node_state(a, q1, q2),
                    _ => None,
                },
            };
        }
        Ok(states[t.root().index()])
    }

    /// Membership test.
    pub fn accepts(&self, t: &BinaryTree) -> Result<bool, TreeError> {
        Ok(self.state_of(t)?.is_some_and(|q| self.finals.contains(q)))
    }

    /// Complement by flipping final states.
    ///
    /// Correct when the automaton is total over its reachable space —
    /// guaranteed for automata from [`Nta::determinize`] and
    /// [`Dbta::complete`]. For hand-built partial automata, call
    /// [`Dbta::complete`] first.
    pub fn complement(&self) -> Dbta {
        let mut out = self.complete();
        out.finals = (0..out.n_states)
            .map(State)
            .filter(|q| !out.finals.contains(*q))
            .collect();
        out
    }

    /// Adds an explicit non-final sink so the transition function is total
    /// on all of `Σ × Q × Q`. Idempotent.
    pub fn complete(&self) -> Dbta {
        let leaves = self.alphabet.leaves();
        let binaries = self.alphabet.binaries();
        let total = self.leaf.len() == leaves.len()
            && self.node.len() == binaries.len() * (self.n_states as usize).pow(2);
        if total {
            return self.clone();
        }
        let sink = State(self.n_states);
        let n = self.n_states + 1;
        let mut leaf = self.leaf.clone();
        for a in leaves {
            leaf.entry(a).or_insert(sink);
        }
        let mut node = self.node.clone();
        for a in binaries {
            for q1 in 0..n {
                for q2 in 0..n {
                    node.entry((a, State(q1), State(q2))).or_insert(sink);
                }
            }
        }
        Dbta {
            alphabet: Arc::clone(&self.alphabet),
            n_states: n,
            leaf,
            node,
            finals: self.finals.clone(),
        }
    }

    /// Views the automaton as a nondeterministic one.
    pub fn to_nta(&self) -> Nta {
        let mut out = Nta::new(&self.alphabet, self.n_states);
        for (&a, &q) in &self.leaf {
            out.add_leaf(a, q);
        }
        for (&(a, q1, q2), &q) in &self.node {
            out.add_node(a, q1, q2, q);
        }
        for q in self.finals.iter() {
            out.add_final(q);
        }
        out
    }

    /// Emptiness test (via reachability).
    pub fn is_empty(&self) -> bool {
        self.to_nta().is_empty()
    }

    /// Myhill-Nerode style minimization by partition refinement, over the
    /// completed, reachable part of the automaton. The result accepts the
    /// same language with the minimum number of states.
    pub fn minimize(&self) -> Dbta {
        let d = self.complete().restrict_reachable();
        let n = d.n_states as usize;
        if n == 0 {
            return d;
        }
        let binaries = d.alphabet.binaries();
        let mut class: Vec<u32> = (0..n)
            .map(|i| d.finals.contains(State(i as u32)) as u32)
            .collect();
        loop {
            // Signature of q: its class plus, for every symbol and *every*
            // partner state on either side, the destination's class.
            // (Representatives-per-class would be unsound mid-refinement:
            // two states of one class may still lead to different classes.)
            let mut sig_index: std::collections::BTreeMap<(u32, Vec<u32>), u32> =
                std::collections::BTreeMap::new();
            let mut next = vec![0u32; n];
            for q in 0..n {
                let mut sig = Vec::with_capacity(binaries.len() * 2 * n);
                for &a in &binaries {
                    for r in 0..n {
                        let left = d
                            .node_state(a, State(q as u32), State(r as u32))
                            .expect("complete");
                        let right = d
                            .node_state(a, State(r as u32), State(q as u32))
                            .expect("complete");
                        sig.push(class[left.index()]);
                        sig.push(class[right.index()]);
                    }
                }
                let key = (class[q], sig);
                let fresh = sig_index.len() as u32;
                next[q] = *sig_index.entry(key).or_insert(fresh);
            }
            if next == class {
                break;
            }
            class = next;
        }
        let n_classes = class.iter().copied().max().unwrap_or(0) + 1;
        let mut leaf = FxHashMap::default();
        for (&a, &q) in &d.leaf {
            leaf.insert(a, State(class[q.index()]));
        }
        let mut node = FxHashMap::default();
        for (&(a, q1, q2), &q) in &d.node {
            node.insert(
                (a, State(class[q1.index()]), State(class[q2.index()])),
                State(class[q.index()]),
            );
        }
        let finals: StateSet = d.finals.iter().map(|q| State(class[q.index()])).collect();
        Dbta {
            alphabet: Arc::clone(&d.alphabet),
            n_states: n_classes,
            leaf,
            node,
            finals,
        }
    }

    /// Restricts to bottom-up reachable states (renumbering).
    fn restrict_reachable(&self) -> Dbta {
        let nta = self.to_nta();
        let reach = nta.reachable_states();
        let mut remap: Vec<Option<State>> = vec![None; self.n_states as usize];
        let mut next = 0u32;
        for q in reach.iter() {
            remap[q.index()] = Some(State(next));
            next += 1;
        }
        let mut leaf = FxHashMap::default();
        for (&a, &q) in &self.leaf {
            if let Some(nq) = remap[q.index()] {
                leaf.insert(a, nq);
            }
        }
        let mut node = FxHashMap::default();
        for (&(a, q1, q2), &q) in &self.node {
            if let (Some(n1), Some(n2), Some(nq)) =
                (remap[q1.index()], remap[q2.index()], remap[q.index()])
            {
                node.insert((a, n1, n2), nq);
            }
        }
        let finals = self
            .finals
            .iter()
            .filter_map(|q| remap[q.index()])
            .collect();
        Dbta {
            alphabet: Arc::clone(&self.alphabet),
            n_states: next,
            leaf,
            node,
            finals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alpha() -> Arc<Alphabet> {
        Alphabet::ranked(&["x", "y"], &["f"])
    }

    /// Deterministic automaton tracking "some y below" (2 states).
    fn some_y(al: &Arc<Alphabet>) -> Dbta {
        let x = al.get("x").unwrap();
        let y = al.get("y").unwrap();
        let f = al.get("f").unwrap();
        let mut leaf = FxHashMap::default();
        leaf.insert(x, State(0));
        leaf.insert(y, State(1));
        let mut node = FxHashMap::default();
        for (l, r, o) in [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 1)] {
            node.insert((f, State(l), State(r)), State(o));
        }
        Dbta::from_parts(al, 2, leaf, node, StateSet::from_iter_canon([State(1)]))
    }

    fn t(al: &Arc<Alphabet>, s: &str) -> BinaryTree {
        BinaryTree::parse(s, al).unwrap()
    }

    #[test]
    fn deterministic_run() {
        let al = alpha();
        let d = some_y(&al);
        assert_eq!(d.state_of(&t(&al, "x")).unwrap(), Some(State(0)));
        assert_eq!(d.state_of(&t(&al, "f(x, y)")).unwrap(), Some(State(1)));
        assert!(d.accepts(&t(&al, "f(f(x, x), y)")).unwrap());
        assert!(!d.accepts(&t(&al, "f(x, x)")).unwrap());
    }

    #[test]
    fn complement_total() {
        let al = alpha();
        let c = some_y(&al).complement();
        assert!(c.accepts(&t(&al, "x")).unwrap());
        assert!(!c.accepts(&t(&al, "y")).unwrap());
        assert!(c.accepts(&t(&al, "f(x, x)")).unwrap());
    }

    #[test]
    fn complete_is_idempotent() {
        let al = alpha();
        let d = some_y(&al).complete();
        assert_eq!(d.n_states(), 2); // already total
        let d2 = d.complete();
        assert_eq!(d2.n_states(), 2);
    }

    #[test]
    fn partial_automaton_completed() {
        let al = alpha();
        let x = al.get("x").unwrap();
        let f = al.get("f").unwrap();
        let mut leaf = FxHashMap::default();
        leaf.insert(x, State(0));
        let mut node = FxHashMap::default();
        node.insert((f, State(0), State(0)), State(0));
        let d = Dbta::from_parts(&al, 1, leaf, node, StateSet::from_iter_canon([State(0)]));
        // y is undefined: rejected.
        assert!(!d.accepts(&t(&al, "y")).unwrap());
        let c = d.complement();
        assert!(c.accepts(&t(&al, "y")).unwrap());
        assert!(!c.accepts(&t(&al, "f(x, x)")).unwrap());
        assert!(c.accepts(&t(&al, "f(y, x)")).unwrap());
    }

    #[test]
    fn minimize_collapses() {
        let al = alpha();
        // Build some_y but with a redundant duplicated state 2 ≡ state 1.
        let x = al.get("x").unwrap();
        let y = al.get("y").unwrap();
        let f = al.get("f").unwrap();
        let mut leaf = FxHashMap::default();
        leaf.insert(x, State(0));
        leaf.insert(y, State(1));
        let mut node = FxHashMap::default();
        for (l, r, o) in [
            (0, 0, 0),
            (0, 1, 2),
            (1, 0, 2),
            (1, 1, 2),
            (0, 2, 1),
            (2, 0, 1),
            (2, 2, 1),
            (1, 2, 2),
            (2, 1, 1),
        ] {
            node.insert((f, State(l), State(r)), State(o));
        }
        let d = Dbta::from_parts(
            &al,
            3,
            leaf,
            node,
            StateSet::from_iter_canon([State(1), State(2)]),
        );
        let m = d.minimize();
        assert!(m.n_states() <= 3);
        for src in ["x", "y", "f(x, y)", "f(f(x, y), x)", "f(x, x)"] {
            let tree = t(&al, src);
            assert_eq!(
                m.accepts(&tree).unwrap(),
                d.accepts(&tree).unwrap(),
                "{src}"
            );
        }
    }

    #[test]
    fn minimized_some_y_has_two_states() {
        let al = alpha();
        let m = some_y(&al).minimize();
        assert_eq!(m.n_states(), 2);
        assert!(m.accepts(&t(&al, "f(x, y)")).unwrap());
    }

    #[test]
    fn emptiness() {
        let al = alpha();
        assert!(!some_y(&al).is_empty());
        let empty = Dbta::from_parts(
            &al,
            1,
            FxHashMap::default(),
            FxHashMap::default(),
            StateSet::from_iter_canon([State(0)]),
        );
        assert!(empty.is_empty());
    }
}
