//! Witness annotation: accepting runs and rejection points.
//!
//! Both emptiness engines ultimately hand back a bare witness *tree* — the
//! eager path via [`Nta::witness`], the lazy path via
//! [`crate::lazy::intersection_witness`]. A bare tree says *that* the
//! language is non-empty; the provenance layer (`xmltc explain`) also
//! needs to say *why* a particular tree is in or out of a type. The two
//! constructions here answer that, engine-independently, by re-running the
//! automaton on the finished tree:
//!
//! * [`accepting_run`] — a per-node state assignment proving membership
//!   (the paper's accepting run, Definition 2.1 read bottom-up);
//! * [`rejection_point`] — for a rejected tree, the node where every
//!   bottom-up run dies, with the states still reachable there.
//!
//! Because both recompute from [`Nta::run`], they are deterministic given
//! the automaton (ties broken toward smaller state numbers) and cannot
//! disagree with the membership test that produced the verdict.

use crate::nta::Nta;
use crate::state::{State, StateSet};
use xmltc_trees::{BinaryTree, ChildSide, NodeId, TreeError};

/// Where a rejected tree's runs die.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RejectionPoint {
    /// The failing node: the first (bottom-up) node with no reachable
    /// state, or the root when states reach it but none is final.
    pub node: NodeId,
    /// The states still reachable at that node (empty unless the failure
    /// is a non-final root).
    pub reachable: StateSet,
}

/// An accepting run of `a` on `t`: the state carried by each node,
/// indexed by node id. `None` when `t` is not accepted.
///
/// The run is extracted top-down from the [`Nta::run`] reachability sets:
/// the root takes the smallest final state reachable there, and each
/// node's children take the smallest `(q₁, q₂)` (in set order) that
/// supports the parent's state. This makes the annotation deterministic,
/// which the golden-pinned explain reports rely on.
pub fn accepting_run(a: &Nta, t: &BinaryTree) -> Result<Option<Vec<State>>, TreeError> {
    let sets = a.run(t)?;
    let root = t.root();
    let Some(q_root) = sets[root.index()].iter().find(|&q| a.finals().contains(q)) else {
        return Ok(None);
    };
    let mut states = vec![State(0); t.len()];
    // Ids are bottom-up (children before parents), so a reverse pass
    // visits each parent before its children.
    states[root.index()] = q_root;
    for i in (0..t.len()).rev() {
        let n = NodeId(i as u32);
        let Some((l, r)) = t.children(n) else {
            continue;
        };
        let q = states[n.index()];
        let sym = t.symbol(n);
        let mut picked = None;
        'search: for q1 in sets[l.index()].iter() {
            for q2 in sets[r.index()].iter() {
                if a.node_states(sym, q1, q2).contains(&q) {
                    picked = Some((q1, q2));
                    break 'search;
                }
            }
        }
        let (q1, q2) = picked.expect("run sets support every reachable state");
        states[l.index()] = q1;
        states[r.index()] = q2;
    }
    Ok(Some(states))
}

/// For a tree rejected by `a`, the point where acceptance fails. `None`
/// when `t` is accepted.
pub fn rejection_point(a: &Nta, t: &BinaryTree) -> Result<Option<RejectionPoint>, TreeError> {
    let sets = a.run(t)?;
    let root = t.root();
    if sets[root.index()].intersects(a.finals()) {
        return Ok(None);
    }
    // Bottom-up ids mean the first empty set is a node whose children (if
    // any) still had reachable states: the exact frontier of failure.
    for (i, set) in sets.iter().enumerate() {
        if set.is_empty() {
            return Ok(Some(RejectionPoint {
                node: NodeId(i as u32),
                reachable: StateSet::new(),
            }));
        }
    }
    // Every node is reachable but the root set misses the finals.
    Ok(Some(RejectionPoint {
        node: root,
        reachable: sets[root.index()].clone(),
    }))
}

/// The `/`-separated left/right path of `n` from the root (`/` for the
/// root itself, e.g. `/L/R`). The textual node address used throughout
/// the explain reports.
pub fn node_path(t: &BinaryTree, n: NodeId) -> String {
    let mut segs = Vec::new();
    let mut cur = n;
    while let Some((p, side)) = t.parent(cur) {
        segs.push(match side {
            ChildSide::Left => "L",
            ChildSide::Right => "R",
        });
        cur = p;
    }
    if segs.is_empty() {
        return "/".to_string();
    }
    segs.reverse();
    let mut out = String::new();
    for s in segs {
        out.push('/');
        out.push_str(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xmltc_trees::Alphabet;

    /// Leaves x, y; binary f. Accepts trees with at least one y leaf.
    fn some_y() -> (Arc<Alphabet>, Nta) {
        let al = Alphabet::ranked(&["x", "y"], &["f"]);
        let x = al.get("x").unwrap();
        let y = al.get("y").unwrap();
        let f = al.get("f").unwrap();
        let mut a = Nta::new(&al, 2);
        a.add_leaf(x, State(0));
        a.add_leaf(y, State(1));
        for (l, r, out) in [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 1)] {
            a.add_node(f, State(l), State(r), State(out));
        }
        a.add_final(State(1));
        (al, a)
    }

    #[test]
    fn accepting_run_is_consistent() {
        let (al, a) = some_y();
        let t = BinaryTree::parse("f(x, f(y, x))", &al).unwrap();
        let run = accepting_run(&a, &t).unwrap().unwrap();
        // Root carries the final state; each internal node's transition
        // exists; each leaf's state is a leaf state of its symbol.
        assert!(a.finals().contains(run[t.root().index()]));
        for n in t.preorder() {
            match t.children(n) {
                None => assert!(a.leaf_states(t.symbol(n)).contains(&run[n.index()])),
                Some((l, r)) => assert!(a
                    .node_states(t.symbol(n), run[l.index()], run[r.index()])
                    .contains(&run[n.index()])),
            }
        }
    }

    #[test]
    fn rejected_tree_has_no_run_but_a_rejection_point() {
        let (al, a) = some_y();
        let t = BinaryTree::parse("f(x, x)", &al).unwrap();
        assert!(accepting_run(&a, &t).unwrap().is_none());
        let rp = rejection_point(&a, &t).unwrap().unwrap();
        // Runs reach the root (state 0) but never a final state.
        assert_eq!(rp.node, t.root());
        assert!(!rp.reachable.is_empty());
        // An accepted tree has a run and no rejection point.
        let t2 = BinaryTree::parse("f(x, y)", &al).unwrap();
        assert!(accepting_run(&a, &t2).unwrap().is_some());
        assert!(rejection_point(&a, &t2).unwrap().is_none());
    }

    #[test]
    fn dead_node_is_located() {
        let (al, _) = some_y();
        // An automaton with no y leaf transition: a y leaf has no
        // reachable state at all.
        let x = al.get("x").unwrap();
        let f = al.get("f").unwrap();
        let a = {
            let mut b = Nta::new(&al, 2);
            b.add_leaf(x, State(0));
            b.add_node(f, State(0), State(0), State(0));
            b.add_final(State(0));
            b
        };
        let t = BinaryTree::parse("f(x, y)", &al).unwrap();
        let rp = rejection_point(&a, &t).unwrap().unwrap();
        assert!(rp.reachable.is_empty());
        assert_eq!(t.symbol(rp.node), al.get("y").unwrap());
        assert_eq!(node_path(&t, rp.node), "/R");
    }

    #[test]
    fn node_path_addresses() {
        let al = Alphabet::ranked(&["x"], &["f"]);
        let t = BinaryTree::parse("f(f(x, x), x)", &al).unwrap();
        assert_eq!(node_path(&t, t.root()), "/");
        let (l, r) = t.children(t.root()).unwrap();
        assert_eq!(node_path(&t, l), "/L");
        assert_eq!(node_path(&t, r), "/R");
        let (ll, lr) = t.children(l).unwrap();
        assert_eq!(node_path(&t, ll), "/L/L");
        assert_eq!(node_path(&t, lr), "/L/R");
    }
}
