//! Nondeterministic top-down (root-to-frontier) tree automata with silent
//! transitions — Definition 2.1 and the silent-elimination construction of
//! Section 2.3.

use crate::nta::Nta;
use crate::state::{State, StateSet};
use std::sync::Arc;
use xmltc_trees::{Alphabet, BinaryTree, FxHashMap, FxHashSet, Rank, Symbol, TreeError};

/// A nondeterministic top-down tree automaton
/// `A = (Σ, Q, q₀, Q_F, P)` with optional silent transitions.
///
/// * regular transitions `(a, q) → (q₁, q₂)` with `a ∈ Σ₂`;
/// * final symbol-state pairs `Q_F ⊆ Σ₀ × Q`;
/// * silent transitions `(a, q) → q'` that change state without moving the
///   head (used by the Proposition 3.8 construction, where transducer moves
///   become silent steps of the output automaton).
#[derive(Clone, Debug)]
pub struct TdTa {
    alphabet: Arc<Alphabet>,
    n_states: u32,
    initial: State,
    final_pairs: FxHashSet<(Symbol, State)>,
    trans: FxHashMap<(Symbol, State), Vec<(State, State)>>,
    silent: FxHashMap<(Symbol, State), Vec<State>>,
    /// Silent transitions that apply regardless of the current symbol —
    /// the shape produced by the Proposition 3.8 construction, where a
    /// transducer *move* step changes configuration without emitting
    /// output. Kept separate to avoid multiplying them by `|Σ|`.
    silent_any: FxHashMap<State, Vec<State>>,
}

impl TdTa {
    /// Creates an automaton with `n_states` states, the given initial state
    /// and no transitions.
    pub fn new(alphabet: &Arc<Alphabet>, n_states: u32, initial: State) -> TdTa {
        debug_assert!(initial.0 < n_states);
        TdTa {
            alphabet: Arc::clone(alphabet),
            n_states,
            initial,
            final_pairs: FxHashSet::default(),
            trans: FxHashMap::default(),
            silent: FxHashMap::default(),
            silent_any: FxHashMap::default(),
        }
    }

    /// Adds a fresh state.
    pub fn add_state(&mut self) -> State {
        let q = State(self.n_states);
        self.n_states += 1;
        q
    }

    /// Adds a transition `(a, q) → (q₁, q₂)`.
    pub fn add_transition(&mut self, a: Symbol, q: State, q1: State, q2: State) {
        debug_assert_eq!(self.alphabet.rank(a), Rank::Binary);
        self.trans.entry((a, q)).or_default().push((q1, q2));
    }

    /// Adds a silent transition `(a, q) → q'`.
    pub fn add_silent(&mut self, a: Symbol, q: State, q_next: State) {
        self.silent.entry((a, q)).or_default().push(q_next);
    }

    /// Adds a silent transition `q → q'` applicable under every symbol.
    pub fn add_silent_any(&mut self, q: State, q_next: State) {
        self.silent_any.entry(q).or_default().push(q_next);
    }

    /// Adds a final pair `(a, q)`: a branch in state `q` on a leaf labeled
    /// `a` accepts.
    pub fn add_final_pair(&mut self, a: Symbol, q: State) {
        debug_assert_eq!(self.alphabet.rank(a), Rank::Leaf);
        self.final_pairs.insert((a, q));
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    /// Number of states.
    pub fn n_states(&self) -> u32 {
        self.n_states
    }

    /// The initial state.
    pub fn initial(&self) -> State {
        self.initial
    }

    /// True when the automaton has silent transitions.
    pub fn has_silent(&self) -> bool {
        !self.silent.is_empty() || !self.silent_any.is_empty()
    }

    /// Number of transitions of all kinds.
    pub fn n_transitions(&self) -> usize {
        self.final_pairs.len()
            + self.trans.values().map(Vec::len).sum::<usize>()
            + self.silent.values().map(Vec::len).sum::<usize>()
            + self.silent_any.values().map(Vec::len).sum::<usize>()
    }

    /// The regular transitions available from `(a, q)` (ignoring silent
    /// transitions — eliminate them first for complete information).
    pub fn transitions_for(&self, a: Symbol, q: State) -> &[(State, State)] {
        self.trans.get(&(a, q)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Is `(a, q)` a final symbol-state pair?
    pub fn is_final_pair(&self, a: Symbol, q: State) -> bool {
        self.final_pairs.contains(&(a, q))
    }

    /// Iterates over all final pairs.
    pub fn final_pairs(&self) -> impl Iterator<Item = (Symbol, State)> + '_ {
        self.final_pairs.iter().copied()
    }

    /// Iterates over all regular transitions `(a, q) → (q₁, q₂)`.
    pub fn transitions(&self) -> impl Iterator<Item = (Symbol, State, State, State)> + '_ {
        self.trans
            .iter()
            .flat_map(|(&(a, q), v)| v.iter().map(move |&(q1, q2)| (a, q, q1, q2)))
    }

    /// The paper's silent-transition elimination (end of Section 2.3):
    /// with `q ⇒ₐ q'` the reflexive-transitive closure of silent moves on
    /// symbol `a`, the new transitions are
    /// `P' = {(a,q) → (q₁,q₂) | q ⇒ₐ q', (a,q') → (q₁,q₂) ∈ P}` and
    /// `Q_F' = {(a,q) | q ⇒ₐ q', (a,q') ∈ Q_F}`.
    pub fn eliminate_silent(&self) -> TdTa {
        if !self.has_silent() {
            return self.clone();
        }
        if self.silent.is_empty() {
            return self.eliminate_silent_any_only();
        }
        let mut out = TdTa::new(&self.alphabet, self.n_states, self.initial);

        // General case (per-symbol silent transitions): the silent-closure
        // is computed per (symbol, state) by BFS over silent edges.
        let mut symbols: Vec<Symbol> = self.alphabet.symbols().collect();
        symbols.retain(|&a| self.alphabet.rank(a) != Rank::Unranked);

        for &a in &symbols {
            for q in 0..self.n_states {
                let q = State(q);
                let closure = self.silent_closure(a, q);
                for q2 in closure.iter() {
                    if let Some(targets) = self.trans.get(&(a, q2)) {
                        for &(l, r) in targets {
                            out.add_transition(a, q, l, r);
                        }
                    }
                    if self.final_pairs.contains(&(a, q2)) {
                        out.add_final_pair(a, q);
                    }
                }
            }
        }
        out
    }

    /// Fast path for automata whose only silent transitions are
    /// symbol-independent (the Proposition 3.8 shape). Rather than
    /// materializing full closures — quadratic on the long deterministic
    /// move-chains pebble transducers produce — propagate backward, for
    /// each state, only the *productive* silent-reachable states (those
    /// carrying a regular transition or final pair). On deterministic
    /// chains each set has one element and the pass is linear.
    fn eliminate_silent_any_only(&self) -> TdTa {
        let n = self.n_states as usize;
        let mut productive = vec![false; n];
        for &(_, q) in self.trans.keys() {
            productive[q.index()] = true;
        }
        for &(_, q) in &self.final_pairs {
            productive[q.index()] = true;
        }

        // P(q) = {q | productive} ∪ ⋃_{q →silent q'} P(q'); worklist
        // fixpoint propagating growth to silent-predecessors.
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (&q, targets) in &self.silent_any {
            for t in targets {
                preds[t.index()].push(q.0);
            }
        }
        let mut p: Vec<StateSet> = (0..n)
            .map(|i| {
                let mut s = StateSet::new();
                if productive[i] {
                    s.insert(State(i as u32));
                }
                s
            })
            .collect();
        let mut queue: Vec<u32> = (0..n as u32).collect();
        let mut queued = vec![true; n];
        while let Some(qi) = queue.pop() {
            queued[qi as usize] = false;
            // Recompute P(q) from its successors; if it grew, requeue
            // predecessors.
            let mut grew = false;
            if let Some(targets) = self.silent_any.get(&State(qi)) {
                let merged: Vec<State> = targets
                    .iter()
                    .flat_map(|t| p[t.index()].iter().collect::<Vec<_>>())
                    .collect();
                for s in merged {
                    grew |= p[qi as usize].insert(s);
                }
            }
            if grew {
                for &pr in &preds[qi as usize] {
                    if !queued[pr as usize] {
                        queued[pr as usize] = true;
                        queue.push(pr);
                    }
                }
            }
        }

        // Index regular transitions and finals by source state, then merge
        // each state's productive set.
        let mut out = TdTa::new(&self.alphabet, self.n_states, self.initial);
        let mut by_state_trans: Vec<Vec<(Symbol, State, State)>> = vec![Vec::new(); n];
        for (&(a, src), pairs) in &self.trans {
            for &(l, r) in pairs {
                by_state_trans[src.index()].push((a, l, r));
            }
        }
        let mut by_state_finals: Vec<Vec<Symbol>> = vec![Vec::new(); n];
        for &(a, q) in &self.final_pairs {
            by_state_finals[q.index()].push(a);
        }
        #[allow(clippy::needless_range_loop)]
        for q in 0..n {
            for target in p[q].iter() {
                for &(a, l, r) in &by_state_trans[target.index()] {
                    out.add_transition(a, State(q as u32), l, r);
                }
                for &a in &by_state_finals[target.index()] {
                    out.add_final_pair(a, State(q as u32));
                }
            }
        }
        out
    }

    /// Reflexive-transitive closure of silent moves from `q` on symbol `a`.
    fn silent_closure(&self, a: Symbol, q: State) -> StateSet {
        let mut seen = StateSet::new();
        seen.insert(q);
        let mut stack = vec![q];
        while let Some(cur) = stack.pop() {
            let per_symbol = self.silent.get(&(a, cur)).map(Vec::as_slice).unwrap_or(&[]);
            let any = self.silent_any.get(&cur).map(Vec::as_slice).unwrap_or(&[]);
            for &n in per_symbol.iter().chain(any) {
                if seen.insert(n) {
                    stack.push(n);
                }
            }
        }
        seen
    }

    /// Converts to an equivalent bottom-up automaton (silent transitions are
    /// eliminated first). The bottom-up automaton reverses the transitions
    /// and accepts at the root in the top-down initial state.
    pub fn to_nta(&self) -> Nta {
        let base = self.eliminate_silent();
        let mut out = Nta::new(&base.alphabet, base.n_states);
        for &(a, q) in &base.final_pairs {
            out.add_leaf(a, q);
        }
        for (&(a, q), targets) in &base.trans {
            for &(q1, q2) in targets {
                out.add_node(a, q1, q2, q);
            }
        }
        out.add_final(base.initial);
        out
    }

    /// Membership test (via the bottom-up view).
    pub fn accepts(&self, t: &BinaryTree) -> Result<bool, TreeError> {
        self.to_nta().accepts(t)
    }

    /// Emptiness test.
    pub fn is_empty(&self) -> bool {
        self.to_nta().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alpha() -> Arc<Alphabet> {
        Alphabet::ranked(&["x", "y"], &["f"])
    }

    fn t(al: &Arc<Alphabet>, s: &str) -> BinaryTree {
        BinaryTree::parse(s, al).unwrap()
    }

    /// Top-down automaton for "left spine of f's ending in x" — i.e. trees
    /// where every right child is y and the leftmost leaf is x.
    fn left_spine(al: &Arc<Alphabet>) -> TdTa {
        let x = al.get("x").unwrap();
        let y = al.get("y").unwrap();
        let f = al.get("f").unwrap();
        let mut a = TdTa::new(al, 2, State(0));
        // state 0: spine; state 1: must be y leaf.
        a.add_transition(f, State(0), State(0), State(1));
        a.add_final_pair(x, State(0));
        a.add_final_pair(y, State(1));
        a
    }

    #[test]
    fn topdown_accepts() {
        let al = alpha();
        let a = left_spine(&al);
        assert!(a.accepts(&t(&al, "x")).unwrap());
        assert!(a.accepts(&t(&al, "f(x, y)")).unwrap());
        assert!(a.accepts(&t(&al, "f(f(x, y), y)")).unwrap());
        assert!(!a.accepts(&t(&al, "f(y, y)")).unwrap());
        assert!(!a.accepts(&t(&al, "f(x, x)")).unwrap());
        assert!(!a.accepts(&t(&al, "f(x, f(x, y))")).unwrap());
    }

    #[test]
    fn silent_elimination_preserves_language() {
        let al = alpha();
        let x = al.get("x").unwrap();
        let y = al.get("y").unwrap();
        let f = al.get("f").unwrap();
        // Same language as left_spine but routed through silent hops:
        // 0 -silent(f)-> 2, (f,2) -> (0,1); 0 -silent(x)-> 3, (x,3) final.
        let mut a = TdTa::new(&al, 4, State(0));
        a.add_silent(f, State(0), State(2));
        a.add_transition(f, State(2), State(0), State(1));
        a.add_silent(x, State(0), State(3));
        a.add_final_pair(x, State(3));
        a.add_final_pair(y, State(1));
        assert!(a.has_silent());
        let e = a.eliminate_silent();
        assert!(!e.has_silent());
        let reference = left_spine(&al);
        for src in [
            "x",
            "y",
            "f(x, y)",
            "f(f(x, y), y)",
            "f(y, y)",
            "f(x, x)",
            "f(x, f(x, y))",
        ] {
            let tree = t(&al, src);
            assert_eq!(
                e.accepts(&tree).unwrap(),
                reference.accepts(&tree).unwrap(),
                "tree {src}"
            );
            // accepts() on the silent automaton itself also agrees.
            assert_eq!(
                a.accepts(&tree).unwrap(),
                reference.accepts(&tree).unwrap(),
                "silent tree {src}"
            );
        }
    }

    #[test]
    fn silent_chains_and_cycles() {
        let al = alpha();
        let x = al.get("x").unwrap();
        // 0 -> 1 -> 2 -> 0 silent cycle on x, and (x,2) final.
        let mut a = TdTa::new(&al, 3, State(0));
        a.add_silent(x, State(0), State(1));
        a.add_silent(x, State(1), State(2));
        a.add_silent(x, State(2), State(0));
        a.add_final_pair(x, State(2));
        assert!(a.accepts(&t(&al, "x")).unwrap());
        assert!(!a.accepts(&t(&al, "y")).unwrap());
    }

    #[test]
    fn emptiness() {
        let al = alpha();
        assert!(!left_spine(&al).is_empty());
        let x = al.get("x").unwrap();
        let mut never = TdTa::new(&al, 2, State(0));
        never.add_final_pair(x, State(1)); // state 1 unreachable
        assert!(never.is_empty());
    }

    #[test]
    fn nta_round_trip() {
        let al = alpha();
        let a = left_spine(&al);
        let nta = a.to_nta();
        let td2 = nta.to_tdta();
        for src in ["x", "f(x, y)", "f(y, y)", "f(f(x, y), y)"] {
            let tree = t(&al, src);
            assert_eq!(
                td2.accepts(&tree).unwrap(),
                a.accepts(&tree).unwrap(),
                "tree {src}"
            );
        }
    }
}
