//! Nondeterministic bottom-up tree automata and their decision procedures.

use crate::dbta::Dbta;
use crate::state::{State, StateSet};
use crate::topdown::TdTa;
use std::sync::Arc;
use xmltc_obs as obs;
use xmltc_trees::tree::BinaryTreeBuilder;
use xmltc_trees::{Alphabet, BinaryTree, FxHashMap, Rank, Symbol, TreeError};

/// How a state was first produced — the recipe used to rebuild a smallest
/// witness tree for it.
#[derive(Clone, Copy, Debug)]
enum Recipe {
    Leaf(Symbol),
    Node(Symbol, State, State),
}

/// A nondeterministic bottom-up (frontier-to-root) tree automaton over a
/// ranked alphabet.
///
/// A run assigns states upward: a leaf labeled `a` may take any state in
/// `leaf(a)`; an internal node labeled `a` whose children carry `q₁, q₂` may
/// take any state in `node(a, q₁, q₂)`. The tree is accepted when the root
/// can carry a final state. `inst(A)` — the paper's notation — is the set of
/// accepted trees.
#[derive(Clone, Debug)]
pub struct Nta {
    alphabet: Arc<Alphabet>,
    n_states: u32,
    leaf: FxHashMap<Symbol, StateSet>,
    node: FxHashMap<(Symbol, State, State), StateSet>,
    finals: StateSet,
}

impl Nta {
    /// Creates an automaton with `n_states` states and no transitions.
    pub fn new(alphabet: &Arc<Alphabet>, n_states: u32) -> Nta {
        Nta {
            alphabet: Arc::clone(alphabet),
            n_states,
            leaf: FxHashMap::default(),
            node: FxHashMap::default(),
            finals: StateSet::new(),
        }
    }

    /// Adds a fresh state and returns it.
    pub fn add_state(&mut self) -> State {
        let q = State(self.n_states);
        self.n_states += 1;
        q
    }

    /// Adds a leaf transition `a → q`.
    pub fn add_leaf(&mut self, a: Symbol, q: State) {
        debug_assert_eq!(self.alphabet.rank(a), Rank::Leaf);
        debug_assert!(q.0 < self.n_states);
        self.leaf.entry(a).or_default().insert(q);
    }

    /// Adds an internal transition `a(q₁, q₂) → q`.
    pub fn add_node(&mut self, a: Symbol, q1: State, q2: State, q: State) {
        debug_assert_eq!(self.alphabet.rank(a), Rank::Binary);
        debug_assert!(q.0 < self.n_states && q1.0 < self.n_states && q2.0 < self.n_states);
        self.node.entry((a, q1, q2)).or_default().insert(q);
    }

    /// Marks `q` as final (accepting at the root).
    pub fn add_final(&mut self, q: State) {
        debug_assert!(q.0 < self.n_states);
        self.finals.insert(q);
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    /// Number of states.
    pub fn n_states(&self) -> u32 {
        self.n_states
    }

    /// Number of transitions (leaf entries + internal entries, counting
    /// target multiplicity).
    pub fn n_transitions(&self) -> usize {
        self.leaf.values().map(StateSet::len).sum::<usize>()
            + self.node.values().map(StateSet::len).sum::<usize>()
    }

    /// The final states.
    pub fn finals(&self) -> &StateSet {
        &self.finals
    }

    /// The states a leaf labeled `a` may take.
    pub fn leaf_states(&self, a: Symbol) -> &[State] {
        self.leaf.get(&a).map(StateSet::as_slice).unwrap_or(&[])
    }

    /// The states an `a`-node over children states `(q₁, q₂)` may take.
    pub fn node_states(&self, a: Symbol, q1: State, q2: State) -> &[State] {
        self.node
            .get(&(a, q1, q2))
            .map(StateSet::as_slice)
            .unwrap_or(&[])
    }

    /// Iterates over all internal transitions `(a, q₁, q₂) → q`.
    pub fn node_transitions(&self) -> impl Iterator<Item = (Symbol, State, State, State)> + '_ {
        self.node
            .iter()
            .flat_map(|(&(a, q1, q2), qs)| qs.iter().map(move |q| (a, q1, q2, q)))
    }

    /// Iterates over all leaf transitions `a → q`.
    pub fn leaf_transitions(&self) -> impl Iterator<Item = (Symbol, State)> + '_ {
        self.leaf
            .iter()
            .flat_map(|(&a, qs)| qs.iter().map(move |q| (a, q)))
    }

    /// Computes, for every node of `t`, the set of states reachable at that
    /// node (indexed by the tree's node ids).
    pub fn run(&self, t: &BinaryTree) -> Result<Vec<StateSet>, TreeError> {
        if !Alphabet::same(&self.alphabet, t.alphabet()) {
            return Err(TreeError::AlphabetMismatch);
        }
        let mut sets: Vec<StateSet> = vec![StateSet::new(); t.len()];
        // Arena ids are bottom-up (children before parents), so a single
        // forward pass visits children first.
        for i in 0..t.len() {
            let n = xmltc_trees::NodeId(i as u32);
            let a = t.symbol(n);
            sets[i] = match t.children(n) {
                None => self.leaf.get(&a).cloned().unwrap_or_default(),
                Some((l, r)) => {
                    let mut out = StateSet::new();
                    for ql in sets[l.index()].clone().iter() {
                        for qr in sets[r.index()].iter() {
                            if let Some(qs) = self.node.get(&(a, ql, qr)) {
                                out.union_with(qs);
                            }
                        }
                    }
                    out
                }
            };
        }
        Ok(sets)
    }

    /// Membership: does the automaton accept `t`?
    pub fn accepts(&self, t: &BinaryTree) -> Result<bool, TreeError> {
        let sets = self.run(t)?;
        Ok(sets[t.root().index()].intersects(&self.finals))
    }

    /// Computes reachable states together with a smallest witness recipe for
    /// each.
    fn reachability(&self) -> Vec<Option<Recipe>> {
        let mut recipe: Vec<Option<Recipe>> = vec![None; self.n_states as usize];
        for (&a, qs) in &self.leaf {
            for q in qs.iter() {
                if recipe[q.index()].is_none() {
                    recipe[q.index()] = Some(Recipe::Leaf(a));
                }
            }
        }
        // Saturate: a transition fires once both sources are reachable.
        let mut changed = true;
        while changed {
            changed = false;
            for (&(a, q1, q2), qs) in &self.node {
                if recipe[q1.index()].is_some() && recipe[q2.index()].is_some() {
                    for q in qs.iter() {
                        if recipe[q.index()].is_none() {
                            recipe[q.index()] = Some(Recipe::Node(a, q1, q2));
                            changed = true;
                        }
                    }
                }
            }
        }
        recipe
    }

    /// The set of reachable states (those labeling at least one tree).
    pub fn reachable_states(&self) -> StateSet {
        self.reachability()
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.map(|_| State(i as u32)))
            .collect()
    }

    /// Emptiness test.
    pub fn is_empty(&self) -> bool {
        self.witness().is_none()
    }

    /// A witness tree accepted by the automaton, or `None` when `inst(A)`
    /// is empty. The witness is built from smallest-first recipes, so it is
    /// small though not always minimal.
    pub fn witness(&self) -> Option<BinaryTree> {
        let recipes = self.reachability();
        let q = self.finals.iter().find(|q| recipes[q.index()].is_some())?;
        let mut b = BinaryTreeBuilder::new(&self.alphabet);
        let root = build_witness(&recipes, q, &mut b);
        Some(b.finish(root))
    }

    /// Product automaton; a pair is final when `keep` says so. Use
    /// `|a, b| a && b` for intersection. (Union via product requires
    /// completeness; prefer [`Nta::union`].)
    pub fn product(&self, other: &Nta, keep: impl Fn(bool, bool) -> bool) -> Nta {
        assert!(
            Alphabet::same(&self.alphabet, &other.alphabet),
            "product of automata over different alphabets"
        );
        let pair = |q1: State, q2: State| State(q1.0 * other.n_states + q2.0);
        let mut out = Nta::new(&self.alphabet, self.n_states * other.n_states);
        for (a, qa) in self.leaf_transitions() {
            for qb in other.leaf_states(a) {
                out.add_leaf(a, pair(qa, *qb));
            }
        }
        for (a, p1, p2, p) in self.node_transitions() {
            for (b_key, b_targets) in other.node.iter() {
                let &(bsym, r1, r2) = b_key;
                if bsym != a {
                    continue;
                }
                for r in b_targets.iter() {
                    out.add_node(a, pair(p1, r1), pair(p2, r2), pair(p, r));
                }
            }
        }
        for qa in 0..self.n_states {
            for qb in 0..other.n_states {
                if keep(
                    self.finals.contains(State(qa)),
                    other.finals.contains(State(qb)),
                ) {
                    out.add_final(pair(State(qa), State(qb)));
                }
            }
        }
        if obs::is_active() {
            obs::add("nta.products", 1);
            obs::record_max("nta.product.peak_states", out.n_states as u64);
        }
        out
    }

    /// Intersection `inst(A) ∩ inst(B)`.
    pub fn intersect(&self, other: &Nta) -> Nta {
        self.product(other, |a, b| a && b)
    }

    /// Union `inst(A) ∪ inst(B)` via disjoint sum.
    pub fn union(&self, other: &Nta) -> Nta {
        assert!(Alphabet::same(&self.alphabet, &other.alphabet));
        let off = self.n_states;
        let mut out = self.clone();
        out.n_states += other.n_states;
        for (a, q) in other.leaf_transitions() {
            out.add_leaf(a, State(q.0 + off));
        }
        for (a, q1, q2, q) in other.node_transitions() {
            out.add_node(a, State(q1.0 + off), State(q2.0 + off), State(q.0 + off));
        }
        for q in other.finals.iter() {
            out.add_final(State(q.0 + off));
        }
        out
    }

    /// Subset construction: an equivalent deterministic (and complete over
    /// its reachable space) bottom-up automaton.
    pub fn determinize(&self) -> Dbta {
        let mut index: FxHashMap<StateSet, State> = FxHashMap::default();
        let mut subsets: Vec<StateSet> = Vec::new();
        let mut intern = |s: StateSet, subsets: &mut Vec<StateSet>| -> State {
            if let Some(&q) = index.get(&s) {
                return q;
            }
            let q = State(subsets.len() as u32);
            index.insert(s.clone(), q);
            subsets.push(s);
            q
        };

        let mut leaf: FxHashMap<Symbol, State> = FxHashMap::default();
        let mut node: FxHashMap<(Symbol, State, State), State> = FxHashMap::default();

        let leaf_symbols: Vec<Symbol> = self.alphabet.leaves();
        let binary_symbols: Vec<Symbol> = self.alphabet.binaries();

        for &a in &leaf_symbols {
            let s = self.leaf.get(&a).cloned().unwrap_or_default();
            let q = intern(s, &mut subsets);
            leaf.insert(a, q);
        }

        // Explore all pairs of discovered subsets; newly discovered subsets
        // are paired against everything seen so far.
        let mut processed: usize = 0;
        while processed < subsets.len() {
            let q1 = State(processed as u32);
            processed += 1;
            let mut p2 = 0;
            while p2 < subsets.len() {
                let q2 = State(p2 as u32);
                p2 += 1;
                for &a in &binary_symbols {
                    for (x, y) in [(q1, q2), (q2, q1)] {
                        if node.contains_key(&(a, x, y)) {
                            continue;
                        }
                        let mut target = StateSet::new();
                        for s1 in subsets[x.index()].clone().iter() {
                            for s2 in subsets[y.index()].iter() {
                                if let Some(qs) = self.node.get(&(a, s1, s2)) {
                                    target.union_with(qs);
                                }
                            }
                        }
                        let t = intern(target, &mut subsets);
                        node.insert((a, x, y), t);
                    }
                }
            }
        }

        let finals: StateSet = subsets
            .iter()
            .enumerate()
            .filter(|(_, s)| s.intersects(&self.finals))
            .map(|(i, _)| State(i as u32))
            .collect();

        if obs::is_active() {
            obs::add("nta.determinizations", 1);
            obs::record_max("nta.determinize.peak_subsets", subsets.len() as u64);
        }
        Dbta::from_parts(&self.alphabet, subsets.len() as u32, leaf, node, finals)
    }

    /// The complement automaton `inst(Ā) = T_Σ ∖ inst(A)` (deterministic).
    pub fn complement(&self) -> Dbta {
        if obs::is_active() {
            obs::add("nta.complements", 1);
        }
        self.determinize().complement()
    }

    /// Language inclusion `inst(self) ⊆ inst(other)`.
    pub fn subset_of(&self, other: &Nta) -> bool {
        self.intersect(&other.complement().to_nta()).is_empty()
    }

    /// A counterexample to `inst(self) ⊆ inst(other)`: a tree accepted by
    /// `self` but not by `other`.
    pub fn inclusion_counterexample(&self, other: &Nta) -> Option<BinaryTree> {
        self.intersect(&other.complement().to_nta()).witness()
    }

    /// Language equivalence.
    pub fn equivalent(&self, other: &Nta) -> bool {
        self.subset_of(other) && other.subset_of(self)
    }

    /// Removes states that are unreachable (label no tree) or useless
    /// (cannot contribute to acceptance), renumbering the rest.
    pub fn trim(&self) -> Nta {
        let reachable = self.reachable_states();
        // Co-reachable: final states, plus sources of transitions whose
        // target is co-reachable and whose sibling is reachable.
        let mut co: Vec<bool> = vec![false; self.n_states as usize];
        for q in self.finals.iter() {
            co[q.index()] = true;
        }
        let mut changed = true;
        while changed {
            changed = false;
            for (&(_, q1, q2), qs) in &self.node {
                if qs.iter().any(|q| co[q.index()]) {
                    if reachable.contains(q2) && !co[q1.index()] {
                        co[q1.index()] = true;
                        changed = true;
                    }
                    if reachable.contains(q1) && !co[q2.index()] {
                        co[q2.index()] = true;
                        changed = true;
                    }
                }
            }
        }
        let keep: Vec<bool> = (0..self.n_states as usize)
            .map(|i| reachable.contains(State(i as u32)) && co[i])
            .collect();
        let mut remap: Vec<Option<State>> = vec![None; self.n_states as usize];
        let mut next = 0u32;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                remap[i] = Some(State(next));
                next += 1;
            }
        }
        let mut out = Nta::new(&self.alphabet, next);
        for (a, q) in self.leaf_transitions() {
            if let Some(nq) = remap[q.index()] {
                out.add_leaf(a, nq);
            }
        }
        for (a, q1, q2, q) in self.node_transitions() {
            if let (Some(n1), Some(n2), Some(nq)) =
                (remap[q1.index()], remap[q2.index()], remap[q.index()])
            {
                out.add_node(a, n1, n2, nq);
            }
        }
        for q in self.finals.iter() {
            if let Some(nq) = remap[q.index()] {
                out.add_final(nq);
            }
        }
        if obs::is_active() {
            obs::add("nta.trims", 1);
            obs::add("nta.trim.states_in", self.n_states as u64);
            obs::add("nta.trim.states_out", next as u64);
        }
        out
    }

    /// Converts to an equivalent top-down automaton (Definition 2.1), adding
    /// a fresh initial state that mimics every final state.
    pub fn to_tdta(&self) -> TdTa {
        let q0 = State(self.n_states);
        let mut td = TdTa::new(&self.alphabet, self.n_states + 1, q0);
        for (a, q) in self.leaf_transitions() {
            td.add_final_pair(a, q);
            if self.finals.contains(q) {
                td.add_final_pair(a, q0);
            }
        }
        for (a, q1, q2, q) in self.node_transitions() {
            td.add_transition(a, q, q1, q2);
            if self.finals.contains(q) {
                td.add_transition(a, q0, q1, q2);
            }
        }
        td
    }
}

fn build_witness(
    recipes: &[Option<Recipe>],
    q: State,
    b: &mut BinaryTreeBuilder,
) -> xmltc_trees::NodeId {
    match recipes[q.index()].expect("witness state must be reachable") {
        Recipe::Leaf(a) => b.leaf(a).expect("leaf rank"),
        Recipe::Node(a, q1, q2) => {
            let l = build_witness(recipes, q1, b);
            let r = build_witness(recipes, q2, b);
            b.node(a, l, r).expect("binary rank")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Alphabet: leaves x, y; binary f, g.
    fn alpha() -> Arc<Alphabet> {
        Alphabet::ranked(&["x", "y"], &["f", "g"])
    }

    fn syms(al: &Arc<Alphabet>) -> (Symbol, Symbol, Symbol, Symbol) {
        (
            al.get("x").unwrap(),
            al.get("y").unwrap(),
            al.get("f").unwrap(),
            al.get("g").unwrap(),
        )
    }

    /// Accepts trees whose leaves are all `x`.
    fn all_x(al: &Arc<Alphabet>) -> Nta {
        let (x, _y, f, g) = syms(al);
        let mut a = Nta::new(al, 1);
        a.add_leaf(x, State(0));
        a.add_node(f, State(0), State(0), State(0));
        a.add_node(g, State(0), State(0), State(0));
        a.add_final(State(0));
        a
    }

    /// Accepts trees containing at least one `y` leaf.
    fn some_y(al: &Arc<Alphabet>) -> Nta {
        let (x, y, f, g) = syms(al);
        // state 0: no y seen; state 1: y seen somewhere below.
        let mut a = Nta::new(al, 2);
        a.add_leaf(x, State(0));
        a.add_leaf(y, State(1));
        for s in [f, g] {
            for (l, r, out) in [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 1)] {
                a.add_node(s, State(l), State(r), State(out));
            }
        }
        a.add_final(State(1));
        a
    }

    fn t(al: &Arc<Alphabet>, src: &str) -> BinaryTree {
        BinaryTree::parse(src, al).unwrap()
    }

    #[test]
    fn membership() {
        let al = alpha();
        let a = all_x(&al);
        assert!(a.accepts(&t(&al, "x")).unwrap());
        assert!(a.accepts(&t(&al, "f(x, g(x, x))")).unwrap());
        assert!(!a.accepts(&t(&al, "f(x, y)")).unwrap());
        let b = some_y(&al);
        assert!(!b.accepts(&t(&al, "x")).unwrap());
        assert!(b.accepts(&t(&al, "f(x, g(y, x))")).unwrap());
    }

    #[test]
    fn intersection_is_conjunction() {
        let al = alpha();
        let p = all_x(&al).intersect(&some_y(&al));
        // all leaves x AND some leaf y — impossible.
        assert!(p.is_empty());
        assert!(p.witness().is_none());
    }

    #[test]
    fn union_is_disjunction() {
        let al = alpha();
        let u = all_x(&al).union(&some_y(&al));
        assert!(u.accepts(&t(&al, "x")).unwrap());
        assert!(u.accepts(&t(&al, "f(y, x)")).unwrap());
        // Trees mixing: f(x,x) in all_x; also "f(x,x)" has no y: accepted.
        assert!(u.accepts(&t(&al, "f(x, x)")).unwrap());
    }

    #[test]
    fn witness_is_accepted() {
        let al = alpha();
        let b = some_y(&al);
        let w = b.witness().unwrap();
        assert!(b.accepts(&w).unwrap());
        // smallest witness is the single leaf y.
        assert_eq!(w.to_string(), "y");
    }

    #[test]
    fn determinize_preserves_language() {
        let al = alpha();
        let b = some_y(&al);
        let d = b.determinize();
        for src in ["x", "y", "f(x, x)", "f(x, y)", "g(f(x, x), f(x, y))"] {
            let tree = t(&al, src);
            assert_eq!(
                d.accepts(&tree).unwrap(),
                b.accepts(&tree).unwrap(),
                "tree {src}"
            );
        }
    }

    #[test]
    fn complement_flips_membership() {
        let al = alpha();
        let a = all_x(&al);
        let c = a.complement().to_nta();
        for src in ["x", "y", "f(x, y)", "f(x, x)"] {
            let tree = t(&al, src);
            assert_eq!(
                c.accepts(&tree).unwrap(),
                !a.accepts(&tree).unwrap(),
                "tree {src}"
            );
        }
    }

    #[test]
    fn inclusion() {
        let al = alpha();
        let a = all_x(&al);
        let b = some_y(&al);
        // all-x and some-y are disjoint; all-x ⊆ complement(some-y).
        assert!(a.subset_of(&b.complement().to_nta()));
        assert!(!a.subset_of(&b));
        let cex = a.inclusion_counterexample(&b).unwrap();
        assert!(a.accepts(&cex).unwrap());
        assert!(!b.accepts(&cex).unwrap());
    }

    #[test]
    fn equivalence() {
        let al = alpha();
        let a = all_x(&al);
        let a2 = a.determinize().to_nta();
        assert!(a.equivalent(&a2));
        assert!(!a.equivalent(&some_y(&al)));
    }

    #[test]
    fn trim_removes_useless_states() {
        let al = alpha();
        let (x, _, f, _) = syms(&al);
        let mut a = Nta::new(&al, 3);
        a.add_leaf(x, State(0));
        a.add_node(f, State(0), State(0), State(1));
        // State 2 is unreachable and useless.
        a.add_node(f, State(2), State(2), State(2));
        a.add_final(State(1));
        let trimmed = a.trim();
        assert_eq!(trimmed.n_states(), 2);
        assert!(trimmed.accepts(&t(&al, "f(x, x)")).unwrap());
        assert!(!trimmed.accepts(&t(&al, "x")).unwrap());
    }

    #[test]
    fn to_tdta_round_trip() {
        let al = alpha();
        let b = some_y(&al);
        let td = b.to_tdta();
        for src in ["x", "y", "f(x, y)", "f(g(x, x), x)", "f(g(x, y), x)"] {
            let tree = t(&al, src);
            assert_eq!(
                td.accepts(&tree).unwrap(),
                b.accepts(&tree).unwrap(),
                "tree {src}"
            );
        }
    }

    #[test]
    fn alphabet_mismatch_rejected() {
        let al = alpha();
        let other = alpha();
        let a = all_x(&al);
        let tree = t(&other, "x");
        assert!(a.accepts(&tree).is_err());
    }
}
