//! Bounded enumeration of regular tree languages.
//!
//! The paper notes (Section 3.3) that one can enumerate all trees generated
//! by a regular tree grammar at amortized polynomial cost. Here we provide
//! the bounded variant used by the exhaustive typechecking cross-validator:
//! all accepted trees of depth ≤ `max_depth`, capped at `limit`.

use crate::nta::Nta;
use crate::state::State;
use xmltc_trees::{BinaryTree, FxHashSet};

/// Enumerates distinct trees in `inst(a)` of depth at most `max_depth`, in
/// nondecreasing depth order, returning at most `limit` trees.
///
/// Per-state intermediate pools are also capped at `limit` trees, so the
/// result is exhaustive only when no pool overflows; for the small bounds
/// used in testing this is exhaustive.
pub fn trees_up_to(a: &Nta, max_depth: usize, limit: usize) -> Vec<BinaryTree> {
    let n = a.n_states() as usize;
    // pool[q] = distinct trees reaching state q, found so far.
    let mut pool: Vec<Vec<BinaryTree>> = vec![Vec::new(); n];
    let mut seen: Vec<FxHashSet<BinaryTree>> = vec![FxHashSet::default(); n];
    let mut accepted: Vec<BinaryTree> = Vec::new();
    let mut accepted_seen: FxHashSet<BinaryTree> = FxHashSet::default();

    // Depth 1: leaves.
    for (sym, q) in a.leaf_transitions() {
        let t = BinaryTree::singleton(sym, a.alphabet()).expect("leaf symbol");
        add(&mut pool, &mut seen, q, t, limit);
    }
    collect_accepted(a, &pool, &mut accepted, &mut accepted_seen, limit);

    for _depth in 2..=max_depth {
        if accepted.len() >= limit {
            break;
        }
        // One round: fire every transition over current pools.
        let mut fresh: Vec<(State, BinaryTree)> = Vec::new();
        for (sym, q1, q2, q) in a.node_transitions() {
            if pool[q.index()].len() >= limit {
                continue;
            }
            for t1 in &pool[q1.index()] {
                for t2 in &pool[q2.index()] {
                    let t = BinaryTree::graft(sym, t1, t2).expect("same alphabet");
                    fresh.push((q, t));
                }
            }
        }
        let mut changed = false;
        for (q, t) in fresh {
            changed |= add(&mut pool, &mut seen, q, t, limit);
        }
        collect_accepted(a, &pool, &mut accepted, &mut accepted_seen, limit);
        if !changed {
            break; // fixpoint below the depth bound
        }
    }
    accepted.truncate(limit);
    accepted
}

/// Counts accepted trees of each depth `1..=max_depth` (saturating at
/// `u128::MAX`). Useful for comparing language sizes without
/// materializing trees — e.g. the number of DTD-valid documents per size.
///
/// **Counts accepting runs**: exact for *deterministic* automata (pass
/// through [`crate::Nta::determinize`] first when in doubt); a
/// nondeterministic automaton may count a tree once per accepting run.
pub fn count_trees(a: &Nta, max_depth: usize) -> Vec<u128> {
    let n = a.n_states() as usize;
    // exact[d][q] = number of trees of depth exactly d reaching q.
    let mut exact: Vec<Vec<u128>> = Vec::with_capacity(max_depth + 1);
    exact.push(vec![0; n]); // depth 0: none
                            // upto[q] = trees of depth ≤ current.
    let mut result = Vec::with_capacity(max_depth);
    for depth in 1..=max_depth {
        let mut row = vec![0u128; n];
        if depth == 1 {
            for (_, q) in a.leaf_transitions() {
                row[q.index()] = row[q.index()].saturating_add(1);
            }
        } else {
            // A tree of depth exactly d combines children with
            // max(d1, d2) = d - 1.
            let upto_prev: Vec<u128> = (0..n)
                .map(|q| exact.iter().map(|r| r[q]).fold(0u128, u128::saturating_add))
                .collect();
            let exact_prev = &exact[depth - 1];
            for (_, q1, q2, q) in a.node_transitions() {
                let a1 = exact_prev[q1.index()];
                let a2 = exact_prev[q2.index()];
                let u1 = upto_prev[q1.index()];
                let u2 = upto_prev[q2.index()];
                // exact·upto + upto·exact − exact·exact (inclusion-exclusion)
                let combos = a1
                    .saturating_mul(u2)
                    .saturating_add(u1.saturating_mul(a2))
                    .saturating_sub(a1.saturating_mul(a2));
                row[q.index()] = row[q.index()].saturating_add(combos);
            }
        }
        exact.push(row);
        let total: u128 = a
            .finals()
            .iter()
            .map(|q| exact[depth][q.index()])
            .fold(0u128, u128::saturating_add);
        result.push(total);
    }
    result
}

fn add(
    pool: &mut [Vec<BinaryTree>],
    seen: &mut [FxHashSet<BinaryTree>],
    q: State,
    t: BinaryTree,
    limit: usize,
) -> bool {
    if pool[q.index()].len() >= limit || seen[q.index()].contains(&t) {
        return false;
    }
    seen[q.index()].insert(t.clone());
    pool[q.index()].push(t);
    true
}

fn collect_accepted(
    a: &Nta,
    pool: &[Vec<BinaryTree>],
    accepted: &mut Vec<BinaryTree>,
    accepted_seen: &mut FxHashSet<BinaryTree>,
    limit: usize,
) {
    for q in a.finals().iter() {
        for t in &pool[q.index()] {
            if accepted.len() >= limit {
                return;
            }
            if accepted_seen.insert(t.clone()) {
                accepted.push(t.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xmltc_trees::Alphabet;

    fn alpha() -> Arc<Alphabet> {
        Alphabet::ranked(&["x", "y"], &["f"])
    }

    /// All trees over {x, f}.
    fn all_x(al: &Arc<Alphabet>) -> Nta {
        let x = al.get("x").unwrap();
        let f = al.get("f").unwrap();
        let mut a = Nta::new(al, 1);
        a.add_leaf(x, State(0));
        a.add_node(f, State(0), State(0), State(0));
        a.add_final(State(0));
        a
    }

    #[test]
    fn enumerates_all_small_trees() {
        let al = alpha();
        let a = all_x(&al);
        let ts = trees_up_to(&a, 3, 100);
        // depth ≤ 3 over {x, f}: x, f(x,x), f(x,f(x,x)), f(f(x,x),x),
        // f(f(x,x),f(x,x)) = 5 trees.
        assert_eq!(ts.len(), 5);
        for t in &ts {
            assert!(a.accepts(t).unwrap());
            assert!(t.depth() <= 3);
        }
        // Distinctness.
        let set: FxHashSet<_> = ts.iter().cloned().collect();
        assert_eq!(set.len(), ts.len());
    }

    #[test]
    fn respects_limit() {
        let al = alpha();
        let a = all_x(&al);
        let ts = trees_up_to(&a, 5, 7);
        assert_eq!(ts.len(), 7);
    }

    #[test]
    fn empty_language_enumerates_nothing() {
        let al = alpha();
        let mut a = Nta::new(&al, 1);
        a.add_final(State(0)); // no transitions: nothing reaches state 0
        assert!(trees_up_to(&a, 4, 10).is_empty());
    }

    #[test]
    fn counting_matches_enumeration() {
        let al = alpha();
        let a = all_x(&al).determinize().to_nta();
        let counts = count_trees(&a, 4);
        // Trees over {x, f}: depth 1: 1 (x); depth 2: 1 (f(x,x));
        // depth 3: 4 - wait, depth exactly 3: f with at least one child of
        // depth 2: combos = 1·2 + 2·1 − 1·1 = 3; depth 4: children up to
        // depth 3 (5 each) with at least one exactly-3: 3·5+5·3−3·3 = 21.
        assert_eq!(counts, vec![1, 1, 3, 21]);
        // Cross-check against explicit enumeration (cumulative).
        for d in 1..=4usize {
            let enumerated = trees_up_to(&a, d, 1_000_000);
            let total: u128 = counts[..d].iter().sum();
            assert_eq!(enumerated.len() as u128, total, "depth {d}");
        }
    }

    #[test]
    fn counting_saturates_not_panics() {
        // The full binary language explodes doubly exponentially; counting
        // to depth 12 must not overflow.
        let al = alpha();
        let a = all_x(&al).determinize().to_nta();
        let counts = count_trees(&a, 12);
        assert_eq!(counts.len(), 12);
        assert!(counts[6] > counts[5]);
        // Far depths saturate rather than overflowing.
        assert!(counts[11] >= counts[10]);
    }

    #[test]
    fn depth_one_only_leaves() {
        let al = alpha();
        let a = all_x(&al);
        let ts = trees_up_to(&a, 1, 10);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].to_string(), "x");
    }
}
