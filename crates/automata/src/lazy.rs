//! Lazy on-the-fly emptiness for implicit automaton products.
//!
//! The Theorem 4.4 pipeline ends in an emptiness check over a product
//! automaton — `τ₁ ∩ violations` for the verdict, `A_t ∩ complement(τ₂)`
//! for bad-output extraction. The eager procedure materializes every
//! product state (and, for complements, the full subset construction)
//! before asking reachability; the verdict, however, only depends on
//! configurations the search actually *reaches*. Following the on-the-fly
//! approach of Frisch & Hosoya ("Towards Practical Typechecking for Macro
//! Tree Transducers"), this module performs a goal-directed, top-down
//! search over the *implicit* product:
//!
//! * Product configurations pair a top-down state of the left automaton
//!   with an obligation on the right automaton — either *membership* in a
//!   single state ([`intersection_witness`]) or *rejection from a set of
//!   states* ([`difference_witness`]). The rejection sets are exactly the
//!   states of the determinized complement, created **only when the search
//!   touches them** — the complement `Dbta` is never materialized.
//! * The search descends root-to-frontier. A configuration already on the
//!   current search path is cut via an **assumption set** (assumed
//!   uninhabited, greatest-fixpoint style): a smallest witness never
//!   repeats a configuration along a branch, so the cut is exact.
//! * Memoization is lowlink-guarded: *inhabited* verdicts (which carry a
//!   witness recipe) are always cached; *empty* verdicts are cached only
//!   when they did not lean on an assumption about a configuration still
//!   under exploration further up the path — otherwise a later refutation
//!   of that assumption could invalidate the cache entry.
//! * The first reachable accepting configuration stops the search, and its
//!   recipe chain rebuilds a concrete witness tree.
//!
//! On negative ("typechecks") instances the search still terminates after
//! exploring every *reachable* configuration — typically a small fraction
//! of the eager product's state space ([`LazyStats`] reports the ratio).

use crate::nta::Nta;
use crate::state::{State, StateSet};
use crate::topdown::TdTa;
use xmltc_obs as obs;
use xmltc_trees::tree::BinaryTreeBuilder;
use xmltc_trees::{Alphabet, BinaryTree, FxHashMap, FxHashSet, NodeId, Symbol};

/// Outcome of a lazy emptiness search.
#[derive(Clone, Debug)]
pub enum LazyOutcome {
    /// The implicit product language is empty.
    Empty,
    /// A tree in the product language (first accepting configuration
    /// reached).
    Witness(BinaryTree),
}

impl LazyOutcome {
    /// True when the product language is empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, LazyOutcome::Empty)
    }

    /// The witness tree, if any.
    pub fn into_witness(self) -> Option<BinaryTree> {
        match self {
            LazyOutcome::Empty => None,
            LazyOutcome::Witness(t) => Some(t),
        }
    }
}

/// Search-effort counters for one lazy run.
#[derive(Clone, Copy, Debug, Default)]
pub struct LazyStats {
    /// Product configurations materialized (interned) by the search.
    pub states_materialized: u64,
    /// Size of the eager product state space this search avoided
    /// (`|A| · |B|` for intersections, `|A| · 2^|B|` saturating for
    /// complements).
    pub states_eager: u64,
    /// Distinct on-demand subset states of the complement side.
    pub subset_states: u64,
    /// Deepest point of the search stack (the DFS worklist).
    pub worklist_peak: u64,
    /// Searches answered from the memo table.
    pub memo_hits: u64,
    /// Cycles cut by the assumption set.
    pub assumption_hits: u64,
}

impl LazyStats {
    fn publish(&self) {
        if obs::is_active() {
            obs::record("lazy.states_materialized", self.states_materialized);
            obs::record("lazy.states_eager", self.states_eager);
            obs::record("lazy.subset_states", self.subset_states);
            obs::record("lazy.worklist_peak", self.worklist_peak);
            obs::record("lazy.memo_hits", self.memo_hits);
            obs::record("lazy.assumption_hits", self.assumption_hits);
        }
    }
}

/// Errors from the lazy engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LazyError {
    /// The two automata speak different alphabets.
    AlphabetMismatch,
    /// The search materialized more configurations than its budget allows.
    ConfigLimit {
        /// The exceeded budget.
        n: u32,
    },
}

impl std::fmt::Display for LazyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LazyError::AlphabetMismatch => write!(f, "automata over different alphabets"),
            LazyError::ConfigLimit { n } => {
                write!(f, "lazy search exceeded {n} product configurations")
            }
        }
    }
}

impl std::error::Error for LazyError {}

/// Decides emptiness of `inst(a) ∩ inst(b)` on the fly, without
/// materializing the product automaton. Returns a witness tree when the
/// intersection is inhabited. `limit` bounds the number of product
/// configurations the search may intern.
pub fn intersection_witness(
    a: &Nta,
    b: &Nta,
    limit: u32,
) -> Result<(LazyOutcome, LazyStats), LazyError> {
    if !Alphabet::same(a.alphabet(), b.alphabet()) {
        return Err(LazyError::AlphabetMismatch);
    }
    let atd = a.to_tdta();
    let btd = b.to_tdta();
    let eager = (a.n_states() as u64).saturating_mul(b.n_states() as u64);
    let mut search = Search::new(&atd, &btd, limit, eager);
    let root = Config {
        p: atd.initial(),
        pos: Some(btd.initial()),
        neg: EMPTY_SUBSET,
    };
    search.run(root)
}

/// Decides emptiness of `inst(a) ∖ inst(b)` (equivalently, the inclusion
/// `inst(a) ⊆ inst(b)`) on the fly: the complement of `b` is determinized
/// **on demand**, one subset state at a time, as the search touches it.
/// Returns a tree in `inst(a) ∖ inst(b)` when the difference is inhabited.
pub fn difference_witness(
    a: &Nta,
    b: &Nta,
    limit: u32,
) -> Result<(LazyOutcome, LazyStats), LazyError> {
    if !Alphabet::same(a.alphabet(), b.alphabet()) {
        return Err(LazyError::AlphabetMismatch);
    }
    let atd = a.to_tdta();
    let btd = b.to_tdta();
    let subsets = 2u64
        .checked_pow(b.n_states().min(63))
        .unwrap_or(u64::MAX)
        .max(1);
    let eager = (a.n_states() as u64).saturating_mul(subsets);
    let mut search = Search::new(&atd, &btd, limit, eager);
    let neg = search.intern_subset(StateSet::from_iter_canon([btd.initial()]));
    let root = Config {
        p: atd.initial(),
        pos: None,
        neg,
    };
    search.run(root)
}

/// Index of the pre-interned empty rejection set.
const EMPTY_SUBSET: u32 = 0;

/// No dependency on any path assumption.
const NO_DEP: u32 = u32::MAX;

/// A product configuration: a top-down state of the left automaton, an
/// optional membership obligation on the right automaton, and a (possibly
/// empty) interned set of right states the tree must be *rejected* from —
/// one on-demand subset state of the complement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Config {
    p: State,
    pos: Option<State>,
    neg: u32,
}

/// Lifecycle of a configuration in the search.
#[derive(Clone, Copy)]
enum Mark {
    /// Interned but never entered (or a provisional empty verdict was
    /// invalidated by a refuted assumption).
    Unvisited,
    /// Open: on the current search path, or popped with a provisional
    /// empty verdict that still leans on an open ancestor. Carries the
    /// visit index (monotone, never reused). Open configurations form the
    /// assumption set: hitting one returns "empty, assuming the entry at
    /// this index is empty".
    Open(u32),
    /// Proven uninhabited, independently of any assumption.
    Empty,
    /// Proven inhabited, with a witness recipe.
    Inhabited(u32),
}

/// How a configuration was first inhabited.
#[derive(Clone, Copy)]
enum Recipe {
    Leaf(Symbol),
    Node(Symbol, u32, u32),
}

/// Result of one recursive search step: a witness recipe, or emptiness
/// together with the smallest visit index whose assumption it leaned on
/// ([`NO_DEP`] when self-contained).
#[derive(Clone, Copy)]
enum Step {
    Inhabited(u32),
    Empty { min_dep: u32 },
}

struct Search<'a> {
    atd: &'a TdTa,
    btd: &'a TdTa,
    leaves: Vec<Symbol>,
    binaries: Vec<Symbol>,
    subsets: Vec<StateSet>,
    subset_ix: FxHashMap<StateSet, u32>,
    config_ix: FxHashMap<Config, u32>,
    configs: Vec<Config>,
    marks: Vec<Mark>,
    /// Open configurations in visit order (Tarjan-style): the current
    /// search path interleaved with popped-but-provisional empties.
    open: Vec<u32>,
    next_index: u32,
    depth: u32,
    recipes: Vec<Recipe>,
    limit: u32,
    stats: LazyStats,
}

impl<'a> Search<'a> {
    fn new(atd: &'a TdTa, btd: &'a TdTa, limit: u32, eager: u64) -> Search<'a> {
        let mut s = Search {
            atd,
            btd,
            leaves: atd.alphabet().leaves(),
            binaries: atd.alphabet().binaries(),
            subsets: Vec::new(),
            subset_ix: FxHashMap::default(),
            config_ix: FxHashMap::default(),
            configs: Vec::new(),
            marks: Vec::new(),
            open: Vec::new(),
            next_index: 0,
            depth: 0,
            recipes: Vec::new(),
            limit,
            stats: LazyStats {
                states_eager: eager,
                ..LazyStats::default()
            },
        };
        let ix = s.intern_subset(StateSet::new());
        debug_assert_eq!(ix, EMPTY_SUBSET);
        s
    }

    fn intern_subset(&mut self, set: StateSet) -> u32 {
        if let Some(&ix) = self.subset_ix.get(&set) {
            return ix;
        }
        let ix = self.subsets.len() as u32;
        self.subset_ix.insert(set.clone(), ix);
        self.subsets.push(set);
        if obs::journal::enabled() {
            // Matches `LazyStats::subset_states`: the pre-interned empty
            // set (index 0) is bookkeeping, not search work.
            obs::journal::counter("lazy.subset_states", ix as u64);
        }
        ix
    }

    fn intern_config(&mut self, c: Config) -> Result<u32, LazyError> {
        if let Some(&ix) = self.config_ix.get(&c) {
            return Ok(ix);
        }
        let ix = self.configs.len() as u32;
        if ix >= self.limit {
            return Err(LazyError::ConfigLimit { n: self.limit });
        }
        self.config_ix.insert(c, ix);
        self.configs.push(c);
        self.marks.push(Mark::Unvisited);
        if obs::journal::enabled() {
            obs::journal::instant("lazy.materialize");
            obs::journal::counter("lazy.states_materialized", self.configs.len() as u64);
        }
        Ok(ix)
    }

    fn run(&mut self, root: Config) -> Result<(LazyOutcome, LazyStats), LazyError> {
        let root_ix = self.intern_config(root)?;
        let step = self.search(root_ix)?;
        self.stats.states_materialized = self.configs.len() as u64;
        // `subsets` always holds the pre-interned empty set; only count the
        // rejection sets the search actually created beyond it.
        self.stats.subset_states = (self.subsets.len() - 1) as u64;
        self.stats.publish();
        let outcome = match step {
            Step::Inhabited(recipe) => LazyOutcome::Witness(self.build_witness(recipe)),
            Step::Empty { .. } => LazyOutcome::Empty,
        };
        Ok((outcome, self.stats))
    }

    /// The goal-directed search: is configuration `ix` inhabited by some
    /// tree? Recursion depth is bounded by the number of distinct
    /// configurations (the path never repeats one).
    ///
    /// Cycle and memo discipline (Tarjan-style over the assumption set):
    /// every visited configuration is *open* — kept on the `open` stack —
    /// until its verdict stops leaning on an ancestor still under
    /// exploration. Hitting an open configuration returns "empty, assuming
    /// the entry at that visit index is empty": exact for the least
    /// fixpoint, because a smallest witness never repeats a configuration
    /// along a branch. When a configuration closes empty with every
    /// assumption inside its own subsearch (`min_dep >= its index`), the
    /// fixpoint closed: it and everything still open above it are
    /// permanently empty. When a configuration turns out inhabited, open
    /// entries above it may have assumed its emptiness — that assumption
    /// is refuted, so they are invalidated back to unvisited (anything
    /// that observed an open entry was pushed after it, hence sits above
    /// it on the stack; soundness follows).
    fn search(&mut self, ix: u32) -> Result<Step, LazyError> {
        match self.marks[ix as usize] {
            Mark::Empty => {
                self.stats.memo_hits += 1;
                if obs::journal::enabled() {
                    obs::journal::counter("lazy.memo_hits", self.stats.memo_hits);
                }
                return Ok(Step::Empty { min_dep: NO_DEP });
            }
            Mark::Inhabited(r) => {
                self.stats.memo_hits += 1;
                if obs::journal::enabled() {
                    obs::journal::counter("lazy.memo_hits", self.stats.memo_hits);
                }
                return Ok(Step::Inhabited(r));
            }
            Mark::Open(index) => {
                self.stats.assumption_hits += 1;
                if obs::journal::enabled() {
                    obs::journal::instant("lazy.assumption_hit");
                    obs::journal::counter("lazy.assumption_hits", self.stats.assumption_hits);
                }
                return Ok(Step::Empty { min_dep: index });
            }
            Mark::Unvisited => {}
        }
        let my_index = self.next_index;
        self.next_index += 1;
        let my_pos = self.open.len();
        self.open.push(ix);
        self.marks[ix as usize] = Mark::Open(my_index);
        self.depth += 1;
        self.stats.worklist_peak = self.stats.worklist_peak.max(self.depth as u64);

        let result = self.expand(ix);

        self.depth -= 1;
        match result {
            Ok(Step::Inhabited(recipe)) => {
                // Open entries above this one may have assumed it empty;
                // that assumption is now refuted, so they must be
                // re-derived if ever needed again.
                for &c in &self.open[my_pos + 1..] {
                    self.marks[c as usize] = Mark::Unvisited;
                }
                self.open.truncate(my_pos);
                self.marks[ix as usize] = Mark::Inhabited(recipe);
                Ok(Step::Inhabited(recipe))
            }
            Ok(Step::Empty { min_dep }) => {
                if min_dep >= my_index {
                    // Every assumption lies within this configuration's own
                    // subsearch — the fixpoint closed, so it and all open
                    // entries above it (whose dependencies were folded into
                    // `min_dep`) are globally empty.
                    for &c in &self.open[my_pos..] {
                        self.marks[c as usize] = Mark::Empty;
                    }
                    self.open.truncate(my_pos);
                    Ok(Step::Empty { min_dep: NO_DEP })
                } else {
                    // Still leaning on an ancestor under exploration: stay
                    // open (provisionally empty) and hand the dependency up.
                    Ok(Step::Empty { min_dep })
                }
            }
            Err(e) => {
                for &c in &self.open[my_pos..] {
                    self.marks[c as usize] = Mark::Unvisited;
                }
                self.open.truncate(my_pos);
                Err(e)
            }
        }
    }

    /// Tries every way to inhabit `ix`: leaf symbols first (smallest
    /// witnesses), then binary symbols with all child-obligation splits.
    fn expand(&mut self, ix: u32) -> Result<Step, LazyError> {
        let c = self.configs[ix as usize];
        for i in 0..self.leaves.len() {
            let sym = self.leaves[i];
            if self.leaf_ok(sym, c) {
                let r = self.recipes.len() as u32;
                self.recipes.push(Recipe::Leaf(sym));
                return Ok(Step::Inhabited(r));
            }
        }
        let mut min_dep = NO_DEP;
        for i in 0..self.binaries.len() {
            let sym = self.binaries[i];
            let a_moves: Vec<(State, State)> = self.atd.transitions_for(sym, c.p).to_vec();
            if a_moves.is_empty() {
                continue;
            }
            // Membership obligation: one right-automaton transition per
            // choice. No obligation: a single unconstrained choice.
            let pos_moves: Vec<(Option<State>, Option<State>)> = match c.pos {
                None => vec![(None, None)],
                Some(q) => self
                    .btd
                    .transitions_for(sym, q)
                    .iter()
                    .map(|&(q1, q2)| (Some(q1), Some(q2)))
                    .collect(),
            };
            if pos_moves.is_empty() {
                continue;
            }
            // Rejection obligation: every transition of every state in the
            // rejection set must fail in the left or the right subtree.
            // Each left/right choice yields a pair of child rejection sets
            // — the on-demand subset construction of the complement.
            let splits = self.neg_splits(sym, c.neg);
            for &(p1, p2) in &a_moves {
                for &(b1, b2) in &pos_moves {
                    for &(n1, n2) in &splits {
                        let c1 = Config {
                            p: p1,
                            pos: b1,
                            neg: n1,
                        };
                        let i1 = self.intern_config(c1)?;
                        let r1 = match self.search(i1)? {
                            Step::Inhabited(r) => r,
                            Step::Empty { min_dep: d } => {
                                min_dep = min_dep.min(d);
                                continue;
                            }
                        };
                        let c2 = Config {
                            p: p2,
                            pos: b2,
                            neg: n2,
                        };
                        let i2 = self.intern_config(c2)?;
                        match self.search(i2)? {
                            Step::Inhabited(r2) => {
                                let r = self.recipes.len() as u32;
                                self.recipes.push(Recipe::Node(sym, r1, r2));
                                return Ok(Step::Inhabited(r));
                            }
                            Step::Empty { min_dep: d } => min_dep = min_dep.min(d),
                        }
                    }
                }
            }
        }
        Ok(Step::Empty { min_dep })
    }

    /// Can configuration `c` be inhabited by the single leaf `sym`?
    fn leaf_ok(&self, sym: Symbol, c: Config) -> bool {
        if !self.atd.is_final_pair(sym, c.p) {
            return false;
        }
        if let Some(q) = c.pos {
            if !self.btd.is_final_pair(sym, q) {
                return false;
            }
        }
        self.subsets[c.neg as usize]
            .iter()
            .all(|q| !self.btd.is_final_pair(sym, q))
    }

    /// All minimal ways to split the rejection obligations of subset `neg`
    /// under a `sym`-node between the two children. A state with no
    /// `sym`-transitions rejects for free; an obligation whose left (right)
    /// component is already in the left (right) child set is absorbed.
    fn neg_splits(&mut self, sym: Symbol, neg: u32) -> Vec<(u32, u32)> {
        if self.subsets[neg as usize].is_empty() {
            return vec![(EMPTY_SUBSET, EMPTY_SUBSET)];
        }
        let mut obligations: Vec<(State, State)> = Vec::new();
        for q in self.subsets[neg as usize].iter() {
            obligations.extend_from_slice(self.btd.transitions_for(sym, q));
        }
        obligations.sort_unstable();
        obligations.dedup();
        let mut out: Vec<(u32, u32)> = Vec::new();
        let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
        self.split_rec(
            &obligations,
            0,
            StateSet::new(),
            StateSet::new(),
            &mut out,
            &mut seen,
        );
        out
    }

    fn split_rec(
        &mut self,
        obligations: &[(State, State)],
        i: usize,
        s1: StateSet,
        s2: StateSet,
        out: &mut Vec<(u32, u32)>,
        seen: &mut FxHashSet<(u32, u32)>,
    ) {
        if i == obligations.len() {
            let pair = (self.intern_subset(s1), self.intern_subset(s2));
            if seen.insert(pair) {
                out.push(pair);
            }
            return;
        }
        let (l, r) = obligations[i];
        // Absorbed obligations cost nothing; larger rejection sets only
        // shrink the language, so skipping the strict supersets is exact.
        if s1.contains(l) || s2.contains(r) {
            self.split_rec(obligations, i + 1, s1, s2, out, seen);
            return;
        }
        let mut left = s1.clone();
        left.insert(l);
        self.split_rec(obligations, i + 1, left, s2.clone(), out, seen);
        let mut right = s2;
        right.insert(r);
        self.split_rec(obligations, i + 1, s1, right, out, seen);
    }

    fn build_witness(&self, recipe: u32) -> BinaryTree {
        let mut b = BinaryTreeBuilder::new(self.atd.alphabet());
        let root = self.build_node(recipe, &mut b);
        b.finish(root)
    }

    fn build_node(&self, recipe: u32, b: &mut BinaryTreeBuilder) -> NodeId {
        match self.recipes[recipe as usize] {
            Recipe::Leaf(sym) => b.leaf(sym).expect("leaf rank"),
            Recipe::Node(sym, r1, r2) => {
                let l = self.build_node(r1, b);
                let r = self.build_node(r2, b);
                b.node(sym, l, r).expect("binary rank")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn alpha() -> Arc<Alphabet> {
        Alphabet::ranked(&["x", "y"], &["f", "g"])
    }

    /// Accepts trees whose leaves are all `x`.
    fn all_x(al: &Arc<Alphabet>) -> Nta {
        let x = al.get("x").unwrap();
        let mut a = Nta::new(al, 1);
        a.add_leaf(x, State(0));
        for b in al.binaries() {
            a.add_node(b, State(0), State(0), State(0));
        }
        a.add_final(State(0));
        a
    }

    /// Accepts trees containing at least one `y` leaf.
    fn some_y(al: &Arc<Alphabet>) -> Nta {
        let x = al.get("x").unwrap();
        let y = al.get("y").unwrap();
        let mut a = Nta::new(al, 2);
        a.add_leaf(x, State(0));
        a.add_leaf(y, State(1));
        for s in al.binaries() {
            for (l, r, out) in [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 1)] {
                a.add_node(s, State(l), State(r), State(out));
            }
        }
        a.add_final(State(1));
        a
    }

    /// Accepts every tree.
    fn top(al: &Arc<Alphabet>) -> Nta {
        let mut a = Nta::new(al, 1);
        for l in al.leaves() {
            a.add_leaf(l, State(0));
        }
        for b in al.binaries() {
            a.add_node(b, State(0), State(0), State(0));
        }
        a.add_final(State(0));
        a
    }

    /// Accepts nothing.
    fn bottom(al: &Arc<Alphabet>) -> Nta {
        Nta::new(al, 1)
    }

    fn lazy_intersect(a: &Nta, b: &Nta) -> LazyOutcome {
        intersection_witness(a, b, u32::MAX).unwrap().0
    }

    fn lazy_diff(a: &Nta, b: &Nta) -> LazyOutcome {
        difference_witness(a, b, u32::MAX).unwrap().0
    }

    #[test]
    fn intersection_agrees_with_eager() {
        let al = alpha();
        let cases = [
            (all_x(&al), some_y(&al)),
            (all_x(&al), top(&al)),
            (some_y(&al), top(&al)),
            (some_y(&al), some_y(&al)),
            (all_x(&al), bottom(&al)),
        ];
        for (a, b) in &cases {
            let eager = a.intersect(b);
            let lazy = lazy_intersect(a, b);
            assert_eq!(eager.is_empty(), lazy.is_empty());
            if let LazyOutcome::Witness(w) = lazy {
                assert!(a.accepts(&w).unwrap(), "witness in left language");
                assert!(b.accepts(&w).unwrap(), "witness in right language");
            }
        }
    }

    #[test]
    fn difference_agrees_with_eager_inclusion() {
        let al = alpha();
        let cases = [
            (all_x(&al), some_y(&al)), // x ⊄ some-y: witness "x"
            (all_x(&al), top(&al)),    // included
            (top(&al), all_x(&al)),    // witness with a y
            (some_y(&al), some_y(&al)),
            (bottom(&al), bottom(&al)),
            (top(&al), bottom(&al)),
        ];
        for (a, b) in &cases {
            let eager = a.inclusion_counterexample(b);
            let lazy = lazy_diff(a, b);
            assert_eq!(eager.is_some(), !lazy.is_empty());
            if let LazyOutcome::Witness(w) = lazy {
                assert!(a.accepts(&w).unwrap(), "witness accepted by left");
                assert!(!b.accepts(&w).unwrap(), "witness rejected by right");
            }
        }
    }

    #[test]
    fn empty_and_universal_right_sides() {
        let al = alpha();
        // a ∖ ∅ = a: witness exists iff a nonempty.
        assert!(!lazy_diff(&some_y(&al), &bottom(&al)).is_empty());
        assert!(lazy_diff(&bottom(&al), &bottom(&al)).is_empty());
        // a ∖ ⊤ = ∅ always.
        assert!(lazy_diff(&some_y(&al), &top(&al)).is_empty());
        assert!(lazy_diff(&top(&al), &top(&al)).is_empty());
    }

    #[test]
    fn single_symbol_alphabet() {
        let al = Alphabet::ranked(&["x"], &["f"]);
        let t = top(&al);
        assert!(lazy_intersect(&t, &t).is_empty() == t.is_empty());
        assert!(lazy_diff(&t, &t).is_empty());
        let none = bottom(&al);
        assert!(lazy_intersect(&t, &none).is_empty());
        let w = lazy_diff(&t, &none).into_witness().unwrap();
        assert!(t.accepts(&w).unwrap());
    }

    #[test]
    fn witness_is_small_leaf_when_possible() {
        let al = alpha();
        // top ∖ all_x: smallest witness is the leaf y, found leaf-first.
        let w = lazy_diff(&top(&al), &all_x(&al)).into_witness().unwrap();
        assert_eq!(w.to_string(), "y");
    }

    #[test]
    fn stats_report_laziness() {
        let al = alpha();
        let (out, stats) = intersection_witness(&all_x(&al), &some_y(&al), u32::MAX).unwrap();
        assert!(out.is_empty());
        assert!(stats.states_materialized > 0);
        assert!(stats.states_eager > 0);
        let (_, stats) = difference_witness(&top(&al), &all_x(&al), u32::MAX).unwrap();
        assert!(stats.subset_states >= 1, "complement side was touched");
    }

    #[test]
    fn config_limit_is_honored() {
        let al = alpha();
        let err = intersection_witness(&all_x(&al), &some_y(&al), 1).unwrap_err();
        assert_eq!(err, LazyError::ConfigLimit { n: 1 });
        assert_eq!(
            err.to_string(),
            "lazy search exceeded 1 product configurations"
        );
    }

    #[test]
    fn alphabet_mismatch_rejected() {
        let al = alpha();
        let other = alpha();
        let err = intersection_witness(&top(&al), &top(&other), u32::MAX).unwrap_err();
        assert_eq!(err, LazyError::AlphabetMismatch);
    }

    /// Randomized agreement with the eager procedures over structured
    /// automata: random trims of products and unions keep both modes busy.
    #[test]
    fn randomized_agreement_with_eager() {
        use xmltc_trees::SmallRng;
        let al = alpha();
        let mut rng = SmallRng::seed_from_u64(0x1a2b);
        let pool = [all_x(&al), some_y(&al), top(&al), bottom(&al)];
        for case in 0..40 {
            let a = rng.choose(&pool);
            let b = rng.choose(&pool);
            let (a, b) = match rng.gen_range(0..3) {
                0 => (a.clone(), b.clone()),
                1 => (a.union(b).trim(), b.clone()),
                _ => (a.clone(), a.intersect(b).trim()),
            };
            let eager_int = a.intersect(&b);
            let (lazy_int, _) = intersection_witness(&a, &b, u32::MAX).unwrap();
            assert_eq!(eager_int.is_empty(), lazy_int.is_empty(), "case {case}");
            let eager_diff = a.inclusion_counterexample(&b);
            let (lazy_diff, _) = difference_witness(&a, &b, u32::MAX).unwrap();
            assert_eq!(eager_diff.is_some(), !lazy_diff.is_empty(), "case {case}");
            if let LazyOutcome::Witness(w) = lazy_diff {
                assert!(a.accepts(&w).unwrap(), "case {case}");
                assert!(!b.accepts(&w).unwrap(), "case {case}");
            }
        }
    }
}
