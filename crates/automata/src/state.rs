//! Automaton states and canonical state sets.

use std::fmt;

/// An automaton state: a dense index, local to its automaton.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct State(pub u32);

impl State {
    /// The index as usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A canonical (sorted, deduplicated) set of states, usable as a hash key
/// in subset constructions.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct StateSet(Vec<State>);

impl StateSet {
    /// The empty set.
    pub fn new() -> Self {
        StateSet(Vec::new())
    }

    /// Builds from an arbitrary iterator, canonicalizing.
    pub fn from_iter_canon(iter: impl IntoIterator<Item = State>) -> Self {
        let mut v: Vec<State> = iter.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        StateSet(v)
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, q: State) -> bool {
        self.0.binary_search(&q).is_ok()
    }

    /// Inserts a state, keeping canonical order. Returns true if inserted.
    pub fn insert(&mut self, q: State) -> bool {
        match self.0.binary_search(&q) {
            Ok(_) => false,
            Err(i) => {
                self.0.insert(i, q);
                true
            }
        }
    }

    /// Iterates in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = State> + '_ {
        self.0.iter().copied()
    }

    /// The underlying sorted slice.
    pub fn as_slice(&self) -> &[State] {
        &self.0
    }

    /// Merges another set into this one.
    pub fn union_with(&mut self, other: &StateSet) {
        if other.0.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.0.len() + other.0.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            use std::cmp::Ordering::*;
            match self.0[i].cmp(&other.0[j]) {
                Less => {
                    merged.push(self.0[i]);
                    i += 1;
                }
                Greater => {
                    merged.push(other.0[j]);
                    j += 1;
                }
                Equal => {
                    merged.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.0[i..]);
        merged.extend_from_slice(&other.0[j..]);
        self.0 = merged;
    }

    /// True when the two sets intersect.
    pub fn intersects(&self, other: &StateSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            use std::cmp::Ordering::*;
            match self.0[i].cmp(&other.0[j]) {
                Less => i += 1,
                Greater => j += 1,
                Equal => return true,
            }
        }
        false
    }
}

impl FromIterator<State> for StateSet {
    fn from_iter<T: IntoIterator<Item = State>>(iter: T) -> Self {
        StateSet::from_iter_canon(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_construction() {
        let s = StateSet::from_iter_canon([State(3), State(1), State(3), State(2)]);
        assert_eq!(s.as_slice(), &[State(1), State(2), State(3)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn insert_and_contains() {
        let mut s = StateSet::new();
        assert!(s.insert(State(5)));
        assert!(s.insert(State(1)));
        assert!(!s.insert(State(5)));
        assert!(s.contains(State(1)));
        assert!(!s.contains(State(2)));
        assert_eq!(s.as_slice(), &[State(1), State(5)]);
    }

    #[test]
    fn union_and_intersects() {
        let mut a = StateSet::from_iter_canon([State(1), State(3)]);
        let b = StateSet::from_iter_canon([State(2), State(3)]);
        assert!(a.intersects(&b));
        a.union_with(&b);
        assert_eq!(a.as_slice(), &[State(1), State(2), State(3)]);
        let c = StateSet::from_iter_canon([State(9)]);
        assert!(!a.intersects(&c));
        let empty = StateSet::new();
        assert!(!a.intersects(&empty));
        a.union_with(&empty);
        assert_eq!(a.len(), 3);
    }
}
