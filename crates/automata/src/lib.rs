//! # xmltc-automata
//!
//! Regular tree languages over complete binary trees — the paper's type
//! formalism (Section 2.3).
//!
//! Two automaton flavours are provided, mirroring the paper:
//!
//! * [`TdTa`] — nondeterministic *top-down* (root-to-frontier) tree automata
//!   (Definition 2.1), optionally with **silent transitions**
//!   (`(a,q) → q'`), plus the paper's silent-elimination construction.
//!   Top-down automata are the natural output of the Proposition 3.8 and
//!   Proposition 4.6 constructions, which consume the tree in the order the
//!   transducer produces it.
//! * [`Nta`] — nondeterministic *bottom-up* automata, the workhorse for the
//!   decision procedures: determinization ([`Dbta`]), complement, product,
//!   union, emptiness **with witness extraction**, membership, inclusion,
//!   equivalence, trimming, and bounded language enumeration.
//!
//! The two are effectively inter-convertible ([`TdTa::to_nta`],
//! [`Nta::to_tdta`]); as the paper notes, nondeterministic top-down and
//! bottom-up automata are equally expressive, and both capture exactly the
//! regular tree languages. A *type* `τ` in the paper is `inst(A)` for one of
//! these automata.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dbta;
pub mod enumerate;
pub mod lazy;
pub mod nta;
pub mod state;
pub mod topdown;
pub mod witness;

pub use dbta::Dbta;
pub use lazy::{LazyError, LazyOutcome, LazyStats};
pub use nta::Nta;
pub use state::State;
pub use topdown::TdTa;
pub use witness::{accepting_run, node_path, rejection_point, RejectionPoint};
