//! Property tests for tree automata: all operations must respect language
//! semantics on randomly generated automata and trees.

use proptest::prelude::*;
use std::sync::Arc;
use xmltc_automata::{Nta, State};
use xmltc_trees::{Alphabet, BinaryTree};

fn alpha() -> Arc<Alphabet> {
    Alphabet::ranked(&["x", "y"], &["f", "g"])
}

#[derive(Debug, Clone)]
struct RawNta {
    n_states: u32,
    leaf: Vec<(u8, u32)>,           // (leaf symbol idx, state)
    node: Vec<(u8, u32, u32, u32)>, // (binary symbol idx, q1, q2, q)
    finals: Vec<u32>,
}

fn arb_nta(max_states: u32) -> impl Strategy<Value = RawNta> {
    (1..=max_states).prop_flat_map(move |n| {
        let leaf = prop::collection::vec((0..2u8, 0..n), 0..6);
        let node = prop::collection::vec((0..2u8, 0..n, 0..n, 0..n), 0..10);
        let finals = prop::collection::vec(0..n, 0..=n as usize);
        (Just(n), leaf, node, finals).prop_map(|(n_states, leaf, node, finals)| RawNta {
            n_states,
            leaf,
            node,
            finals,
        })
    })
}

fn build(raw: &RawNta, al: &Arc<Alphabet>) -> Nta {
    let leaves = al.leaves();
    let bins = al.binaries();
    let mut a = Nta::new(al, raw.n_states);
    for &(s, q) in &raw.leaf {
        a.add_leaf(leaves[s as usize], State(q));
    }
    for &(s, q1, q2, q) in &raw.node {
        a.add_node(bins[s as usize], State(q1), State(q2), State(q));
    }
    for &q in &raw.finals {
        a.add_final(State(q));
    }
    a
}

fn arb_tree(al: Arc<Alphabet>) -> impl Strategy<Value = BinaryTree> {
    let leaf = prop::sample::select(vec!["x", "y"]);
    let expr = leaf.prop_map(String::from).prop_recursive(3, 16, 2, |inner| {
        (
            prop::sample::select(vec!["f", "g"]),
            inner.clone(),
            inner,
        )
            .prop_map(|(s, l, r)| format!("{s}({l}, {r})"))
    });
    expr.prop_map(move |src| BinaryTree::parse(&src, &al).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn determinize_preserves_membership(raw in arb_nta(4), t in arb_tree(alpha())) {
        let al = t.alphabet().clone();
        let a = build(&raw, &al);
        let d = a.determinize();
        prop_assert_eq!(d.accepts(&t).unwrap(), a.accepts(&t).unwrap());
    }

    #[test]
    fn complement_flips_membership(raw in arb_nta(4), t in arb_tree(alpha())) {
        let al = t.alphabet().clone();
        let a = build(&raw, &al);
        let c = a.complement();
        prop_assert_eq!(c.accepts(&t).unwrap(), !a.accepts(&t).unwrap());
    }

    #[test]
    fn boolean_operation_laws(r1 in arb_nta(3), r2 in arb_nta(3), t in arb_tree(alpha())) {
        let al = t.alphabet().clone();
        let a = build(&r1, &al);
        let b = build(&r2, &al);
        let in_a = a.accepts(&t).unwrap();
        let in_b = b.accepts(&t).unwrap();
        prop_assert_eq!(a.intersect(&b).accepts(&t).unwrap(), in_a && in_b);
        prop_assert_eq!(a.union(&b).accepts(&t).unwrap(), in_a || in_b);
    }

    #[test]
    fn witness_is_accepted(raw in arb_nta(4)) {
        let al = alpha();
        let a = build(&raw, &al);
        match a.witness() {
            Some(w) => prop_assert!(a.accepts(&w).unwrap()),
            None => prop_assert!(a.is_empty()),
        }
    }

    #[test]
    fn trim_preserves_language(raw in arb_nta(4), t in arb_tree(alpha())) {
        let al = t.alphabet().clone();
        let a = build(&raw, &al);
        let trimmed = a.trim();
        prop_assert_eq!(trimmed.accepts(&t).unwrap(), a.accepts(&t).unwrap());
        prop_assert!(trimmed.n_states() <= a.n_states());
    }

    #[test]
    fn tdta_conversion_preserves_language(raw in arb_nta(4), t in arb_tree(alpha())) {
        let al = t.alphabet().clone();
        let a = build(&raw, &al);
        let td = a.to_tdta();
        prop_assert_eq!(td.accepts(&t).unwrap(), a.accepts(&t).unwrap());
        // And back.
        let back = td.to_nta();
        prop_assert_eq!(back.accepts(&t).unwrap(), a.accepts(&t).unwrap());
    }

    #[test]
    fn minimize_preserves_language(raw in arb_nta(3), t in arb_tree(alpha())) {
        let al = t.alphabet().clone();
        let a = build(&raw, &al);
        let d = a.determinize();
        let m = d.minimize();
        prop_assert_eq!(m.accepts(&t).unwrap(), a.accepts(&t).unwrap());
        prop_assert!(m.n_states() <= d.complete().n_states());
    }

    #[test]
    fn inclusion_is_sound(r1 in arb_nta(3), r2 in arb_nta(3), t in arb_tree(alpha())) {
        let al = t.alphabet().clone();
        let a = build(&r1, &al);
        let b = build(&r2, &al);
        if a.subset_of(&b) && a.accepts(&t).unwrap() {
            prop_assert!(b.accepts(&t).unwrap());
        }
        if let Some(cex) = a.inclusion_counterexample(&b) {
            prop_assert!(a.accepts(&cex).unwrap());
            prop_assert!(!b.accepts(&cex).unwrap());
        }
    }

    #[test]
    fn enumeration_sound_and_complete(raw in arb_nta(3)) {
        let al = alpha();
        let a = build(&raw, &al);
        let enumerated = xmltc_automata::enumerate::trees_up_to(&a, 3, 2000);
        for t in &enumerated {
            prop_assert!(a.accepts(t).unwrap());
        }
        // Spot-check completeness: the witness (if of depth ≤ 3) must be
        // among the enumerated trees.
        if let Some(w) = a.witness() {
            if w.depth() <= 3 {
                prop_assert!(enumerated.contains(&w));
            }
        }
    }
}
