//! Property tests for tree automata: all operations must respect language
//! semantics on randomly generated automata and trees.
//!
//! Driven by the workspace's deterministic [`SmallRng`]; each test runs a
//! fixed number of seeded cases and reports the failing case on panic.

use std::sync::Arc;
use xmltc_automata::{Nta, State};
use xmltc_trees::{generate, Alphabet, BinaryTree, SmallRng};

const CASES: usize = 128;

fn alpha() -> Arc<Alphabet> {
    Alphabet::ranked(&["x", "y"], &["f", "g"])
}

/// A random NTA over [`alpha`] with at most `max_states` states.
fn rand_nta(rng: &mut SmallRng, max_states: u32, al: &Arc<Alphabet>) -> Nta {
    let leaves = al.leaves();
    let bins = al.binaries();
    let n = 1 + rng.below(max_states as u64) as u32;
    let mut a = Nta::new(al, n);
    for _ in 0..rng.gen_range(0..6) {
        a.add_leaf(*rng.choose(&leaves), State(rng.below(n as u64) as u32));
    }
    for _ in 0..rng.gen_range(0..10) {
        a.add_node(
            *rng.choose(&bins),
            State(rng.below(n as u64) as u32),
            State(rng.below(n as u64) as u32),
            State(rng.below(n as u64) as u32),
        );
    }
    for _ in 0..rng.gen_range(0..n as usize + 1) {
        a.add_final(State(rng.below(n as u64) as u32));
    }
    a
}

fn rand_tree(rng: &mut SmallRng, al: &Arc<Alphabet>) -> BinaryTree {
    generate::random_binary(al, 4, 0.6, rng).unwrap()
}

#[test]
fn determinize_preserves_membership() {
    let al = alpha();
    let mut rng = SmallRng::seed_from_u64(0xA001);
    for case in 0..CASES {
        let a = rand_nta(&mut rng, 4, &al);
        let t = rand_tree(&mut rng, &al);
        let d = a.determinize();
        assert_eq!(
            d.accepts(&t).unwrap(),
            a.accepts(&t).unwrap(),
            "case {case} on {t}"
        );
    }
}

#[test]
fn complement_flips_membership() {
    let al = alpha();
    let mut rng = SmallRng::seed_from_u64(0xA002);
    for case in 0..CASES {
        let a = rand_nta(&mut rng, 4, &al);
        let t = rand_tree(&mut rng, &al);
        let c = a.complement();
        assert_eq!(
            c.accepts(&t).unwrap(),
            !a.accepts(&t).unwrap(),
            "case {case} on {t}"
        );
    }
}

#[test]
fn boolean_operation_laws() {
    let al = alpha();
    let mut rng = SmallRng::seed_from_u64(0xA003);
    for case in 0..CASES {
        let a = rand_nta(&mut rng, 3, &al);
        let b = rand_nta(&mut rng, 3, &al);
        let t = rand_tree(&mut rng, &al);
        let in_a = a.accepts(&t).unwrap();
        let in_b = b.accepts(&t).unwrap();
        assert_eq!(
            a.intersect(&b).accepts(&t).unwrap(),
            in_a && in_b,
            "case {case} ∩ on {t}"
        );
        assert_eq!(
            a.union(&b).accepts(&t).unwrap(),
            in_a || in_b,
            "case {case} ∪ on {t}"
        );
    }
}

#[test]
fn witness_is_accepted() {
    let al = alpha();
    let mut rng = SmallRng::seed_from_u64(0xA004);
    for case in 0..CASES {
        let a = rand_nta(&mut rng, 4, &al);
        match a.witness() {
            Some(w) => assert!(a.accepts(&w).unwrap(), "case {case}: witness {w}"),
            None => assert!(a.is_empty(), "case {case}: no witness but nonempty"),
        }
    }
}

#[test]
fn trim_preserves_language() {
    let al = alpha();
    let mut rng = SmallRng::seed_from_u64(0xA005);
    for case in 0..CASES {
        let a = rand_nta(&mut rng, 4, &al);
        let t = rand_tree(&mut rng, &al);
        let trimmed = a.trim();
        assert_eq!(
            trimmed.accepts(&t).unwrap(),
            a.accepts(&t).unwrap(),
            "case {case} on {t}"
        );
        assert!(trimmed.n_states() <= a.n_states());
    }
}

#[test]
fn tdta_conversion_preserves_language() {
    let al = alpha();
    let mut rng = SmallRng::seed_from_u64(0xA006);
    for case in 0..CASES {
        let a = rand_nta(&mut rng, 4, &al);
        let t = rand_tree(&mut rng, &al);
        let td = a.to_tdta();
        assert_eq!(
            td.accepts(&t).unwrap(),
            a.accepts(&t).unwrap(),
            "case {case} tdta on {t}"
        );
        // And back.
        let back = td.to_nta();
        assert_eq!(
            back.accepts(&t).unwrap(),
            a.accepts(&t).unwrap(),
            "case {case} back on {t}"
        );
    }
}

#[test]
fn minimize_preserves_language() {
    let al = alpha();
    let mut rng = SmallRng::seed_from_u64(0xA007);
    for case in 0..CASES {
        let a = rand_nta(&mut rng, 3, &al);
        let t = rand_tree(&mut rng, &al);
        let d = a.determinize();
        let m = d.minimize();
        assert_eq!(
            m.accepts(&t).unwrap(),
            a.accepts(&t).unwrap(),
            "case {case} on {t}"
        );
        assert!(m.n_states() <= d.complete().n_states());
    }
}

#[test]
fn inclusion_is_sound() {
    let al = alpha();
    let mut rng = SmallRng::seed_from_u64(0xA008);
    for case in 0..CASES {
        let a = rand_nta(&mut rng, 3, &al);
        let b = rand_nta(&mut rng, 3, &al);
        let t = rand_tree(&mut rng, &al);
        if a.subset_of(&b) && a.accepts(&t).unwrap() {
            assert!(
                b.accepts(&t).unwrap(),
                "case {case}: subset violated on {t}"
            );
        }
        if let Some(cex) = a.inclusion_counterexample(&b) {
            assert!(a.accepts(&cex).unwrap(), "case {case}: cex not in a");
            assert!(!b.accepts(&cex).unwrap(), "case {case}: cex in b");
        }
    }
}

#[test]
fn enumeration_sound_and_complete() {
    let al = alpha();
    let mut rng = SmallRng::seed_from_u64(0xA009);
    for case in 0..CASES {
        let a = rand_nta(&mut rng, 3, &al);
        let enumerated = xmltc_automata::enumerate::trees_up_to(&a, 3, 2000);
        for t in &enumerated {
            assert!(
                a.accepts(t).unwrap(),
                "case {case}: enumerated {t} rejected"
            );
        }
        // Spot-check completeness: the witness (if of depth ≤ 3) must be
        // among the enumerated trees.
        if let Some(w) = a.witness() {
            if w.depth() <= 3 {
                assert!(enumerated.contains(&w), "case {case}: witness {w} missing");
            }
        }
    }
}
