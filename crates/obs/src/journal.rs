//! The event journal: low-overhead, per-thread profiling event buffers.
//!
//! The journal is a process-global recording facility, orthogonal to the
//! thread-local [`with_report`](crate::with_report) collector: where the
//! collector aggregates per-phase *totals*, the journal preserves the
//! *timeline* — every span begin/end, instant marker, and counter sample,
//! stamped with a monotonic timestamp and the emitting thread.
//!
//! # Architecture
//!
//! * One global `ENABLED` flag (relaxed atomic). Every emission fast-paths
//!   on it, so a disabled journal costs one load per call site.
//! * Per-thread buffers: each thread appends [`Event`]s to its own
//!   thread-local `Vec` with **no locking** on the hot path. A shared
//!   `Mutex` sink is touched only when a buffer is handed over — at thread
//!   exit (TLS destructor) or at [`take`] for the calling thread.
//! * Timestamps are nanoseconds since the epoch established by [`enable`],
//!   from one shared [`Instant`], so cross-thread ordering is meaningful.
//! * [`take`] stops recording and returns the [`Journal`]: every flushed
//!   per-thread buffer, in registration order (main thread first in
//!   practice). Threads still running at [`take`] (none in this workspace:
//!   all workers are scoped and joined) flush into the *next* session.
//!
//! Counters come in two flavours: [`counter`] records an absolute sample,
//! while [`counter_add`] accumulates a per-thread running total (backing
//! [`add`](crate::add)) and samples that — so additive metrics appear in a
//! trace as monotone per-thread series.

use crate::event::{Event, EventKind};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
static SINK: Mutex<Vec<ThreadEvents>> = Mutex::new(Vec::new());

/// All events one thread recorded, in emission order.
#[derive(Clone, Debug)]
pub struct ThreadEvents {
    /// Dense journal-assigned thread id (registration order).
    pub tid: u64,
    /// The OS thread's name at registration time (empty when unnamed).
    /// Threads sharing a name (e.g. successive `walk-worker-0` crews)
    /// merge into one display track on export.
    pub name: String,
    /// The thread's events, in emission order.
    pub events: Vec<Event>,
}

/// A completed journal session: every per-thread event buffer.
#[derive(Clone, Debug, Default)]
pub struct Journal {
    /// Per-thread buffers, in flush order.
    pub threads: Vec<ThreadEvents>,
}

impl Journal {
    /// Total events across all threads.
    pub fn total_events(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.threads.iter().all(|t| t.events.is_empty())
    }
}

/// The thread-local side: an event buffer plus the running totals behind
/// [`counter_add`]. Flushes itself into the global sink when the thread
/// exits (TLS destructor) — so scoped worker crews hand their timelines
/// over automatically at join.
struct LocalBuf {
    tid: u64,
    name: String,
    events: Vec<Event>,
    totals: Vec<(&'static str, u64)>,
}

impl LocalBuf {
    fn register() -> LocalBuf {
        LocalBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            name: std::thread::current().name().unwrap_or("").to_string(),
            events: Vec::new(),
            totals: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let handed = ThreadEvents {
            tid: self.tid,
            name: self.name.clone(),
            events: std::mem::take(&mut self.events),
        };
        if let Ok(mut sink) = SINK.lock() {
            sink.push(handed);
        }
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<Option<LocalBuf>> = const { RefCell::new(None) };
}

/// True when the journal is recording. One relaxed atomic load — cheap
/// enough for hot loops to gate their event emission on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Starts recording. The first call fixes the process-wide epoch all
/// timestamps are measured from; re-enabling after [`take`] keeps that
/// epoch (timestamps stay monotone across sessions).
pub fn enable() {
    EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Stops recording and returns everything recorded since [`enable`]:
/// the calling thread's buffer plus every buffer flushed by exited
/// threads, in flush order.
pub fn take() -> Journal {
    ENABLED.store(false, Ordering::Relaxed);
    LOCAL.with(|l| {
        if let Some(buf) = l.borrow_mut().as_mut() {
            buf.flush();
            buf.totals.clear();
        }
    });
    let mut threads = match SINK.lock() {
        Ok(mut sink) => std::mem::take(&mut *sink),
        Err(_) => Vec::new(),
    };
    threads.sort_by_key(|t| t.tid);
    Journal { threads }
}

fn now_ns() -> u64 {
    EPOCH
        .get()
        .map(|e| e.elapsed().as_nanos().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

#[inline]
fn emit(name: &'static str, kind: EventKind) {
    if !enabled() {
        return;
    }
    let ts_ns = now_ns();
    LOCAL.with(|l| {
        let mut slot = l.borrow_mut();
        let buf = slot.get_or_insert_with(LocalBuf::register);
        buf.events.push(Event { name, ts_ns, kind });
    });
}

/// Records a span-begin event (paired with [`end`] by name, per thread).
#[inline]
pub fn begin(name: &'static str) {
    emit(name, EventKind::Begin);
}

/// Records a span-end event.
#[inline]
pub fn end(name: &'static str) {
    emit(name, EventKind::End);
}

/// Records a point-in-time marker.
#[inline]
pub fn instant(name: &'static str) {
    emit(name, EventKind::Instant);
}

/// Records an absolute counter sample.
#[inline]
pub fn counter(name: &'static str, value: u64) {
    emit(name, EventKind::Counter(value));
}

/// Adds `delta` to this thread's running total for `name` and samples the
/// new total. Backs [`add`](crate::add): additive metrics show up in the
/// trace as per-thread monotone counter series.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    let ts_ns = now_ns();
    LOCAL.with(|l| {
        let mut slot = l.borrow_mut();
        let buf = slot.get_or_insert_with(LocalBuf::register);
        let total = match buf.totals.iter_mut().find(|(k, _)| *k == name) {
            Some(slot) => {
                slot.1 = slot.1.saturating_add(delta);
                slot.1
            }
            None => {
                buf.totals.push((name, delta));
                delta
            }
        };
        buf.events.push(Event {
            name,
            ts_ns,
            kind: EventKind::Counter(total),
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // The journal is process-global state and the test harness runs other
    // tests (which may open spans) on sibling threads concurrently, so the
    // assertions here filter to this test's own event names instead of
    // asserting exact buffer counts.
    #[test]
    fn records_across_threads_and_disables() {
        begin("jtest.ignored"); // possibly disabled: must be safe either way
        enable();
        assert!(enabled());
        begin("jtest.phase");
        instant("jtest.marker");
        counter("jtest.gauge", 7);
        counter_add("jtest.total", 2);
        counter_add("jtest.total", 3);
        end("jtest.phase");
        std::thread::Builder::new()
            .name("jtest-helper".into())
            .spawn(|| {
                begin("jtest.worker");
                end("jtest.worker");
            })
            .unwrap()
            .join()
            .unwrap();
        let j = take();
        assert!(!enabled());
        let me = j
            .threads
            .iter()
            .find(|t| t.events.iter().any(|e| e.name == "jtest.phase"))
            .expect("calling thread buffer");
        let kinds: Vec<_> = me
            .events
            .iter()
            .filter(|e| e.name.starts_with("jtest."))
            .map(|e| (e.name, e.kind))
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("jtest.phase", EventKind::Begin),
                ("jtest.marker", EventKind::Instant),
                ("jtest.gauge", EventKind::Counter(7)),
                ("jtest.total", EventKind::Counter(2)),
                ("jtest.total", EventKind::Counter(5)),
                ("jtest.phase", EventKind::End),
            ]
        );
        // Timestamps are monotone within a thread.
        for w in me.events.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns);
        }
        let helper = j
            .threads
            .iter()
            .find(|t| t.name == "jtest-helper")
            .expect("worker buffer flushed at exit");
        assert_eq!(helper.events.len(), 2);

        // After take(), emission is off again: nothing new accumulates.
        begin("jtest.late");
        assert!(!take()
            .threads
            .iter()
            .any(|t| t.events.iter().any(|e| e.name == "jtest.late")));
    }
}
