//! Journal event types: the atoms of the deep-profiling layer.
//!
//! An [`Event`] is a tiny, fixed-size record — a `&'static str` name, a
//! monotonic timestamp relative to the journal epoch, and a [`EventKind`]
//! discriminant. Events are appended to per-thread buffers by
//! [`journal`](crate::journal) with no locking on the hot path, so the
//! representation is deliberately allocation-free: names must be static
//! (they are phase/metric identifiers, exactly like span names), and
//! counter samples carry their value inline.

/// What one journal event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (matches a later [`EventKind::End`] with the same
    /// name on the same thread).
    Begin,
    /// A span closed.
    End,
    /// A point-in-time marker (Chrome "instant" event).
    Instant,
    /// An absolute counter sample: the value of a named counter at this
    /// moment (Chrome "counter" event, one track per name).
    Counter(u64),
}

/// One journal event. Thread identity is implicit: events live in
/// per-thread buffers ([`ThreadEvents`](crate::journal::ThreadEvents)).
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Static event name (span/phase name, instant label, or counter name).
    pub name: &'static str,
    /// Nanoseconds since the journal epoch ([`journal::enable`](crate::journal::enable)).
    pub ts_ns: u64,
    /// Discriminant plus payload.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_small() {
        // The journal appends millions of these in pathological runs; keep
        // the record small (a fat name pointer, a timestamp, and a tagged
        // u64 payload) so buffers stay cache-friendly.
        assert!(std::mem::size_of::<Event>() <= 5 * std::mem::size_of::<usize>());
    }

    #[test]
    fn kinds_compare() {
        assert_eq!(EventKind::Counter(3), EventKind::Counter(3));
        assert_ne!(EventKind::Begin, EventKind::End);
    }
}
