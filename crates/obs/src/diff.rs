//! Benchmark regression diffing for `BENCH_typecheck.json` dumps.
//!
//! [`diff`] compares two parsed benchmark documents metric by metric
//! against a watch list: each [`Watch`] names a dotted path into the
//! document (e.g. `route_walk.sequential_wall_ms`), a direction (is lower
//! or higher better?), and a relative regression threshold. The resulting
//! [`DiffReport`] renders as an aligned human table or as JSON and knows
//! whether any watched metric regressed beyond its threshold — the
//! `xmltc bench-diff` subcommand turns that into its exit code.
//!
//! Thresholds are *relative*: a watch with `threshold: 0.25` tolerates up
//! to +25% on a lower-is-better metric. Deterministic counters (state
//! counts, pair counts) default to a zero threshold: any growth is a
//! regression worth a look. Wall-clock metrics default to generous
//! thresholds because CI timing is noisy — the CI job additionally runs in
//! advisory mode, where regressions are reported but do not fail the job.

use crate::json::Json;
use std::fmt::Write as _;

/// Which direction of change is a regression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Better {
    /// Lower values are better (wall times, state counts): a regression is
    /// an increase beyond the threshold.
    Lower,
    /// Higher values are better (memo hit rates): a regression is a
    /// decrease beyond the threshold.
    Higher,
}

/// One watched metric.
#[derive(Clone, Debug)]
pub struct Watch {
    /// Dotted path into the benchmark document.
    pub path: String,
    /// Direction of goodness.
    pub better: Better,
    /// Tolerated relative change in the bad direction (0.25 = 25%).
    pub threshold: f64,
}

impl Watch {
    /// A lower-is-better watch.
    pub fn lower(path: &str, threshold: f64) -> Watch {
        Watch {
            path: path.to_string(),
            better: Better::Lower,
            threshold,
        }
    }

    /// A higher-is-better watch.
    pub fn higher(path: &str, threshold: f64) -> Watch {
        Watch {
            path: path.to_string(),
            better: Better::Higher,
            threshold,
        }
    }
}

/// Relative slack for wall-clock watches: CI machines are noisy.
pub const WALL_TIME_THRESHOLD: f64 = 0.35;

/// Extra slack for the warm service round-trip: a pure cache hit runs in
/// microseconds, where scheduler jitter dominates the relative change.
pub const WARM_WALL_THRESHOLD: f64 = 3.0;

/// The default watch list for `BENCH_typecheck.json` (schema 6): wall
/// times with generous slack, deterministic counters with none, the memo
/// hit rate guarded from below, and the service cold/warm rows — the
/// cache-hit/miss counts are deterministic, so any drift is a regression.
/// Schema 6 adds the walk kernel's dense-representation counters and the
/// first `walk_scaling` instance (the quick-mode smoke instance, present
/// in every dump): its closure counters are zero-tolerance, its
/// sequential wall gets the usual slack. Curve points beyond `threads 1`
/// are not watched — their index differs between quick and full dumps.
pub fn default_watches() -> Vec<Watch> {
    vec![
        Watch::lower("comparison.eager_wall_ms", WALL_TIME_THRESHOLD),
        Watch::lower("comparison.lazy_wall_ms", WALL_TIME_THRESHOLD),
        Watch::lower("comparison.eager_emptiness_ms", WALL_TIME_THRESHOLD),
        Watch::lower("comparison.lazy_emptiness_ms", WALL_TIME_THRESHOLD),
        Watch::lower("comparison.eager_states", 0.0),
        Watch::lower("comparison.lazy_states_materialized", 0.0),
        Watch::lower("route_walk.sequential_wall_ms", WALL_TIME_THRESHOLD),
        Watch::lower("route_walk.parallel_wall_ms", WALL_TIME_THRESHOLD),
        Watch::lower("route_walk.pairs", 0.0),
        Watch::lower("route_walk.compositions", 0.0),
        Watch::lower("route_walk.memo_misses", 0.0),
        Watch::higher("route_walk.memo_hit_rate", 0.0),
        Watch::lower("route_walk.fixpoint_steps", 0.0),
        Watch::lower("route_walk.dbta_states", 0.0),
        Watch::lower("route_walk.kernel_words", 0.0),
        Watch::lower("route_walk.kernel_rows", 0.0),
        Watch::lower("route_walk.projections_interned", 0.0),
        Watch::lower("walk_scaling.instances.0.dbta_states", 0.0),
        Watch::lower("walk_scaling.instances.0.jobs", 0.0),
        Watch::lower("walk_scaling.instances.0.pairs", 0.0),
        Watch::lower(
            "walk_scaling.instances.0.curve.0.wall_ms",
            WALL_TIME_THRESHOLD,
        ),
        Watch::lower("service.cold_wall_ms", WALL_TIME_THRESHOLD),
        Watch::lower("service.warm_wall_ms", WARM_WALL_THRESHOLD),
        Watch::lower("service.cold_misses", 0.0),
        Watch::higher("service.warm_hits", 0.0),
        Watch::lower("service.warm_misses", 0.0),
    ]
}

/// The comparison of one watched metric.
#[derive(Clone, Debug)]
pub struct Delta {
    /// The watched path.
    pub path: String,
    /// Baseline value (`None` when absent — e.g. an older schema).
    pub base: Option<f64>,
    /// Candidate value (`None` when absent).
    pub cand: Option<f64>,
    /// Relative change in percent, when both sides are present and the
    /// baseline is nonzero.
    pub change_pct: Option<f64>,
    /// The watch's threshold, in percent.
    pub threshold_pct: f64,
    /// True when the change exceeds the threshold in the bad direction.
    pub regressed: bool,
}

/// A full diff: one [`Delta`] per watched metric.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Per-metric comparisons, in watch-list order.
    pub deltas: Vec<Delta>,
}

impl DiffReport {
    /// True when any watched metric regressed beyond its threshold.
    pub fn regressed(&self) -> bool {
        self.deltas.iter().any(|d| d.regressed)
    }

    /// The regressed metrics only.
    pub fn regressions(&self) -> impl Iterator<Item = &Delta> {
        self.deltas.iter().filter(|d| d.regressed)
    }

    /// Renders an aligned human table: metric, baseline, candidate,
    /// change, verdict.
    pub fn render_table(&self) -> String {
        let fmt_v = |v: Option<f64>| match v {
            None => "-".to_string(),
            Some(x) if x == x.trunc() && x.abs() < 1e15 => format!("{}", x as i64),
            Some(x) => format!("{x:.3}"),
        };
        let rows: Vec<[String; 5]> = self
            .deltas
            .iter()
            .map(|d| {
                let change = match d.change_pct {
                    None => "-".to_string(),
                    Some(p) => format!("{p:+.1}%"),
                };
                let verdict = if d.regressed {
                    format!("REGRESSED (>{:.0}%)", d.threshold_pct)
                } else if d.base.is_none() || d.cand.is_none() {
                    "missing".to_string()
                } else {
                    "ok".to_string()
                };
                [
                    d.path.clone(),
                    fmt_v(d.base),
                    fmt_v(d.cand),
                    change,
                    verdict,
                ]
            })
            .collect();
        let headers = ["metric", "baseline", "candidate", "change", "verdict"];
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<w0$}  {:>w1$}  {:>w2$}  {:>w3$}  {}",
            headers[0],
            headers[1],
            headers[2],
            headers[3],
            headers[4],
            w0 = widths[0],
            w1 = widths[1],
            w2 = widths[2],
            w3 = widths[3],
        );
        for row in &rows {
            let _ = writeln!(
                out,
                "{:<w0$}  {:>w1$}  {:>w2$}  {:>w3$}  {}",
                row[0],
                row[1],
                row[2],
                row[3],
                row[4],
                w0 = widths[0],
                w1 = widths[1],
                w2 = widths[2],
                w3 = widths[3],
            );
        }
        out
    }

    /// The JSON encoding (`xmltc.bench-diff/1`).
    pub fn to_json(&self) -> Json {
        let deltas = self
            .deltas
            .iter()
            .map(|d| {
                Json::obj(vec![
                    ("path", Json::Str(d.path.clone())),
                    ("base", d.base.map(Json::F64).unwrap_or(Json::Null)),
                    ("candidate", d.cand.map(Json::F64).unwrap_or(Json::Null)),
                    (
                        "change_pct",
                        d.change_pct.map(Json::F64).unwrap_or(Json::Null),
                    ),
                    ("threshold_pct", Json::F64(d.threshold_pct)),
                    ("regressed", Json::Bool(d.regressed)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::Str("xmltc.bench-diff/1".into())),
            ("regressed", Json::Bool(self.regressed())),
            ("deltas", Json::Array(deltas)),
        ])
    }
}

/// Compares `cand` against `base` over the watch list. A metric missing on
/// either side is reported but never counted as a regression (schemas
/// evolve; the diff tool must stay usable across one bump).
pub fn diff(base: &Json, cand: &Json, watches: &[Watch]) -> DiffReport {
    let deltas = watches
        .iter()
        .map(|w| {
            let b = base.at(&w.path).and_then(Json::as_f64);
            let c = cand.at(&w.path).and_then(Json::as_f64);
            let (change_pct, regressed) = match (b, c) {
                (Some(b), Some(c)) => {
                    let change = if b != 0.0 {
                        Some((c - b) / b.abs() * 100.0)
                    } else {
                        None
                    };
                    let bad = match w.better {
                        Better::Lower => {
                            if b != 0.0 {
                                c > b * (1.0 + w.threshold)
                            } else {
                                // From-zero growth has no relative size;
                                // regress only under a zero threshold.
                                c > 0.0 && w.threshold == 0.0
                            }
                        }
                        Better::Higher => {
                            if b != 0.0 {
                                c < b * (1.0 - w.threshold)
                            } else {
                                false // can't fall below a zero baseline
                            }
                        }
                    };
                    (change, bad)
                }
                _ => (None, false),
            };
            Delta {
                path: w.path.clone(),
                base: b,
                cand: c,
                change_pct,
                threshold_pct: w.threshold * 100.0,
                regressed,
            }
        })
        .collect();
    DiffReport { deltas }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(walk_ms: f64, pairs: u64, hit_rate: f64) -> Json {
        Json::obj(vec![(
            "route_walk",
            Json::obj(vec![
                ("sequential_wall_ms", Json::F64(walk_ms)),
                ("pairs", Json::U64(pairs)),
                ("memo_hit_rate", Json::F64(hit_rate)),
            ]),
        )])
    }

    fn watches() -> Vec<Watch> {
        vec![
            Watch::lower("route_walk.sequential_wall_ms", 0.25),
            Watch::lower("route_walk.pairs", 0.0),
            Watch::higher("route_walk.memo_hit_rate", 0.0),
        ]
    }

    #[test]
    fn within_threshold_is_ok() {
        let r = diff(
            &doc(100.0, 500, 0.5),
            &doc(110.0, 500, 0.5), // +10% wall, counters flat
            &watches(),
        );
        assert!(!r.regressed());
        assert_eq!(r.deltas.len(), 3);
        assert!((r.deltas[0].change_pct.unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn wall_time_regression_beyond_threshold() {
        let r = diff(&doc(100.0, 500, 0.5), &doc(130.0, 500, 0.5), &watches());
        assert!(r.regressed());
        let reg: Vec<_> = r.regressions().map(|d| d.path.as_str()).collect();
        assert_eq!(reg, vec!["route_walk.sequential_wall_ms"]);
    }

    #[test]
    fn counter_growth_is_zero_tolerance() {
        let r = diff(&doc(100.0, 500, 0.5), &doc(100.0, 501, 0.5), &watches());
        assert!(r.regressed());
        assert!(r.regressions().any(|d| d.path == "route_walk.pairs"));
        // Shrinking is fine.
        let r = diff(&doc(100.0, 500, 0.5), &doc(100.0, 499, 0.5), &watches());
        assert!(!r.regressed());
    }

    #[test]
    fn higher_is_better_direction() {
        let r = diff(&doc(100.0, 500, 0.5), &doc(100.0, 500, 0.4), &watches());
        assert!(r.regressed());
        assert!(r
            .regressions()
            .any(|d| d.path == "route_walk.memo_hit_rate"));
        let r = diff(&doc(100.0, 500, 0.5), &doc(100.0, 500, 0.9), &watches());
        assert!(!r.regressed());
        // A zero baseline rate cannot regress further down.
        let r = diff(&doc(100.0, 500, 0.0), &doc(100.0, 500, 0.0), &watches());
        assert!(!r.regressed());
    }

    #[test]
    fn missing_metric_reports_but_does_not_fail() {
        let empty = Json::obj(vec![]);
        let r = diff(&empty, &doc(100.0, 500, 0.5), &watches());
        assert!(!r.regressed());
        assert!(r.deltas.iter().all(|d| d.base.is_none()));
        assert!(r.render_table().contains("missing"));
    }

    #[test]
    fn table_and_json_shapes() {
        let r = diff(&doc(100.0, 500, 0.5), &doc(130.0, 501, 0.5), &watches());
        let t = r.render_table();
        assert!(t.contains("metric"));
        assert!(t.contains("REGRESSED"));
        assert!(t.contains("+30.0%"));
        let j = r.to_json().encode();
        assert!(j.contains(r#""schema":"xmltc.bench-diff/1""#));
        assert!(j.contains(r#""regressed":true"#));
    }
}
