//! # xmltc-obs
//!
//! Observability for the `xmltc` typechecking pipeline.
//!
//! The paper's decision procedure (Theorem 4.4) chains constructions with
//! non-elementary worst-case blowup: the Proposition 4.6 product, the MSO
//! compilation of Theorem 4.7 with its repeated subset constructions, and
//! the final emptiness check. This crate makes those state-space costs
//! visible without making any core crate heavier:
//!
//! * **Phase-scoped spans** ([`span`]) — RAII guards recording per-phase
//!   wall time into a thread-local collector, nested like a call tree.
//!   When `XMLTC_LOG` is set in the environment, span enter/exit lines are
//!   also printed to stderr.
//! * **Counters and gauges** ([`add`], [`record`], [`record_max`]) — state
//!   counts, transition counts, peak subset-construction frontiers, trim
//!   ratios — attached to the innermost open span.
//! * **[`PipelineReport`]** — the serializable per-run report assembled by
//!   [`with_report`], rendered as a human table ([`PipelineReport::render_table`])
//!   or as JSON ([`PipelineReport::to_json_string`]) with a stable schema
//!   (`xmltc.pipeline-report/1`).
//! * **A minimal JSON encoder and parser** ([`json`]) — the workspace is
//!   built offline and dependency-free, so serialization is hand-rolled
//!   here and shared by the CLI (`xmltc typecheck --json`) and the
//!   benchmark harness (`BENCH_typecheck.json`); the parser reads the
//!   dumps back for [`diff`].
//! * **An event [`journal`]** — a low-overhead, per-thread profiling
//!   timeline (span begin/end, instants, counter samples with monotonic
//!   timestamps) that the `span`/`record` API feeds transparently while
//!   enabled, exportable to the Chrome trace-event format ([`chrome`])
//!   for `chrome://tracing` / Perfetto (`xmltc ... --trace-out`).
//! * **A benchmark regression differ** ([`diff`]) — compares two
//!   `BENCH_typecheck.json` dumps against a threshold watch list
//!   (`xmltc bench-diff`).
//!
//! Instrumentation is free when nothing collects: every entry point
//! fast-paths on one thread-local flag plus one cached environment check,
//! so the pipeline's default behaviour (and its performance) is unchanged.
//!
//! ```
//! let (answer, report) = xmltc_obs::with_report(|| {
//!     let _s = xmltc_obs::span("phase.one");
//!     xmltc_obs::record("states", 42);
//!     6 * 7
//! });
//! assert_eq!(answer, 42);
//! assert_eq!(report.spans[0].name, "phase.one");
//! assert_eq!(report.spans[0].metric("states"), Some(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod collect;
pub mod diff;
pub mod event;
pub mod explain;
pub mod journal;
pub mod json;
pub mod report;

pub use collect::{add, is_active, record, record_max, span, with_report, Span};
pub use event::{Event, EventKind};
pub use explain::{
    DocumentRecord, ExplainReport, ReplayRecord, SpecAutomatonRecord, TraceStepRecord,
    TransformRecord, ViolationRecord,
};
pub use journal::{Journal, ThreadEvents};
pub use json::{Json, JsonParseError, ToJson};
pub use report::{PipelineReport, SpanRecord};
