//! The verdict-provenance report model behind `xmltc explain`.
//!
//! A "no" answer from the typechecker (Theorem 4.4) is only auditable if
//! it carries evidence: which valid input breaks the spec, what the
//! transducer actually does on it, which output it produces, and where
//! that output falls outside the output DTD. [`ExplainReport`] is the
//! serializable record of exactly that causal chain, assembled by the
//! pipeline layer and rendered here in two forms:
//!
//! * [`ExplainReport::to_json`] — the machine-readable document (schema
//!   `xmltc.explain/1`, golden-pinned) written by `xmltc typecheck
//!   --explain-out` and `xmltc explain --json`;
//! * [`ExplainReport::render_text`] — the human-readable report printed
//!   by `xmltc explain`.
//!
//! This crate is dependency-free by design, so the model holds only plain
//! strings and numbers: state *names*, tree *terms*, node *paths*,
//! production *text*. Higher layers (which own the trees, machines and
//! DTDs) populate it; nothing here can drift out of sync with the core
//! types because nothing here references them.

use crate::json::Json;

/// Version tag of the JSON encoding. Bump only with the golden tests.
pub const SCHEMA: &str = "xmltc.explain/1";

/// A document in the provenance chain (counterexample input or offending
/// output).
#[derive(Clone, Debug, PartialEq)]
pub struct DocumentRecord {
    /// Term syntax (`root(a, a)`).
    pub term: String,
    /// XML serialization, when the layer that built the report had one.
    pub xml: Option<String>,
}

/// One step of the pebble-transducer run on the counterexample input.
///
/// The configuration fields describe the machine *before* the action
/// fires; `out_path` is the output node under construction (`/`-separated
/// `L`/`R` segments, `/` = root).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceStepRecord {
    /// State name.
    pub state: String,
    /// Pebble level of the state (1-based).
    pub level: u64,
    /// Input symbol under the current pebble.
    pub input_symbol: String,
    /// Node paths of pebbles `1..=level` in the input tree.
    pub pebbles: Vec<String>,
    /// The rule that fired, rendered (`move -> q2 @ /L`, `output2 out ->
    /// (q1, q2)`, `output0 b`).
    pub action: String,
    /// Path of the output node this step contributes to.
    pub out_path: String,
}

/// The transducer run: per-node states, pebble positions and rules fired.
#[derive(Clone, Debug, PartialEq)]
pub struct TransformRecord {
    /// Pebble count of the machine.
    pub k: u64,
    /// State count of the machine.
    pub states: u64,
    /// Total steps of the replayed run (before truncation).
    pub total_steps: u64,
    /// True when `steps` was capped for report size.
    pub truncated: bool,
    /// The recorded steps.
    pub steps: Vec<TraceStepRecord>,
}

/// Where the offending output leaves the output DTD: the failing element,
/// its children word, the implicated production, and the exact path
/// through the content-model DFA.
#[derive(Clone, Debug, PartialEq)]
pub struct ViolationRecord {
    /// `"wrong-root"` or `"invalid-content"`.
    pub kind: String,
    /// 1-based child-index path of the failing element (`/` = root).
    pub path: String,
    /// Tag of the failing element.
    pub element: String,
    /// Its children word.
    pub word: Vec<String>,
    /// The implicated DTD production, rendered (`out := b.b+`).
    pub production: String,
    /// Index into `word` where acceptance became impossible
    /// (`word.len()` = the content ended too early).
    pub failed_at: u64,
    /// Content-DFA state sequence up to the failure point.
    pub dfa_states: Vec<u64>,
    /// Symbols that could have continued toward acceptance there.
    pub expected: Vec<String>,
}

/// The failure point in the compiled spec automaton `τ₂` over the encoded
/// output tree — the automaton-level twin of [`ViolationRecord`].
#[derive(Clone, Debug, PartialEq)]
pub struct SpecAutomatonRecord {
    /// State count of `τ₂`.
    pub states: u64,
    /// Encoded-tree node path where every bottom-up run dies.
    pub rejection_path: String,
    /// States still reachable at that node (0 unless the root merely
    /// misses the final set).
    pub reachable_there: u64,
}

/// The replay verifier's independent re-check of the counterexample.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayRecord {
    /// The input is accepted by the input type `τ₁`.
    pub input_in_type: bool,
    /// The offending output was re-derived by stepping the real
    /// transducer on the input.
    pub output_produced: bool,
    /// The offending output is rejected by the output type `τ₂`.
    pub output_rejected: bool,
    /// Steps of the replayed run.
    pub steps: u64,
}

impl ReplayRecord {
    /// True when every leg of the replay confirms the verdict.
    pub fn verified(&self) -> bool {
        self.input_in_type && self.output_produced && self.output_rejected
    }
}

/// The full provenance report for one typechecking verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct ExplainReport {
    /// `"ok"` or `"counterexample"`.
    pub verdict: String,
    /// Resolved Theorem 4.7 route (`"walk"` / `"mso"`).
    pub route: String,
    /// Resolved emptiness engine (`"lazy"` / `"eager"`).
    pub engine: String,
    /// The counterexample input document.
    pub input: Option<DocumentRecord>,
    /// The transducer run on it.
    pub transform: Option<TransformRecord>,
    /// The offending output document.
    pub output: Option<DocumentRecord>,
    /// The output-DTD validation failure.
    pub violation: Option<ViolationRecord>,
    /// The automaton-level failure point.
    pub spec_automaton: Option<SpecAutomatonRecord>,
    /// The replay verifier's verdict.
    pub replay: Option<ReplayRecord>,
}

impl ExplainReport {
    /// A report for a passing verdict (no sections).
    pub fn ok(route: &str, engine: &str) -> ExplainReport {
        ExplainReport {
            verdict: "ok".into(),
            route: route.into(),
            engine: engine.into(),
            input: None,
            transform: None,
            output: None,
            violation: None,
            spec_automaton: None,
            replay: None,
        }
    }

    /// True when the verdict is `"ok"`.
    pub fn is_ok(&self) -> bool {
        self.verdict == "ok"
    }

    /// The machine-readable encoding (schema [`SCHEMA`]). Key order is
    /// part of the contract; sections that were not populated are omitted.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema", Json::Str(SCHEMA.into())),
            ("verdict", Json::Str(self.verdict.clone())),
            ("route", Json::Str(self.route.clone())),
            ("engine", Json::Str(self.engine.clone())),
        ];
        if let Some(d) = &self.input {
            fields.push(("input", doc_json(d)));
        }
        if let Some(t) = &self.transform {
            fields.push((
                "transform",
                Json::obj(vec![
                    ("k", Json::U64(t.k)),
                    ("states", Json::U64(t.states)),
                    ("total_steps", Json::U64(t.total_steps)),
                    ("truncated", Json::Bool(t.truncated)),
                    (
                        "steps",
                        Json::Array(t.steps.iter().map(step_json).collect()),
                    ),
                ]),
            ));
        }
        if let Some(d) = &self.output {
            fields.push(("output", doc_json(d)));
        }
        if let Some(v) = &self.violation {
            fields.push((
                "violation",
                Json::obj(vec![
                    ("kind", Json::Str(v.kind.clone())),
                    ("path", Json::Str(v.path.clone())),
                    ("element", Json::Str(v.element.clone())),
                    ("word", str_array(&v.word)),
                    ("production", Json::Str(v.production.clone())),
                    ("failed_at", Json::U64(v.failed_at)),
                    (
                        "dfa_states",
                        Json::Array(v.dfa_states.iter().map(|&q| Json::U64(q)).collect()),
                    ),
                    ("expected", str_array(&v.expected)),
                ]),
            ));
        }
        if let Some(s) = &self.spec_automaton {
            fields.push((
                "spec_automaton",
                Json::obj(vec![
                    ("states", Json::U64(s.states)),
                    ("rejection_path", Json::Str(s.rejection_path.clone())),
                    ("reachable_there", Json::U64(s.reachable_there)),
                ]),
            ));
        }
        if let Some(r) = &self.replay {
            fields.push((
                "replay",
                Json::obj(vec![
                    ("input_in_type", Json::Bool(r.input_in_type)),
                    ("output_produced", Json::Bool(r.output_produced)),
                    ("output_rejected", Json::Bool(r.output_rejected)),
                    ("steps", Json::U64(r.steps)),
                    ("verified", Json::Bool(r.verified())),
                ]),
            ));
        }
        Json::obj(fields)
    }

    /// The pretty-printed JSON string the CLI writes.
    pub fn to_json_string(&self) -> String {
        self.to_json().encode_pretty()
    }

    /// The human-readable report printed by `xmltc explain`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let line = |out: &mut String, s: &str| {
            out.push_str(s);
            out.push('\n');
        };
        if self.is_ok() {
            line(
                &mut out,
                &format!(
                    "typechecks (route {}, engine {}): nothing to explain",
                    self.route, self.engine
                ),
            );
            return out;
        }
        line(
            &mut out,
            &format!(
                "DOES NOT typecheck (route {}, engine {})",
                self.route, self.engine
            ),
        );
        if let Some(d) = &self.input {
            line(&mut out, "");
            line(&mut out, "counterexample input");
            render_doc(&mut out, d);
        }
        if let Some(t) = &self.transform {
            line(&mut out, "");
            line(
                &mut out,
                &format!(
                    "transducer run (k = {}, {} states, {} steps{})",
                    t.k,
                    t.states,
                    t.total_steps,
                    if t.truncated { ", truncated" } else { "" }
                ),
            );
            for (i, s) in t.steps.iter().enumerate() {
                line(
                    &mut out,
                    &format!(
                        "  {:>3}. {} [{} @ {}] {} (out {})",
                        i + 1,
                        s.state,
                        s.input_symbol,
                        s.pebbles.join(","),
                        s.action,
                        s.out_path
                    ),
                );
            }
        }
        if let Some(d) = &self.output {
            line(&mut out, "");
            line(&mut out, "offending output");
            render_doc(&mut out, d);
        }
        if let Some(v) = &self.violation {
            line(&mut out, "");
            line(&mut out, "output-DTD violation");
            match v.kind.as_str() {
                "wrong-root" => {
                    line(
                        &mut out,
                        &format!(
                            "  root element is <{}>, the DTD requires <{}>",
                            v.element,
                            v.expected.join("|")
                        ),
                    );
                }
                _ => {
                    line(
                        &mut out,
                        &format!(
                            "  element <{}> at {}: children [{}] violate `{}`",
                            v.element,
                            v.path,
                            v.word.join(", "),
                            v.production
                        ),
                    );
                    let at = v.failed_at as usize;
                    let where_ = if at >= v.word.len() {
                        "content ends too early".to_string()
                    } else {
                        format!("child {} (<{}>) is not allowed here", at + 1, v.word[at])
                    };
                    line(
                        &mut out,
                        &format!("  content DFA {:?}: {}", v.dfa_states.as_slice(), where_),
                    );
                    line(
                        &mut out,
                        &format!(
                            "  acceptable next: {}",
                            if v.expected.is_empty() {
                                "(nothing — the content model is unsatisfiable from here)".into()
                            } else {
                                v.expected.join(", ")
                            }
                        ),
                    );
                }
            }
        }
        if let Some(s) = &self.spec_automaton {
            line(&mut out, "");
            line(
                &mut out,
                &format!(
                    "spec automaton ({} states): every run dies at encoded node {} ({} states reachable there)",
                    s.states, s.rejection_path, s.reachable_there
                ),
            );
        }
        if let Some(r) = &self.replay {
            line(&mut out, "");
            let mark = |b: bool| if b { "yes" } else { "NO" };
            line(
                &mut out,
                &format!(
                    "replay: input in tau1: {}; output re-derived by the transducer ({} steps): {}; output rejected by tau2: {}",
                    mark(r.input_in_type),
                    r.steps,
                    mark(r.output_produced),
                    mark(r.output_rejected)
                ),
            );
            line(
                &mut out,
                if r.verified() {
                    "replay verdict: counterexample independently confirmed"
                } else {
                    "replay verdict: NOT CONFIRMED — report this as a bug"
                },
            );
        }
        out
    }
}

fn doc_json(d: &DocumentRecord) -> Json {
    let mut fields = vec![("term", Json::Str(d.term.clone()))];
    if let Some(xml) = &d.xml {
        fields.push(("xml", Json::Str(xml.clone())));
    }
    Json::obj(fields)
}

fn step_json(s: &TraceStepRecord) -> Json {
    Json::obj(vec![
        ("state", Json::Str(s.state.clone())),
        ("level", Json::U64(s.level)),
        ("input_symbol", Json::Str(s.input_symbol.clone())),
        ("pebbles", str_array(&s.pebbles)),
        ("action", Json::Str(s.action.clone())),
        ("out_path", Json::Str(s.out_path.clone())),
    ])
}

fn str_array(v: &[String]) -> Json {
    Json::Array(v.iter().map(|s| Json::Str(s.clone())).collect())
}

fn render_doc(out: &mut String, d: &DocumentRecord) {
    out.push_str(&format!("  term: {}\n", d.term));
    if let Some(xml) = &d.xml {
        out.push_str(&format!("  xml:  {xml}\n"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_report_is_minimal() {
        let r = ExplainReport::ok("walk", "lazy");
        assert!(r.is_ok());
        let j = r.to_json();
        assert_eq!(j.at("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(j.at("verdict").and_then(Json::as_str), Some("ok"));
        assert!(j.at("input").is_none());
        assert!(r.render_text().contains("nothing to explain"));
    }

    #[test]
    fn replay_verified_requires_all_legs() {
        let mut r = ReplayRecord {
            input_in_type: true,
            output_produced: true,
            output_rejected: true,
            steps: 3,
        };
        assert!(r.verified());
        r.output_produced = false;
        assert!(!r.verified());
    }

    #[test]
    fn json_roundtrips_through_parser() {
        let report = ExplainReport {
            verdict: "counterexample".into(),
            route: "walk".into(),
            engine: "eager".into(),
            input: Some(DocumentRecord {
                term: "root(a)".into(),
                xml: Some("<root><a/></root>".into()),
            }),
            transform: None,
            output: None,
            violation: None,
            spec_automaton: None,
            replay: Some(ReplayRecord {
                input_in_type: true,
                output_produced: true,
                output_rejected: true,
                steps: 2,
            }),
        };
        let parsed = Json::parse(&report.to_json_string()).unwrap();
        assert_eq!(
            parsed.at("input.term").and_then(Json::as_str),
            Some("root(a)")
        );
        assert_eq!(parsed.at("replay.verified"), Some(&Json::Bool(true)));
    }
}
