//! A minimal JSON value type, encoder, and parser.
//!
//! The workspace builds offline with no external crates, so the pipeline
//! report, the CLI `--json` output and the benchmark dumps share this
//! hand-rolled encoder instead of `serde_json`. A small recursive-descent
//! parser ([`Json::parse`]) reads the same dialect back — `xmltc
//! bench-diff` uses it to compare benchmark dumps.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (non-finite values encode as `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a field of an object by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Follows a dotted path through nested objects, e.g.
    /// `route_walk.memo_hits`. A numeric segment indexes into an array, so
    /// `walk_scaling.instances.0.curve.0.wall_ms` reaches inside the
    /// scaling curves. Keys themselves must not contain dots.
    pub fn at(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for key in path.split('.') {
            cur = match cur {
                Json::Array(items) => items.get(key.parse::<usize>().ok()?)?,
                _ => cur.get(key)?,
            };
        }
        Some(cur)
    }

    /// The numeric value as `f64` (from any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            Json::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The unsigned integer value, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses a JSON document. Numbers without a fraction or exponent
    /// become [`Json::U64`]/[`Json::I64`] (falling back to [`Json::F64`]
    /// on overflow); everything else numeric becomes [`Json::F64`].
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Encodes compactly (no whitespace).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Encodes with two-space indentation.
    pub fn encode_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    // `{}` prints the shortest representation that round-trips.
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    escape_into(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !fields.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: a message plus the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonParseError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let n = u16::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp =
                                    0x10000 + ((hi as u32 - 0xD800) << 10) + (lo as u32 - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid utf-8");
        if !fractional {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<i64>() {
                    return Ok(Json::I64(-n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| JsonParseError {
                message: format!("invalid number `{text}`"),
                offset: start,
            })
    }
}

/// Conversion into [`Json`], implemented for the primitive types, tuples,
/// vectors and options that the experiment harness records.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

macro_rules! impl_tojson_uint {
    ($($t:ty),*) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::U64(*self as u64)
            }
        })*
    };
}
impl_tojson_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::I64(*self as i64)
            }
        })*
    };
}
impl_tojson_int!(i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(v) => v.to_json(),
        }
    }
}

macro_rules! impl_tojson_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Array(vec![$(self.$idx.to_json()),+])
            }
        }
    };
}
impl_tojson_tuple!(A: 0);
impl_tojson_tuple!(A: 0, B: 1);
impl_tojson_tuple!(A: 0, B: 1, C: 2);
impl_tojson_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tojson_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tojson_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tojson_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.encode(), "null");
        assert_eq!(true.to_json().encode(), "true");
        assert_eq!(42u32.to_json().encode(), "42");
        assert_eq!((-7i64).to_json().encode(), "-7");
        assert_eq!(1.5f64.to_json().encode(), "1.5");
        assert_eq!(f64::NAN.to_json().encode(), "null");
        assert_eq!("a\"b\\c\n".to_json().encode(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn composites() {
        let v = vec![(1u32, "x"), (2u32, "y")];
        assert_eq!(v.to_json().encode(), r#"[[1,"x"],[2,"y"]]"#);
        let o = Json::obj(vec![("a", Json::U64(1)), ("b", Json::Array(vec![]))]);
        assert_eq!(o.encode(), r#"{"a":1,"b":[]}"#);
        assert_eq!(None::<u32>.to_json().encode(), "null");
    }

    #[test]
    fn pretty_is_valid_and_indented() {
        let o = Json::obj(vec![("k", Json::Array(vec![Json::U64(1), Json::U64(2)]))]);
        let s = o.encode_pretty();
        assert!(s.contains("\n  \"k\": [\n    1,\n    2\n  ]"));
    }

    #[test]
    fn control_chars_escaped() {
        assert_eq!("\u{1}".to_json().encode(), "\"\\u0001\"");
    }

    #[test]
    fn every_control_char_escapes_and_round_trips() {
        for c in (0u32..0x20).map(|n| char::from_u32(n).unwrap()) {
            let v = Json::Str(c.to_string());
            let enc = v.encode();
            // The encoding never contains a raw control byte...
            assert!(
                enc.bytes().all(|b| b >= 0x20),
                "raw control byte in {enc:?}"
            );
            // ...and decodes back to the original character.
            assert_eq!(
                Json::parse(&enc).unwrap(),
                v,
                "round-trip of U+{:04X}",
                c as u32
            );
        }
    }

    #[test]
    fn non_bmp_escapes_round_trip() {
        // The parser reassembles surrogate pairs into one code point.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("\u{1F600}".into())
        );
        // The encoder emits raw UTF-8 for printable non-BMP characters;
        // either spelling must round-trip through the parser.
        let v = Json::Str("\u{1F600} \u{10FFFF} π".into());
        assert_eq!(Json::parse(&v.encode()).unwrap(), v);
        // Broken surrogates are rejected, with the offset pointing in.
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\ud83dx""#).is_err());
        assert!(Json::parse(r#""\ude00""#).is_err());
        assert!(Json::parse(r#""\ud83d\ud83d""#).is_err());
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(Json::F64(x).encode(), "null");
            assert_eq!(Json::F64(x).encode_pretty(), "null");
        }
        // Inside composites too: the document stays parseable.
        let doc = Json::obj(vec![("bad", Json::F64(f64::NAN)), ("ok", Json::F64(0.5))]);
        assert_eq!(doc.encode(), r#"{"bad":null,"ok":0.5}"#);
        assert_eq!(
            Json::parse(&doc.encode()).unwrap().at("bad"),
            Some(&Json::Null)
        );
    }

    #[test]
    fn parse_number_variants() {
        assert_eq!(Json::parse("42").unwrap(), Json::U64(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::I64(-7));
        assert_eq!(Json::parse("1.5").unwrap(), Json::F64(1.5));
        assert_eq!(Json::parse("2e3").unwrap(), Json::F64(2000.0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::U64(u64::MAX)
        );
        // Integer overflow falls back to floating point.
        assert!(matches!(
            Json::parse("18446744073709551616").unwrap(),
            Json::F64(_)
        ));
    }

    #[test]
    fn parse_rejects_garbage_with_offsets() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("nul").is_err());
        let e = Json::parse("[1] trailing").unwrap_err();
        assert!(e.message.contains("trailing"));
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("at byte 4"));
    }

    #[test]
    fn encode_parse_round_trips_nested_documents() {
        let doc = Json::obj(vec![
            ("schema", Json::Str("test/1".into())),
            (
                "route_walk",
                Json::obj(vec![
                    ("pairs", Json::U64(13467)),
                    ("rate", Json::F64(0.25)),
                    ("neg", Json::I64(-3)),
                ]),
            ),
            (
                "list",
                Json::Array(vec![Json::Null, Json::Bool(true), Json::Str("x\ny".into())]),
            ),
            ("empty_obj", Json::obj(vec![])),
            ("empty_arr", Json::Array(vec![])),
        ]);
        for enc in [doc.encode(), doc.encode_pretty()] {
            assert_eq!(Json::parse(&enc).unwrap(), doc);
        }
        // Dotted-path and typed accessors walk the parsed document.
        let back = Json::parse(&doc.encode()).unwrap();
        assert_eq!(back.at("route_walk.pairs").unwrap().as_u64(), Some(13467));
        assert_eq!(back.at("route_walk.rate").unwrap().as_f64(), Some(0.25));
        assert_eq!(back.at("route_walk.neg").unwrap().as_f64(), Some(-3.0));
        assert_eq!(back.at("schema").unwrap().as_str(), Some("test/1"));
        assert!(back.at("route_walk.missing").is_none());
        assert!(back.at("list.pairs").is_none());
    }
}
