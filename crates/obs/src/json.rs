//! A minimal JSON value type and encoder.
//!
//! The workspace builds offline with no external crates, so the pipeline
//! report, the CLI `--json` output and the benchmark dumps share this
//! hand-rolled encoder instead of `serde_json`. Only encoding is provided;
//! nothing in the workspace parses JSON.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (non-finite values encode as `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Encodes compactly (no whitespace).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Encodes with two-space indentation.
    pub fn encode_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    // `{}` prints the shortest representation that round-trips.
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    escape_into(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !fields.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into [`Json`], implemented for the primitive types, tuples,
/// vectors and options that the experiment harness records.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

macro_rules! impl_tojson_uint {
    ($($t:ty),*) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::U64(*self as u64)
            }
        })*
    };
}
impl_tojson_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::I64(*self as i64)
            }
        })*
    };
}
impl_tojson_int!(i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(v) => v.to_json(),
        }
    }
}

macro_rules! impl_tojson_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Array(vec![$(self.$idx.to_json()),+])
            }
        }
    };
}
impl_tojson_tuple!(A: 0);
impl_tojson_tuple!(A: 0, B: 1);
impl_tojson_tuple!(A: 0, B: 1, C: 2);
impl_tojson_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tojson_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tojson_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tojson_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.encode(), "null");
        assert_eq!(true.to_json().encode(), "true");
        assert_eq!(42u32.to_json().encode(), "42");
        assert_eq!((-7i64).to_json().encode(), "-7");
        assert_eq!(1.5f64.to_json().encode(), "1.5");
        assert_eq!(f64::NAN.to_json().encode(), "null");
        assert_eq!("a\"b\\c\n".to_json().encode(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn composites() {
        let v = vec![(1u32, "x"), (2u32, "y")];
        assert_eq!(v.to_json().encode(), r#"[[1,"x"],[2,"y"]]"#);
        let o = Json::obj(vec![("a", Json::U64(1)), ("b", Json::Array(vec![]))]);
        assert_eq!(o.encode(), r#"{"a":1,"b":[]}"#);
        assert_eq!(None::<u32>.to_json().encode(), "null");
    }

    #[test]
    fn pretty_is_valid_and_indented() {
        let o = Json::obj(vec![("k", Json::Array(vec![Json::U64(1), Json::U64(2)]))]);
        let s = o.encode_pretty();
        assert!(s.contains("\n  \"k\": [\n    1,\n    2\n  ]"));
    }

    #[test]
    fn control_chars_escaped() {
        assert_eq!("\u{1}".to_json().encode(), "\"\\u0001\"");
    }
}
