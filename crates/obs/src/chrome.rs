//! Chrome trace-event export for the event [`Journal`].
//!
//! Serializes a journal into the Chrome trace-event JSON format (the
//! "JSON Object Format": `{"traceEvents": [...]}`), loadable in
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev). Span
//! begin/end events become `B`/`E` duration events, instants become `i`,
//! and counter samples become `C` counter tracks.
//!
//! Display tracks follow thread *names*, not raw thread ids: successive
//! short-lived worker crews that reuse a name (the walk frontier spawns a
//! fresh `walk-worker-{i}` per generation) merge into one stable per-worker
//! track, which is what a human wants to look at. Unnamed threads keep a
//! track per journal tid.

use crate::journal::Journal;
use crate::json::Json;
use std::collections::BTreeMap;

/// The process id used for all events (the journal covers one process).
const PID: u64 = 1;

/// Converts a journal into Chrome trace-event JSON.
pub fn chrome_trace(journal: &Journal) -> Json {
    // Assign one display tid per thread name (first-appearance order);
    // unnamed threads get a unique synthetic name from their journal tid.
    let mut track_of: BTreeMap<String, u64> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    for t in &journal.threads {
        let key = if t.name.is_empty() {
            format!("thread-{}", t.tid)
        } else {
            t.name.clone()
        };
        if !track_of.contains_key(&key) {
            track_of.insert(key.clone(), order.len() as u64);
            order.push(key);
        }
    }

    let mut events: Vec<Json> = Vec::with_capacity(journal.total_events() + order.len());
    for (name, &tid) in order.iter().map(|n| (n, &track_of[n])) {
        events.push(Json::obj(vec![
            ("name", Json::Str("thread_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::U64(PID)),
            ("tid", Json::U64(tid)),
            ("args", Json::obj(vec![("name", Json::Str(name.clone()))])),
        ]));
    }

    // Merge buffers sharing a track, keeping timestamp order: buffers are
    // internally ordered, so collect (ts, buffer-order) sortable rows.
    let mut rows: Vec<(u64, usize, &'static str, crate::event::EventKind, u64)> = Vec::new();
    for (bi, t) in journal.threads.iter().enumerate() {
        let key = if t.name.is_empty() {
            format!("thread-{}", t.tid)
        } else {
            t.name.clone()
        };
        let tid = track_of[&key];
        for e in &t.events {
            rows.push((e.ts_ns, bi, e.name, e.kind, tid));
        }
    }
    rows.sort_by_key(|&(ts, bi, ..)| (ts, bi));

    use crate::event::EventKind;
    for (ts_ns, _, name, kind, tid) in rows {
        let ts = Json::F64(ts_ns as f64 / 1e3); // microseconds
        let base = |ph: &str| {
            vec![
                ("name", Json::Str(name.to_string())),
                ("cat", Json::Str("xmltc".into())),
                ("ph", Json::Str(ph.into())),
                ("pid", Json::U64(PID)),
                ("tid", Json::U64(tid)),
                ("ts", ts.clone()),
            ]
        };
        events.push(match kind {
            EventKind::Begin => Json::obj(base("B")),
            EventKind::End => Json::obj(base("E")),
            EventKind::Instant => {
                let mut f = base("i");
                f.push(("s", Json::Str("t".into())));
                Json::obj(f)
            }
            EventKind::Counter(v) => {
                let mut f = base("C");
                f.push(("args", Json::obj(vec![("value", Json::U64(v))])));
                Json::obj(f)
            }
        });
    }

    Json::obj(vec![
        ("traceEvents", Json::Array(events)),
        ("displayTimeUnit", Json::Str("ms".into())),
    ])
}

/// [`chrome_trace`], pretty-printed.
pub fn chrome_trace_string(journal: &Journal) -> String {
    chrome_trace(journal).encode_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};
    use crate::journal::ThreadEvents;

    fn ev(name: &'static str, ts_ns: u64, kind: EventKind) -> Event {
        Event { name, ts_ns, kind }
    }

    fn sample_journal() -> Journal {
        Journal {
            threads: vec![
                ThreadEvents {
                    tid: 0,
                    name: "main".into(),
                    events: vec![
                        ev("typecheck", 1_000, EventKind::Begin),
                        ev("walk.frontier_jobs", 1_500, EventKind::Counter(12)),
                        ev("typecheck", 9_000, EventKind::End),
                    ],
                },
                ThreadEvents {
                    tid: 1,
                    name: "walk-worker-0".into(),
                    events: vec![
                        ev("walk.job", 2_000, EventKind::Begin),
                        ev("walk.job", 3_000, EventKind::End),
                    ],
                },
                // A second crew generation reusing the worker name: must
                // share the first crew's display track.
                ThreadEvents {
                    tid: 2,
                    name: "walk-worker-0".into(),
                    events: vec![ev("walk.ready", 4_000, EventKind::Instant)],
                },
            ],
        }
    }

    #[test]
    fn exports_tracks_and_event_phases() {
        let j = chrome_trace(&sample_journal());
        let s = j.encode();
        assert!(s.starts_with(r#"{"traceEvents":["#));
        assert!(s.contains(r#""displayTimeUnit":"ms""#));
        // One thread_name metadata record per distinct name — not per tid.
        assert_eq!(s.matches(r#""thread_name""#).count(), 2);
        assert!(s.contains(r#""args":{"name":"main"}"#));
        assert!(s.contains(r#""args":{"name":"walk-worker-0"}"#));
        // Phases: B/E pair, a counter with its value, and the instant.
        assert!(s.contains(r#""ph":"B""#));
        assert!(s.contains(r#""ph":"E""#));
        assert!(s.contains(r#""ph":"C""#));
        assert!(s.contains(r#""args":{"value":12}"#));
        assert!(s.contains(r#""ph":"i""#));
        // Timestamps are microseconds: 1_000 ns -> 1 µs.
        assert!(s.contains(r#""ts":1,"#) || s.contains(r#""ts":1}"#));
    }

    #[test]
    fn same_name_threads_share_a_track() {
        let j = chrome_trace(&sample_journal());
        let Json::Object(fields) = &j else {
            panic!("object")
        };
        let Json::Array(events) = &fields[0].1 else {
            panic!("array")
        };
        // Every walk-worker event (from either crew) carries the same tid.
        let worker_tids: Vec<String> = events
            .iter()
            .map(|e| e.encode())
            .filter(|s| s.contains("walk.job") || s.contains("walk.ready"))
            .collect();
        assert_eq!(worker_tids.len(), 3);
        assert!(worker_tids.iter().all(|s| s.contains(r#""tid":1"#)));
    }
}
