//! The thread-local collector behind spans and metrics.
//!
//! Collection is scoped: [`with_report`] installs a collector for the
//! duration of a closure and returns the assembled [`PipelineReport`].
//! Outside such a scope every instrumentation call is a cheap no-op (one
//! thread-local flag read), except that span enter/exit logging to stderr
//! still happens when the `XMLTC_LOG` environment variable is set.
//!
//! Log lines are structured: every line carries a level and a monotonic
//! timestamp (seconds since the first log call in the process), e.g.
//! `[xmltc +0.001234s info] -> typecheck`. Setting `XMLTC_LOG_FORMAT=json`
//! switches stderr to one JSON object per line (encoded with
//! [`crate::json::Json`]), machine-readable by the same parser that reads
//! the pipeline reports.

use crate::json::Json;
use crate::report::{PipelineReport, SpanRecord};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Cached state for the `XMLTC_LOG` / `XMLTC_LOG_FORMAT` environment
/// checks: 0 = not yet read, 1 = logging off, 2 = text lines, 3 = JSON
/// lines.
static LOG_STATE: AtomicU8 = AtomicU8::new(0);

/// The process-wide log epoch: timestamps on log lines are seconds since
/// the first log call, so a run's lines are trivially ordered and
/// relative costs are visible without wall-clock noise.
static LOG_EPOCH: OnceLock<Instant> = OnceLock::new();

#[derive(Clone, Copy, PartialEq, Eq)]
enum LogMode {
    Off,
    Text,
    Json,
}

fn log_mode() -> LogMode {
    match LOG_STATE.load(Ordering::Relaxed) {
        1 => LogMode::Off,
        2 => LogMode::Text,
        3 => LogMode::Json,
        _ => {
            let on = match std::env::var("XMLTC_LOG") {
                Ok(v) => !v.is_empty() && v != "0" && v != "off",
                Err(_) => false,
            };
            let mode = if !on {
                LogMode::Off
            } else if std::env::var("XMLTC_LOG_FORMAT").as_deref() == Ok("json") {
                LogMode::Json
            } else {
                LogMode::Text
            };
            let cache = match mode {
                LogMode::Off => 1,
                LogMode::Text => 2,
                LogMode::Json => 3,
            };
            LOG_STATE.store(cache, Ordering::Relaxed);
            mode
        }
    }
}

fn logging_enabled() -> bool {
    log_mode() != LogMode::Off
}

/// Seconds elapsed since the first log line of the process.
fn log_ts() -> f64 {
    LOG_EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// Emits one span enter/exit line to stderr in the active format.
fn log_span_line(event: &str, name: &str, depth: usize, wall_ms: Option<f64>) {
    match log_mode() {
        LogMode::Off => {}
        LogMode::Text => {
            let arrow = if event == "enter" { "->" } else { "<-" };
            let tail = match wall_ms {
                Some(ms) => format!(" ({ms:.3} ms)"),
                None => String::new(),
            };
            eprintln!(
                "[xmltc +{:.6}s info] {:indent$}{arrow} {name}{tail}",
                log_ts(),
                "",
                indent = depth * 2
            );
        }
        LogMode::Json => {
            let mut fields = vec![
                ("ts", Json::F64(log_ts())),
                ("level", Json::Str("info".into())),
                ("event", Json::Str(event.into())),
                ("span", Json::Str(name.into())),
                ("depth", Json::U64(depth as u64)),
            ];
            if let Some(ms) = wall_ms {
                fields.push(("wall_ms", Json::F64(ms)));
            }
            eprintln!("{}", Json::obj(fields).encode());
        }
    }
}

struct Collector {
    spans: Vec<SpanRecord>,
    /// Indices into `spans` of the currently open spans, innermost last.
    open: Vec<usize>,
    /// Metrics recorded outside any span.
    root_metrics: Vec<(&'static str, u64)>,
}

impl Collector {
    fn new() -> Collector {
        Collector {
            spans: Vec::new(),
            open: Vec::new(),
            root_metrics: Vec::new(),
        }
    }

    fn metrics_here(&mut self) -> &mut Vec<(&'static str, u64)> {
        match self.open.last() {
            Some(&i) => &mut self.spans[i].metrics,
            None => &mut self.root_metrics,
        }
    }
}

thread_local! {
    /// Fast-path flag mirroring `COLLECTOR.is_some()`.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// True when a [`with_report`] scope is collecting on this thread.
pub fn is_active() -> bool {
    ACTIVE.with(Cell::get)
}

/// Runs `f` with a fresh collector installed, returning its result and the
/// [`PipelineReport`] assembled from the spans and metrics it recorded.
/// Scopes may nest; the inner scope shadows the outer one for its duration.
pub fn with_report<R>(f: impl FnOnce() -> R) -> (R, PipelineReport) {
    let previous = COLLECTOR.with(|c| c.borrow_mut().replace(Collector::new()));
    ACTIVE.with(|a| a.set(true));
    let result = f();
    let collector = COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        let done = slot.take().expect("collector removed inside with_report");
        let restored = previous.is_some();
        *slot = previous;
        ACTIVE.with(|a| a.set(restored));
        done
    });
    let report = PipelineReport {
        spans: collector.spans,
        metrics: collector
            .root_metrics
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    };
    (result, report)
}

/// An RAII guard for one pipeline phase. Created by [`span`]; records the
/// phase's wall time when dropped.
pub struct Span {
    /// Index of this span's record, when a collector is active.
    rec: Option<usize>,
    /// Set when either collecting or logging (timing is needed).
    start: Option<Instant>,
    name: &'static str,
    log: bool,
    /// Emit a journal end event on drop.
    jour: bool,
}

/// Opens a phase span. The returned guard closes the span (recording wall
/// time) when dropped. Nesting is reflected in the report's `depth` field.
/// When the [`journal`](crate::journal) is recording, the open and the
/// close are also journaled as begin/end events on the calling thread.
#[inline]
pub fn span(name: &'static str) -> Span {
    let log = logging_enabled();
    let jour = crate::journal::enabled();
    if jour {
        crate::journal::begin(name);
    }
    if !is_active() && !log {
        return Span {
            rec: None,
            start: None,
            name,
            log: false,
            jour,
        };
    }
    let rec = if is_active() {
        COLLECTOR.with(|c| {
            let mut slot = c.borrow_mut();
            let col = slot.as_mut().expect("ACTIVE implies collector");
            let depth = col.open.len() as u16;
            let idx = col.spans.len();
            col.spans.push(SpanRecord {
                name: name.to_string(),
                depth,
                wall_ns: 0,
                metrics: Vec::new(),
            });
            col.open.push(idx);
            Some(idx)
        })
    } else {
        None
    };
    if log {
        let depth = COLLECTOR.with(|c| {
            c.borrow()
                .as_ref()
                .map(|col| col.open.len().saturating_sub(1))
                .unwrap_or(0)
        });
        log_span_line("enter", name, depth, None);
    }
    Span {
        rec,
        start: Some(Instant::now()),
        name,
        log,
        jour,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.jour {
            crate::journal::end(self.name);
        }
        let Some(start) = self.start else { return };
        let wall_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        if let Some(idx) = self.rec {
            COLLECTOR.with(|c| {
                if let Some(col) = c.borrow_mut().as_mut() {
                    if let Some(&top) = col.open.last() {
                        if top == idx {
                            col.open.pop();
                        }
                    }
                    if let Some(r) = col.spans.get_mut(idx) {
                        r.wall_ns = wall_ns;
                    }
                }
            });
        }
        if self.log {
            let depth =
                COLLECTOR.with(|c| c.borrow().as_ref().map(|col| col.open.len()).unwrap_or(0));
            log_span_line("exit", self.name, depth, Some(wall_ns as f64 / 1e6));
        }
    }
}

fn with_metrics(f: impl FnOnce(&mut Vec<(&'static str, u64)>)) {
    if !is_active() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            f(col.metrics_here());
        }
    });
}

/// Sets metric `name` on the innermost open span (last write wins). Also
/// journaled as a counter sample when the journal is recording.
#[inline]
pub fn record(name: &'static str, value: u64) {
    crate::journal::counter(name, value);
    with_metrics(|m| match m.iter_mut().find(|(k, _)| *k == name) {
        Some(slot) => slot.1 = value,
        None => m.push((name, value)),
    });
}

/// Raises metric `name` to at least `value` (a high-water gauge). The
/// journal, when recording, receives the raw sample — the time series
/// keeps the dips the high-water aggregate flattens.
#[inline]
pub fn record_max(name: &'static str, value: u64) {
    crate::journal::counter(name, value);
    with_metrics(|m| match m.iter_mut().find(|(k, _)| *k == name) {
        Some(slot) => slot.1 = slot.1.max(value),
        None => m.push((name, value)),
    });
}

/// Adds `delta` to counter `name`. The journal, when recording, samples
/// the calling thread's running total after the addition.
#[inline]
pub fn add(name: &'static str, delta: u64) {
    crate::journal::counter_add(name, delta);
    with_metrics(|m| match m.iter_mut().find(|(k, _)| *k == name) {
        Some(slot) => slot.1 = slot.1.saturating_add(delta),
        None => m.push((name, delta)),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_calls_are_noops() {
        assert!(!is_active());
        let _s = span("nothing");
        record("x", 1);
        add("x", 1);
        record_max("x", 1);
    }

    #[test]
    fn collects_nested_spans_and_metrics() {
        let ((), report) = with_report(|| {
            record("outside", 7);
            let _outer = span("outer");
            record("a", 1);
            {
                let _inner = span("inner");
                record("b", 2);
                record_max("b", 5);
                record_max("b", 3);
                add("c", 1);
                add("c", 2);
            }
            record("a", 10); // overwrite
        });
        assert_eq!(report.metrics, vec![("outside".to_string(), 7)]);
        assert_eq!(report.spans.len(), 2);
        let outer = &report.spans[0];
        assert_eq!((outer.name.as_str(), outer.depth), ("outer", 0));
        assert_eq!(outer.metric("a"), Some(10));
        let inner = &report.spans[1];
        assert_eq!((inner.name.as_str(), inner.depth), ("inner", 1));
        assert_eq!(inner.metric("b"), Some(5));
        assert_eq!(inner.metric("c"), Some(3));
        assert!(inner.wall_ns <= outer.wall_ns);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let ((), outer_report) = with_report(|| {
            record("outer", 1);
            let ((), inner_report) = with_report(|| {
                record("inner", 2);
            });
            assert_eq!(inner_report.metrics, vec![("inner".to_string(), 2)]);
            assert!(is_active());
            record("outer2", 3);
        });
        assert!(!is_active());
        assert_eq!(
            outer_report.metrics,
            vec![("outer".to_string(), 1), ("outer2".to_string(), 3)]
        );
    }
}
