//! The serializable per-run pipeline report.

use crate::json::Json;
use std::fmt::Write as _;

/// Schema identifier emitted in the JSON encoding; bump on breaking change.
pub const SCHEMA: &str = "xmltc.pipeline-report/1";

/// One completed phase span: name, nesting depth, wall time, and the
/// metrics recorded while it was the innermost open span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Phase name, e.g. `typecheck.violation` or `route.mso`.
    pub name: String,
    /// Nesting depth at open time (0 = top level).
    pub depth: u16,
    /// Wall-clock duration in nanoseconds.
    pub wall_ns: u64,
    /// Metrics attached to this span, in recording order.
    pub metrics: Vec<(&'static str, u64)>,
}

impl SpanRecord {
    /// Wall-clock duration in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.wall_ns as f64 / 1e6
    }

    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<u64> {
        self.metrics
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
    }
}

/// A full per-run report: every phase span in start order plus any metrics
/// recorded outside a span.
#[derive(Clone, Debug, Default)]
pub struct PipelineReport {
    /// Phase spans in start order.
    pub spans: Vec<SpanRecord>,
    /// Metrics recorded outside any span.
    pub metrics: Vec<(String, u64)>,
}

impl PipelineReport {
    /// The first span with the given name, if any.
    pub fn span(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Shortcut: metric `key` of the first span named `span`.
    pub fn span_metric(&self, span: &str, key: &str) -> Option<u64> {
        self.span(span).and_then(|s| s.metric(key))
    }

    /// Total wall time of top-level (depth 0) spans, in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.depth == 0)
            .map(SpanRecord::wall_ms)
            .sum()
    }

    /// The JSON encoding (schema [`SCHEMA`]).
    pub fn to_json(&self) -> Json {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("name", Json::Str(s.name.clone())),
                    ("depth", Json::U64(s.depth as u64)),
                    ("wall_ms", Json::F64(s.wall_ms())),
                    (
                        "metrics",
                        Json::Object(
                            s.metrics
                                .iter()
                                .map(|&(k, v)| (k.to_string(), Json::U64(v)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::Str(SCHEMA.to_string())),
            ("spans", Json::Array(spans)),
            (
                "metrics",
                Json::Object(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::U64(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// The pretty-printed JSON encoding.
    pub fn to_json_string(&self) -> String {
        self.to_json().encode_pretty()
    }

    /// Renders the report as an aligned human-readable table: one row per
    /// phase (indented by nesting depth), wall time, and metrics.
    pub fn render_table(&self) -> String {
        let mut rows: Vec<(String, String, String)> = Vec::new();
        for s in &self.spans {
            let name = format!("{:indent$}{}", "", s.name, indent = s.depth as usize * 2);
            let wall = format!("{:.3}", s.wall_ms());
            let metrics = s
                .metrics
                .iter()
                .map(|&(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            rows.push((name, wall, metrics));
        }
        let name_w = rows
            .iter()
            .map(|(n, _, _)| n.len())
            .chain(["phase".len()])
            .max()
            .unwrap_or(5);
        let wall_w = rows
            .iter()
            .map(|(_, w, _)| w.len())
            .chain(["wall_ms".len()])
            .max()
            .unwrap_or(7);
        let mut out = String::new();
        let _ = writeln!(out, "{:<name_w$}  {:>wall_w$}  metrics", "phase", "wall_ms");
        let _ = writeln!(
            out,
            "{}  {}  {}",
            "-".repeat(name_w),
            "-".repeat(wall_w),
            "-".repeat(7)
        );
        for (name, wall, metrics) in &rows {
            let _ = writeln!(out, "{name:<name_w$}  {wall:>wall_w$}  {metrics}");
        }
        if !self.metrics.is_empty() {
            let extra = self
                .metrics
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(out, "{:<name_w$}  {:>wall_w$}  {extra}", "(run)", "");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PipelineReport {
        PipelineReport {
            spans: vec![
                SpanRecord {
                    name: "outer".into(),
                    depth: 0,
                    wall_ns: 2_500_000,
                    metrics: vec![("states", 12)],
                },
                SpanRecord {
                    name: "inner".into(),
                    depth: 1,
                    wall_ns: 1_000_000,
                    metrics: vec![],
                },
            ],
            metrics: vec![("verdict_ok".to_string(), 1)],
        }
    }

    #[test]
    fn json_shape() {
        let j = sample().to_json().encode();
        assert!(j.contains(r#""schema":"xmltc.pipeline-report/1""#));
        assert!(j.contains(r#""name":"outer""#));
        assert!(j.contains(r#""states":12"#));
        assert!(j.contains(r#""verdict_ok":1"#));
        assert!(j.contains(r#""wall_ms":2.5"#));
    }

    #[test]
    fn table_contains_rows() {
        let t = sample().render_table();
        assert!(t.contains("outer"));
        assert!(t.contains("  inner"));
        assert!(t.contains("states=12"));
        assert!(t.contains("verdict_ok=1"));
    }

    #[test]
    fn lookups() {
        let r = sample();
        assert_eq!(r.span_metric("outer", "states"), Some(12));
        assert!(r.span("missing").is_none());
        assert!((r.total_ms() - 2.5).abs() < 1e-9);
    }
}
