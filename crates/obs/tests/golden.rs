//! Golden-file tests: byte-for-byte pins on the two machine-readable
//! encodings downstream tools consume.
//!
//! * The [`PipelineReport`] JSON (`xmltc typecheck --json`, the `engines`
//!   section of `BENCH_typecheck.json`) — key order and schema string are
//!   part of the contract; `bench-diff` and external scripts address
//!   fields by dotted path.
//! * The Chrome trace-event export (`--trace-out`) — `chrome://tracing`
//!   and Perfetto are the consumers; phase letters, metadata records, and
//!   the `traceEvents`/`displayTimeUnit` envelope must not drift.
//!
//! Both fixtures are hand-built (no timers), so the encodings are fully
//! deterministic and compared against inline golden strings. If one of
//! these tests fails, either restore the old shape or knowingly bump the
//! schema (`xmltc.pipeline-report/N`) and update the golden text.

use xmltc_obs::chrome::chrome_trace;
use xmltc_obs::journal::{Journal, ThreadEvents};
use xmltc_obs::{
    DocumentRecord, Event, EventKind, ExplainReport, PipelineReport, ReplayRecord, SpanRecord,
    SpecAutomatonRecord, TraceStepRecord, TransformRecord, ViolationRecord,
};

#[test]
fn pipeline_report_json_is_pinned() {
    let report = PipelineReport {
        spans: vec![
            SpanRecord {
                name: "typecheck".into(),
                depth: 0,
                wall_ns: 2_500_000,
                metrics: vec![("verdict.ok", 1)],
            },
            SpanRecord {
                name: "route.walk".into(),
                depth: 1,
                wall_ns: 1_250_000,
                metrics: vec![("walk.pairs", 13), ("walk.memo_hits", 4)],
            },
        ],
        metrics: vec![("peak_rss_kb".into(), 2048)],
    };
    let golden = concat!(
        r#"{"schema":"xmltc.pipeline-report/1","#,
        r#""spans":["#,
        r#"{"name":"typecheck","depth":0,"wall_ms":2.5,"metrics":{"verdict.ok":1}},"#,
        r#"{"name":"route.walk","depth":1,"wall_ms":1.25,"metrics":{"walk.pairs":13,"walk.memo_hits":4}}"#,
        r#"],"#,
        r#""metrics":{"peak_rss_kb":2048}}"#,
    );
    assert_eq!(report.to_json().encode(), golden);
    // The pretty form is what the CLI prints; it must parse back to the
    // same document the compact form does.
    assert_eq!(
        xmltc_obs::Json::parse(&report.to_json_string()).unwrap(),
        xmltc_obs::Json::parse(golden).unwrap()
    );
}

/// The explain-report JSON (`xmltc explain --json`, `--explain-out`) is
/// the third pinned encoding: schema string, key order, and the omission
/// of unpopulated sections are contract. The fixture exercises every
/// section once.
#[test]
fn explain_report_json_is_pinned() {
    let report = ExplainReport {
        verdict: "counterexample".into(),
        route: "walk".into(),
        engine: "eager".into(),
        input: Some(DocumentRecord {
            term: "root(a)".into(),
            xml: Some("<root><a/></root>".into()),
        }),
        transform: Some(TransformRecord {
            k: 1,
            states: 11,
            total_steps: 2,
            truncated: false,
            steps: vec![TraceStepRecord {
                state: "dispatch".into(),
                level: 1,
                input_symbol: "root".into(),
                pebbles: vec!["/".into()],
                action: "move -> el0 @ /".into(),
                out_path: "/".into(),
            }],
        }),
        output: Some(DocumentRecord {
            term: "result(b)".into(),
            xml: None,
        }),
        violation: Some(ViolationRecord {
            kind: "invalid-content".into(),
            path: "/".into(),
            element: "result".into(),
            word: vec!["b".into()],
            production: "result := (b.b)*".into(),
            failed_at: 1,
            dfa_states: vec![0, 1],
            expected: vec!["b".into()],
        }),
        spec_automaton: Some(SpecAutomatonRecord {
            states: 7,
            rejection_path: "/".into(),
            reachable_there: 0,
        }),
        replay: Some(ReplayRecord {
            input_in_type: true,
            output_produced: true,
            output_rejected: true,
            steps: 2,
        }),
    };
    let golden = concat!(
        r#"{"schema":"xmltc.explain/1","verdict":"counterexample","route":"walk","engine":"eager","#,
        r#""input":{"term":"root(a)","xml":"<root><a/></root>"},"#,
        r#""transform":{"k":1,"states":11,"total_steps":2,"truncated":false,"steps":["#,
        r#"{"state":"dispatch","level":1,"input_symbol":"root","pebbles":["/"],"#,
        r#""action":"move -> el0 @ /","out_path":"/"}]},"#,
        r#""output":{"term":"result(b)"},"#,
        r#""violation":{"kind":"invalid-content","path":"/","element":"result","word":["b"],"#,
        r#""production":"result := (b.b)*","failed_at":1,"dfa_states":[0,1],"expected":["b"]},"#,
        r#""spec_automaton":{"states":7,"rejection_path":"/","reachable_there":0},"#,
        r#""replay":{"input_in_type":true,"output_produced":true,"output_rejected":true,"#,
        r#""steps":2,"verified":true}}"#,
    );
    assert_eq!(report.to_json().encode(), golden);
    // The pretty form (what the CLI writes) parses back identically.
    assert_eq!(
        xmltc_obs::Json::parse(&report.to_json_string()).unwrap(),
        xmltc_obs::Json::parse(golden).unwrap()
    );
    // A passing report is just the envelope.
    assert_eq!(
        ExplainReport::ok("mso", "eager").to_json().encode(),
        r#"{"schema":"xmltc.explain/1","verdict":"ok","route":"mso","engine":"eager"}"#
    );
}

#[test]
fn chrome_trace_json_is_pinned() {
    let ev = |name: &'static str, ts_ns: u64, kind| Event { name, ts_ns, kind };
    let journal = Journal {
        threads: vec![
            ThreadEvents {
                tid: 0,
                name: "main".into(),
                events: vec![
                    ev("typecheck", 1_000, EventKind::Begin),
                    ev("walk.round", 2_000, EventKind::Instant),
                    ev("walk.frontier_jobs", 2_500, EventKind::Counter(12)),
                    ev("typecheck", 9_000, EventKind::End),
                ],
            },
            // Two worker crews reusing one thread name: they must land on
            // a single display track (tid 1), interleaved by timestamp.
            ThreadEvents {
                tid: 1,
                name: "walk-worker-0".into(),
                events: vec![
                    ev("walk.job", 3_000, EventKind::Begin),
                    ev("walk.job", 4_000, EventKind::End),
                ],
            },
            ThreadEvents {
                tid: 2,
                name: "walk-worker-0".into(),
                events: vec![ev("walk.job", 5_000, EventKind::Begin)],
            },
        ],
    };
    let golden = concat!(
        r#"{"traceEvents":["#,
        r#"{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"main"}},"#,
        r#"{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"walk-worker-0"}},"#,
        r#"{"name":"typecheck","cat":"xmltc","ph":"B","pid":1,"tid":0,"ts":1},"#,
        r#"{"name":"walk.round","cat":"xmltc","ph":"i","pid":1,"tid":0,"ts":2,"s":"t"},"#,
        r#"{"name":"walk.frontier_jobs","cat":"xmltc","ph":"C","pid":1,"tid":0,"ts":2.5,"args":{"value":12}},"#,
        r#"{"name":"walk.job","cat":"xmltc","ph":"B","pid":1,"tid":1,"ts":3},"#,
        r#"{"name":"walk.job","cat":"xmltc","ph":"E","pid":1,"tid":1,"ts":4},"#,
        r#"{"name":"walk.job","cat":"xmltc","ph":"B","pid":1,"tid":1,"ts":5},"#,
        r#"{"name":"typecheck","cat":"xmltc","ph":"E","pid":1,"tid":0,"ts":9}"#,
        r#"],"displayTimeUnit":"ms"}"#,
    );
    assert_eq!(chrome_trace(&journal).encode(), golden);
}
