//! # xmltc-transducer-dsl
//!
//! The declarative layer over [`xmltc_core`]'s pebble-machine builders:
//! transducers and automata as **plain data** — named states, a rendered
//! transition table, precise error values — plus the machinery that plain
//! data makes possible:
//!
//! * [`spec`] — [`MachineSpec`]: the typed builder API. States, rules and
//!   symbols reference each other by name; nothing resolves until
//!   [`MachineSpec::build_transducer`] / [`MachineSpec::build_automaton`],
//!   and every malformation (stack-discipline violations, bad pebble
//!   lift order, unreachable states, arity mismatches, …) maps to a
//!   dedicated [`BuilderError`] variant instead of a panic or a stringly
//!   error.
//! * [`grammar`] — [`TreeGrammar`]: regular tree grammars as the
//!   declarative form of input/output types, compiled one-to-one into
//!   bottom-up tree automata.
//! * [`corpus`] — the seeded adversarial scenario generator: thousands of
//!   `(transducer, τ₁, τ₂)` triples across named families, each case on
//!   its own RNG stream.
//! * [`minimize`] — the greedy, deterministic case minimizer that shrinks
//!   a disagreeing triple before it is reported.
//!
//! The low-level eager builders in [`xmltc_core::machine`] remain the
//! substrate this crate lowers onto; everything downstream (tests, CLI,
//! benches, the differential harness) constructs machines through this
//! crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod grammar;
pub mod minimize;
pub mod spec;

pub use corpus::{
    case_seed, generate, CompiledScenario, Family, Scenario, ScenarioError, CORPUS_STATE_LIMIT,
    FAMILIES,
};
pub use grammar::{GrammarError, Rhs, TreeGrammar};
pub use minimize::{minimize_scenario, MinimizeOutcome};
pub use spec::{ActionSpec, BuilderError, MachineSpec, RuleRow, Syms};

// The guard/move/presence vocabulary specs are written in, re-exported so
// DSL users need not depend on xmltc-core directly.
pub use xmltc_core::machine::{Guard, Move, Presence};
