//! The greedy case minimizer: shrink a failing [`Scenario`] before
//! reporting it.
//!
//! A disagreement found on a mass-generated case is rarely readable as
//! generated — the machine has spare rules, the grammars spare
//! productions. [`minimize_scenario`] takes the failing scenario and a
//! predicate ("does this candidate still exhibit the failure?") and
//! greedily deletes components one at a time — transducer rules, then
//! non-initial states (with their rules), then τ₁ productions, then τ₂
//! productions — keeping a deletion whenever the predicate still holds,
//! looping to a fixpoint. Deletion order is fixed (descending index within
//! each pass), so minimization is **deterministic**: the same scenario and
//! predicate always shrink to the same result.
//!
//! Candidates that no longer lower ([`Scenario::compile`] fails) must be
//! treated as "failure gone" by the predicate; the harness's predicates do
//! this by construction since they must compile to re-check the
//! disagreement.

use crate::corpus::Scenario;

/// The result of shrinking a scenario.
#[derive(Clone, Debug)]
pub struct MinimizeOutcome {
    /// The shrunken scenario (equal to the input when nothing could go).
    pub scenario: Scenario,
    /// Deletions that were kept (components actually removed).
    pub removed: usize,
    /// Candidate scenarios tried (predicate invocations).
    pub tried: usize,
}

/// Greedily shrinks `scenario` while `still_fails` keeps returning `true`
/// on the shrunken candidate. `still_fails(&scenario)` itself must be
/// `true` for shrinking to be meaningful — if it is not, the scenario is
/// returned unchanged (a no-op shrink).
pub fn minimize_scenario(
    scenario: &Scenario,
    mut still_fails: impl FnMut(&Scenario) -> bool,
) -> MinimizeOutcome {
    let mut best = scenario.clone();
    let mut removed = 0usize;
    let mut tried = 0usize;
    if !still_fails(&best) {
        return MinimizeOutcome {
            scenario: best,
            removed,
            tried: 1,
        };
    }
    tried += 1;
    loop {
        let mut progressed = false;

        // Pass 1: drop transducer rules, last first (later rules are the
        // generator's "extras"; dropping them first keeps the spine).
        let mut i = best.transducer.rules.len();
        while i > 0 {
            i -= 1;
            let mut cand = best.clone();
            cand.transducer.rules.remove(i);
            tried += 1;
            if still_fails(&cand) {
                best = cand;
                removed += 1;
                progressed = true;
            }
        }

        // Pass 2: drop non-initial states together with every rule that
        // mentions them.
        let mut s = best.transducer.states.len();
        while s > 0 {
            s -= 1;
            let name = best.transducer.states[s].0.clone();
            if best.transducer.initial.as_deref() == Some(name.as_str()) {
                continue;
            }
            let mut cand = best.clone();
            cand.transducer.states.remove(s);
            cand.transducer
                .rules
                .retain(|r| !r.states_mentioned().contains(&name.as_str()));
            tried += 1;
            if still_fails(&cand) {
                best = cand;
                removed += 1;
                progressed = true;
            }
        }

        // Passes 3 and 4: drop grammar productions, τ₁ then τ₂.
        for side in 0..2 {
            let len = if side == 0 {
                best.tau1.prods.len()
            } else {
                best.tau2.prods.len()
            };
            let mut p = len;
            while p > 0 {
                p -= 1;
                let mut cand = best.clone();
                if side == 0 {
                    cand.tau1.prods.remove(p);
                } else {
                    cand.tau2.prods.remove(p);
                }
                tried += 1;
                if still_fails(&cand) {
                    best = cand;
                    removed += 1;
                    progressed = true;
                }
            }
        }

        if !progressed {
            break;
        }
    }
    MinimizeOutcome {
        scenario: best,
        removed,
        tried,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate, Family};

    #[test]
    fn noop_when_predicate_false() {
        let s = generate(1, Family::NearEmpty, 0);
        let out = minimize_scenario(&s, |_| false);
        assert_eq!(out.scenario, s);
        assert_eq!(out.removed, 0);
    }

    #[test]
    fn shrinks_to_fixpoint_against_trivial_predicate() {
        // Predicate: candidate still lowers. Everything deletable goes,
        // and the result still compiles.
        let s = generate(1, Family::SilentChains, 0);
        let out = minimize_scenario(&s, |c| c.compile().is_ok());
        assert!(out.scenario.compile().is_ok());
        assert!(out.removed > 0, "nothing shrank: {}", out.scenario.render());
        assert!(out.scenario.transducer.rules.len() <= s.transducer.rules.len());
    }

    #[test]
    fn deterministic_for_fixed_input() {
        let s = generate(5, Family::DeepNesting, 2);
        let a = minimize_scenario(&s, |c| c.compile().is_ok());
        let b = minimize_scenario(&s, |c| c.compile().is_ok());
        assert_eq!(a.scenario, b.scenario);
        assert_eq!(a.removed, b.removed);
        assert_eq!(a.tried, b.tried);
    }

    #[test]
    fn predicate_guarding_a_rule_keeps_it() {
        // Failure = "state q1 still exists" — the minimizer must keep q1
        // and may drop the rest.
        let s = generate(2, Family::NearUniversal, 1);
        if !s.transducer.states.iter().any(|(n, _)| n == "q1") {
            return; // tiny machine this seed; nothing to assert
        }
        let out = minimize_scenario(&s, |c| c.transducer.states.iter().any(|(n, _)| n == "q1"));
        assert!(out
            .scenario
            .transducer
            .states
            .iter()
            .any(|(n, _)| n == "q1"));
    }
}
