//! The declarative machine spec: a plain-data transition table with
//! named states and symbols, validated into a [`PebbleTransducer`] or
//! [`PebbleAutomaton`] with precise error values.
//!
//! Unlike the low-level [`xmltc_core::machine`] builders (which return
//! handles eagerly and reject bad rules with stringly-typed errors as they
//! are added), a [`MachineSpec`] is pure data: states and rules reference
//! each other by *name*, nothing is resolved until [`MachineSpec::build_transducer`] /
//! [`MachineSpec::build_automaton`], and every way a spec can be malformed
//! maps to a dedicated [`BuilderError`] variant carrying the offending rule
//! index and names. This makes specs renderable, diffable, hashable,
//! machine-generatable (the [`crate::corpus`] generator) and shrinkable
//! (the [`crate::minimize`] greedy minimizer).

use std::fmt;
use std::sync::Arc;
use xmltc_core::machine::{
    AutomatonBuilder, Guard, Move, PebbleAutomaton, PebbleTransducer, Presence, SymSpec,
    TransducerBuilder,
};
use xmltc_trees::{Alphabet, FxHashMap, Rank, Symbol};

/// Selects the input symbols a rule covers, by name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Syms {
    /// A single named symbol.
    One(String),
    /// Every leaf symbol.
    Leaves,
    /// Every binary symbol.
    Binaries,
    /// Every symbol.
    Any,
    /// An explicit list of named symbols.
    AnyOf(Vec<String>),
    /// Every symbol except the listed ones.
    AllExcept(Vec<String>),
}

impl Syms {
    /// Convenience constructor for [`Syms::One`].
    pub fn one(name: impl Into<String>) -> Syms {
        Syms::One(name.into())
    }

    /// Converts a resolved [`SymSpec`] (symbol ids) back into a named
    /// selection over `al` — the bridge for code that computed a symbol
    /// set with the low-level API (e.g. the data-value abstraction).
    pub fn from_symspec(spec: &SymSpec, al: &Alphabet) -> Syms {
        let name = |s: &Symbol| al.name(*s).to_string();
        match spec {
            SymSpec::One(s) => Syms::One(name(s)),
            SymSpec::Leaves => Syms::Leaves,
            SymSpec::Binaries => Syms::Binaries,
            SymSpec::Any => Syms::Any,
            SymSpec::AnyOf(v) => Syms::AnyOf(v.iter().map(name).collect()),
            SymSpec::AllExcept(v) => Syms::AllExcept(v.iter().map(name).collect()),
        }
    }

    /// Resolves the selection against an alphabet. `Err` carries the first
    /// unknown name.
    fn resolve(&self, al: &Alphabet) -> Result<Vec<Symbol>, String> {
        let get = |n: &String| al.get(n).ok_or_else(|| n.clone());
        Ok(match self {
            Syms::One(n) => vec![get(n)?],
            Syms::Leaves => al.leaves(),
            Syms::Binaries => al.binaries(),
            Syms::Any => al.symbols().collect(),
            Syms::AnyOf(v) => v.iter().map(get).collect::<Result<_, _>>()?,
            Syms::AllExcept(v) => {
                let excl: Vec<Symbol> = v.iter().map(get).collect::<Result<_, _>>()?;
                al.symbols().filter(|s| !excl.contains(s)).collect()
            }
        })
    }

    /// Stable textual form (used by [`MachineSpec::render`]).
    pub fn render(&self) -> String {
        match self {
            Syms::One(n) => n.clone(),
            Syms::Leaves => "leaves".into(),
            Syms::Binaries => "binaries".into(),
            Syms::Any => "*".into(),
            Syms::AnyOf(v) => format!("{{{}}}", v.join(",")),
            Syms::AllExcept(v) => format!("!{{{}}}", v.join(",")),
        }
    }
}

/// The action of a declarative rule. `Walk`/`EmitLeaf`/`EmitNode` are
/// transducer actions, `Walk`/`Accept`/`Fork` automaton actions; the two
/// `build_*` entry points reject rows of the wrong kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ActionSpec {
    /// A move transition into the named state.
    Walk(Move, String),
    /// Emit a leaf labeled with the named output symbol; the branch halts.
    EmitLeaf(String),
    /// Emit a binary output node; the two named states compute its
    /// children.
    EmitNode(String, String, String),
    /// Accept this branch (automata only).
    Accept,
    /// Fork into two branches (automata only); the input head stays put.
    Fork(String, String),
}

impl ActionSpec {
    fn render(&self) -> String {
        match self {
            ActionSpec::Walk(m, q) => format!("move {} -> {q}", render_move(*m)),
            ActionSpec::EmitLeaf(a) => format!("emit {a}"),
            ActionSpec::EmitNode(a, l, r) => format!("emit {a}({l}, {r})"),
            ActionSpec::Accept => "accept".into(),
            ActionSpec::Fork(l, r) => format!("fork({l}, {r})"),
        }
    }
}

fn render_move(m: Move) -> &'static str {
    match m {
        Move::Stay => "stay",
        Move::DownLeft => "down-left",
        Move::DownRight => "down-right",
        Move::UpLeft => "up-left",
        Move::UpRight => "up-right",
        Move::PlaceNew => "place-new",
        Move::PickCurrent => "pick-current",
    }
}

fn render_guard(g: &Guard) -> String {
    if g.0.is_empty() {
        return "-".into();
    }
    let parts: Vec<String> =
        g.0.iter()
            .enumerate()
            .map(|(j, p)| {
                let mark = match p {
                    Presence::Any => '?',
                    Presence::Present => '+',
                    Presence::Absent => '-',
                };
                format!("{}{mark}", j + 1)
            })
            .collect();
    format!("[{}]", parts.join(","))
}

/// One row of the transition table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleRow {
    /// Which input symbols the rule covers.
    pub on: Syms,
    /// The state the rule fires in (by name).
    pub state: String,
    /// The pebble-presence guard over lower pebbles.
    pub guard: Guard,
    /// The rule's action.
    pub action: ActionSpec,
}

impl RuleRow {
    /// Stable textual form.
    pub fn render(&self) -> String {
        format!(
            "on={} in={} guard={} => {}",
            self.on.render(),
            self.state,
            render_guard(&self.guard),
            self.action.render()
        )
    }

    /// Every state name the row mentions (source and targets).
    pub fn states_mentioned(&self) -> Vec<&str> {
        let mut v = vec![self.state.as_str()];
        match &self.action {
            ActionSpec::Walk(_, q) => v.push(q),
            ActionSpec::EmitLeaf(_) | ActionSpec::Accept => {}
            ActionSpec::EmitNode(_, l, r) | ActionSpec::Fork(l, r) => {
                v.push(l);
                v.push(r);
            }
        }
        v
    }
}

/// Everything that can be wrong with a [`MachineSpec`], with the offending
/// rule index (into [`MachineSpec::rules`]) and names. Returned — never
/// panicked — by the `build_*` entry points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuilderError {
    /// The spec declares no states at all.
    NoStates,
    /// Two states share a name.
    DuplicateState {
        /// The duplicated name.
        state: String,
    },
    /// A state's pebble level is 0 or exceeds the machine's `k`.
    LevelOutOfRange {
        /// The state.
        state: String,
        /// Its declared level.
        level: u8,
        /// The machine's pebble count.
        k: u8,
    },
    /// No initial state was designated.
    NoInitialState,
    /// The designated initial state was never declared.
    UnknownInitialState {
        /// The undeclared name.
        state: String,
    },
    /// The initial state is not at pebble level 1.
    InitialNotLevelOne {
        /// The initial state.
        state: String,
        /// Its declared level.
        level: u8,
    },
    /// A rule references a state name that was never declared.
    UnknownState {
        /// Index of the offending rule.
        rule: usize,
        /// The unresolved name.
        state: String,
    },
    /// A rule references a symbol name missing from the alphabet.
    UnknownSymbol {
        /// Index of the offending rule.
        rule: usize,
        /// The unresolved name.
        symbol: String,
    },
    /// A rule's symbol selection resolves to no symbols at all.
    EmptySymbolSet {
        /// Index of the offending rule.
        rule: usize,
    },
    /// A guard tests a pebble at or above the rule state's own level.
    GuardTooDeep {
        /// Index of the offending rule.
        rule: usize,
        /// The rule's state.
        state: String,
        /// The state's level.
        level: u8,
        /// The highest pebble the guard tests (1-based).
        tested: usize,
    },
    /// A `place-new` / `pick-current` move that violates the pebble stack
    /// discipline: place must enter a state exactly one level up, pick must
    /// start at level ≥ 2 and enter a state exactly one level down.
    BadPebbleLift {
        /// Index of the offending rule.
        rule: usize,
        /// The move.
        mv: Move,
        /// Source state.
        from: String,
        /// Source level.
        from_level: u8,
        /// Target state.
        to: String,
        /// Target level.
        to_level: u8,
    },
    /// A plain move (stay/down/up) that changes pebble level.
    LevelMismatch {
        /// Index of the offending rule.
        rule: usize,
        /// The move.
        mv: Move,
        /// Source state.
        from: String,
        /// Source level.
        from_level: u8,
        /// Target state.
        to: String,
        /// Target level.
        to_level: u8,
    },
    /// An `emit`/`fork` child state is not at the spawning state's level.
    BranchLevelMismatch {
        /// Index of the offending rule.
        rule: usize,
        /// The spawning state.
        state: String,
        /// Its level.
        level: u8,
        /// The offending child state.
        branch: String,
        /// The child's level.
        branch_level: u8,
    },
    /// An output symbol's rank does not fit the emitting action.
    ArityMismatch {
        /// Index of the offending rule.
        rule: usize,
        /// The output symbol.
        symbol: String,
        /// The rank the action requires.
        expected: Rank,
        /// The symbol's actual rank.
        actual: Rank,
    },
    /// A transducer build found an automaton action (or vice versa).
    WrongActionKind {
        /// Index of the offending rule.
        rule: usize,
        /// `"transducer"` or `"automaton"`.
        expected: &'static str,
    },
    /// A declared state is unreachable in the rule graph from the initial
    /// state (suppress with [`MachineSpec::allow_unreachable`]).
    UnreachableState {
        /// The unreachable state.
        state: String,
    },
    /// The low-level builder rejected a spec this module validated — a bug
    /// in the DSL layer, surfaced instead of panicking.
    Internal(String),
}

impl fmt::Display for BuilderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuilderError::NoStates => write!(f, "spec declares no states"),
            BuilderError::DuplicateState { state } => {
                write!(f, "state `{state}` declared twice")
            }
            BuilderError::LevelOutOfRange { state, level, k } => {
                write!(f, "state `{state}` at level {level}, outside 1..={k}")
            }
            BuilderError::NoInitialState => write!(f, "no initial state designated"),
            BuilderError::UnknownInitialState { state } => {
                write!(f, "initial state `{state}` was never declared")
            }
            BuilderError::InitialNotLevelOne { state, level } => {
                write!(f, "initial state `{state}` is at level {level}, not 1")
            }
            BuilderError::UnknownState { rule, state } => {
                write!(f, "rule {rule} references undeclared state `{state}`")
            }
            BuilderError::UnknownSymbol { rule, symbol } => {
                write!(f, "rule {rule} references unknown symbol `{symbol}`")
            }
            BuilderError::EmptySymbolSet { rule } => {
                write!(f, "rule {rule} covers no symbols")
            }
            BuilderError::GuardTooDeep {
                rule,
                state,
                level,
                tested,
            } => write!(
                f,
                "rule {rule}: guard on `{state}` (level {level}) tests pebble {tested}; \
                 only pebbles below the state's level may be tested"
            ),
            BuilderError::BadPebbleLift {
                rule,
                mv,
                from,
                from_level,
                to,
                to_level,
            } => write!(
                f,
                "rule {rule}: {} from `{from}` (level {from_level}) to `{to}` (level {to_level}) \
                 breaks the pebble stack discipline",
                render_move(*mv)
            ),
            BuilderError::LevelMismatch {
                rule,
                mv,
                from,
                from_level,
                to,
                to_level,
            } => write!(
                f,
                "rule {rule}: {} from `{from}` (level {from_level}) may not change level \
                 (target `{to}` is at level {to_level})",
                render_move(*mv)
            ),
            BuilderError::BranchLevelMismatch {
                rule,
                state,
                level,
                branch,
                branch_level,
            } => write!(
                f,
                "rule {rule}: branch `{branch}` (level {branch_level}) must stay at \
                 `{state}`'s level {level}"
            ),
            BuilderError::ArityMismatch {
                rule,
                symbol,
                expected,
                actual,
            } => write!(
                f,
                "rule {rule}: output symbol `{symbol}` has rank {actual:?}, \
                 the action needs rank {expected:?}"
            ),
            BuilderError::WrongActionKind { rule, expected } => {
                write!(f, "rule {rule}: action not allowed in a {expected}")
            }
            BuilderError::UnreachableState { state } => {
                write!(f, "state `{state}` is unreachable from the initial state")
            }
            BuilderError::Internal(msg) => write!(f, "internal lowering error: {msg}"),
        }
    }
}

impl std::error::Error for BuilderError {}

/// A declarative pebble-machine spec: named states, an initial state and a
/// transition table, validated only at build time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineSpec {
    /// A human-readable machine name (reports, renders).
    pub name: String,
    /// The pebble count `k`.
    pub k: u8,
    /// Declared states as `(name, level)` in declaration order.
    pub states: Vec<(String, u8)>,
    /// The designated initial state, if any.
    pub initial: Option<String>,
    /// The transition table.
    pub rules: Vec<RuleRow>,
    /// When set, unreachable states are tolerated instead of rejected.
    pub tolerate_unreachable: bool,
}

impl MachineSpec {
    /// An empty spec with the given name and pebble count.
    pub fn new(name: impl Into<String>, k: u8) -> MachineSpec {
        MachineSpec {
            name: name.into(),
            k,
            states: Vec::new(),
            initial: None,
            rules: Vec::new(),
            tolerate_unreachable: false,
        }
    }

    /// Declares a state at the given pebble level (1-based).
    pub fn state(&mut self, name: impl Into<String>, level: u8) -> &mut Self {
        self.states.push((name.into(), level));
        self
    }

    /// Designates the initial state (must be level 1 at build time).
    pub fn initial(&mut self, name: impl Into<String>) -> &mut Self {
        self.initial = Some(name.into());
        self
    }

    /// Tolerate states unreachable in the rule graph (the default is to
    /// reject them with [`BuilderError::UnreachableState`]).
    pub fn allow_unreachable(&mut self) -> &mut Self {
        self.tolerate_unreachable = true;
        self
    }

    /// Appends a raw rule row.
    pub fn rule(&mut self, row: RuleRow) -> &mut Self {
        self.rules.push(row);
        self
    }

    /// Adds a move rule `(on, guard, state) → (target, mv)`.
    pub fn walk(
        &mut self,
        on: Syms,
        state: impl Into<String>,
        guard: Guard,
        mv: Move,
        target: impl Into<String>,
    ) -> &mut Self {
        self.rule(RuleRow {
            on,
            state: state.into(),
            guard,
            action: ActionSpec::Walk(mv, target.into()),
        })
    }

    /// Adds an `output0` rule emitting the named leaf symbol.
    pub fn emit_leaf(
        &mut self,
        on: Syms,
        state: impl Into<String>,
        guard: Guard,
        out: impl Into<String>,
    ) -> &mut Self {
        self.rule(RuleRow {
            on,
            state: state.into(),
            guard,
            action: ActionSpec::EmitLeaf(out.into()),
        })
    }

    /// Adds an `output2` rule emitting the named binary symbol with two
    /// child branches.
    pub fn emit_node(
        &mut self,
        on: Syms,
        state: impl Into<String>,
        guard: Guard,
        out: impl Into<String>,
        left: impl Into<String>,
        right: impl Into<String>,
    ) -> &mut Self {
        self.rule(RuleRow {
            on,
            state: state.into(),
            guard,
            action: ActionSpec::EmitNode(out.into(), left.into(), right.into()),
        })
    }

    /// Adds a `branch0` (accept) rule — automata only.
    pub fn accept(&mut self, on: Syms, state: impl Into<String>, guard: Guard) -> &mut Self {
        self.rule(RuleRow {
            on,
            state: state.into(),
            guard,
            action: ActionSpec::Accept,
        })
    }

    /// Adds a `branch2` (and-fork) rule — automata only.
    pub fn fork(
        &mut self,
        on: Syms,
        state: impl Into<String>,
        guard: Guard,
        left: impl Into<String>,
        right: impl Into<String>,
    ) -> &mut Self {
        self.rule(RuleRow {
            on,
            state: state.into(),
            guard,
            action: ActionSpec::Fork(left.into(), right.into()),
        })
    }

    /// Stable textual rendering of the whole spec: states, initial, and
    /// the transition table with rule indices.
    pub fn render(&self) -> String {
        let mut out = format!("machine {} k={}\n", self.name, self.k);
        for (name, level) in &self.states {
            out.push_str(&format!("  state {name} level={level}\n"));
        }
        if let Some(i) = &self.initial {
            out.push_str(&format!("  initial {i}\n"));
        }
        for (i, r) in self.rules.iter().enumerate() {
            out.push_str(&format!("  rule [{i}] {}\n", r.render()));
        }
        out
    }

    /// Validates the table and lowers it to a [`PebbleTransducer`].
    /// `Accept`/`Fork` rows are rejected with
    /// [`BuilderError::WrongActionKind`].
    pub fn build_transducer(
        &self,
        input: &Arc<Alphabet>,
        output: &Arc<Alphabet>,
    ) -> Result<PebbleTransducer, BuilderError> {
        let levels = self.validate(input, Some(output))?;
        let mut b = TransducerBuilder::new(input, output, self.k);
        let mut ids = Vec::with_capacity(self.states.len());
        for (name, level) in &self.states {
            ids.push(
                b.state(name, *level)
                    .map_err(|e| BuilderError::Internal(e.to_string()))?,
            );
        }
        let id_of = |name: &str| ids[levels[name].0];
        b.set_initial(id_of(self.initial.as_ref().expect("validated")));
        for (i, r) in self.rules.iter().enumerate() {
            let spec = self.lowered_syms(i, r, input)?;
            let q = id_of(&r.state);
            let res = match &r.action {
                ActionSpec::Walk(mv, t) => b.move_rule(spec, q, r.guard.clone(), *mv, id_of(t)),
                ActionSpec::EmitLeaf(a) => {
                    b.output0(spec, q, r.guard.clone(), output.get(a).expect("validated"))
                }
                ActionSpec::EmitNode(a, l, rr) => b.output2(
                    spec,
                    q,
                    r.guard.clone(),
                    output.get(a).expect("validated"),
                    id_of(l),
                    id_of(rr),
                ),
                ActionSpec::Accept | ActionSpec::Fork(..) => unreachable!("validated"),
            };
            res.map_err(|e| BuilderError::Internal(e.to_string()))?;
        }
        b.build().map_err(|e| BuilderError::Internal(e.to_string()))
    }

    /// Validates the table and lowers it to a [`PebbleAutomaton`].
    /// `EmitLeaf`/`EmitNode` rows are rejected with
    /// [`BuilderError::WrongActionKind`].
    pub fn build_automaton(&self, input: &Arc<Alphabet>) -> Result<PebbleAutomaton, BuilderError> {
        let levels = self.validate(input, None)?;
        let mut b = AutomatonBuilder::new(input, self.k);
        let mut ids = Vec::with_capacity(self.states.len());
        for (name, level) in &self.states {
            ids.push(
                b.state(name, *level)
                    .map_err(|e| BuilderError::Internal(e.to_string()))?,
            );
        }
        let id_of = |name: &str| ids[levels[name].0];
        b.set_initial(id_of(self.initial.as_ref().expect("validated")));
        for (i, r) in self.rules.iter().enumerate() {
            let spec = self.lowered_syms(i, r, input)?;
            let q = id_of(&r.state);
            let res = match &r.action {
                ActionSpec::Walk(mv, t) => b.move_rule(spec, q, r.guard.clone(), *mv, id_of(t)),
                ActionSpec::Accept => b.branch0(spec, q, r.guard.clone()),
                ActionSpec::Fork(l, rr) => b.branch2(spec, q, r.guard.clone(), id_of(l), id_of(rr)),
                ActionSpec::EmitLeaf(..) | ActionSpec::EmitNode(..) => unreachable!("validated"),
            };
            res.map_err(|e| BuilderError::Internal(e.to_string()))?;
        }
        b.build().map_err(|e| BuilderError::Internal(e.to_string()))
    }

    fn lowered_syms(&self, i: usize, r: &RuleRow, al: &Alphabet) -> Result<SymSpec, BuilderError> {
        let symbols =
            r.on.resolve(al)
                .map_err(|symbol| BuilderError::UnknownSymbol { rule: i, symbol })?;
        debug_assert!(!symbols.is_empty(), "validated");
        Ok(SymSpec::AnyOf(symbols))
    }

    /// The shared validation pass. `output` is `Some` for transducer
    /// builds (enables emit actions + rank checks), `None` for automaton
    /// builds (enables accept/fork). Returns the name → (index, level)
    /// map.
    fn validate(
        &self,
        input: &Arc<Alphabet>,
        output: Option<&Arc<Alphabet>>,
    ) -> Result<FxHashMap<String, (usize, u8)>, BuilderError> {
        if self.states.is_empty() {
            return Err(BuilderError::NoStates);
        }
        let mut levels: FxHashMap<String, (usize, u8)> = FxHashMap::default();
        for (idx, (name, level)) in self.states.iter().enumerate() {
            if levels.insert(name.clone(), (idx, *level)).is_some() {
                return Err(BuilderError::DuplicateState {
                    state: name.clone(),
                });
            }
            if *level == 0 || *level > self.k {
                return Err(BuilderError::LevelOutOfRange {
                    state: name.clone(),
                    level: *level,
                    k: self.k,
                });
            }
        }
        let initial = self.initial.as_ref().ok_or(BuilderError::NoInitialState)?;
        let (_, init_level) =
            *levels
                .get(initial)
                .ok_or_else(|| BuilderError::UnknownInitialState {
                    state: initial.clone(),
                })?;
        if init_level != 1 {
            return Err(BuilderError::InitialNotLevelOne {
                state: initial.clone(),
                level: init_level,
            });
        }

        for (i, r) in self.rules.iter().enumerate() {
            // Every mentioned state must exist.
            for s in r.states_mentioned() {
                if !levels.contains_key(s) {
                    return Err(BuilderError::UnknownState {
                        rule: i,
                        state: s.to_string(),
                    });
                }
            }
            let level = levels[&r.state].1;
            // Symbol selection must resolve, non-emptily.
            let symbols =
                r.on.resolve(input)
                    .map_err(|symbol| BuilderError::UnknownSymbol { rule: i, symbol })?;
            if symbols.is_empty() {
                return Err(BuilderError::EmptySymbolSet { rule: i });
            }
            // Guards may only test pebbles strictly below the state level.
            if r.guard.0.len() > (level - 1) as usize {
                return Err(BuilderError::GuardTooDeep {
                    rule: i,
                    state: r.state.clone(),
                    level,
                    tested: r.guard.0.len(),
                });
            }
            // Action-specific checks.
            match &r.action {
                ActionSpec::Walk(mv, t) => {
                    let t_level = levels[t.as_str()].1;
                    let err = |is_lift: bool| {
                        if is_lift {
                            BuilderError::BadPebbleLift {
                                rule: i,
                                mv: *mv,
                                from: r.state.clone(),
                                from_level: level,
                                to: t.clone(),
                                to_level: t_level,
                            }
                        } else {
                            BuilderError::LevelMismatch {
                                rule: i,
                                mv: *mv,
                                from: r.state.clone(),
                                from_level: level,
                                to: t.clone(),
                                to_level: t_level,
                            }
                        }
                    };
                    match mv {
                        Move::PlaceNew => {
                            if t_level != level + 1 || t_level > self.k {
                                return Err(err(true));
                            }
                        }
                        Move::PickCurrent => {
                            if level < 2 || t_level != level - 1 {
                                return Err(err(true));
                            }
                        }
                        _ => {
                            if t_level != level {
                                return Err(err(false));
                            }
                        }
                    }
                }
                ActionSpec::EmitLeaf(a) => {
                    let out = output.ok_or(BuilderError::WrongActionKind {
                        rule: i,
                        expected: "automaton",
                    })?;
                    self.check_rank(i, a, out, Rank::Leaf)?;
                }
                ActionSpec::EmitNode(a, l, rr) => {
                    let out = output.ok_or(BuilderError::WrongActionKind {
                        rule: i,
                        expected: "automaton",
                    })?;
                    self.check_rank(i, a, out, Rank::Binary)?;
                    for branch in [l, rr] {
                        let b_level = levels[branch.as_str()].1;
                        if b_level != level {
                            return Err(BuilderError::BranchLevelMismatch {
                                rule: i,
                                state: r.state.clone(),
                                level,
                                branch: branch.clone(),
                                branch_level: b_level,
                            });
                        }
                    }
                }
                ActionSpec::Accept => {
                    if output.is_some() {
                        return Err(BuilderError::WrongActionKind {
                            rule: i,
                            expected: "transducer",
                        });
                    }
                }
                ActionSpec::Fork(l, rr) => {
                    if output.is_some() {
                        return Err(BuilderError::WrongActionKind {
                            rule: i,
                            expected: "transducer",
                        });
                    }
                    for branch in [l, rr] {
                        let b_level = levels[branch.as_str()].1;
                        if b_level != level {
                            return Err(BuilderError::BranchLevelMismatch {
                                rule: i,
                                state: r.state.clone(),
                                level,
                                branch: branch.clone(),
                                branch_level: b_level,
                            });
                        }
                    }
                }
            }
        }

        // Rule-graph reachability from the initial state.
        if !self.tolerate_unreachable {
            let mut reach: FxHashMap<&str, bool> = self
                .states
                .iter()
                .map(|(n, _)| (n.as_str(), false))
                .collect();
            reach.insert(initial.as_str(), true);
            let mut changed = true;
            while changed {
                changed = false;
                for r in &self.rules {
                    if !reach[r.state.as_str()] {
                        continue;
                    }
                    for s in r.states_mentioned().into_iter().skip(1) {
                        let e = reach.get_mut(s).expect("state checked above");
                        if !*e {
                            *e = true;
                            changed = true;
                        }
                    }
                }
            }
            // Report the first unreachable state in declaration order.
            for (name, _) in &self.states {
                if !reach[name.as_str()] {
                    return Err(BuilderError::UnreachableState {
                        state: name.clone(),
                    });
                }
            }
        }
        Ok(levels)
    }

    fn check_rank(
        &self,
        rule: usize,
        sym: &str,
        out: &Alphabet,
        expected: Rank,
    ) -> Result<(), BuilderError> {
        let s = out.get(sym).ok_or_else(|| BuilderError::UnknownSymbol {
            rule,
            symbol: sym.to_string(),
        })?;
        let actual = out.rank(s);
        if actual != expected {
            return Err(BuilderError::ArityMismatch {
                rule,
                symbol: sym.to_string(),
                expected,
                actual,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltc_core::eval;
    use xmltc_trees::BinaryTree;

    fn alphas() -> (Arc<Alphabet>, Arc<Alphabet>) {
        (
            Alphabet::ranked(&["x", "y"], &["f"]),
            Alphabet::ranked(&["x", "y"], &["f"]),
        )
    }

    /// The Example 3.3 copy machine, declaratively.
    fn copy_spec() -> MachineSpec {
        let mut m = MachineSpec::new("copy", 1);
        m.state("q", 1).state("ql", 1).state("qr", 1).initial("q");
        m.emit_node(Syms::one("f"), "q", Guard::any(), "f", "ql", "qr");
        for leaf in ["x", "y"] {
            m.emit_leaf(Syms::one(leaf), "q", Guard::any(), leaf);
        }
        m.walk(Syms::Binaries, "ql", Guard::any(), Move::DownLeft, "q");
        m.walk(Syms::Binaries, "qr", Guard::any(), Move::DownRight, "q");
        m
    }

    #[test]
    fn copy_machine_builds_and_runs() {
        let (i, o) = alphas();
        let t = copy_spec().build_transducer(&i, &o).unwrap();
        let tree = BinaryTree::parse("f(x, f(y, x))", &i).unwrap();
        assert_eq!(eval(&t, &tree).unwrap().to_string(), "f(x, f(y, x))");
    }

    #[test]
    fn render_is_stable() {
        let spec = copy_spec();
        let r = spec.render();
        assert!(r.starts_with("machine copy k=1\n"), "{r}");
        assert!(
            r.contains("rule [0] on=f in=q guard=- => emit f(ql, qr)"),
            "{r}"
        );
        assert_eq!(r, spec.render());
    }

    #[test]
    fn duplicate_state_rejected() {
        let (i, o) = alphas();
        let mut m = MachineSpec::new("dup", 1);
        m.state("q", 1).state("q", 1).initial("q");
        assert_eq!(
            m.build_transducer(&i, &o).err(),
            Some(BuilderError::DuplicateState { state: "q".into() })
        );
    }

    #[test]
    fn unreachable_state_rejected_unless_allowed() {
        let (i, o) = alphas();
        let mut m = MachineSpec::new("m", 1);
        m.state("q", 1).state("island", 1).initial("q");
        m.emit_leaf(Syms::Leaves, "q", Guard::any(), "x");
        assert_eq!(
            m.build_transducer(&i, &o).err(),
            Some(BuilderError::UnreachableState {
                state: "island".into()
            })
        );
        m.allow_unreachable();
        assert!(m.build_transducer(&i, &o).is_ok());
    }

    #[test]
    fn automaton_round_trip() {
        let (i, _) = alphas();
        let mut m = MachineSpec::new("has_y_leftmost", 1);
        m.state("w", 1).state("ok", 1).initial("w");
        m.walk(Syms::Binaries, "w", Guard::any(), Move::DownLeft, "w");
        m.walk(Syms::one("y"), "w", Guard::any(), Move::Stay, "ok");
        m.accept(Syms::one("y"), "ok", Guard::any());
        let a = m.build_automaton(&i).unwrap();
        let yes = BinaryTree::parse("f(y, x)", &i).unwrap();
        let no = BinaryTree::parse("f(x, y)", &i).unwrap();
        assert!(xmltc_core::accepts(&a, &yes).unwrap());
        assert!(!xmltc_core::accepts(&a, &no).unwrap());
    }

    #[test]
    fn wrong_action_kind() {
        let (i, o) = alphas();
        let mut m = MachineSpec::new("m", 1);
        m.state("q", 1).initial("q");
        m.accept(Syms::Any, "q", Guard::any());
        assert_eq!(
            m.build_transducer(&i, &o).err(),
            Some(BuilderError::WrongActionKind {
                rule: 0,
                expected: "transducer"
            })
        );
        let mut m = MachineSpec::new("m", 1);
        m.state("q", 1).initial("q");
        m.emit_leaf(Syms::Any, "q", Guard::any(), "x");
        assert_eq!(
            m.build_automaton(&i).err(),
            Some(BuilderError::WrongActionKind {
                rule: 0,
                expected: "automaton"
            })
        );
    }

    #[test]
    fn from_symspec_round_trips() {
        let (i, _) = alphas();
        let x = i.get("x").unwrap();
        let f = i.get("f").unwrap();
        assert_eq!(
            Syms::from_symspec(&SymSpec::AnyOf(vec![x, f]), &i),
            Syms::AnyOf(vec!["x".into(), "f".into()])
        );
        assert_eq!(
            Syms::from_symspec(&SymSpec::AllExcept(vec![x]), &i)
                .resolve(&i)
                .unwrap(),
            vec![i.get("y").unwrap(), f]
        );
    }
}
