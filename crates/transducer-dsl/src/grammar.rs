//! Regular tree grammars: the declarative form of the corpus' input and
//! output types.
//!
//! A [`TreeGrammar`] is the binary-tree analogue of a DTD: a set of
//! productions `N := a` (leaf) and `N := a(N₁, N₂)` (binary node) plus a
//! start nonterminal. Reading productions bottom-up gives exactly a
//! nondeterministic tree automaton, so [`TreeGrammar::compile`] is a
//! one-to-one translation into an [`Nta`] (state per nonterminal, final
//! state = start). Like [`crate::spec::MachineSpec`], a grammar is plain
//! renderable data — the corpus generator emits grammars and the minimizer
//! shrinks them by dropping productions.

use std::fmt;
use std::sync::Arc;
use xmltc_automata::Nta;
use xmltc_trees::{Alphabet, FxHashMap, Rank};

/// The right-hand side of a production.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rhs {
    /// `N := a` — derive the leaf `a`.
    Leaf(String),
    /// `N := a(N₁, N₂)` — derive a binary `a` node whose children derive
    /// from the two nonterminals.
    Node(String, String, String),
}

impl Rhs {
    fn render(&self) -> String {
        match self {
            Rhs::Leaf(a) => a.clone(),
            Rhs::Node(a, l, r) => format!("{a}({l}, {r})"),
        }
    }
}

/// Everything that can be wrong with a grammar, by production index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GrammarError {
    /// A production uses a symbol missing from the alphabet.
    UnknownSymbol {
        /// Index of the offending production.
        prod: usize,
        /// The unresolved name.
        symbol: String,
    },
    /// A production's symbol rank does not match its shape.
    ArityMismatch {
        /// Index of the offending production.
        prod: usize,
        /// The symbol.
        symbol: String,
        /// The rank the production shape requires.
        expected: Rank,
        /// The symbol's actual rank.
        actual: Rank,
    },
}

impl fmt::Display for GrammarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarError::UnknownSymbol { prod, symbol } => {
                write!(f, "production {prod} uses unknown symbol `{symbol}`")
            }
            GrammarError::ArityMismatch {
                prod,
                symbol,
                expected,
                actual,
            } => write!(
                f,
                "production {prod}: symbol `{symbol}` has rank {actual:?}, shape needs {expected:?}"
            ),
        }
    }
}

impl std::error::Error for GrammarError {}

/// A regular tree grammar over a ranked alphabet.
///
/// Nonterminals need no declaration: every name appearing in a production
/// (or as the start) is one. A grammar whose start derives nothing is the
/// empty language — a legitimate (and adversarially useful) type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeGrammar {
    /// A human-readable grammar name (reports, renders).
    pub name: String,
    /// The start nonterminal.
    pub start: String,
    /// The productions, in declaration order.
    pub prods: Vec<(String, Rhs)>,
}

impl TreeGrammar {
    /// An empty grammar (derives nothing) with the given start symbol.
    pub fn new(name: impl Into<String>, start: impl Into<String>) -> TreeGrammar {
        TreeGrammar {
            name: name.into(),
            start: start.into(),
            prods: Vec::new(),
        }
    }

    /// Adds a leaf production `nt := sym`.
    pub fn leaf(&mut self, nt: impl Into<String>, sym: impl Into<String>) -> &mut Self {
        self.prods.push((nt.into(), Rhs::Leaf(sym.into())));
        self
    }

    /// Adds a node production `nt := sym(l, r)`.
    pub fn node(
        &mut self,
        nt: impl Into<String>,
        sym: impl Into<String>,
        l: impl Into<String>,
        r: impl Into<String>,
    ) -> &mut Self {
        self.prods
            .push((nt.into(), Rhs::Node(sym.into(), l.into(), r.into())));
        self
    }

    /// The universal grammar over `al`: one nonterminal `U` deriving every
    /// symbol, start `U` — accepts every tree.
    pub fn universal(name: impl Into<String>, al: &Alphabet) -> TreeGrammar {
        let mut g = TreeGrammar::new(name, "U");
        for s in al.symbols() {
            match al.rank(s) {
                Rank::Leaf => g.leaf("U", al.name(s)),
                Rank::Binary => g.node("U", al.name(s), "U", "U"),
                Rank::Unranked => continue,
            };
        }
        g
    }

    /// All nonterminal names, in first-appearance order (start first).
    pub fn nonterminals(&self) -> Vec<&str> {
        let mut seen: Vec<&str> = vec![self.start.as_str()];
        for (nt, rhs) in &self.prods {
            for n in Some(nt.as_str()).into_iter().chain(
                match rhs {
                    Rhs::Leaf(_) => [None, None],
                    Rhs::Node(_, l, r) => [Some(l.as_str()), Some(r.as_str())],
                }
                .into_iter()
                .flatten(),
            ) {
                if !seen.contains(&n) {
                    seen.push(n);
                }
            }
        }
        seen
    }

    /// Compiles the grammar to a bottom-up [`Nta`] over `al`: one state
    /// per nonterminal, the start nonterminal final.
    pub fn compile(&self, al: &Arc<Alphabet>) -> Result<Nta, GrammarError> {
        let nts = self.nonterminals();
        let index: FxHashMap<&str, u32> = nts
            .iter()
            .enumerate()
            .map(|(i, n)| (*n, i as u32))
            .collect();
        let mut nta = Nta::new(al, nts.len() as u32);
        for (i, (nt, rhs)) in self.prods.iter().enumerate() {
            let q = xmltc_automata::State(index[nt.as_str()]);
            match rhs {
                Rhs::Leaf(a) => {
                    let s = al.get(a).ok_or_else(|| GrammarError::UnknownSymbol {
                        prod: i,
                        symbol: a.clone(),
                    })?;
                    if al.rank(s) != Rank::Leaf {
                        return Err(GrammarError::ArityMismatch {
                            prod: i,
                            symbol: a.clone(),
                            expected: Rank::Leaf,
                            actual: al.rank(s),
                        });
                    }
                    nta.add_leaf(s, q);
                }
                Rhs::Node(a, l, r) => {
                    let s = al.get(a).ok_or_else(|| GrammarError::UnknownSymbol {
                        prod: i,
                        symbol: a.clone(),
                    })?;
                    if al.rank(s) != Rank::Binary {
                        return Err(GrammarError::ArityMismatch {
                            prod: i,
                            symbol: a.clone(),
                            expected: Rank::Binary,
                            actual: al.rank(s),
                        });
                    }
                    let ql = xmltc_automata::State(index[l.as_str()]);
                    let qr = xmltc_automata::State(index[r.as_str()]);
                    nta.add_node(s, ql, qr, q);
                }
            }
        }
        nta.add_final(xmltc_automata::State(index[self.start.as_str()]));
        Ok(nta)
    }

    /// Stable textual rendering.
    pub fn render(&self) -> String {
        let mut out = format!("grammar {} start={}\n", self.name, self.start);
        for (nt, rhs) in &self.prods {
            out.push_str(&format!("  {nt} := {}\n", rhs.render()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltc_trees::BinaryTree;

    fn al() -> Arc<Alphabet> {
        Alphabet::ranked(&["x", "y"], &["f"])
    }

    #[test]
    fn universal_accepts_everything() {
        let al = al();
        let g = TreeGrammar::universal("u", &al).compile(&al).unwrap();
        for t in ["x", "f(x, y)", "f(f(x, x), y)"] {
            assert!(
                g.accepts(&BinaryTree::parse(t, &al).unwrap()).unwrap(),
                "{t}"
            );
        }
    }

    #[test]
    fn empty_grammar_is_empty() {
        let al = al();
        let g = TreeGrammar::new("none", "S").compile(&al).unwrap();
        assert!(g.is_empty());
    }

    #[test]
    fn chain_grammar_fixes_depth() {
        // S := f(A, A); A := x — exactly the depth-2 trees f(x, x).
        let al = al();
        let mut g = TreeGrammar::new("d2", "S");
        g.node("S", "f", "A", "A").leaf("A", "x");
        let nta = g.compile(&al).unwrap();
        assert!(nta
            .accepts(&BinaryTree::parse("f(x, x)", &al).unwrap())
            .unwrap());
        assert!(!nta.accepts(&BinaryTree::parse("x", &al).unwrap()).unwrap());
        assert!(!nta
            .accepts(&BinaryTree::parse("f(f(x, x), x)", &al).unwrap())
            .unwrap());
    }

    #[test]
    fn errors_are_precise() {
        let al = al();
        let mut g = TreeGrammar::new("bad", "S");
        g.leaf("S", "zap");
        assert_eq!(
            g.compile(&al).err(),
            Some(GrammarError::UnknownSymbol {
                prod: 0,
                symbol: "zap".into()
            })
        );
        let mut g = TreeGrammar::new("bad2", "S");
        g.leaf("S", "f");
        assert_eq!(
            g.compile(&al).err(),
            Some(GrammarError::ArityMismatch {
                prod: 0,
                symbol: "f".into(),
                expected: Rank::Leaf,
                actual: Rank::Binary,
            })
        );
    }

    #[test]
    fn render_stable() {
        let mut g = TreeGrammar::new("g", "S");
        g.node("S", "f", "S", "A").leaf("A", "x");
        assert_eq!(g.render(), "grammar g start=S\n  S := f(S, A)\n  A := x\n");
    }
}
