//! The adversarial scenario corpus: seeded mass-generation of
//! `(transducer, τ₁, τ₂)` triples for the differential harness.
//!
//! Each [`Family`] names one way typecheckers get hurt in practice
//! (Frisch–Hosoya's observation that practical typecheckers live or die on
//! adversarial instance families): silent-transition chains that stress
//! ε-closure handling, deeply nested input types, near-empty and
//! near-universal output types, single-symbol alphabets, and automata
//! riddled with dead states. [`generate`] is a pure function of
//! `(corpus_seed, family, index)` — every case owns an **independent RNG
//! stream** derived by [`case_seed`], so adding a family or growing a run
//! never reshuffles existing cases, and any case can be regenerated from
//! its coordinates alone.
//!
//! All generated machines are 1-pebble transducers, keeping the corpus on
//! the cheap walk route (Theorem 4.7's `k = 1` specialization) so runs of
//! thousands of cases stay fast.

use crate::grammar::{GrammarError, TreeGrammar};
use crate::spec::{BuilderError, MachineSpec, Syms};
use std::fmt;
use std::sync::Arc;
use xmltc_automata::Nta;
use xmltc_core::machine::{Guard, Move, PebbleTransducer};
use xmltc_trees::{Alphabet, SmallRng};

/// The named adversarial families.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// Long chains of silent (non-emitting) walk rules, including silent
    /// cycles, before any output happens — stresses the engines'
    /// ε-behaviour and the lazy search's memoization.
    SilentChains,
    /// Input types forcing deeply nested trees; output types bounding
    /// depth — counterexamples hide far down.
    DeepNesting,
    /// Output types accepting almost nothing, so nearly every output is a
    /// violation and counterexamples are everywhere.
    NearEmpty,
    /// Output types accepting almost everything, so violations (when they
    /// exist at all) are needles in a haystack.
    NearUniversal,
    /// One leaf and one binary symbol on each side — degenerate alphabets
    /// where distinct states are the only information.
    SingleSymbol,
    /// Input grammars full of unproductive nonterminals and machines with
    /// unreachable states — stresses trimming and dead-state handling.
    DeadStates,
}

/// Recommended Theorem 4.7 state budget for corpus runs (the
/// `TypecheckOptions::state_limit` the differential harness and the
/// `xmltc corpus` CLI use unless overridden).
///
/// Corpus machines are tiny, but a rare draw — deep nesting combined with
/// a depth-bounding τ₂ — makes the walk construction's behaviour fixpoints
/// grow super-linearly *per DBTA state*: the construction honours its
/// budget, yet reaching even 5 000 classes can take minutes. Every
/// surveyed case that terminates promptly needs at most ~260 classes, so a
/// budget of 800 gives 3× headroom while capping a pathological case at a
/// few seconds before it surfaces as an explicit resource skip
/// (`TooManyStates`) instead of a hang. Harness runs count such skips and
/// bound their rate; they never silently pass.
pub const CORPUS_STATE_LIMIT: u32 = 800;

/// Every family, in canonical order (stable: new families append).
pub const FAMILIES: [Family; 6] = [
    Family::SilentChains,
    Family::DeepNesting,
    Family::NearEmpty,
    Family::NearUniversal,
    Family::SingleSymbol,
    Family::DeadStates,
];

impl Family {
    /// The family's stable kebab-case name (CLI, reports, digests).
    pub fn name(self) -> &'static str {
        match self {
            Family::SilentChains => "silent-chains",
            Family::DeepNesting => "deep-nesting",
            Family::NearEmpty => "near-empty",
            Family::NearUniversal => "near-universal",
            Family::SingleSymbol => "single-symbol",
            Family::DeadStates => "dead-states",
        }
    }

    /// Parses a family name as printed by [`Family::name`].
    pub fn from_name(name: &str) -> Option<Family> {
        FAMILIES.iter().copied().find(|f| f.name() == name)
    }

    /// A fixed per-family salt folded into [`case_seed`]. Salts are
    /// arbitrary but frozen: changing one reshuffles that family's cases.
    fn salt(self) -> u64 {
        match self {
            Family::SilentChains => 0x51_1e_57_c4_a1_75_00_01,
            Family::DeepNesting => 0xde_e9_4e_57_19_6a_00_02,
            Family::NearEmpty => 0x4e_a7_e3_97_7b_0e_00_03,
            Family::NearUniversal => 0x4e_a7_04_1f_3a_1e_00_04,
            Family::SingleSymbol => 0x51_46_1e_5b_3c_0f_00_05,
            Family::DeadStates => 0xdd_ad_57_a7_e5_0d_00_06,
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// splitmix64's finalizer: a cheap, well-mixed 64-bit permutation.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The RNG seed of case `(family, index)` under `corpus_seed`.
///
/// Each coordinate is mixed independently, so every case draws from its
/// own stream: generating case 500 never consumes randomness case 7 also
/// needs, and inserting a new family leaves all other families' cases
/// byte-identical (pinned by the golden digest test).
pub fn case_seed(corpus_seed: u64, family: Family, index: u64) -> u64 {
    mix(mix(corpus_seed ^ family.salt()) ^ mix(index.wrapping_add(0x9e37_79b9_7f4a_7c15)))
}

/// One generated corpus case: a transducer spec plus input/output types,
/// all in declarative (renderable, shrinkable) form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// The family this case was drawn from.
    pub family: Family,
    /// The case index within the family.
    pub index: u64,
    /// The per-case RNG seed ([`case_seed`]).
    pub seed: u64,
    /// Input-alphabet leaf symbol names.
    pub leaves: Vec<String>,
    /// Input-alphabet binary symbol names.
    pub binaries: Vec<String>,
    /// Output-alphabet leaf symbol names.
    pub out_leaves: Vec<String>,
    /// Output-alphabet binary symbol names.
    pub out_binaries: Vec<String>,
    /// The transducer, as a declarative spec.
    pub transducer: MachineSpec,
    /// The input type τ₁.
    pub tau1: TreeGrammar,
    /// The output type τ₂.
    pub tau2: TreeGrammar,
}

/// A [`Scenario`] lowered to the runtime representations the typechecking
/// pipeline consumes.
pub struct CompiledScenario {
    /// The input alphabet Σ.
    pub input: Arc<Alphabet>,
    /// The output alphabet Σ'.
    pub output: Arc<Alphabet>,
    /// The built transducer.
    pub transducer: PebbleTransducer,
    /// τ₁ as a tree automaton over Σ.
    pub tau1: Nta,
    /// τ₂ as a tree automaton over Σ'.
    pub tau2: Nta,
}

/// Why a scenario failed to lower.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioError {
    /// The transducer spec was rejected.
    Builder(BuilderError),
    /// A grammar was rejected.
    Grammar(GrammarError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Builder(e) => write!(f, "transducer spec rejected: {e}"),
            ScenarioError::Grammar(e) => write!(f, "grammar rejected: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<BuilderError> for ScenarioError {
    fn from(e: BuilderError) -> ScenarioError {
        ScenarioError::Builder(e)
    }
}

impl From<GrammarError> for ScenarioError {
    fn from(e: GrammarError) -> ScenarioError {
        ScenarioError::Grammar(e)
    }
}

impl Scenario {
    /// The input alphabet Σ.
    pub fn input_alphabet(&self) -> Arc<Alphabet> {
        Alphabet::ranked(&self.leaves, &self.binaries)
    }

    /// The output alphabet Σ'.
    pub fn output_alphabet(&self) -> Arc<Alphabet> {
        Alphabet::ranked(&self.out_leaves, &self.out_binaries)
    }

    /// Lowers the scenario: builds the transducer and compiles both
    /// grammars. Generated scenarios always lower; hand-shrunk ones may
    /// not (the minimizer treats non-lowering candidates as invalid).
    pub fn compile(&self) -> Result<CompiledScenario, ScenarioError> {
        let input = self.input_alphabet();
        let output = self.output_alphabet();
        let transducer = self.transducer.build_transducer(&input, &output)?;
        let tau1 = self.tau1.compile(&input)?;
        let tau2 = self.tau2.compile(&output)?;
        Ok(CompiledScenario {
            input,
            output,
            transducer,
            tau1,
            tau2,
        })
    }

    /// The full textual form of the case: header, alphabets, transducer
    /// table, both grammars. Stable across runs; the digest hashes this.
    pub fn render(&self) -> String {
        let mut out = format!(
            "case family={} index={} seed={:#018x}\n",
            self.family, self.index, self.seed
        );
        out.push_str(&format!(
            "input leaves={{{}}} binaries={{{}}}\n",
            self.leaves.join(","),
            self.binaries.join(",")
        ));
        out.push_str(&format!(
            "output leaves={{{}}} binaries={{{}}}\n",
            self.out_leaves.join(","),
            self.out_binaries.join(",")
        ));
        out.push_str(&self.transducer.render());
        out.push_str(&self.tau1.render());
        out.push_str(&self.tau2.render());
        out
    }

    /// FNV-1a (64-bit) digest of [`Scenario::render`] — the case identity
    /// pinned by the golden test.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.render().as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Generates case `index` of `family` under `corpus_seed`. Pure: the same
/// coordinates always yield the same scenario.
pub fn generate(corpus_seed: u64, family: Family, index: u64) -> Scenario {
    let seed = case_seed(corpus_seed, family, index);
    let mut rng = SmallRng::seed_from_u64(seed);
    let (leaves, binaries, out_leaves, out_binaries) = alphabets(&mut rng, family);
    let transducer = machine(
        &mut rng,
        family,
        &leaves,
        &binaries,
        &out_leaves,
        &out_binaries,
    );
    let tau1 = input_grammar(&mut rng, family, &leaves, &binaries);
    let tau2 = output_grammar(&mut rng, family, &out_leaves, &out_binaries);
    Scenario {
        family,
        index,
        seed,
        leaves,
        binaries,
        out_leaves,
        out_binaries,
        transducer,
        tau1,
        tau2,
    }
}

type Names = (Vec<String>, Vec<String>, Vec<String>, Vec<String>);

fn names(prefix: &str, n: usize) -> Vec<String> {
    (0..n).map(|i| format!("{prefix}{i}")).collect()
}

fn alphabets(rng: &mut SmallRng, family: Family) -> Names {
    match family {
        Family::SingleSymbol => (names("x", 1), names("f", 1), names("o", 1), names("g", 1)),
        _ => (
            names("x", rng.gen_range(1..3)),
            names("f", rng.gen_range(1..3)),
            names("o", rng.gen_range(1..3)),
            names("g", rng.gen_range(1..3)),
        ),
    }
}

/// A random walk move at level 1 with its natural symbol restriction:
/// down-moves only fire on binary nodes (elsewhere they would never fire
/// and only pad the table).
fn random_walk(rng: &mut SmallRng, binaries: &[String]) -> (Syms, Move) {
    match rng.below(5) {
        0 => (Syms::Any, Move::Stay),
        1 => (Syms::one(rng.choose(binaries)), Move::DownLeft),
        2 => (Syms::Binaries, Move::DownRight),
        3 => (Syms::Any, Move::UpLeft),
        _ => (Syms::Any, Move::UpRight),
    }
}

fn machine(
    rng: &mut SmallRng,
    family: Family,
    leaves: &[String],
    binaries: &[String],
    out_leaves: &[String],
    out_binaries: &[String],
) -> MachineSpec {
    let (n_states, silent_head, extra_rules) = match family {
        Family::SilentChains => (rng.gen_range(6..11), rng.gen_range(4..8), 2),
        Family::DeepNesting => (rng.gen_range(3..6), 1, 2),
        Family::DeadStates => (rng.gen_range(3..6), 1, 1),
        Family::SingleSymbol => (rng.gen_range(2..5), 1, 2),
        _ => (rng.gen_range(2..6), 0, 2),
    };
    let silent_head = silent_head.min(n_states - 1);
    let mut m = MachineSpec::new(format!("{family}"), 1);
    for s in names("q", n_states) {
        m.state(s, 1);
    }
    m.initial("q0");
    let q = |i: usize| format!("q{i}");

    // Spine: every state reaches the next, so the whole machine is live.
    for i in 0..n_states - 1 {
        if i < silent_head {
            // Forced silent step, plus (sometimes) a competing silent rule
            // on another symbol set — nondeterministic silent branching.
            let (on, mv) = random_walk(rng, binaries);
            m.walk(on, q(i), Guard::any(), mv, q(i + 1));
            if rng.gen_bool(0.4) {
                let target = rng.gen_range(0..i + 2); // may loop back: silent cycle
                let (on, mv) = random_walk(rng, binaries);
                m.walk(on, q(i), Guard::any(), mv, q(target));
            }
        } else if !out_binaries.is_empty() && rng.gen_bool(0.5) {
            let l = q(i + 1);
            let r = q(rng.gen_range(0..n_states));
            m.emit_node(
                Syms::Any,
                q(i),
                Guard::any(),
                rng.choose(out_binaries),
                l,
                r,
            );
        } else {
            let (on, mv) = random_walk(rng, binaries);
            m.walk(on, q(i), Guard::any(), mv, q(i + 1));
        }
    }

    // Terminal state always has a way to finish the output.
    m.emit_leaf(
        Syms::Any,
        q(n_states - 1),
        Guard::any(),
        rng.choose(out_leaves),
    );

    // Extra random rules for nondeterminism.
    for _ in 0..extra_rules {
        let i = rng.gen_range(0..n_states);
        match rng.below(3) {
            0 => {
                let (on, mv) = random_walk(rng, binaries);
                m.walk(on, q(i), Guard::any(), mv, q(rng.gen_range(0..n_states)));
            }
            1 => {
                let on = if rng.gen_bool(0.5) {
                    Syms::Leaves
                } else {
                    Syms::one(rng.choose(leaves))
                };
                m.emit_leaf(on, q(i), Guard::any(), rng.choose(out_leaves));
            }
            _ => {
                let l = q(rng.gen_range(0..n_states));
                let r = q(rng.gen_range(0..n_states));
                m.emit_node(
                    Syms::Any,
                    q(i),
                    Guard::any(),
                    rng.choose(out_binaries),
                    l,
                    r,
                );
            }
        }
    }

    if family == Family::DeadStates {
        // Deliberately unreachable machinery: states no spine rule targets.
        m.allow_unreachable();
        let d = rng.gen_range(1..3);
        for j in 0..d {
            let name = format!("dead{j}");
            m.state(name.clone(), 1);
            m.emit_leaf(Syms::Any, name, Guard::any(), rng.choose(out_leaves));
        }
    }
    m
}

/// A random input grammar. Node productions point to strictly higher
/// nonterminal indices (a DAG), and the last nonterminal always derives a
/// leaf, so the grammar is productive unless a family wants otherwise.
fn input_grammar(
    rng: &mut SmallRng,
    family: Family,
    leaves: &[String],
    binaries: &[String],
) -> TreeGrammar {
    let mut g = TreeGrammar::new("tau1", "N0");
    let n = match family {
        Family::DeepNesting => rng.gen_range(4..8),
        _ => rng.gen_range(1..4),
    };
    let nt = |i: usize| format!("N{i}");
    for i in 0..n {
        if i + 1 < n {
            // The spine production: one level deeper.
            let (l, r) = if rng.gen_bool(0.5) {
                (nt(i + 1), nt(rng.gen_range(i + 1..n)))
            } else {
                (nt(rng.gen_range(i + 1..n)), nt(i + 1))
            };
            g.node(nt(i), rng.choose(binaries), l, r);
            if family != Family::DeepNesting && rng.gen_bool(0.4) {
                g.leaf(nt(i), rng.choose(leaves));
            }
        } else {
            g.leaf(nt(i), rng.choose(leaves));
            if rng.gen_bool(0.3) {
                g.leaf(nt(i), rng.choose(leaves));
            }
        }
    }
    if family == Family::DeadStates {
        // Unproductive machinery: nonterminals deriving nothing, plus
        // productions that can never complete because they use them.
        let d = rng.gen_range(1..3);
        for j in 0..d {
            g.node(
                nt(rng.gen_range(0..n)),
                rng.choose(binaries),
                format!("Z{j}"),
                nt(0),
            );
        }
    }
    g
}

fn output_grammar(
    rng: &mut SmallRng,
    family: Family,
    out_leaves: &[String],
    out_binaries: &[String],
) -> TreeGrammar {
    match family {
        Family::NearEmpty => {
            // τ₂ accepts a single leaf — or nothing at all.
            let mut g = TreeGrammar::new("tau2", "S");
            if rng.gen_bool(0.8) {
                g.leaf("S", rng.choose(out_leaves));
            }
            g
        }
        Family::NearUniversal => {
            let al = Alphabet::ranked(out_leaves, out_binaries);
            let mut g = TreeGrammar::universal("tau2", &al);
            // Occasionally poke one hole: drop a single production.
            if g.prods.len() > 1 && rng.gen_bool(0.6) {
                let i = rng.gen_range(0..g.prods.len());
                g.prods.remove(i);
            }
            g
        }
        Family::DeepNesting => {
            // Depth-bounded: D0 ⊇ trees of depth ≤ bound.
            let bound = rng.gen_range(2..5);
            let mut g = TreeGrammar::new("tau2", "D0");
            let nt = |i: usize| format!("D{i}");
            for i in 0..bound {
                for s in out_leaves {
                    g.leaf(nt(i), s);
                }
                if i + 1 < bound {
                    for s in out_binaries {
                        g.node(nt(i), s, nt(i + 1), nt(i + 1));
                    }
                }
            }
            g
        }
        _ => {
            // A small random grammar, same DAG scheme as the input side.
            let mut g = TreeGrammar::new("tau2", "M0");
            let n = rng.gen_range(1..4);
            let nt = |i: usize| format!("M{i}");
            for i in 0..n {
                if i + 1 < n {
                    g.node(
                        nt(i),
                        rng.choose(out_binaries),
                        nt(i + 1),
                        nt(rng.gen_range(i + 1..n)),
                    );
                    if rng.gen_bool(0.5) {
                        g.leaf(nt(i), rng.choose(out_leaves));
                    }
                } else {
                    g.leaf(nt(i), rng.choose(out_leaves));
                }
            }
            g
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_pure() {
        for &fam in &FAMILIES {
            let a = generate(7, fam, 3);
            let b = generate(7, fam, 3);
            assert_eq!(a, b);
            assert_eq!(a.digest(), b.digest());
        }
    }

    #[test]
    fn every_generated_case_lowers() {
        for &fam in &FAMILIES {
            for i in 0..25 {
                let s = generate(42, fam, i);
                let c = s
                    .compile()
                    .unwrap_or_else(|e| panic!("{fam} #{i} failed to lower: {e}\n{}", s.render()));
                assert_eq!(c.transducer.k(), 1);
            }
        }
    }

    #[test]
    fn streams_are_independent() {
        // A case's identity depends only on its coordinates.
        let before = generate(9, Family::DeepNesting, 11);
        // "Interleaving" other cases (even other families) changes nothing.
        let _ = generate(9, Family::SilentChains, 11);
        let _ = generate(9, Family::DeepNesting, 12);
        let after = generate(9, Family::DeepNesting, 11);
        assert_eq!(before, after);
    }

    #[test]
    fn family_names_round_trip() {
        for &fam in &FAMILIES {
            assert_eq!(Family::from_name(fam.name()), Some(fam));
        }
        assert_eq!(Family::from_name("nope"), None);
    }

    #[test]
    fn single_symbol_is_single() {
        let s = generate(3, Family::SingleSymbol, 0);
        assert_eq!((s.leaves.len(), s.binaries.len()), (1, 1));
        assert_eq!((s.out_leaves.len(), s.out_binaries.len()), (1, 1));
    }
}
