//! Golden pins for the corpus' per-case RNG streams.
//!
//! Every case's identity is a pure function of `(corpus_seed, family,
//! index)` — adding a family, reordering generators, or growing a run must
//! never reshuffle existing cases. These digests freeze the first five
//! cases of every family at a fixed seed; if one changes, either the
//! generator for that family changed deliberately (update the pin and say
//! so in the commit) or case independence broke (fix the generator).

use xmltc_transducer_dsl::{case_seed, generate, Family, FAMILIES};

const GOLDEN_SEED: u64 = 0x901d;

const GOLDEN: [(Family, [u64; 5]); 6] = [
    (
        Family::SilentChains,
        [
            0x149cc6dc6fb2b478,
            0x357f6ab5b6c6b406,
            0x8018d1af4ff64b2f,
            0x0c665260fc04025a,
            0x553728a86132758b,
        ],
    ),
    (
        Family::DeepNesting,
        [
            0x06c36944c516b579,
            0xcd99fe0071a12a03,
            0xce6b35b6c50625aa,
            0x4b8dd18122c0e34b,
            0x3bd2e3834063d0ef,
        ],
    ),
    (
        Family::NearEmpty,
        [
            0xebc06d4f2e22c682,
            0xa85634a5db9e7bf4,
            0xa84a0f373b0fccf7,
            0xd5d5fb90cd9a23b0,
            0x89aaf9eaf56b549e,
        ],
    ),
    (
        Family::NearUniversal,
        [
            0xce8d74e3412f0aef,
            0x20b67bb3a027f254,
            0x86caf0d228e60d16,
            0x372504ae1f38957f,
            0x4945012c5eed6eae,
        ],
    ),
    (
        Family::SingleSymbol,
        [
            0x0b8bec3a7a531fd7,
            0xc52fa70b9e035774,
            0xd2a00bba0fd134c9,
            0x0920f01913f8da7d,
            0x027776fe44ca1774,
        ],
    ),
    (
        Family::DeadStates,
        [
            0xe782c661c0a7009c,
            0x6c39fbe0f980b926,
            0xcb44aca12e981c54,
            0xc59db59b2d487404,
            0x2b79c373b5bf7154,
        ],
    ),
];

#[test]
fn first_five_digests_are_pinned() {
    for (family, want) in GOLDEN {
        for (i, &w) in want.iter().enumerate() {
            let got = generate(GOLDEN_SEED, family, i as u64).digest();
            assert_eq!(
                got,
                w,
                "digest drift: {} #{i} is {got:#018x}, pinned {w:#018x}",
                family.name()
            );
        }
    }
}

#[test]
fn golden_covers_every_family() {
    assert_eq!(GOLDEN.len(), FAMILIES.len());
    for &fam in &FAMILIES {
        assert!(GOLDEN.iter().any(|(f, _)| *f == fam), "{fam} not pinned");
    }
}

#[test]
fn case_seeds_never_collide_across_families() {
    // The per-family salts keep streams disjoint: same (seed, index) in
    // two different families must never map to the same case seed.
    let mut seen = std::collections::HashSet::new();
    for &fam in &FAMILIES {
        for i in 0..100u64 {
            assert!(
                seen.insert(case_seed(GOLDEN_SEED, fam, i)),
                "case_seed collision at {fam} #{i}"
            );
        }
    }
}

#[test]
fn every_pinned_case_lowers_and_is_k1() {
    for (family, _) in GOLDEN {
        for i in 0..5 {
            let s = generate(GOLDEN_SEED, family, i);
            let c = s.compile().unwrap();
            assert_eq!(
                c.transducer.k(),
                1,
                "{} #{i} is not 1-pebble",
                family.name()
            );
        }
    }
}
