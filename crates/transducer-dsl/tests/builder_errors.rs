//! Error-path coverage for the declarative builder: every [`BuilderError`]
//! variant is provoked through the public API, matched structurally, and
//! its rendered message pinned — the DSL's error vocabulary is part of its
//! contract (reports and minimized triples quote these strings verbatim).

use std::sync::Arc;
use xmltc_transducer_dsl::{BuilderError, Guard, MachineSpec, Move, Syms};
use xmltc_trees::Alphabet;

fn alphas() -> (Arc<Alphabet>, Arc<Alphabet>) {
    (
        Alphabet::ranked(&["x", "y"], &["f"]),
        Alphabet::ranked(&["o"], &["g"]),
    )
}

/// Builds the transducer, expecting failure; returns the error.
fn err_of(m: &MachineSpec) -> BuilderError {
    let (i, o) = alphas();
    match m.build_transducer(&i, &o) {
        Ok(_) => panic!("spec must be rejected"),
        Err(e) => e,
    }
}

#[track_caller]
fn check(m: &MachineSpec, want: BuilderError, msg: &str) {
    let got = err_of(m);
    assert_eq!(got, want);
    assert_eq!(got.to_string(), msg);
}

#[test]
fn no_states() {
    let m = MachineSpec::new("m", 1);
    check(&m, BuilderError::NoStates, "spec declares no states");
}

#[test]
fn duplicate_state() {
    let mut m = MachineSpec::new("m", 1);
    m.state("q", 1).state("q", 1).initial("q");
    check(
        &m,
        BuilderError::DuplicateState { state: "q".into() },
        "state `q` declared twice",
    );
}

#[test]
fn level_out_of_range() {
    let mut m = MachineSpec::new("m", 1);
    m.state("hi", 2).initial("hi");
    check(
        &m,
        BuilderError::LevelOutOfRange {
            state: "hi".into(),
            level: 2,
            k: 1,
        },
        "state `hi` at level 2, outside 1..=1",
    );
}

#[test]
fn no_initial_state() {
    let mut m = MachineSpec::new("m", 1);
    m.state("q", 1);
    check(
        &m,
        BuilderError::NoInitialState,
        "no initial state designated",
    );
}

#[test]
fn unknown_initial_state() {
    let mut m = MachineSpec::new("m", 1);
    m.state("q", 1).initial("ghost");
    check(
        &m,
        BuilderError::UnknownInitialState {
            state: "ghost".into(),
        },
        "initial state `ghost` was never declared",
    );
}

#[test]
fn initial_not_level_one() {
    let mut m = MachineSpec::new("m", 2);
    m.state("p", 2).initial("p");
    check(
        &m,
        BuilderError::InitialNotLevelOne {
            state: "p".into(),
            level: 2,
        },
        "initial state `p` is at level 2, not 1",
    );
}

#[test]
fn unknown_state_in_rule() {
    let mut m = MachineSpec::new("m", 1);
    m.state("q", 1).initial("q");
    m.walk(Syms::Any, "q", Guard::any(), Move::Stay, "nowhere");
    check(
        &m,
        BuilderError::UnknownState {
            rule: 0,
            state: "nowhere".into(),
        },
        "rule 0 references undeclared state `nowhere`",
    );
}

#[test]
fn unknown_symbol_in_rule() {
    let mut m = MachineSpec::new("m", 1);
    m.state("q", 1).initial("q");
    m.emit_leaf(Syms::one("zap"), "q", Guard::any(), "o");
    check(
        &m,
        BuilderError::UnknownSymbol {
            rule: 0,
            symbol: "zap".into(),
        },
        "rule 0 references unknown symbol `zap`",
    );
}

#[test]
fn empty_symbol_set() {
    let mut m = MachineSpec::new("m", 1);
    m.state("q", 1).initial("q");
    m.emit_leaf(Syms::AnyOf(Vec::new()), "q", Guard::any(), "o");
    check(
        &m,
        BuilderError::EmptySymbolSet { rule: 0 },
        "rule 0 covers no symbols",
    );
}

#[test]
fn guard_too_deep() {
    let mut m = MachineSpec::new("m", 1);
    m.state("q", 1).initial("q");
    m.emit_leaf(Syms::Any, "q", Guard::present(1), "o");
    check(
        &m,
        BuilderError::GuardTooDeep {
            rule: 0,
            state: "q".into(),
            level: 1,
            tested: 1,
        },
        "rule 0: guard on `q` (level 1) tests pebble 1; \
         only pebbles below the state's level may be tested",
    );
}

#[test]
fn bad_pebble_lift_pick_from_level_one() {
    // pick-current must start at level ≥ 2: lifting the only pebble is
    // exactly the stack-discipline violation the DSL exists to catch.
    let mut m = MachineSpec::new("m", 2);
    m.state("q", 1).state("r", 1).initial("q");
    m.walk(Syms::Any, "q", Guard::any(), Move::PickCurrent, "r");
    check(
        &m,
        BuilderError::BadPebbleLift {
            rule: 0,
            mv: Move::PickCurrent,
            from: "q".into(),
            from_level: 1,
            to: "r".into(),
            to_level: 1,
        },
        "rule 0: pick-current from `q` (level 1) to `r` (level 1) \
         breaks the pebble stack discipline",
    );
}

#[test]
fn bad_pebble_lift_place_skipping_a_level() {
    // place-new must enter a state exactly one level up.
    let mut m = MachineSpec::new("m", 3);
    m.state("q", 1).state("sky", 3).initial("q");
    m.walk(Syms::Any, "q", Guard::any(), Move::PlaceNew, "sky");
    check(
        &m,
        BuilderError::BadPebbleLift {
            rule: 0,
            mv: Move::PlaceNew,
            from: "q".into(),
            from_level: 1,
            to: "sky".into(),
            to_level: 3,
        },
        "rule 0: place-new from `q` (level 1) to `sky` (level 3) \
         breaks the pebble stack discipline",
    );
}

#[test]
fn level_mismatch_on_plain_move() {
    let mut m = MachineSpec::new("m", 2);
    m.state("q", 1).state("up", 2).initial("q");
    m.walk(Syms::Any, "q", Guard::any(), Move::Stay, "up");
    check(
        &m,
        BuilderError::LevelMismatch {
            rule: 0,
            mv: Move::Stay,
            from: "q".into(),
            from_level: 1,
            to: "up".into(),
            to_level: 2,
        },
        "rule 0: stay from `q` (level 1) may not change level \
         (target `up` is at level 2)",
    );
}

#[test]
fn branch_level_mismatch() {
    let mut m = MachineSpec::new("m", 2);
    m.state("q", 1).state("b", 2).initial("q");
    m.emit_node(Syms::Any, "q", Guard::any(), "g", "q", "b");
    check(
        &m,
        BuilderError::BranchLevelMismatch {
            rule: 0,
            state: "q".into(),
            level: 1,
            branch: "b".into(),
            branch_level: 2,
        },
        "rule 0: branch `b` (level 2) must stay at `q`'s level 1",
    );
}

#[test]
fn arity_mismatch() {
    use xmltc_trees::Rank;
    let mut m = MachineSpec::new("m", 1);
    m.state("q", 1).initial("q");
    m.emit_leaf(Syms::Any, "q", Guard::any(), "g");
    check(
        &m,
        BuilderError::ArityMismatch {
            rule: 0,
            symbol: "g".into(),
            expected: Rank::Leaf,
            actual: Rank::Binary,
        },
        "rule 0: output symbol `g` has rank Binary, the action needs rank Leaf",
    );
}

#[test]
fn wrong_action_kind() {
    let mut m = MachineSpec::new("m", 1);
    m.state("q", 1).initial("q");
    m.accept(Syms::Any, "q", Guard::any());
    check(
        &m,
        BuilderError::WrongActionKind {
            rule: 0,
            expected: "transducer",
        },
        "rule 0: action not allowed in a transducer",
    );
}

#[test]
fn unreachable_state() {
    let mut m = MachineSpec::new("m", 1);
    m.state("q", 1).state("island", 1).initial("q");
    m.emit_leaf(Syms::Any, "q", Guard::any(), "o");
    check(
        &m,
        BuilderError::UnreachableState {
            state: "island".into(),
        },
        "state `island` is unreachable from the initial state",
    );
}

#[test]
fn internal_message_shape() {
    // `Internal` cannot be provoked through the public API (it marks DSL
    // bugs); pin its rendering directly.
    assert_eq!(
        BuilderError::Internal("boom".into()).to_string(),
        "internal lowering error: boom"
    );
}
