//! MSO formula syntax and reference (direct) semantics.

use std::collections::BTreeMap;
use std::fmt;
use xmltc_trees::{BinaryTree, NodeId, Symbol};

/// Variable order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VarKind {
    /// First-order: ranges over nodes.
    First,
    /// Second-order (monadic): ranges over node sets.
    Second,
}

/// An MSO formula over binary trees represented as structures
/// `(D, succ1, succ2, (R_a)_{a∈Σ})`. Variables are referenced by name and
/// resolved lexically; a well-formed sentence has no free variables.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Formula {
    /// `R_a(x)`: node `x` is labeled `a`.
    Label(String, Symbol),
    /// `succ1(x, y)`: `y` is the left child of `x`.
    Succ1(String, String),
    /// `succ2(x, y)`: `y` is the right child of `x`.
    Succ2(String, String),
    /// `x = y` (both first-order).
    Eq(String, String),
    /// `x ∈ S` (first-order in second-order).
    In(String, String),
    /// `root(x)`.
    Root(String),
    /// `leaf(x)`.
    Leaf(String),
    /// Truth.
    True,
    /// Falsity.
    False,
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Existential quantification.
    Exists(VarKind, String, Box<Formula>),
    /// Universal quantification.
    Forall(VarKind, String, Box<Formula>),
}

impl Formula {
    /// `¬φ`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// `φ ∧ ψ` (with unit simplification).
    pub fn and(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::True, r) | (r, Formula::True) => r,
            (Formula::False, _) | (_, Formula::False) => Formula::False,
            (a, b) => Formula::And(Box::new(a), Box::new(b)),
        }
    }

    /// `φ ∨ ψ` (with unit simplification).
    pub fn or(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::False, r) | (r, Formula::False) => r,
            (Formula::True, _) | (_, Formula::True) => Formula::True,
            (a, b) => Formula::Or(Box::new(a), Box::new(b)),
        }
    }

    /// `φ ⇒ ψ`.
    pub fn implies(self, other: Formula) -> Formula {
        Formula::Implies(Box::new(self), Box::new(other))
    }

    /// `∃x. φ` (first-order).
    pub fn exists1(name: impl Into<String>, body: Formula) -> Formula {
        Formula::Exists(VarKind::First, name.into(), Box::new(body))
    }

    /// `∀x. φ` (first-order).
    pub fn forall1(name: impl Into<String>, body: Formula) -> Formula {
        Formula::Forall(VarKind::First, name.into(), Box::new(body))
    }

    /// `∃S. φ` (second-order).
    pub fn exists2(name: impl Into<String>, body: Formula) -> Formula {
        Formula::Exists(VarKind::Second, name.into(), Box::new(body))
    }

    /// `∀S. φ` (second-order).
    pub fn forall2(name: impl Into<String>, body: Formula) -> Formula {
        Formula::Forall(VarKind::Second, name.into(), Box::new(body))
    }

    /// Conjunction of many formulas.
    pub fn all(parts: impl IntoIterator<Item = Formula>) -> Formula {
        parts.into_iter().fold(Formula::True, Formula::and)
    }

    /// Quantifier depth (for diagnostics).
    pub fn quantifier_depth(&self) -> usize {
        match self {
            Formula::Not(a) => a.quantifier_depth(),
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                a.quantifier_depth().max(b.quantifier_depth())
            }
            Formula::Exists(_, _, a) | Formula::Forall(_, _, a) => 1 + a.quantifier_depth(),
            _ => 0,
        }
    }

    /// Formula size (node count, for diagnostics).
    pub fn size(&self) -> usize {
        match self {
            Formula::Not(a) => 1 + a.size(),
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                1 + a.size() + b.size()
            }
            Formula::Exists(_, _, a) | Formula::Forall(_, _, a) => 1 + a.size(),
            _ => 1,
        }
    }

    /// Reference semantics by direct recursion. `env` maps in-scope
    /// variables to values. Second-order quantifiers enumerate all `2^|t|`
    /// subsets — use tiny trees.
    pub fn eval(&self, t: &BinaryTree, env: &mut BTreeMap<String, Value>) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Label(x, a) => t.symbol(env[x].node()) == *a,
            Formula::Succ1(x, y) => {
                t.children(env[x].node()).map(|(l, _)| l) == Some(env[y].node())
            }
            Formula::Succ2(x, y) => {
                t.children(env[x].node()).map(|(_, r)| r) == Some(env[y].node())
            }
            Formula::Eq(x, y) => env[x].node() == env[y].node(),
            Formula::In(x, s) => env[s].set().contains(&env[x].node()),
            Formula::Root(x) => t.is_root(env[x].node()),
            Formula::Leaf(x) => t.is_leaf(env[x].node()),
            Formula::Not(a) => !a.eval(t, env),
            Formula::And(a, b) => a.eval(t, env) && b.eval(t, env),
            Formula::Or(a, b) => a.eval(t, env) || b.eval(t, env),
            Formula::Implies(a, b) => !a.eval(t, env) || b.eval(t, env),
            Formula::Exists(kind, name, body) => self::quantify(*kind, name, body, t, env, false),
            Formula::Forall(kind, name, body) => !self::quantify(*kind, name, body, t, env, true),
        }
    }
}

/// A variable valuation: a node or a node set.
#[derive(Clone, Debug)]
pub enum Value {
    /// First-order value.
    Node(NodeId),
    /// Second-order value.
    Set(Vec<NodeId>),
}

impl Value {
    fn node(&self) -> NodeId {
        match self {
            Value::Node(n) => *n,
            Value::Set(_) => panic!("second-order variable used as first-order"),
        }
    }

    fn set(&self) -> &Vec<NodeId> {
        match self {
            Value::Set(s) => s,
            Value::Node(_) => panic!("first-order variable used as second-order"),
        }
    }
}

/// Shared body of ∃/∀: returns "∃ a witness making body eval to `!negate`".
/// For `Forall` we ask for a counterexample (`negate = true`) and invert.
fn quantify(
    kind: VarKind,
    name: &str,
    body: &Formula,
    t: &BinaryTree,
    env: &mut BTreeMap<String, Value>,
    negate: bool,
) -> bool {
    let saved = env.get(name).cloned();
    let result = match kind {
        VarKind::First => (0..t.len() as u32).any(|i| {
            env.insert(name.to_string(), Value::Node(NodeId(i)));
            body.eval(t, env) != negate
        }),
        VarKind::Second => {
            let n = t.len();
            assert!(n <= 20, "direct SO evaluation limited to 20-node trees");
            (0u32..(1u32 << n)).any(|bits| {
                let set: Vec<NodeId> = (0..n as u32)
                    .filter(|i| bits >> i & 1 == 1)
                    .map(NodeId)
                    .collect();
                env.insert(name.to_string(), Value::Set(set));
                body.eval(t, env) != negate
            })
        }
    };
    match saved {
        Some(v) => {
            env.insert(name.to_string(), v);
        }
        None => {
            env.remove(name);
        }
    }
    result
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Label(x, a) => write!(f, "R[{}]({x})", a.0),
            Formula::Succ1(x, y) => write!(f, "succ1({x},{y})"),
            Formula::Succ2(x, y) => write!(f, "succ2({x},{y})"),
            Formula::Eq(x, y) => write!(f, "{x}={y}"),
            Formula::In(x, s) => write!(f, "{x}∈{s}"),
            Formula::Root(x) => write!(f, "root({x})"),
            Formula::Leaf(x) => write!(f, "leaf({x})"),
            Formula::Not(a) => write!(f, "¬({a})"),
            Formula::And(a, b) => write!(f, "({a} ∧ {b})"),
            Formula::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Formula::Implies(a, b) => write!(f, "({a} ⇒ {b})"),
            Formula::Exists(VarKind::First, x, a) => write!(f, "∃{x}.({a})"),
            Formula::Exists(VarKind::Second, x, a) => write!(f, "∃{x}⊆D.({a})"),
            Formula::Forall(VarKind::First, x, a) => write!(f, "∀{x}.({a})"),
            Formula::Forall(VarKind::Second, x, a) => write!(f, "∀{x}⊆D.({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xmltc_trees::Alphabet;

    fn alpha() -> Arc<Alphabet> {
        Alphabet::ranked(&["x", "y"], &["f"])
    }

    fn ev(f: &Formula, t: &BinaryTree) -> bool {
        f.eval(t, &mut BTreeMap::new())
    }

    #[test]
    fn simple_sentences() {
        let al = alpha();
        let x = al.get("x").unwrap();
        let y = al.get("y").unwrap();
        let t = BinaryTree::parse("f(x, y)", &al).unwrap();
        // ∃v. R_y(v)
        let some_y = Formula::exists1("v", Formula::Label("v".into(), y));
        assert!(ev(&some_y, &t));
        // ∀v. leaf(v) ⇒ R_x(v)
        let all_leaves_x = Formula::forall1(
            "v",
            Formula::Leaf("v".into()).implies(Formula::Label("v".into(), x)),
        );
        assert!(!ev(&all_leaves_x, &t));
        let t2 = BinaryTree::parse("f(x, x)", &al).unwrap();
        assert!(ev(&all_leaves_x, &t2));
    }

    #[test]
    fn succ_and_root() {
        let al = alpha();
        let t = BinaryTree::parse("f(x, y)", &al).unwrap();
        // ∃u∃v. root(u) ∧ succ1(u,v) ∧ leaf(v)
        let f = Formula::exists1(
            "u",
            Formula::exists1(
                "v",
                Formula::Root("u".into())
                    .and(Formula::Succ1("u".into(), "v".into()))
                    .and(Formula::Leaf("v".into())),
            ),
        );
        assert!(ev(&f, &t));
        let single = BinaryTree::parse("x", &al).unwrap();
        assert!(!ev(&f, &single));
    }

    #[test]
    fn second_order_descendant() {
        // The warm-up from the paper: y is a descendant of x iff y belongs
        // to every succ-closed set containing x. Here: check "every node is
        // a descendant of the root".
        let al = alpha();
        let closed = Formula::forall1(
            "u",
            Formula::forall1(
                "v",
                Formula::In("u".into(), "S".into())
                    .and(
                        Formula::Succ1("u".into(), "v".into())
                            .or(Formula::Succ2("u".into(), "v".into())),
                    )
                    .implies(Formula::In("v".into(), "S".into())),
            ),
        );
        let descendant_of_root = Formula::forall1(
            "y",
            Formula::forall2(
                "S",
                Formula::exists1(
                    "r",
                    Formula::Root("r".into()).and(Formula::In("r".into(), "S".into())),
                )
                .and(closed.clone())
                .implies(Formula::In("y".into(), "S".into())),
            ),
        );
        let t = BinaryTree::parse("f(x, f(x, y))", &al).unwrap();
        assert!(ev(&descendant_of_root, &t));
    }

    #[test]
    fn size_and_depth() {
        let f = Formula::exists1("v", Formula::forall2("S", Formula::True));
        assert_eq!(f.quantifier_depth(), 2);
        assert!(f.size() >= 3);
    }

    #[test]
    fn display_smoke() {
        let f = Formula::exists1("v", Formula::Root("v".into()).not());
        let s = f.to_string();
        assert!(s.contains('∃') && s.contains("root"));
    }
}
