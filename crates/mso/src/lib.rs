//! # xmltc-mso
//!
//! Monadic second-order logic (MSO) on complete binary trees, compiled to
//! tree automata — the engine behind Theorem 4.7 of the paper ("k-pebble
//! tree automata accept precisely the regular tree languages"), whose proof
//! translates a k-pebble automaton into an MSO sentence and appeals to the
//! classical equivalence MSO ≡ regular tree languages.
//!
//! This crate makes that appeal *effective*, MONA-style:
//!
//! * Trees are represented as first-order structures
//!   `(D, succ1, succ2, (R_a)_{a∈Σ})` exactly as in the proof of
//!   Theorem 4.7.
//! * [`Formula`]s have first-order variables (ranging over nodes) and
//!   second-order variables (ranging over node *sets*), with atoms
//!   `R_a(x)`, `succ1(x,y)`, `succ2(x,y)`, `x = y`, `x ∈ S`, `root(x)`,
//!   `leaf(x)`, closed under `¬ ∧ ∨ ⇒ ∃ ∀` at both orders.
//! * Compilation ([`compile_sentence`]) produces a [`SymTa`]: a tree
//!   automaton over `Σ × {0,1}ⁿ` whose transitions carry **cube guards**
//!   (mask/bits pairs over the variable tracks) instead of an exploded
//!   alphabet. Negation determinizes by subset construction with on-demand
//!   minterm enumeration; quantifiers project tracks (first-order ones
//!   conjoin a singleton-track constraint first).
//! * A closed formula compiles down to zero tracks and converts to a plain
//!   [`xmltc_automata::Nta`] over `Σ`.
//! * A direct recursive [`eval`](Formula::eval) provides reference
//!   semantics for differential testing (exponential in the tree size for
//!   second-order quantifiers — test-sized trees only).
//!
//! The compilation is non-elementary in quantifier alternation depth, as it
//! must be (Theorem 4.8 gives the matching lower bound for the pebble
//! pipeline built on top of it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod cube;
pub mod formula;
pub mod symta;

pub use compile::{compile_sentence, compile_sentence_limited, CompileError, CompileStats};
pub use cube::Cube;
pub use formula::{Formula, VarKind};
pub use symta::SymTa;
