//! Compilation of MSO formulas to symbolic tree automata.

use crate::cube::Cube;
use crate::formula::{Formula, VarKind};
use crate::symta::SymTa;
use std::fmt;
use std::sync::Arc;
use xmltc_automata::{Nta, State};
use xmltc_obs as obs;
use xmltc_trees::{Alphabet, Symbol};

/// Compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A variable was used without an enclosing binder.
    Unbound(String),
    /// A variable was used at the wrong order.
    WrongKind(String),
    /// More than 64 variables in scope at one point.
    TooManyVariables,
    /// The intermediate automaton exceeded the configured state budget —
    /// the non-elementary blow-up in action (Theorem 4.8).
    StateLimit {
        /// The configured budget.
        limit: u32,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Unbound(x) => write!(f, "unbound variable `{x}`"),
            CompileError::WrongKind(x) => write!(f, "variable `{x}` used at the wrong order"),
            CompileError::TooManyVariables => write!(f, "more than 64 variables in scope"),
            CompileError::StateLimit { limit } => {
                write!(f, "intermediate automaton exceeded {limit} states")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Resource accounting for a compilation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileStats {
    /// Largest intermediate automaton (states).
    pub max_states: u32,
    /// Number of determinizations performed (each potentially exponential).
    pub determinizations: u32,
    /// Total automaton operations.
    pub operations: u32,
}

struct Ctx {
    alphabet: Arc<Alphabet>,
    scope: Vec<(String, VarKind)>,
    stats: CompileStats,
    state_limit: u32,
}

impl Ctx {
    fn lookup(&self, name: &str, kind: VarKind) -> Result<usize, CompileError> {
        let (i, (_, k)) = self
            .scope
            .iter()
            .enumerate()
            .rev()
            .find(|(_, (n, _))| n == name)
            .ok_or_else(|| CompileError::Unbound(name.to_string()))?;
        if *k != kind {
            return Err(CompileError::WrongKind(name.to_string()));
        }
        Ok(i)
    }

    fn note(&mut self, a: &SymTa) -> Result<(), CompileError> {
        self.stats.operations += 1;
        self.stats.max_states = self.stats.max_states.max(a.n_states());
        if a.n_states() > self.state_limit {
            return Err(CompileError::StateLimit {
                limit: self.state_limit,
            });
        }
        Ok(())
    }

    fn complement(&mut self, a: &SymTa) -> Result<SymTa, CompileError> {
        self.stats.determinizations += 1;
        let c = a
            .complement_limited(self.state_limit)
            .ok_or(CompileError::StateLimit {
                limit: self.state_limit,
            })?;
        self.note(&c)?;
        Ok(c)
    }
}

/// Compiles a *closed* formula to an equivalent tree automaton over `Σ`.
pub fn compile_sentence(f: &Formula, alphabet: &Arc<Alphabet>) -> Result<Nta, CompileError> {
    compile_sentence_limited(f, alphabet, u32::MAX).map(|(a, _)| a)
}

/// [`compile_sentence`] with a state budget and resource statistics. The
/// budget bounds every intermediate automaton; exceeding it aborts with
/// [`CompileError::StateLimit`] instead of consuming unbounded memory —
/// essential when demonstrating the Theorem 4.8 blow-up.
pub fn compile_sentence_limited(
    f: &Formula,
    alphabet: &Arc<Alphabet>,
    state_limit: u32,
) -> Result<(Nta, CompileStats), CompileError> {
    let _span = obs::span("mso.compile");
    let mut ctx = Ctx {
        alphabet: Arc::clone(alphabet),
        scope: Vec::new(),
        stats: CompileStats::default(),
        state_limit,
    };
    let result = compile(f, &mut ctx);
    // Record how far the compilation got even when it aborts on its state
    // budget — the report then shows the partial progress.
    obs::record("mso.max_states", ctx.stats.max_states as u64);
    obs::record("mso.determinizations", ctx.stats.determinizations as u64);
    obs::record("mso.operations", ctx.stats.operations as u64);
    let a = result?;
    debug_assert_eq!(a.n_tracks(), 0, "sentence left free tracks");
    Ok((a.to_nta(), ctx.stats))
}

fn compile(f: &Formula, ctx: &mut Ctx) -> Result<SymTa, CompileError> {
    let n = ctx.scope.len();
    let a = match f {
        Formula::True => SymTa::top(&ctx.alphabet, n),
        Formula::False => SymTa::new(&ctx.alphabet, n, 0),
        Formula::Label(x, sym) => atom_label(ctx, ctx.lookup(x, VarKind::First)?, *sym),
        Formula::Root(x) => atom_root(ctx, ctx.lookup(x, VarKind::First)?),
        Formula::Leaf(x) => atom_leaf(ctx, ctx.lookup(x, VarKind::First)?),
        Formula::Eq(x, y) => atom_eq(
            ctx,
            ctx.lookup(x, VarKind::First)?,
            ctx.lookup(y, VarKind::First)?,
        ),
        Formula::In(x, s) => atom_in(
            ctx,
            ctx.lookup(x, VarKind::First)?,
            ctx.lookup(s, VarKind::Second)?,
        ),
        Formula::Succ1(x, y) => atom_succ(
            ctx,
            ctx.lookup(x, VarKind::First)?,
            ctx.lookup(y, VarKind::First)?,
            true,
        ),
        Formula::Succ2(x, y) => atom_succ(
            ctx,
            ctx.lookup(x, VarKind::First)?,
            ctx.lookup(y, VarKind::First)?,
            false,
        ),
        Formula::Not(a) => {
            let inner = compile(a, ctx)?;
            ctx.complement(&inner)?
        }
        Formula::And(a, b) => {
            let left = compile(a, ctx)?;
            let right = compile(b, ctx)?;
            left.intersect(&right)
        }
        Formula::Or(a, b) => {
            let left = compile(a, ctx)?;
            let right = compile(b, ctx)?;
            left.union(&right)
        }
        Formula::Implies(a, b) => {
            let left = compile(a, ctx)?;
            let not_left = ctx.complement(&left)?;
            let right = compile(b, ctx)?;
            not_left.union(&right)
        }
        Formula::Exists(kind, name, body) => {
            let track = ctx.scope.len();
            if track >= 64 {
                return Err(CompileError::TooManyVariables);
            }
            ctx.scope.push((name.clone(), *kind));
            let inner = compile(body, ctx);
            ctx.scope.pop();
            let inner = inner?;
            let constrained = match kind {
                VarKind::First => {
                    inner.intersect(&SymTa::singleton(&ctx.alphabet, track + 1, track))
                }
                VarKind::Second => inner,
            };
            constrained.project(track).trim()
        }
        Formula::Forall(kind, name, body) => {
            // ∀v.φ  =  ¬∃v.¬φ
            let rewritten =
                Formula::Exists(*kind, name.clone(), Box::new(Formula::Not(body.clone())));
            let inner = compile(&rewritten, ctx)?;
            ctx.complement(&inner)?
        }
    };
    ctx.note(&a)?;
    Ok(a)
}

/// Weak `R_a(x)`: every marked node is labeled `a` (exact under the
/// singleton discipline enforced at the quantifier).
fn atom_label(ctx: &Ctx, track: usize, sym: Symbol) -> SymTa {
    let n = ctx.scope.len();
    let mut a = SymTa::new(&ctx.alphabet, n, 1);
    let q = State(0);
    for s in ctx.alphabet.leaves() {
        if s == sym {
            a.add_leaf(s, Cube::TOP, q);
        } else {
            a.add_leaf(s, Cube::single(track, false), q);
        }
    }
    for s in ctx.alphabet.binaries() {
        if s == sym {
            a.add_node(s, Cube::TOP, q, q, q);
        } else {
            a.add_node(s, Cube::single(track, false), q, q, q);
        }
    }
    a.add_final(q);
    a
}

/// `root(x)`: the unique marked node is the root.
fn atom_root(ctx: &Ctx, track: usize) -> SymTa {
    let n = ctx.scope.len();
    let mut a = SymTa::new(&ctx.alphabet, n, 2);
    let none = State(0);
    let here = State(1);
    for s in ctx.alphabet.leaves() {
        a.add_leaf(s, Cube::single(track, false), none);
        a.add_leaf(s, Cube::single(track, true), here);
    }
    for s in ctx.alphabet.binaries() {
        a.add_node(s, Cube::single(track, false), none, none, none);
        a.add_node(s, Cube::single(track, true), none, none, here);
    }
    a.add_final(here);
    a
}

/// Weak `leaf(x)`: every marked node is a leaf.
fn atom_leaf(ctx: &Ctx, track: usize) -> SymTa {
    let n = ctx.scope.len();
    let mut a = SymTa::new(&ctx.alphabet, n, 1);
    let q = State(0);
    for s in ctx.alphabet.leaves() {
        a.add_leaf(s, Cube::TOP, q);
    }
    for s in ctx.alphabet.binaries() {
        a.add_node(s, Cube::single(track, false), q, q, q);
    }
    a.add_final(q);
    a
}

/// Weak `x = y`: the two tracks agree at every node.
fn atom_eq(ctx: &Ctx, tx: usize, ty: usize) -> SymTa {
    let n = ctx.scope.len();
    let mut a = SymTa::new(&ctx.alphabet, n, 1);
    let q = State(0);
    let both = |v: bool| Cube::single(tx, v).and_single(ty, v);
    for s in ctx.alphabet.leaves() {
        a.add_leaf(s, both(false), q);
        a.add_leaf(s, both(true), q);
    }
    for s in ctx.alphabet.binaries() {
        a.add_node(s, both(false), q, q, q);
        a.add_node(s, both(true), q, q, q);
    }
    a.add_final(q);
    a
}

/// Weak `x ∈ S`: wherever `x` is marked, `S` is too.
fn atom_in(ctx: &Ctx, tx: usize, ts: usize) -> SymTa {
    let n = ctx.scope.len();
    let mut a = SymTa::new(&ctx.alphabet, n, 1);
    let q = State(0);
    let x0 = Cube::single(tx, false);
    let x1s1 = Cube::single(tx, true).and_single(ts, true);
    for s in ctx.alphabet.leaves() {
        a.add_leaf(s, x0, q);
        a.add_leaf(s, x1s1, q);
    }
    for s in ctx.alphabet.binaries() {
        a.add_node(s, x0, q, q, q);
        a.add_node(s, x1s1, q, q, q);
    }
    a.add_final(q);
    a
}

/// `succ1(x,y)` / `succ2(x,y)`: the `y`-marked node is the left (`left =
/// true`) or right child of the `x`-marked node. Exact under singletons.
fn atom_succ(ctx: &Ctx, tx: usize, ty: usize, left: bool) -> SymTa {
    let n = ctx.scope.len();
    let mut a = SymTa::new(&ctx.alphabet, n, 3);
    let blank = State(0); // no marks in the subtree
    let y_here = State(1); // y marked exactly at the subtree root
    let done = State(2); // matched pair inside the subtree
    let c = |xv: bool, yv: bool| Cube::single(tx, xv).and_single(ty, yv);
    for s in ctx.alphabet.leaves() {
        a.add_leaf(s, c(false, false), blank);
        a.add_leaf(s, c(false, true), y_here);
    }
    for s in ctx.alphabet.binaries() {
        a.add_node(s, c(false, false), blank, blank, blank);
        a.add_node(s, c(false, false), done, blank, done);
        a.add_node(s, c(false, false), blank, done, done);
        a.add_node(s, c(false, true), blank, blank, y_here);
        if left {
            a.add_node(s, c(true, false), y_here, blank, done);
        } else {
            a.add_node(s, c(true, false), blank, y_here, done);
        }
    }
    a.add_final(done);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use xmltc_trees::BinaryTree;

    fn alpha() -> Arc<Alphabet> {
        Alphabet::ranked(&["x", "y"], &["f"])
    }

    fn check_agreement(f: &Formula, trees: &[&str]) {
        let al = alpha();
        let nta = compile_sentence(f, &al).expect("compiles");
        for src in trees {
            let t = BinaryTree::parse(src, &al).unwrap();
            let direct = f.eval(&t, &mut BTreeMap::new());
            let automaton = nta.accepts(&t).unwrap();
            assert_eq!(automaton, direct, "disagreement on {src} for {f}");
        }
    }

    const TREES: [&str; 7] = [
        "x",
        "y",
        "f(x, y)",
        "f(y, x)",
        "f(x, f(x, x))",
        "f(f(y, x), x)",
        "f(f(x, x), f(x, y))",
    ];

    #[test]
    fn exists_label() {
        let al = alpha();
        let y = al.get("y").unwrap();
        let f = Formula::exists1("v", Formula::Label("v".into(), y));
        check_agreement(&f, &TREES);
    }

    #[test]
    fn forall_label() {
        let al = alpha();
        let x = al.get("x").unwrap();
        let f = Formula::forall1(
            "v",
            Formula::Leaf("v".into()).implies(Formula::Label("v".into(), x)),
        );
        check_agreement(&f, &TREES);
    }

    #[test]
    fn root_and_succ() {
        let al = alpha();
        let y = al.get("y").unwrap();
        // "the right child of the root is labeled y"
        let f = Formula::exists1(
            "u",
            Formula::exists1(
                "v",
                Formula::Root("u".into())
                    .and(Formula::Succ2("u".into(), "v".into()))
                    .and(Formula::Label("v".into(), y)),
            ),
        );
        check_agreement(&f, &TREES);
    }

    #[test]
    fn succ1_exact() {
        let al = alpha();
        let x = al.get("x").unwrap();
        // "some node's left child is labeled x"
        let f = Formula::exists1(
            "u",
            Formula::exists1(
                "v",
                Formula::Succ1("u".into(), "v".into()).and(Formula::Label("v".into(), x)),
            ),
        );
        check_agreement(&f, &TREES);
    }

    #[test]
    fn equality_and_negation() {
        let _al = alpha();
        // "there exist two distinct leaves" — true iff the tree is not a
        // single node.
        let f = Formula::exists1(
            "u",
            Formula::exists1(
                "v",
                Formula::Leaf("u".into())
                    .and(Formula::Leaf("v".into()))
                    .and(Formula::Eq("u".into(), "v".into()).not()),
            ),
        );
        check_agreement(&f, &TREES);
    }

    #[test]
    fn second_order_reachability() {
        // "every node with label y belongs to every succ-closed set
        // containing the root" — i.e. every y is a descendant of the root:
        // trivially true; and its negation is always false. Exercises ∀S.
        let al = alpha();
        let y = al.get("y").unwrap();
        let closed = Formula::forall1(
            "u",
            Formula::forall1(
                "v",
                Formula::In("u".into(), "S".into())
                    .and(
                        Formula::Succ1("u".into(), "v".into())
                            .or(Formula::Succ2("u".into(), "v".into())),
                    )
                    .implies(Formula::In("v".into(), "S".into())),
            ),
        );
        let f = Formula::forall1(
            "w",
            Formula::forall2(
                "S",
                Formula::exists1(
                    "r",
                    Formula::Root("r".into()).and(Formula::In("r".into(), "S".into())),
                )
                .and(closed)
                .implies(
                    Formula::Label("w".into(), y).implies(Formula::In("w".into(), "S".into())),
                ),
            ),
        );
        // Direct SO evaluation is exponential: restrict to small trees.
        check_agreement(&f, &["x", "y", "f(x, y)", "f(y, x)"]);
    }

    #[test]
    fn and_or_implies() {
        let al = alpha();
        let x = al.get("x").unwrap();
        let y = al.get("y").unwrap();
        let some = |s| Formula::exists1("v", Formula::Label("v".into(), s));
        check_agreement(&some(x).clone().and(some(y).clone()), &TREES);
        check_agreement(&some(x).clone().or(some(y).clone()), &TREES);
        check_agreement(&some(x).implies(some(y)), &TREES);
    }

    #[test]
    fn unbound_and_kind_errors() {
        let al = alpha();
        let x = al.get("x").unwrap();
        assert!(matches!(
            compile_sentence(&Formula::Label("v".into(), x), &al),
            Err(CompileError::Unbound(_))
        ));
        let f = Formula::exists2("S", Formula::Label("S".into(), x));
        assert!(matches!(
            compile_sentence(&f, &al),
            Err(CompileError::WrongKind(_))
        ));
    }

    #[test]
    fn state_limit_aborts() {
        let al = alpha();
        let x = al.get("x").unwrap();
        // Something with a few alternations so intermediate automata have
        // more than one state.
        let f = Formula::forall1(
            "u",
            Formula::exists1(
                "v",
                Formula::Eq("u".into(), "v".into()).and(Formula::Label("v".into(), x)),
            )
            .or(Formula::Leaf("u".into()).not()),
        );
        assert!(matches!(
            compile_sentence_limited(&f, &al, 1),
            Err(CompileError::StateLimit { limit: 1 })
        ));
        let (nta, stats) = compile_sentence_limited(&f, &al, 10_000).unwrap();
        assert!(stats.max_states >= 1);
        assert!(stats.determinizations >= 1);
        let t = BinaryTree::parse("f(x, x)", &al).unwrap();
        let _ = nta.accepts(&t).unwrap();
    }
}
