//! Cube guards over variable bit-tracks.

use std::fmt;

/// A cube (partial assignment) over up to 64 boolean tracks: track `i` is
/// constrained to `(bits >> i) & 1` when `(mask >> i) & 1 = 1`, and
/// unconstrained otherwise.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Cube {
    /// Which tracks are constrained.
    pub mask: u64,
    /// The constrained tracks' required values (`bits & !mask = 0`).
    pub bits: u64,
}

impl Cube {
    /// The unconstrained cube (matches every assignment).
    pub const TOP: Cube = Cube { mask: 0, bits: 0 };

    /// A cube constraining a single track.
    pub fn single(track: usize, value: bool) -> Cube {
        let m = 1u64 << track;
        Cube {
            mask: m,
            bits: if value { m } else { 0 },
        }
    }

    /// Adds a single-track constraint (must not conflict — debug-asserted).
    pub fn and_single(self, track: usize, value: bool) -> Cube {
        let m = 1u64 << track;
        debug_assert!(
            self.mask & m == 0 || (self.bits & m != 0) == value,
            "conflicting constraint on track {track}"
        );
        Cube {
            mask: self.mask | m,
            bits: if value { self.bits | m } else { self.bits & !m },
        }
    }

    /// Does a full assignment satisfy the cube?
    #[inline]
    pub fn matches(self, assignment: u64) -> bool {
        assignment & self.mask == self.bits
    }

    /// Conjunction of two cubes; `None` when they conflict.
    pub fn intersect(self, other: Cube) -> Option<Cube> {
        let common = self.mask & other.mask;
        if self.bits & common != other.bits & common {
            return None;
        }
        Some(Cube {
            mask: self.mask | other.mask,
            bits: self.bits | other.bits,
        })
    }

    /// Removes track `t`, shifting higher tracks down by one — the guard
    /// transformation of existential projection.
    pub fn project(self, t: usize) -> Cube {
        let low = (1u64 << t) - 1;
        Cube {
            mask: (self.mask & low) | ((self.mask >> (t + 1)) << t),
            bits: (self.bits & low) | ((self.bits >> (t + 1)) << t),
        }
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.mask == 0 {
            return write!(f, "⊤");
        }
        let mut first = true;
        for i in 0..64 {
            if self.mask >> i & 1 == 1 {
                if !first {
                    write!(f, "·")?;
                }
                first = false;
                if self.bits >> i & 1 == 1 {
                    write!(f, "t{i}")?;
                } else {
                    write!(f, "!t{i}")?;
                }
            }
        }
        Ok(())
    }
}

/// Iterates over all sub-assignments of `mask` (all `v` with
/// `v & !mask = 0`), including `0` — the minterm enumeration used by
/// determinization.
pub fn assignments_of(mask: u64) -> impl Iterator<Item = u64> {
    let mut next = Some(mask);
    std::iter::from_fn(move || {
        let v = next?;
        next = if v == 0 { None } else { Some((v - 1) & mask) };
        Some(v)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_and_matches() {
        let c = Cube::single(3, true);
        assert!(c.matches(0b1000));
        assert!(c.matches(0b1010));
        assert!(!c.matches(0b0010));
        let c0 = Cube::single(1, false);
        assert!(c0.matches(0b1000));
        assert!(!c0.matches(0b0010));
        assert!(Cube::TOP.matches(0xffff));
    }

    #[test]
    fn intersection() {
        let a = Cube::single(0, true);
        let b = Cube::single(1, false);
        let c = a.intersect(b).unwrap();
        assert!(c.matches(0b01));
        assert!(!c.matches(0b11));
        assert!(!c.matches(0b00));
        assert!(a.intersect(Cube::single(0, false)).is_none());
        assert_eq!(a.intersect(a), Some(a));
    }

    #[test]
    fn projection_shifts() {
        // constrain tracks 0 and 2; project track 1 (unconstrained).
        let c = Cube::single(0, true).and_single(2, false);
        let p = c.project(1);
        assert_eq!(p.mask, 0b11);
        assert_eq!(p.bits, 0b01);
        // project a constrained track: the constraint disappears.
        let p0 = c.project(0);
        assert_eq!(p0.mask, 0b10);
        assert_eq!(p0.bits, 0b00);
        // project the top track.
        let p2 = c.project(2);
        assert_eq!(p2.mask, 0b01);
        assert_eq!(p2.bits, 0b01);
    }

    #[test]
    fn assignment_enumeration() {
        let mut v: Vec<u64> = assignments_of(0b101).collect();
        v.sort_unstable();
        assert_eq!(v, vec![0b000, 0b001, 0b100, 0b101]);
        assert_eq!(assignments_of(0).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn and_single_builds_up() {
        let c = Cube::TOP.and_single(5, true).and_single(2, false);
        assert!(c.matches(0b100000));
        assert!(!c.matches(0b100100));
    }
}
