//! Symbolic tree automata over `Σ × {0,1}ⁿ` with cube-guarded transitions.

use crate::cube::{assignments_of, Cube};
use std::collections::VecDeque;
use std::sync::Arc;
use xmltc_automata::state::StateSet;
use xmltc_automata::{Nta, State};
use xmltc_obs as obs;
use xmltc_trees::{Alphabet, BinaryTree, FxHashMap, NodeId, Symbol};

/// Records the subset-construction frontier as a high-water gauge — kept
/// up to date even when a budgeted determinization aborts, so reports show
/// how far the construction got.
fn note_frontier(n_subsets: usize) {
    if obs::is_active() {
        obs::record_max("mso.peak_subset_frontier", n_subsets as u64);
    }
}

/// A nondeterministic bottom-up tree automaton whose alphabet is the base
/// ranked alphabet `Σ` extended with `n_tracks` boolean variable tracks per
/// node; transitions carry [`Cube`] guards over the tracks.
#[derive(Clone, Debug)]
pub struct SymTa {
    alphabet: Arc<Alphabet>,
    n_tracks: usize,
    n_states: u32,
    /// `(a, guard) → q` applicable at leaves.
    leaf: Vec<(Symbol, Cube, State)>,
    /// `(a, guard, q₁, q₂) → q` applicable at internal nodes.
    node: Vec<(Symbol, Cube, State, State, State)>,
    finals: StateSet,
}

impl SymTa {
    /// Creates an automaton with the given state count and no transitions.
    pub fn new(alphabet: &Arc<Alphabet>, n_tracks: usize, n_states: u32) -> SymTa {
        assert!(n_tracks <= 64, "at most 64 variable tracks supported");
        SymTa {
            alphabet: Arc::clone(alphabet),
            n_tracks,
            n_states,
            leaf: Vec::new(),
            node: Vec::new(),
            finals: StateSet::new(),
        }
    }

    /// The base alphabet.
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    /// Number of variable tracks.
    pub fn n_tracks(&self) -> usize {
        self.n_tracks
    }

    /// Number of states.
    pub fn n_states(&self) -> u32 {
        self.n_states
    }

    /// Number of transitions.
    pub fn n_transitions(&self) -> usize {
        self.leaf.len() + self.node.len()
    }

    /// Adds a guarded leaf transition.
    pub fn add_leaf(&mut self, a: Symbol, guard: Cube, q: State) {
        self.leaf.push((a, guard, q));
    }

    /// Adds a guarded internal transition.
    pub fn add_node(&mut self, a: Symbol, guard: Cube, q1: State, q2: State, q: State) {
        self.node.push((a, guard, q1, q2, q));
    }

    /// Marks a state final.
    pub fn add_final(&mut self, q: State) {
        self.finals.insert(q);
    }

    /// Membership under an explicit track assignment: `bits[n.index()]` is
    /// the track word at node `n`.
    pub fn accepts(&self, t: &BinaryTree, bits: &[u64]) -> bool {
        assert_eq!(bits.len(), t.len());
        let mut sets: Vec<StateSet> = vec![StateSet::new(); t.len()];
        for i in 0..t.len() {
            let n = NodeId(i as u32);
            let a = t.symbol(n);
            let w = bits[i];
            match t.children(n) {
                None => {
                    for &(sym, g, q) in &self.leaf {
                        if sym == a && g.matches(w) {
                            sets[i].insert(q);
                        }
                    }
                }
                Some((l, r)) => {
                    for &(sym, g, q1, q2, q) in &self.node {
                        if sym == a
                            && g.matches(w)
                            && sets[l.index()].contains(q1)
                            && sets[r.index()].contains(q2)
                        {
                            sets[i].insert(q);
                        }
                    }
                }
            }
        }
        sets[t.root().index()].intersects(&self.finals)
    }

    /// Intersection by product; guards conjoin.
    pub fn intersect(&self, other: &SymTa) -> SymTa {
        assert!(Alphabet::same(&self.alphabet, &other.alphabet));
        assert_eq!(self.n_tracks, other.n_tracks);
        let pair = |a: State, b: State| State(a.0 * other.n_states + b.0);
        let mut out = SymTa::new(
            &self.alphabet,
            self.n_tracks,
            self.n_states * other.n_states,
        );
        for &(a1, g1, q1) in &self.leaf {
            for &(a2, g2, q2) in &other.leaf {
                if a1 != a2 {
                    continue;
                }
                if let Some(g) = g1.intersect(g2) {
                    out.add_leaf(a1, g, pair(q1, q2));
                }
            }
        }
        for &(a1, g1, l1, r1, t1) in &self.node {
            for &(a2, g2, l2, r2, t2) in &other.node {
                if a1 != a2 {
                    continue;
                }
                if let Some(g) = g1.intersect(g2) {
                    out.add_node(a1, g, pair(l1, l2), pair(r1, r2), pair(t1, t2));
                }
            }
        }
        for f1 in self.finals.iter() {
            for f2 in other.finals.iter() {
                out.add_final(pair(f1, f2));
            }
        }
        out.trim()
    }

    /// Union by disjoint sum.
    pub fn union(&self, other: &SymTa) -> SymTa {
        assert!(Alphabet::same(&self.alphabet, &other.alphabet));
        assert_eq!(self.n_tracks, other.n_tracks);
        let off = self.n_states;
        let mut out = self.clone();
        out.n_states += other.n_states;
        for &(a, g, q) in &other.leaf {
            out.add_leaf(a, g, State(q.0 + off));
        }
        for &(a, g, q1, q2, q) in &other.node {
            out.add_node(a, g, State(q1.0 + off), State(q2.0 + off), State(q.0 + off));
        }
        for f in other.finals.iter() {
            out.add_final(State(f.0 + off));
        }
        out
    }

    /// Subset construction with per-symbol minterm enumeration. The result
    /// is deterministic and complete over its reachable space.
    pub fn determinize(&self) -> SymTa {
        self.determinize_limited(u32::MAX)
            .expect("unlimited determinization cannot hit the limit")
    }

    /// [`SymTa::determinize`] aborting with `None` once more than
    /// `state_limit` subset states have been discovered — the safety valve
    /// for the non-elementary pipeline.
    pub fn determinize_limited(&self, state_limit: u32) -> Option<SymTa> {
        let mut index: FxHashMap<StateSet, State> = FxHashMap::default();
        let mut subsets: Vec<StateSet> = Vec::new();
        let mut intern = |s: StateSet, subsets: &mut Vec<StateSet>| -> State {
            if let Some(&q) = index.get(&s) {
                return q;
            }
            let q = State(subsets.len() as u32);
            index.insert(s.clone(), q);
            subsets.push(s);
            q
        };

        let mut out = SymTa::new(&self.alphabet, self.n_tracks, 0);

        // Group transitions by symbol; per symbol compute the union mask of
        // guards (the "relevant" tracks) and enumerate its assignments.
        let leaf_syms = self.alphabet.leaves();
        let node_syms = self.alphabet.binaries();

        for &a in &leaf_syms {
            let trans: Vec<(Cube, State)> = self
                .leaf
                .iter()
                .filter(|(s, _, _)| *s == a)
                .map(|&(_, g, q)| (g, q))
                .collect();
            let mask = trans.iter().fold(0u64, |m, (g, _)| m | g.mask);
            for v in assignments_of(mask) {
                let set: StateSet = trans
                    .iter()
                    .filter(|(g, _)| g.matches(v))
                    .map(|&(_, q)| q)
                    .collect();
                let q = intern(set, &mut subsets);
                out.add_leaf(a, Cube { mask, bits: v }, q);
            }
            if subsets.len() as u64 > state_limit as u64 {
                note_frontier(subsets.len());
                return None;
            }
        }

        // Pair exploration as in Nta::determinize: every subset pair is
        // covered when the later of the two is processed.
        #[allow(clippy::type_complexity)]
        let per_symbol: Vec<(Symbol, Vec<(Cube, State, State, State)>, u64)> = node_syms
            .iter()
            .map(|&a| {
                let trans: Vec<(Cube, State, State, State)> = self
                    .node
                    .iter()
                    .filter(|(s, ..)| *s == a)
                    .map(|&(_, g, q1, q2, q)| (g, q1, q2, q))
                    .collect();
                let mask = trans.iter().fold(0u64, |m, (g, ..)| m | g.mask);
                (a, trans, mask)
            })
            .collect();

        let mut processed = 0usize;
        while processed < subsets.len() {
            let d1 = State(processed as u32);
            processed += 1;
            let mut p2 = 0usize;
            while p2 < subsets.len() {
                let d2 = State(p2 as u32);
                p2 += 1;
                for (a, trans, mask) in &per_symbol {
                    for (x, y) in [(d1, d2), (d2, d1)] {
                        for v in assignments_of(*mask) {
                            let set: StateSet = trans
                                .iter()
                                .filter(|(g, q1, q2, _)| {
                                    g.matches(v)
                                        && subsets[x.index()].contains(*q1)
                                        && subsets[y.index()].contains(*q2)
                                })
                                .map(|&(_, _, _, q)| q)
                                .collect();
                            let t = intern(set, &mut subsets);
                            out.add_node(
                                *a,
                                Cube {
                                    mask: *mask,
                                    bits: v,
                                },
                                x,
                                y,
                                t,
                            );
                        }
                    }
                    if subsets.len() as u64 > state_limit as u64 {
                        note_frontier(subsets.len());
                        return None;
                    }
                }
            }
        }

        note_frontier(subsets.len());
        out.n_states = subsets.len() as u32;
        for (i, s) in subsets.iter().enumerate() {
            if s.intersects(&self.finals) {
                out.add_final(State(i as u32));
            }
        }
        // Deduplicate node transitions added twice for symmetric pairs.
        out.node
            .sort_unstable_by_key(|&(a, g, q1, q2, q)| (a, g.mask, g.bits, q1, q2, q));
        out.node.dedup();
        Some(out)
    }

    /// Complement: determinize (complete over reachable) and flip finals.
    pub fn complement(&self) -> SymTa {
        self.complement_limited(u32::MAX)
            .expect("unlimited complementation cannot hit the limit")
    }

    /// [`SymTa::complement`] with a subset-state budget.
    pub fn complement_limited(&self, state_limit: u32) -> Option<SymTa> {
        let mut d = self.determinize_limited(state_limit)?;
        d.finals = (0..d.n_states)
            .map(State)
            .filter(|q| !d.finals.contains(*q))
            .collect();
        Some(d.trim())
    }

    /// Existentially projects away track `t` (higher tracks shift down).
    pub fn project(&self, t: usize) -> SymTa {
        assert!(t < self.n_tracks);
        let mut out = SymTa::new(&self.alphabet, self.n_tracks - 1, self.n_states);
        for &(a, g, q) in &self.leaf {
            out.add_leaf(a, g.project(t), q);
        }
        for &(a, g, q1, q2, q) in &self.node {
            out.add_node(a, g.project(t), q1, q2, q);
        }
        for f in self.finals.iter() {
            out.add_final(f);
        }
        // Projection can create duplicate transitions.
        out.leaf
            .sort_unstable_by_key(|&(a, g, q)| (a, g.mask, g.bits, q));
        out.leaf.dedup();
        out.node
            .sort_unstable_by_key(|&(a, g, q1, q2, q)| (a, g.mask, g.bits, q1, q2, q));
        out.node.dedup();
        out
    }

    /// The 2-state automaton asserting that exactly one node carries a `1`
    /// on track `t` — the well-formedness constraint conjoined before
    /// projecting a first-order variable.
    pub fn singleton(alphabet: &Arc<Alphabet>, n_tracks: usize, t: usize) -> SymTa {
        let mut a = SymTa::new(alphabet, n_tracks, 2);
        let zero = State(0); // no marked node in this subtree
        let one = State(1); // exactly one marked node
        for sym in alphabet.leaves() {
            a.add_leaf(sym, Cube::single(t, false), zero);
            a.add_leaf(sym, Cube::single(t, true), one);
        }
        for sym in alphabet.binaries() {
            a.add_node(sym, Cube::single(t, false), zero, zero, zero);
            a.add_node(sym, Cube::single(t, false), one, zero, one);
            a.add_node(sym, Cube::single(t, false), zero, one, one);
            a.add_node(sym, Cube::single(t, true), zero, zero, one);
        }
        a.add_final(one);
        a
    }

    /// Removes unreachable and useless states (language-preserving).
    pub fn trim(&self) -> SymTa {
        // Bottom-up reachable.
        let n = self.n_states as usize;
        let mut reach = vec![false; n];
        let mut changed = true;
        while changed {
            changed = false;
            for &(_, _, q) in &self.leaf {
                if !reach[q.index()] {
                    reach[q.index()] = true;
                    changed = true;
                }
            }
            for &(_, _, q1, q2, q) in &self.node {
                if reach[q1.index()] && reach[q2.index()] && !reach[q.index()] {
                    reach[q.index()] = true;
                    changed = true;
                }
            }
        }
        // Top-down useful.
        let mut useful = vec![false; n];
        for f in self.finals.iter() {
            if reach[f.index()] {
                useful[f.index()] = true;
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for &(_, _, q1, q2, q) in &self.node {
                if useful[q.index()] && reach[q1.index()] && reach[q2.index()] {
                    if !useful[q1.index()] {
                        useful[q1.index()] = true;
                        changed = true;
                    }
                    if !useful[q2.index()] {
                        useful[q2.index()] = true;
                        changed = true;
                    }
                }
            }
        }
        let keep: Vec<bool> = (0..n).map(|i| reach[i] && useful[i]).collect();
        let mut remap: Vec<Option<State>> = vec![None; n];
        let mut next = 0u32;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                remap[i] = Some(State(next));
                next += 1;
            }
        }
        let mut out = SymTa::new(&self.alphabet, self.n_tracks, next);
        for &(a, g, q) in &self.leaf {
            if let Some(nq) = remap[q.index()] {
                out.add_leaf(a, g, nq);
            }
        }
        for &(a, g, q1, q2, q) in &self.node {
            if let (Some(n1), Some(n2), Some(nq)) =
                (remap[q1.index()], remap[q2.index()], remap[q.index()])
            {
                out.add_node(a, g, n1, n2, nq);
            }
        }
        for f in self.finals.iter() {
            if let Some(nf) = remap[f.index()] {
                out.add_final(nf);
            }
        }
        out
    }

    /// Converts a track-free automaton to a plain NTA over `Σ`.
    ///
    /// Panics if tracks remain (project or quantify them away first).
    pub fn to_nta(&self) -> Nta {
        assert_eq!(self.n_tracks, 0, "project all tracks before to_nta");
        let mut out = Nta::new(&self.alphabet, self.n_states);
        for &(a, g, q) in &self.leaf {
            debug_assert_eq!(g.mask, 0);
            out.add_leaf(a, q);
        }
        for &(a, g, q1, q2, q) in &self.node {
            debug_assert_eq!(g.mask, 0);
            out.add_node(a, q1, q2, q);
        }
        for f in self.finals.iter() {
            out.add_final(f);
        }
        out
    }

    /// An automaton accepting *every* tree/assignment (1 state).
    pub fn top(alphabet: &Arc<Alphabet>, n_tracks: usize) -> SymTa {
        let mut a = SymTa::new(alphabet, n_tracks, 1);
        for sym in alphabet.leaves() {
            a.add_leaf(sym, Cube::TOP, State(0));
        }
        for sym in alphabet.binaries() {
            a.add_node(sym, Cube::TOP, State(0), State(0), State(0));
        }
        a.add_final(State(0));
        a
    }

    /// Breadth-first emptiness over the (symbol × minterm) alphabet; mainly
    /// used in tests.
    pub fn is_empty(&self) -> bool {
        let n = self.n_states as usize;
        let mut reach = vec![false; n];
        let mut queue = VecDeque::new();
        for &(_, _, q) in &self.leaf {
            if !reach[q.index()] {
                reach[q.index()] = true;
                queue.push_back(q);
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for &(_, _, q1, q2, q) in &self.node {
                if reach[q1.index()] && reach[q2.index()] && !reach[q.index()] {
                    reach[q.index()] = true;
                    changed = true;
                }
            }
        }
        drop(queue);
        !self.finals.iter().any(|f| reach[f.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alpha() -> Arc<Alphabet> {
        Alphabet::ranked(&["x", "y"], &["f"])
    }

    fn t(al: &Arc<Alphabet>, s: &str) -> BinaryTree {
        BinaryTree::parse(s, al).unwrap()
    }

    /// 1-track automaton: every marked node is labeled `x` (the weak
    /// `label(x)` atom).
    fn marked_are_x(al: &Arc<Alphabet>) -> SymTa {
        let x = al.get("x").unwrap();
        let y = al.get("y").unwrap();
        let f = al.get("f").unwrap();
        let mut a = SymTa::new(al, 1, 1);
        let q = State(0);
        a.add_leaf(x, Cube::TOP, q);
        a.add_leaf(y, Cube::single(0, false), q);
        a.add_node(f, Cube::single(0, false), q, q, q);
        a.add_final(q);
        a
    }

    #[test]
    fn guarded_acceptance() {
        let al = alpha();
        let a = marked_are_x(&al);
        let tree = t(&al, "f(x, y)");
        // nodes in arena order: x=0, y=1, f=2 (builder is bottom-up).
        assert!(a.accepts(&tree, &[0, 0, 0]));
        assert!(a.accepts(&tree, &[1, 0, 0])); // mark the x leaf
        assert!(!a.accepts(&tree, &[0, 1, 0])); // mark the y leaf
        assert!(!a.accepts(&tree, &[0, 0, 1])); // mark the f node
    }

    #[test]
    fn singleton_counts_marks() {
        let al = alpha();
        let s = SymTa::singleton(&al, 1, 0);
        let tree = t(&al, "f(x, y)");
        assert!(!s.accepts(&tree, &[0, 0, 0]));
        assert!(s.accepts(&tree, &[1, 0, 0]));
        assert!(s.accepts(&tree, &[0, 0, 1]));
        assert!(!s.accepts(&tree, &[1, 1, 0]));
        assert!(!s.accepts(&tree, &[1, 1, 1]));
    }

    #[test]
    fn intersect_and_union() {
        let al = alpha();
        let a = marked_are_x(&al);
        let s = SymTa::singleton(&al, 1, 0);
        let both = a.intersect(&s);
        let tree = t(&al, "f(x, y)");
        assert!(both.accepts(&tree, &[1, 0, 0]));
        assert!(!both.accepts(&tree, &[0, 0, 0])); // no mark
        assert!(!both.accepts(&tree, &[0, 1, 0])); // marked y
        let either = a.union(&s);
        assert!(either.accepts(&tree, &[0, 0, 0]));
        assert!(either.accepts(&tree, &[0, 0, 1]));
        assert!(!either.accepts(&tree, &[0, 1, 1]));
    }

    #[test]
    fn determinize_preserves() {
        let al = alpha();
        let a = marked_are_x(&al).union(&SymTa::singleton(&al, 1, 0));
        let d = a.determinize();
        let tree = t(&al, "f(f(x, y), x)");
        for bits in 0u64..32 {
            let w: Vec<u64> = (0..5).map(|i| (bits >> i) & 1).collect();
            assert_eq!(d.accepts(&tree, &w), a.accepts(&tree, &w), "bits {bits:b}");
        }
    }

    #[test]
    fn complement_flips() {
        let al = alpha();
        let a = marked_are_x(&al);
        let c = a.complement();
        let tree = t(&al, "f(x, y)");
        for bits in 0u64..8 {
            let w: Vec<u64> = (0..3).map(|i| (bits >> i) & 1).collect();
            assert_eq!(c.accepts(&tree, &w), !a.accepts(&tree, &w), "bits {bits:b}");
        }
    }

    #[test]
    fn projection_is_existential() {
        let al = alpha();
        // singleton on track 0, projected: "some assignment marks exactly
        // one node" — true for every tree.
        let s = SymTa::singleton(&al, 1, 0);
        let p = s.project(0);
        assert_eq!(p.n_tracks(), 0);
        let tree = t(&al, "f(x, y)");
        assert!(p.accepts(&tree, &[0, 0, 0]));
        let nta = p.to_nta();
        assert!(nta.accepts(&tree).unwrap());
        assert!(!nta.is_empty());
    }

    #[test]
    fn top_accepts_everything() {
        let al = alpha();
        let a = SymTa::top(&al, 2);
        let tree = t(&al, "f(x, f(y, x))");
        assert!(a.accepts(&tree, &[3, 1, 0, 2, 1]));
    }

    #[test]
    fn trim_preserves() {
        let al = alpha();
        let mut a = marked_are_x(&al);
        // add junk states
        a.n_states += 3;
        let d = a.trim();
        assert_eq!(d.n_states(), 1);
        let tree = t(&al, "f(x, x)");
        assert!(d.accepts(&tree, &[1, 1, 0]));
    }

    #[test]
    fn emptiness() {
        let al = alpha();
        assert!(!marked_are_x(&al).is_empty());
        let empty = SymTa::new(&al, 0, 1);
        assert!(empty.is_empty());
    }
}
