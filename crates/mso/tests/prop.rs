//! Differential testing of the MSO compiler: on random first-order
//! formulas (with an occasional second-order quantifier) and random small
//! trees, the compiled tree automaton must agree with the direct
//! recursive evaluator.
//!
//! Driven by the workspace's deterministic [`SmallRng`]; runs a fixed
//! number of seeded cases.

use std::collections::BTreeMap;
use std::sync::Arc;
use xmltc_mso::{compile_sentence, Formula};
use xmltc_trees::{generate, Alphabet, BinaryTree, SmallRng, Symbol};

fn alpha() -> Arc<Alphabet> {
    Alphabet::ranked(&["x", "y"], &["f", "g"])
}

/// A random atom over first-order variables u, v and set variable S.
fn rand_atom(rng: &mut SmallRng, syms: &[Symbol]) -> Formula {
    match rng.gen_range(0..9) {
        0 => Formula::Label("u".into(), *rng.choose(syms)),
        1 => Formula::Label("v".into(), *rng.choose(syms)),
        2 => Formula::Succ1("u".into(), "v".into()),
        3 => Formula::Succ2("u".into(), "v".into()),
        4 => Formula::Eq("u".into(), "v".into()),
        5 => Formula::Root("u".into()),
        6 => Formula::Leaf("v".into()),
        7 => Formula::In("u".into(), "S".into()),
        _ => Formula::In("v".into(), "S".into()),
    }
}

/// Quantifier-free kernels of connective depth at most `depth`.
fn rand_kernel(rng: &mut SmallRng, syms: &[Symbol], depth: usize) -> Formula {
    if depth == 0 || rng.gen_bool(0.4) {
        return rand_atom(rng, syms);
    }
    match rng.gen_range(0..4) {
        0 => rand_kernel(rng, syms, depth - 1).not(),
        1 => Formula::And(
            Box::new(rand_kernel(rng, syms, depth - 1)),
            Box::new(rand_kernel(rng, syms, depth - 1)),
        ),
        2 => Formula::Or(
            Box::new(rand_kernel(rng, syms, depth - 1)),
            Box::new(rand_kernel(rng, syms, depth - 1)),
        ),
        _ => Formula::Implies(
            Box::new(rand_kernel(rng, syms, depth - 1)),
            Box::new(rand_kernel(rng, syms, depth - 1)),
        ),
    }
}

/// Close the kernel: quantify u, v (mixing ∃/∀) and S (∃ or ∀).
fn rand_sentence(rng: &mut SmallRng, syms: &[Symbol]) -> Formula {
    let kernel = rand_kernel(rng, syms, 2);
    let inner = if rng.gen_bool(0.5) {
        Formula::exists1("v", kernel)
    } else {
        Formula::forall1("v", kernel)
    };
    let mid = if rng.gen_bool(0.5) {
        Formula::exists1("u", inner)
    } else {
        Formula::forall1("u", inner)
    };
    if rng.gen_bool(0.5) {
        Formula::exists2("S", mid)
    } else {
        Formula::forall2("S", mid)
    }
}

#[test]
fn compiled_agrees_with_direct_eval() {
    let al = alpha();
    let syms: Vec<Symbol> = al.symbols().collect();
    let mut rng = SmallRng::seed_from_u64(0x3501);
    for case in 0..64 {
        let f = rand_sentence(&mut rng, &syms);
        // Direct SO evaluation is 2^|t|: keep trees at depth ≤ 3 (≤ 7 nodes).
        let t: BinaryTree = generate::random_binary(&al, 3, 0.6, &mut rng).unwrap();
        let nta = compile_sentence(&f, &al).expect("compiles");
        let direct = f.eval(&t, &mut BTreeMap::new());
        let automaton = nta.accepts(&t).unwrap();
        assert_eq!(
            automaton, direct,
            "case {case}: disagreement on {t} for {f}"
        );
    }
}
