//! Differential testing of the MSO compiler: on random first-order
//! formulas (with an occasional second-order quantifier) and random small
//! trees, the compiled tree automaton must agree with the direct
//! recursive evaluator.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use xmltc_mso::{compile_sentence, Formula};
use xmltc_trees::{Alphabet, BinaryTree, Symbol};

fn alpha() -> Arc<Alphabet> {
    Alphabet::ranked(&["x", "y"], &["f", "g"])
}

/// Quantifier-free kernels over two first-order variables u, v and one
/// second-order variable S.
fn arb_kernel(syms: Vec<Symbol>) -> impl Strategy<Value = Formula> {
    let atom = prop_oneof![
        prop::sample::select(syms.clone())
            .prop_map(|s| Formula::Label("u".into(), s)),
        prop::sample::select(syms)
            .prop_map(|s| Formula::Label("v".into(), s)),
        Just(Formula::Succ1("u".into(), "v".into())),
        Just(Formula::Succ2("u".into(), "v".into())),
        Just(Formula::Eq("u".into(), "v".into())),
        Just(Formula::Root("u".into())),
        Just(Formula::Leaf("v".into())),
        Just(Formula::In("u".into(), "S".into())),
        Just(Formula::In("v".into(), "S".into())),
    ];
    atom.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| a.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::And(
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::Or(
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner).prop_map(|(a, b)| Formula::Implies(
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

/// Close the kernel: quantify u, v (mixing ∃/∀) and S (∃ or ∀).
fn arb_sentence() -> impl Strategy<Value = Formula> {
    let al = alpha();
    let syms: Vec<Symbol> = al.symbols().collect();
    (arb_kernel(syms), 0u8..2, 0u8..2, 0u8..2).prop_map(|(kernel, qu, qv, qs)| {
        let inner = match qv {
            0 => Formula::exists1("v", kernel),
            _ => Formula::forall1("v", kernel),
        };
        let mid = match qu {
            0 => Formula::exists1("u", inner),
            _ => Formula::forall1("u", inner),
        };
        match qs {
            0 => Formula::exists2("S", mid),
            _ => Formula::forall2("S", mid),
        }
    })
}

fn arb_tree(al: Arc<Alphabet>) -> impl Strategy<Value = BinaryTree> {
    let leaf = prop::sample::select(vec!["x", "y"]).prop_map(String::from);
    let expr = leaf.prop_recursive(2, 7, 2, |inner| {
        (
            prop::sample::select(vec!["f", "g"]),
            inner.clone(),
            inner,
        )
            .prop_map(|(s, l, r)| format!("{s}({l}, {r})"))
    });
    expr.prop_map(move |src| BinaryTree::parse(&src, &al).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_agrees_with_direct_eval(f in arb_sentence(), t in arb_tree(alpha())) {
        // Direct SO evaluation is 2^|t|: the tree strategy caps at 7 nodes.
        let al = t.alphabet().clone();
        let nta = compile_sentence(&f, &al).expect("compiles");
        let direct = f.eval(&t, &mut BTreeMap::new());
        let automaton = nta.accepts(&t).unwrap();
        prop_assert_eq!(automaton, direct, "disagreement on {} for {}", t, f);
    }
}
