//! End-to-end service tests over real TCP sockets: cold/warm typechecks,
//! batches, concurrent single-flight, protocol errors, shutdown.

use std::sync::Arc;
use std::thread::JoinHandle;
use xmltc_obs::{Json, PipelineReport};
use xmltc_service::server::final_report;
use xmltc_service::{Client, ServeConfig, Server, ServiceState};

const INPUT_DTD: &str = "root := a*\na := @eps";
const STYLESHEET: &str = "root -> out(@apply)\na -> b";
const OUTPUT_DTD: &str = "out := b*\nb := @eps";
const BAD_OUTPUT_DTD: &str = "out := b.b\nb := @eps";

/// Starts a server on an ephemeral port; returns its address, the run
/// thread (yielding the final report), and the shared state.
fn start(oneshot: bool) -> (String, JoinHandle<PipelineReport>, Arc<ServiceState>) {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        oneshot,
        ..ServeConfig::default()
    };
    let server = Server::bind(&cfg).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let state = server.state();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle, state)
}

fn typecheck_request(output_dtd: &str, id: u64) -> Json {
    Json::obj(vec![
        ("cmd", Json::Str("typecheck".into())),
        ("id", Json::U64(id)),
        ("input_dtd", Json::Str(INPUT_DTD.into())),
        ("stylesheet", Json::Str(STYLESHEET.into())),
        ("output_dtd", Json::Str(output_dtd.into())),
    ])
}

fn field<'a>(resp: &'a Json, path: &str) -> &'a Json {
    resp.at(path)
        .unwrap_or_else(|| panic!("missing `{path}` in {}", resp.encode()))
}

#[test]
fn cold_then_warm_typecheck_is_byte_identical_with_zero_construction() {
    let (addr, handle, state) = start(false);
    let mut client = Client::connect(&addr).expect("connect");

    let cold = client.roundtrip(&typecheck_request(OUTPUT_DTD, 1)).unwrap();
    assert_eq!(field(&cold, "ok"), &Json::Bool(true));
    assert_eq!(field(&cold, "id"), &Json::U64(1));
    assert_eq!(field(&cold, "result.verdict").as_str(), Some("typechecks"));
    assert_eq!(field(&cold, "cache.verdict").as_str(), Some("miss"));
    // The cold run built the violation automaton: walk metrics present.
    // (Metric names contain dots, so index with `get`, not `at`.)
    assert!(
        field(&cold, "metrics").get("walk.pairs").is_some(),
        "cold response should carry walk metrics: {}",
        cold.encode()
    );

    let warm = client.roundtrip(&typecheck_request(OUTPUT_DTD, 2)).unwrap();
    assert_eq!(field(&warm, "cache.verdict").as_str(), Some("hit"));
    assert!(field(&warm, "cache.hits").as_u64().unwrap() >= 1);
    // Byte-identical deterministic payload.
    assert_eq!(
        field(&cold, "result").encode(),
        field(&warm, "result").encode()
    );
    // Zero construction work: no walk (or mso) metrics at all.
    let Json::Object(metrics) = field(&warm, "metrics") else {
        panic!("metrics not an object");
    };
    assert!(
        !metrics
            .iter()
            .any(|(k, _)| k.starts_with("walk.") || k.starts_with("mso.")),
        "warm response must not carry construction metrics: {}",
        warm.encode()
    );
    // The untouched layers are absent from the warm cache object.
    assert!(warm.at("cache.violations").is_none());

    let down = client
        .roundtrip(&Json::obj(vec![("cmd", Json::Str("shutdown".into()))]))
        .unwrap();
    assert_eq!(field(&down, "ok"), &Json::Bool(true));
    let report = handle.join().expect("server thread");
    let metric = |name: &str| {
        report
            .metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("final report lacks {name}"))
    };
    assert!(metric("cache.hits") >= 1);
    assert_eq!(metric("serve.requests.typecheck"), 2);
    assert_eq!(metric("serve.requests.shutdown"), 1);
    assert_eq!(metric("serve.connections"), 1);
    assert!(state.shutdown_requested());
}

#[test]
fn counterexample_verdicts_cache_and_replay_identically() {
    let (addr, handle, _state) = start(false);
    let mut client = Client::connect(&addr).expect("connect");
    let cold = client
        .roundtrip(&typecheck_request(BAD_OUTPUT_DTD, 1))
        .unwrap();
    assert_eq!(
        field(&cold, "result.verdict").as_str(),
        Some("counterexample")
    );
    assert!(field(&cold, "result.input").as_str().is_some());
    let warm = client
        .roundtrip(&typecheck_request(BAD_OUTPUT_DTD, 2))
        .unwrap();
    assert_eq!(field(&warm, "cache.verdict").as_str(), Some("hit"));
    assert_eq!(
        field(&cold, "result").encode(),
        field(&warm, "result").encode()
    );
    client
        .roundtrip(&Json::obj(vec![("cmd", Json::Str("shutdown".into()))]))
        .unwrap();
    handle.join().unwrap();
}

#[test]
fn typecheck_layers_are_shared_across_specs_and_engines() {
    let (addr, handle, _state) = start(false);
    let mut client = Client::connect(&addr).expect("connect");
    client.roundtrip(&typecheck_request(OUTPUT_DTD, 1)).unwrap();
    // Different output DTD, same stylesheet: pipeline layer is warm.
    let other = client
        .roundtrip(&typecheck_request(BAD_OUTPUT_DTD, 2))
        .unwrap();
    assert_eq!(field(&other, "cache.pipeline").as_str(), Some("hit"));
    assert_eq!(field(&other, "cache.tau2").as_str(), Some("miss"));
    // Different engine, same triple: violations layer is warm (the
    // verdict key includes the engine, the violations key does not).
    let mut req = typecheck_request(OUTPUT_DTD, 3);
    if let Json::Object(fields) = &mut req {
        fields.push(("engine".into(), Json::Str("eager".into())));
    }
    let eager = client.roundtrip(&req).unwrap();
    assert_eq!(field(&eager, "cache.verdict").as_str(), Some("miss"));
    assert_eq!(field(&eager, "cache.violations").as_str(), Some("hit"));
    client
        .roundtrip(&Json::obj(vec![("cmd", Json::Str("shutdown".into()))]))
        .unwrap();
    handle.join().unwrap();
}

#[test]
fn validate_transform_and_batch_roundtrip() {
    let (addr, handle, _state) = start(false);
    let mut client = Client::connect(&addr).expect("connect");

    let valid = client
        .roundtrip(&Json::obj(vec![
            ("cmd", Json::Str("validate".into())),
            ("input_dtd", Json::Str(INPUT_DTD.into())),
            ("document", Json::Str("<root><a/><a/></root>".into())),
        ]))
        .unwrap();
    assert_eq!(field(&valid, "result.verdict").as_str(), Some("valid"));
    assert_eq!(field(&valid, "cache.dtd").as_str(), Some("miss"));

    let invalid = client
        .roundtrip(&Json::obj(vec![
            ("cmd", Json::Str("validate".into())),
            ("input_dtd", Json::Str(INPUT_DTD.into())),
            ("document", Json::Str("<a><root/></a>".into())),
        ]))
        .unwrap();
    assert_eq!(field(&invalid, "ok"), &Json::Bool(true));
    assert_eq!(field(&invalid, "result.verdict").as_str(), Some("invalid"));
    assert_eq!(field(&invalid, "cache.dtd").as_str(), Some("hit"));

    let transform = client
        .roundtrip(&Json::obj(vec![
            ("cmd", Json::Str("transform".into())),
            ("input_dtd", Json::Str(INPUT_DTD.into())),
            ("stylesheet", Json::Str(STYLESHEET.into())),
            ("document", Json::Str("<root><a/><a/></root>".into())),
        ]))
        .unwrap();
    assert_eq!(
        field(&transform, "result.output").as_str(),
        Some("<out><b/><b/></out>")
    );

    let batch = client
        .roundtrip(&Json::obj(vec![
            ("cmd", Json::Str("batch".into())),
            ("id", Json::U64(9)),
            (
                "requests",
                Json::Array(vec![
                    typecheck_request(OUTPUT_DTD, 10),
                    Json::obj(vec![
                        ("cmd", Json::Str("validate".into())),
                        ("id", Json::U64(11)),
                        ("input_dtd", Json::Str(INPUT_DTD.into())),
                        ("document", Json::Str("<root/>".into())),
                    ]),
                    Json::obj(vec![("cmd", Json::Str("stats".into()))]),
                ]),
            ),
        ]))
        .unwrap();
    assert_eq!(field(&batch, "id"), &Json::U64(9));
    let Json::Array(results) = field(&batch, "results") else {
        panic!("results not an array");
    };
    assert_eq!(results.len(), 3);
    assert_eq!(field(&results[0], "id"), &Json::U64(10));
    assert_eq!(
        field(&results[0], "result.verdict").as_str(),
        Some("typechecks")
    );
    assert_eq!(field(&results[1], "id"), &Json::U64(11));
    assert_eq!(field(&results[2], "cmd").as_str(), Some("stats"));
    assert!(field(&results[2], "cache.hits").as_u64().unwrap() >= 1);

    client
        .roundtrip(&Json::obj(vec![("cmd", Json::Str("shutdown".into()))]))
        .unwrap();
    handle.join().unwrap();
}

#[test]
fn concurrent_identical_typechecks_build_once() {
    const CLIENTS: usize = 6;
    let (addr, handle, state) = start(false);
    let barrier = Arc::new(std::sync::Barrier::new(CLIENTS));
    let results: Vec<String> = (0..CLIENTS)
        .map(|i| {
            let (addr, barrier) = (addr.clone(), barrier.clone());
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                barrier.wait();
                let resp = client
                    .roundtrip(&typecheck_request(OUTPUT_DTD, i as u64))
                    .unwrap();
                assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
                field(&resp, "result").encode()
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();
    // Every client saw the same deterministic payload...
    assert!(results.windows(2).all(|w| w[0] == w[1]));
    // ...and the verdict was built exactly once: the other N-1 accesses
    // were hits or coalesced onto the in-progress flight.
    let snap = state.cache.snapshot();
    let verdict_kind = xmltc_service::ArtifactKind::Verdict.index();
    let (v_hits, v_misses) = snap.per_kind[verdict_kind];
    assert_eq!(v_misses, 1, "verdict built more than once");
    assert_eq!(v_hits + snap.coalesces, (CLIENTS - 1) as u64);
    state.request_shutdown();
    handle.join().unwrap();
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let (addr, handle, _state) = start(false);
    let mut client = Client::connect(&addr).expect("connect");
    let bad = client.roundtrip_line("this is not json").unwrap();
    let bad = Json::parse(&bad).unwrap();
    assert_eq!(field(&bad, "ok"), &Json::Bool(false));
    assert!(field(&bad, "error").as_str().unwrap().contains("malformed"));
    let unknown = client
        .roundtrip(&Json::obj(vec![("cmd", Json::Str("frobnicate".into()))]))
        .unwrap();
    assert_eq!(field(&unknown, "ok"), &Json::Bool(false));
    // The connection is still usable afterwards.
    let stats = client
        .roundtrip(&Json::obj(vec![("cmd", Json::Str("stats".into()))]))
        .unwrap();
    assert_eq!(field(&stats, "ok"), &Json::Bool(true));
    assert_eq!(
        field(&stats, "protocol").as_str(),
        Some(xmltc_service::PROTOCOL)
    );
    assert!(field(&stats, "errors").as_u64().unwrap() >= 2);
    client
        .roundtrip(&Json::obj(vec![("cmd", Json::Str("shutdown".into()))]))
        .unwrap();
    handle.join().unwrap();
}

#[test]
fn oneshot_serves_one_connection_then_exits_with_report() {
    let (addr, handle, state) = start(true);
    {
        let mut client = Client::connect(&addr).expect("connect");
        let resp = client.roundtrip(&typecheck_request(OUTPUT_DTD, 1)).unwrap();
        assert_eq!(field(&resp, "result.verdict").as_str(), Some("typechecks"));
    } // dropping the client closes the connection; the server exits
    let report = handle.join().expect("server thread");
    assert!(report
        .metrics
        .iter()
        .any(|(k, v)| k == "serve.requests.typecheck" && *v == 1));
    // final_report is re-derivable from the state after shutdown.
    let again = final_report(&state);
    assert!(again
        .metrics
        .iter()
        .any(|(k, v)| k == "serve.requests.typecheck" && *v == 1));
}
