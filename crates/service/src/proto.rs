//! The wire protocol: line-delimited JSON over TCP.
//!
//! Each request is one JSON object on one line; each response is one JSON
//! object on one line. The protocol identifier is [`PROTOCOL`]; the
//! `stats` response carries it so clients can detect skew.
//!
//! Request grammar (all texts inline — the server never touches the
//! filesystem, which is what makes content-addressed caching sound):
//!
//! ```text
//! request   := { "cmd": CMD, "id"?: uint, ...fields }
//! CMD       := "validate" | "transform" | "typecheck" | "batch"
//!            | "stats" | "shutdown"
//! validate  := "input_dtd": text, "document": text
//! transform := "input_dtd": text, "stylesheet": text, "document": text
//! typecheck := "input_dtd": text, "stylesheet": text, "output_dtd": text,
//!              "route"?: "auto"|"walk"|"mso",
//!              "engine"?: "auto"|"lazy"|"eager",
//!              "state_limit"?: uint, "threads"?: uint, "explain"?: bool
//! batch     := "requests": [request...]      (no nested batches)
//! ```
//!
//! Responses: `{ "id"?: uint, "ok": bool, "cmd": CMD, ... }`. Successful
//! typechecks carry a deterministic `"result"` object (byte-identical for
//! cache hits and misses), a `"cache"` object naming how each artifact
//! layer was served (`hit` / `miss` / `coalesced`), `"wall_ms"`, and a
//! `"metrics"` object mirroring the pipeline-report metrics for the
//! request (warm verdicts have no `walk.*` keys — nothing was built).
//! Failures carry `"error"`. A `batch` response nests the per-request
//! responses, in order, under `"results"`.

use xmltc_obs::Json;
use xmltc_typecheck::{Engine, Route, TypecheckOptions};

/// Protocol identifier, bumped on breaking change.
pub const PROTOCOL: &str = "xmltc.serve/1";

/// Parameters of a `typecheck` request.
#[derive(Clone, Debug)]
pub struct TypecheckParams {
    /// Input DTD text.
    pub input_dtd: String,
    /// Stylesheet text.
    pub stylesheet: String,
    /// Output DTD text.
    pub output_dtd: String,
    /// Theorem 4.7 route: `auto` | `walk` | `mso`.
    pub route: String,
    /// Emptiness engine: `auto` | `lazy` | `eager`.
    pub engine: String,
    /// State budget for intermediate automata.
    pub state_limit: u32,
    /// Walk-route worker threads (0 = server default).
    pub threads: usize,
    /// Whether to assemble the provenance report.
    pub explain: bool,
}

impl TypecheckParams {
    /// The equivalent local [`TypecheckOptions`].
    pub fn to_options(&self) -> TypecheckOptions {
        TypecheckOptions {
            route: match self.route.as_str() {
                "walk" => Route::ForceWalk,
                "mso" => Route::ForceMso,
                _ => Route::Auto,
            },
            engine: match self.engine.as_str() {
                "lazy" => Engine::Lazy,
                "eager" => Engine::Eager,
                _ => Engine::Auto,
            },
            state_limit: self.state_limit,
            threads: self.threads,
            ..TypecheckOptions::default()
        }
    }
}

/// A parsed request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Dynamic DTD validation of one document.
    Validate {
        /// Input DTD text.
        input_dtd: String,
        /// Document XML text.
        document: String,
    },
    /// Run the transformation on one document.
    Transform {
        /// Input DTD text.
        input_dtd: String,
        /// Stylesheet text.
        stylesheet: String,
        /// Document XML text.
        document: String,
    },
    /// Static typecheck.
    Typecheck(Box<TypecheckParams>),
    /// Several requests answered in one response.
    Batch(Vec<Envelope>),
    /// Server + cache statistics.
    Stats,
    /// Graceful shutdown: the server answers, then stops accepting.
    Shutdown,
}

impl Request {
    /// The command name this request was parsed from.
    pub fn cmd(&self) -> &'static str {
        match self {
            Request::Validate { .. } => "validate",
            Request::Transform { .. } => "transform",
            Request::Typecheck(_) => "typecheck",
            Request::Batch(_) => "batch",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }
}

/// A request plus its optional client-chosen correlation id.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Echoed verbatim in the response when present.
    pub id: Option<u64>,
    /// The request.
    pub request: Request,
}

fn text_field(obj: &Json, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

fn enum_field(obj: &Json, key: &str, allowed: &[&str]) -> Result<String, String> {
    match obj.get(key) {
        None => Ok(allowed[0].to_string()),
        Some(v) => {
            let s = v
                .as_str()
                .ok_or_else(|| format!("field `{key}` must be a string"))?;
            if allowed.contains(&s) {
                Ok(s.to_string())
            } else {
                Err(format!(
                    "unknown {key} `{s}` (one of: {})",
                    allowed.join("|")
                ))
            }
        }
    }
}

/// Parses one request line. Errors are protocol-level (malformed JSON,
/// missing fields) — the server reports them as `ok:false` responses.
pub fn parse_line(line: &str) -> Result<Envelope, String> {
    let value = Json::parse(line).map_err(|e| format!("malformed request JSON: {e}"))?;
    parse_value(&value, true)
}

fn parse_value(value: &Json, allow_batch: bool) -> Result<Envelope, String> {
    let id = value.get("id").and_then(Json::as_u64);
    let cmd = value
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or("missing `cmd` field")?;
    let request = match cmd {
        "validate" => Request::Validate {
            input_dtd: text_field(value, "input_dtd")?,
            document: text_field(value, "document")?,
        },
        "transform" => Request::Transform {
            input_dtd: text_field(value, "input_dtd")?,
            stylesheet: text_field(value, "stylesheet")?,
            document: text_field(value, "document")?,
        },
        "typecheck" => {
            let defaults = TypecheckOptions::default();
            let state_limit = match value.get("state_limit") {
                None => defaults.state_limit,
                Some(v) => u32::try_from(
                    v.as_u64()
                        .ok_or("`state_limit` must be a non-negative integer")?,
                )
                .map_err(|_| "`state_limit` out of range".to_string())?,
            };
            let threads = match value.get("threads") {
                None => 0,
                Some(v) => v
                    .as_u64()
                    .ok_or("`threads` must be a non-negative integer")?
                    as usize,
            };
            let explain = match value.get("explain") {
                None => false,
                Some(Json::Bool(b)) => *b,
                Some(_) => return Err("`explain` must be a boolean".into()),
            };
            Request::Typecheck(Box::new(TypecheckParams {
                input_dtd: text_field(value, "input_dtd")?,
                stylesheet: text_field(value, "stylesheet")?,
                output_dtd: text_field(value, "output_dtd")?,
                route: enum_field(value, "route", &["auto", "walk", "mso"])?,
                engine: enum_field(value, "engine", &["auto", "lazy", "eager"])?,
                state_limit,
                threads,
                explain,
            }))
        }
        "batch" => {
            if !allow_batch {
                return Err("nested `batch` requests are not allowed".into());
            }
            let items = match value.get("requests") {
                Some(Json::Array(items)) => items,
                _ => return Err("`batch` requires a `requests` array".into()),
            };
            let parsed = items
                .iter()
                .map(|v| parse_value(v, false))
                .collect::<Result<Vec<_>, _>>()?;
            Request::Batch(parsed)
        }
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown cmd `{other}`")),
    };
    Ok(Envelope { id, request })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_typecheck_with_defaults() {
        let env = parse_line(
            r#"{"cmd":"typecheck","id":7,"input_dtd":"root := a*","stylesheet":"root -> out","output_dtd":"out := @eps"}"#,
        )
        .unwrap();
        assert_eq!(env.id, Some(7));
        let Request::Typecheck(p) = env.request else {
            panic!("wrong variant");
        };
        assert_eq!(p.route, "auto");
        assert_eq!(p.engine, "auto");
        assert_eq!(p.state_limit, TypecheckOptions::default().state_limit);
        assert_eq!(p.threads, 0);
        assert!(!p.explain);
    }

    #[test]
    fn rejects_unknown_route_and_nested_batch() {
        let err = parse_line(
            r#"{"cmd":"typecheck","input_dtd":"d","stylesheet":"s","output_dtd":"o","route":"fast"}"#,
        )
        .unwrap_err();
        assert!(err.contains("unknown route"), "{err}");
        let err = parse_line(r#"{"cmd":"batch","requests":[{"cmd":"batch","requests":[]}]}"#)
            .unwrap_err();
        assert!(err.contains("nested"), "{err}");
    }

    #[test]
    fn batch_preserves_order_and_ids() {
        let env =
            parse_line(r#"{"cmd":"batch","requests":[{"cmd":"stats","id":1},{"cmd":"shutdown"}]}"#)
                .unwrap();
        let Request::Batch(items) = env.request else {
            panic!("wrong variant");
        };
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].id, Some(1));
        assert!(matches!(items[0].request, Request::Stats));
        assert!(matches!(items[1].request, Request::Shutdown));
    }
}
