//! The `xmltc serve` TCP server.
//!
//! A std-only accept loop: nonblocking listener polled every few
//! milliseconds, one thread per connection, line-delimited JSON requests
//! ([`crate::proto`]) answered from the shared
//! [`ArtifactCache`](crate::cache::ArtifactCache).
//!
//! Every non-trivial request runs under [`obs::with_report`], so the
//! response carries the same per-phase metrics a local `xmltc typecheck
//! --json` run would print — and when the event journal is recording
//! (`xmltc serve --trace-out`), every request's spans and cache counters
//! land on the Chrome-trace timeline. On shutdown — a `shutdown` request,
//! SIGINT, or end of a `--oneshot` connection — the server drains its
//! connection threads and assembles a final [`PipelineReport`] totalling
//! requests served and cache behaviour.

use crate::cache::{Artifact, ArtifactCache, CacheOutcome, VerdictArtifact};
use crate::key;
use crate::proto::{self, Envelope, Request, TypecheckParams};
use std::cell::Cell;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xmltc_automata::Nta;
use xmltc_dtd::Dtd;
use xmltc_obs::{self as obs, Json, PipelineReport, SpanRecord};
use xmltc_typecheck::inverse::violation_nta;
use xmltc_xml::{parse_document, raw_to_xml};
use xmltc_xmlql::pipeline::{DocumentPipeline, DocumentVerdict};
use xmltc_xmlql::Stylesheet;

/// SIGINT interception for graceful shutdown.
///
/// The handler does the only async-signal-safe thing possible — one
/// relaxed store into a process-global flag — and the accept loop and
/// every connection thread poll that flag between reads. This is the one
/// place in the workspace that needs `unsafe`: registering the handler
/// crosses the C ABI. On non-Unix targets installation is a no-op (the
/// `shutdown` request still works everywhere).
pub mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};

    static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    /// True once SIGINT has been received (after [`install`]).
    pub fn interrupted() -> bool {
        INTERRUPTED.load(Ordering::Relaxed)
    }

    /// Installs the SIGINT handler. Idempotent.
    #[cfg(unix)]
    #[allow(unsafe_code)]
    pub fn install() {
        extern "C" fn on_sigint(_signum: i32) {
            INTERRUPTED.store(true, Ordering::Relaxed);
        }
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        unsafe {
            let _ = signal(SIGINT, on_sigint);
        }
    }

    /// Installs the SIGINT handler (no-op off Unix).
    #[cfg(not(unix))]
    pub fn install() {}
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7407` (`:0` for an ephemeral port).
    pub addr: String,
    /// Artifact-cache byte budget.
    pub cache_bytes: usize,
    /// Serve exactly one connection, then shut down (for tests/smoke).
    pub oneshot: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7407".into(),
            cache_bytes: ArtifactCache::DEFAULT_BUDGET,
            oneshot: false,
        }
    }
}

/// Shared server state: the cache plus request counters.
pub struct ServiceState {
    /// The content-addressed artifact cache.
    pub cache: ArtifactCache,
    started: Instant,
    shutdown: AtomicBool,
    connections: AtomicU64,
    errors: AtomicU64,
    /// Per-command request counts, indexed like [`CMD_NAMES`].
    requests: [AtomicU64; CMD_NAMES.len()],
}

/// Command names, in counter order.
pub const CMD_NAMES: [&str; 6] = [
    "validate",
    "transform",
    "typecheck",
    "batch",
    "stats",
    "shutdown",
];

impl ServiceState {
    /// Fresh state with a cache of the given byte budget.
    pub fn new(cache_bytes: usize) -> ServiceState {
        ServiceState {
            cache: ArtifactCache::new(cache_bytes),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            requests: Default::default(),
        }
    }

    /// Asks the accept loop and all connection threads to wind down.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// True when a `shutdown` request or SIGINT has been observed.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || sigint::interrupted()
    }

    fn count_request(&self, cmd: &str) {
        if let Some(i) = CMD_NAMES.iter().position(|n| *n == cmd) {
            self.requests[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    fn count_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// The bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServiceState>,
    oneshot: bool,
}

impl Server {
    /// Binds the listen socket and allocates the cache.
    pub fn bind(cfg: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        Ok(Server {
            listener,
            state: Arc::new(ServiceState::new(cfg.cache_bytes)),
            oneshot: cfg.oneshot,
        })
    }

    /// The actual bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared state (for embedding: request shutdown, read stats).
    pub fn state(&self) -> Arc<ServiceState> {
        self.state.clone()
    }

    /// Runs the accept loop until shutdown, then drains connection
    /// threads and returns the final whole-run report.
    pub fn run(self) -> PipelineReport {
        let state = self.state;
        // Nonblocking accept + short sleeps keeps the loop responsive to
        // the shutdown flag without platform-specific select machinery.
        let _ = self.listener.set_nonblocking(true);
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut conn_seq = 0u64;
        while !state.shutdown_requested() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    conn_seq += 1;
                    state.connections.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.set_nonblocking(false);
                    let st = state.clone();
                    let spawned = std::thread::Builder::new()
                        .name(format!("xmltc-serve-{conn_seq}"))
                        .spawn(move || handle_connection(&st, stream));
                    match spawned {
                        Ok(h) => handles.push(h),
                        Err(_) => state.count_error(),
                    }
                    if self.oneshot {
                        if let Some(h) = handles.pop() {
                            let _ = h.join();
                        }
                        state.request_shutdown();
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
            handles.retain(|h| !h.is_finished());
        }
        state.request_shutdown();
        for h in handles {
            let _ = h.join();
        }
        final_report(&state)
    }
}

/// One connection: read request lines, answer each, until EOF, error,
/// a closing command, or server shutdown. Read timeouts bound how long a
/// idle connection can delay shutdown; a partially-read line survives the
/// timeout because `read_line` appends to the buffer.
fn handle_connection(state: &Arc<ServiceState>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(150)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let text = line.trim();
                let mut close = false;
                if !text.is_empty() {
                    let (response, c) = match proto::parse_line(text) {
                        Ok(env) => answer(state, &env),
                        Err(msg) => {
                            state.count_error();
                            (error_response(None, None, &msg), false)
                        }
                    };
                    close = c;
                    let mut out = response.encode();
                    out.push('\n');
                    if writer.write_all(out.as_bytes()).is_err() {
                        break;
                    }
                    let _ = writer.flush();
                }
                line.clear();
                if close {
                    break;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                if state.shutdown_requested() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// The deterministic payload plus which cache layers the request touched.
struct Served {
    result: Json,
    layers: Vec<(&'static str, CacheOutcome)>,
}

/// Answers one envelope. The bool asks the connection to close (after a
/// `shutdown`, or a batch containing one).
fn answer(state: &Arc<ServiceState>, env: &Envelope) -> (Json, bool) {
    let cmd = env.request.cmd();
    state.count_request(cmd);
    match &env.request {
        Request::Stats => (stats_response(state, env.id), false),
        Request::Shutdown => {
            state.request_shutdown();
            let fields = base_fields(env.id, cmd, true);
            (Json::obj(fields), true)
        }
        Request::Batch(items) => {
            let mut close = false;
            let results: Vec<Json> = items
                .iter()
                .map(|e| {
                    let (r, c) = answer(state, e);
                    close |= c;
                    r
                })
                .collect();
            let mut fields = base_fields(env.id, cmd, true);
            fields.push(("results", Json::Array(results)));
            (Json::obj(fields), close)
        }
        _ => {
            let (outcome, report) = obs::with_report(|| {
                let _s = obs::span("serve.request");
                exec(state, &env.request)
            });
            journal_cache_counters(state);
            match outcome {
                Ok(served) => {
                    let mut fields = base_fields(env.id, cmd, true);
                    fields.push(("result", served.result));
                    fields.push(("cache", cache_json(&served.layers)));
                    fields.push(("wall_ms", Json::F64(report.total_ms())));
                    fields.push(("metrics", metrics_json(&report)));
                    (Json::obj(fields), false)
                }
                Err(msg) => {
                    state.count_error();
                    (error_response(env.id, Some(cmd), &msg), false)
                }
            }
        }
    }
}

/// Runs one validate/transform/typecheck request against the cache.
fn exec(state: &ServiceState, request: &Request) -> Result<Served, String> {
    match request {
        Request::Validate {
            input_dtd,
            document,
        } => exec_validate(state, input_dtd, document),
        Request::Transform {
            input_dtd,
            stylesheet,
            document,
        } => exec_transform(state, input_dtd, stylesheet, document),
        Request::Typecheck(p) => exec_typecheck(state, p),
        _ => Err("internal: non-executable request".into()),
    }
}

fn as_dtd(a: Artifact) -> Result<Arc<Dtd>, String> {
    match a {
        Artifact::Dtd(d) => Ok(d),
        _ => Err("cache kind mismatch (dtd)".into()),
    }
}

fn as_pipeline(a: Artifact) -> Result<Arc<DocumentPipeline>, String> {
    match a {
        Artifact::Pipeline(p) => Ok(p),
        _ => Err("cache kind mismatch (pipeline)".into()),
    }
}

fn as_nta(a: Artifact) -> Result<Arc<Nta>, String> {
    match a {
        Artifact::Nta(n) => Ok(n),
        _ => Err("cache kind mismatch (nta)".into()),
    }
}

fn as_verdict(a: Artifact) -> Result<Arc<VerdictArtifact>, String> {
    match a {
        Artifact::Verdict(v) => Ok(v),
        _ => Err("cache kind mismatch (verdict)".into()),
    }
}

fn cached_pipeline(
    state: &ServiceState,
    input_dtd: &str,
    stylesheet: &str,
) -> (Result<Arc<DocumentPipeline>, String>, CacheOutcome) {
    let (res, out) = state
        .cache
        .get_or_build(key::pipeline_key(input_dtd, stylesheet), || {
            let dtd = Dtd::parse_text(input_dtd).map_err(|e| e.to_string())?;
            let sheet = Stylesheet::parse_text(stylesheet).map_err(|e| e.to_string())?;
            DocumentPipeline::new(sheet, dtd)
                .map(|p| Artifact::Pipeline(Arc::new(p)))
                .map_err(|e| e.to_string())
        });
    (res.and_then(as_pipeline), out)
}

fn exec_validate(state: &ServiceState, input_dtd: &str, document: &str) -> Result<Served, String> {
    let (res, dout) = state.cache.get_or_build(key::dtd_key(input_dtd), || {
        Dtd::parse_text(input_dtd)
            .map(|d| Artifact::Dtd(Arc::new(d)))
            .map_err(|e| e.to_string())
    });
    let dtd = as_dtd(res?)?;
    let doc = {
        let _s = obs::span("doc.parse");
        parse_document(document, dtd.alphabet()).map_err(|e| e.to_string())?
    };
    let verdict = {
        let _s = obs::span("dtd.validate");
        dtd.validate(&doc)
    };
    obs::record("verdict.ok", verdict.is_ok() as u64);
    let result = match verdict {
        Ok(()) => Json::obj(vec![("verdict", Json::Str("valid".into()))]),
        Err(e) => Json::obj(vec![
            ("verdict", Json::Str("invalid".into())),
            ("reason", Json::Str(e.to_string())),
        ]),
    };
    Ok(Served {
        result,
        layers: vec![("dtd", dout)],
    })
}

fn exec_transform(
    state: &ServiceState,
    input_dtd: &str,
    stylesheet: &str,
    document: &str,
) -> Result<Served, String> {
    let (pipeline, pout) = cached_pipeline(state, input_dtd, stylesheet);
    let pipeline = pipeline?;
    let doc = {
        let _s = obs::span("doc.parse");
        parse_document(document, pipeline.input_dtd().alphabet()).map_err(|e| e.to_string())?
    };
    let out = pipeline.transform(&doc).map_err(|e| e.to_string())?;
    Ok(Served {
        result: Json::obj(vec![("output", Json::Str(raw_to_xml(&out)))]),
        layers: vec![("pipeline", pout)],
    })
}

/// The cached typecheck: verdict artifact first (a warm hit does **zero**
/// construction work — no pipeline compile, no τ₂, no Theorem 4.7); on a
/// miss, each constituent artifact comes from its own cache layer, so a
/// new output DTD against a known stylesheet only pays τ₂ + violations,
/// and a new engine against a known triple only pays the emptiness check.
fn exec_typecheck(state: &ServiceState, p: &TypecheckParams) -> Result<Served, String> {
    let opts = p.to_options();
    let vkey = key::verdict_key(
        &p.input_dtd,
        &p.stylesheet,
        &p.output_dtd,
        &p.route,
        &p.engine,
        p.state_limit,
        p.explain,
    );
    // Layer outcomes escape the single-flight closure through cells: when
    // this thread leads the build they are set; when the verdict comes
    // from cache (or another thread's flight) they stay unset and the
    // response only names the layers actually touched.
    let pipe_out = Cell::new(None);
    let tau2_out = Cell::new(None);
    let viol_out = Cell::new(None);
    let (vres, vout) = state.cache.get_or_build(vkey, || {
        let (pipeline, pout) = cached_pipeline(state, &p.input_dtd, &p.stylesheet);
        pipe_out.set(Some(pout));
        let pipeline = pipeline?;
        if p.explain {
            // Provenance runs the full decision uncached (the report
            // replays the counterexample against the live automata), but
            // the finished report is itself cached under the verdict key.
            let (verdict, report) = pipeline
                .explain_against_with(&p.output_dtd, &opts)
                .map_err(|e| e.to_string())?;
            return Ok(Artifact::Verdict(Arc::new(VerdictArtifact {
                verdict,
                explain_json: Some(report.to_json_string()),
            })));
        }
        let (tres, tout) = state.cache.get_or_build(
            key::tau2_key(&p.input_dtd, &p.stylesheet, &p.output_dtd),
            || {
                pipeline
                    .compile_output_dtd(&p.output_dtd)
                    .map(|n| Artifact::Nta(Arc::new(n)))
                    .map_err(|e| e.to_string())
            },
        );
        tau2_out.set(Some(tout));
        let tau2 = as_nta(tres?)?;
        let (rres, rout) = state.cache.get_or_build(
            key::violations_key(
                &p.input_dtd,
                &p.stylesheet,
                &p.output_dtd,
                &p.route,
                p.state_limit,
            ),
            || {
                violation_nta(pipeline.transducer(), &tau2, &opts)
                    .map(|n| Artifact::Nta(Arc::new(n)))
                    .map_err(|e| e.to_string())
            },
        );
        viol_out.set(Some(rout));
        let violations = as_nta(rres?)?;
        let verdict = pipeline
            .typecheck_with_violations_nta(&tau2, &violations, &opts)
            .map_err(|e| e.to_string())?;
        Ok(Artifact::Verdict(Arc::new(VerdictArtifact {
            verdict,
            explain_json: None,
        })))
    });
    let verdict = as_verdict(vres?)?;
    obs::record("verdict.ok", verdict.verdict.is_ok() as u64);
    let mut layers = Vec::new();
    if let Some(o) = pipe_out.get() {
        layers.push(("pipeline", o));
    }
    if let Some(o) = tau2_out.get() {
        layers.push(("tau2", o));
    }
    if let Some(o) = viol_out.get() {
        layers.push(("violations", o));
    }
    layers.push(("verdict", vout));
    Ok(Served {
        result: verdict_result_json(&verdict),
        layers,
    })
}

/// The deterministic `"result"` object of a typecheck response:
/// byte-identical whether the verdict was computed or served warm.
fn verdict_result_json(v: &VerdictArtifact) -> Json {
    let mut fields = Vec::new();
    match &v.verdict {
        DocumentVerdict::Ok => fields.push(("verdict", Json::Str("typechecks".into()))),
        DocumentVerdict::CounterExample { input, bad_output } => {
            fields.push(("verdict", Json::Str("counterexample".into())));
            fields.push(("input", Json::Str(raw_to_xml(input))));
            fields.push((
                "bad_output",
                match bad_output {
                    Some(b) => Json::Str(raw_to_xml(b)),
                    None => Json::Null,
                },
            ));
        }
    }
    if let Some(text) = &v.explain_json {
        let parsed = Json::parse(text).unwrap_or(Json::Str(text.clone()));
        fields.push(("explain", parsed));
    }
    Json::obj(fields)
}

fn base_fields(id: Option<u64>, cmd: &str, ok: bool) -> Vec<(&'static str, Json)> {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id", Json::U64(id)));
    }
    fields.push(("ok", Json::Bool(ok)));
    fields.push((
        "cmd",
        Json::Str(
            CMD_NAMES
                .iter()
                .find(|n| **n == cmd)
                .copied()
                .unwrap_or("unknown")
                .into(),
        ),
    ));
    fields
}

fn error_response(id: Option<u64>, cmd: Option<&str>, msg: &str) -> Json {
    let mut fields = base_fields(id, cmd.unwrap_or("unknown"), false);
    fields.push(("error", Json::Str(msg.into())));
    Json::obj(fields)
}

/// The `"cache"` response object: one field per touched layer plus the
/// per-request hit/miss/coalesced totals the round-trip tests assert on.
fn cache_json(layers: &[(&'static str, CacheOutcome)]) -> Json {
    let (mut hits, mut misses, mut coalesced) = (0u64, 0u64, 0u64);
    let mut fields = Vec::new();
    for (name, outcome) in layers {
        fields.push((*name, Json::Str(outcome.name().into())));
        match outcome {
            CacheOutcome::Hit => hits += 1,
            CacheOutcome::Miss => misses += 1,
            CacheOutcome::Coalesced => coalesced += 1,
        }
    }
    fields.push(("hits", Json::U64(hits)));
    fields.push(("misses", Json::U64(misses)));
    fields.push(("coalesced", Json::U64(coalesced)));
    Json::obj(fields)
}

/// Flattens a per-request report into one metrics object (first write of
/// a repeated name wins, matching span order).
fn metrics_json(report: &PipelineReport) -> Json {
    let mut fields: Vec<(String, Json)> = Vec::new();
    fn push(fields: &mut Vec<(String, Json)>, key: &str, value: u64) {
        if !fields.iter().any(|(k, _)| k == key) {
            fields.push((key.to_string(), Json::U64(value)));
        }
    }
    for span in &report.spans {
        for (k, v) in &span.metrics {
            push(&mut fields, k, *v);
        }
    }
    for (k, v) in &report.metrics {
        push(&mut fields, k, *v);
    }
    Json::Object(fields)
}

/// Samples the global cache counters onto the event journal (counter
/// tracks in the Chrome trace), once per answered request.
fn journal_cache_counters(state: &ServiceState) {
    if !obs::journal::enabled() {
        return;
    }
    let snap = state.cache.snapshot();
    obs::journal::counter("cache.hits", snap.hits);
    obs::journal::counter("cache.misses", snap.misses);
    obs::journal::counter("cache.coalesces", snap.coalesces);
    obs::journal::counter("cache.evictions", snap.evictions);
    obs::journal::counter("cache.bytes", snap.bytes);
    obs::journal::counter("cache.entries", snap.entries);
}

fn stats_response(state: &ServiceState, id: Option<u64>) -> Json {
    let mut fields = base_fields(id, "stats", true);
    fields.push(("protocol", Json::Str(proto::PROTOCOL.into())));
    fields.push((
        "uptime_ms",
        Json::U64(state.started.elapsed().as_millis() as u64),
    ));
    fields.push((
        "connections",
        Json::U64(state.connections.load(Ordering::Relaxed)),
    ));
    let mut requests: Vec<(String, Json)> = Vec::new();
    let mut total = 0;
    for (i, name) in CMD_NAMES.iter().enumerate() {
        let n = state.requests[i].load(Ordering::Relaxed);
        total += n;
        requests.push((name.to_string(), Json::U64(n)));
    }
    requests.push(("total".into(), Json::U64(total)));
    fields.push(("requests", Json::Object(requests)));
    fields.push(("errors", Json::U64(state.errors.load(Ordering::Relaxed))));
    fields.push(("cache", cache_snapshot_json(state)));
    Json::obj(fields)
}

fn cache_snapshot_json(state: &ServiceState) -> Json {
    let snap = state.cache.snapshot();
    let mut kinds: Vec<(String, Json)> = Vec::new();
    for kind in key::ArtifactKind::ALL {
        let (hits, misses) = snap.per_kind[kind.index()];
        kinds.push((
            kind.name().to_string(),
            Json::obj(vec![
                ("hits", Json::U64(hits)),
                ("misses", Json::U64(misses)),
            ]),
        ));
    }
    Json::obj(vec![
        ("hits", Json::U64(snap.hits)),
        ("misses", Json::U64(snap.misses)),
        ("coalesces", Json::U64(snap.coalesces)),
        ("evictions", Json::U64(snap.evictions)),
        ("bytes", Json::U64(snap.bytes)),
        ("budget_bytes", Json::U64(snap.budget_bytes)),
        ("entries", Json::U64(snap.entries)),
        ("kinds", Json::Object(kinds)),
    ])
}

/// The whole-run report emitted at shutdown: one `serve` span covering
/// the uptime, plus the request and cache totals as metrics. Rendered by
/// `xmltc serve` as a table (or JSON with `--json`) after the accept loop
/// exits — including on SIGINT.
pub fn final_report(state: &ServiceState) -> PipelineReport {
    let snap = state.cache.snapshot();
    let mut metrics: Vec<(String, u64)> = Vec::new();
    metrics.push((
        "serve.connections".into(),
        state.connections.load(Ordering::Relaxed),
    ));
    let mut total = 0;
    for (i, name) in CMD_NAMES.iter().enumerate() {
        let n = state.requests[i].load(Ordering::Relaxed);
        total += n;
        metrics.push((format!("serve.requests.{name}"), n));
    }
    metrics.push(("serve.requests".into(), total));
    metrics.push(("serve.errors".into(), state.errors.load(Ordering::Relaxed)));
    metrics.push(("cache.hits".into(), snap.hits));
    metrics.push(("cache.misses".into(), snap.misses));
    metrics.push(("cache.coalesces".into(), snap.coalesces));
    metrics.push(("cache.evictions".into(), snap.evictions));
    metrics.push(("cache.bytes".into(), snap.bytes));
    metrics.push(("cache.entries".into(), snap.entries));
    for kind in key::ArtifactKind::ALL {
        let (hits, misses) = snap.per_kind[kind.index()];
        metrics.push((format!("cache.hits.{}", kind.name()), hits));
        metrics.push((format!("cache.misses.{}", kind.name()), misses));
    }
    PipelineReport {
        spans: vec![SpanRecord {
            name: "serve".into(),
            depth: 0,
            wall_ns: state.started.elapsed().as_nanos() as u64,
            metrics: Vec::new(),
        }],
        metrics,
    }
}
