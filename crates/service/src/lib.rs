//! # xmltc-service
//!
//! The `xmltc serve` long-running typecheck service.
//!
//! A CI fleet typechecking the same stylesheets against evolving DTDs
//! pays the expensive part of the paper's pipeline — the Theorem 4.7
//! violation-automaton construction — over and over for inputs that
//! rarely change. This crate amortizes it: a std-only TCP server
//! ([`server`]) speaks line-delimited JSON ([`proto`]) and answers every
//! request from a **content-addressed artifact cache** ([`cache`]) keyed
//! on FNV digests of the request *texts* ([`key`]), never on paths or
//! session identity:
//!
//! * parsed input DTDs (for `validate`),
//! * compiled stylesheet pipelines (transducer + `τ₁`),
//! * compiled output automata `τ₂`,
//! * violation automata — the Proposition 4.6 + Theorem 4.7 output for
//!   `(transducer, τ₂)`, reusable across engines and thread counts,
//! * final verdicts with optional provenance reports.
//!
//! A warm repeated `typecheck` is served entirely from the verdict layer:
//! byte-identical result, zero construction work (its response metrics
//! carry no `walk.*` keys because no walk ran). Concurrent misses on one
//! key are single-flighted — one build, every waiter shares the `Arc` —
//! and an approximate-byte LRU budget bounds memory. See DESIGN.md
//! ("Service & artifact cache") for the protocol grammar and eviction
//! policy, and `xmltc serve --help` / `xmltc client --help` for the CLI.

// `deny`, not the workspace's usual `forbid`: the SIGINT handler in
// [`server::sigint`] needs one locally-allowed `unsafe` block to register
// a C signal handler. Everything else stays checked.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod key;
pub mod proto;
pub mod server;

pub use cache::{Artifact, ArtifactCache, CacheOutcome, CacheSnapshot, VerdictArtifact};
pub use client::Client;
pub use key::{ArtifactKey, ArtifactKind, ContentHash};
pub use proto::{Envelope, Request, TypecheckParams, PROTOCOL};
pub use server::{ServeConfig, Server, ServiceState};
