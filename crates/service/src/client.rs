//! A minimal blocking client for the line-delimited JSON protocol.
//!
//! Backs the `xmltc client` subcommand and the round-trip tests: connect,
//! send one request object per line, read one response object per line.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use xmltc_obs::Json;

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running `xmltc serve` instance.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: stream,
        })
    }

    /// Sends one raw request line and returns the raw response line
    /// (without the trailing newline).
    pub fn roundtrip_line(&mut self, line: &str) -> Result<String, String> {
        let mut out = line.trim_end().to_string();
        out.push('\n');
        self.writer
            .write_all(out.as_bytes())
            .and_then(|_| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| format!("receive failed: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".into());
        }
        Ok(response.trim_end().to_string())
    }

    /// Sends one request value and parses the response.
    pub fn roundtrip(&mut self, request: &Json) -> Result<Json, String> {
        let line = self.roundtrip_line(&request.encode())?;
        Json::parse(&line).map_err(|e| format!("malformed response: {e}"))
    }
}
