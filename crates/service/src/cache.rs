//! The content-addressed artifact cache.
//!
//! Stores the expensive intermediates of the typecheck pipeline behind
//! [`Arc`]s, keyed by [`ArtifactKey`](crate::key::ArtifactKey) content
//! digests:
//!
//! * parsed input DTDs (`validate`),
//! * compiled [`DocumentPipeline`]s (stylesheet + input DTD),
//! * compiled output automata `τ₂`,
//! * Theorem 4.7 violation automata — the dominant cost of a typecheck,
//! * final verdicts with optional provenance reports.
//!
//! Three mechanisms, all std-only:
//!
//! * **LRU byte-budget eviction** — every artifact carries an approximate
//!   byte size; inserting past the budget evicts least-recently-used
//!   entries first. An artifact larger than the whole budget is returned
//!   to the caller but never retained.
//! * **Single-flight deduplication** — when N threads miss on the same
//!   key concurrently, exactly one builds; the rest block on a
//!   [`Condvar`] and receive the same `Arc` (counted as *coalesced*, not
//!   as misses). Build errors propagate to every waiter and are **not**
//!   cached, so a transient failure doesn't poison the key.
//! * **Atomic stats** — hits/misses/evictions/coalesces, globally and per
//!   artifact kind, readable without taking the map lock.

use crate::key::{ArtifactKey, ArtifactKind};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use xmltc_automata::Nta;
use xmltc_dtd::Dtd;
use xmltc_xmlql::pipeline::{DocumentPipeline, DocumentVerdict};

/// A cached verdict: the document-level outcome plus, for explain
/// requests, the provenance report JSON (schema `xmltc.explain/1`).
#[derive(Clone)]
pub struct VerdictArtifact {
    /// The typecheck verdict.
    pub verdict: DocumentVerdict,
    /// The explain report, pre-encoded, when the request asked for one.
    pub explain_json: Option<String>,
}

/// One cacheable artifact. Clones are `Arc` bumps.
#[derive(Clone)]
pub enum Artifact {
    /// A parsed input DTD.
    Dtd(Arc<Dtd>),
    /// A compiled stylesheet pipeline.
    Pipeline(Arc<DocumentPipeline>),
    /// A compiled tree automaton (`τ₂` or a violation automaton).
    Nta(Arc<Nta>),
    /// A final verdict.
    Verdict(Arc<VerdictArtifact>),
}

impl std::fmt::Debug for Artifact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            Artifact::Dtd(_) => "dtd",
            Artifact::Pipeline(_) => "pipeline",
            Artifact::Nta(_) => "nta",
            Artifact::Verdict(_) => "verdict",
        };
        write!(f, "Artifact::{kind}(~{} bytes)", self.approx_bytes())
    }
}

impl Artifact {
    /// Approximate retained size in bytes, for the eviction budget.
    ///
    /// These are estimates, not measurements: automata are costed per
    /// state/transition, pipelines per transducer state, strings by
    /// length, each plus a fixed overhead. The budget only needs relative
    /// honesty — a 100k-state violation DBTA must cost vastly more than a
    /// ten-rule DTD — not byte accuracy.
    pub fn approx_bytes(&self) -> usize {
        const FIXED: usize = 512;
        match self {
            Artifact::Dtd(d) => FIXED + 64 * d.alphabet().len(),
            Artifact::Pipeline(p) => {
                FIXED
                    + 256 * p.transducer().core().n_states() as usize
                    + 64 * p.input_dtd().alphabet().len()
            }
            Artifact::Nta(n) => FIXED + 16 * n.n_states() as usize + 32 * n.n_transitions(),
            Artifact::Verdict(v) => {
                let verdict = match &v.verdict {
                    DocumentVerdict::Ok => 0,
                    DocumentVerdict::CounterExample { input, bad_output } => {
                        64 * (input.size() + bad_output.as_ref().map_or(0, |b| b.size()))
                    }
                };
                FIXED + verdict + v.explain_json.as_ref().map_or(0, String::len)
            }
        }
    }
}

/// How a cache access was served.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheOutcome {
    /// Found in the cache.
    Hit,
    /// Built by this caller.
    Miss,
    /// Another thread was already building it; this caller waited and
    /// shared the result.
    Coalesced,
}

impl CacheOutcome {
    /// Stable lowercase name, used in responses.
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Coalesced => "coalesced",
        }
    }
}

/// A point-in-time copy of the cache counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheSnapshot {
    /// Lookups served from the map.
    pub hits: u64,
    /// Lookups that built the artifact.
    pub misses: u64,
    /// Lookups that waited on another thread's build.
    pub coalesces: u64,
    /// Entries evicted to stay under budget.
    pub evictions: u64,
    /// Approximate retained bytes.
    pub bytes: u64,
    /// Live entries.
    pub entries: u64,
    /// The configured byte budget.
    pub budget_bytes: u64,
    /// Per-kind (hits, misses), indexed by [`ArtifactKind::index`].
    pub per_kind: [(u64, u64); ArtifactKind::COUNT],
}

#[derive(Default)]
struct KindStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Default)]
struct Stats {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesces: AtomicU64,
    evictions: AtomicU64,
    per_kind: [KindStats; ArtifactKind::COUNT],
}

/// The single-flight rendezvous for one in-progress build.
struct Flight {
    slot: Mutex<Option<Result<Artifact, String>>>,
    done: Condvar,
}

struct Entry {
    artifact: Artifact,
    bytes: usize,
    /// Logical LRU clock stamp; larger = used more recently.
    stamp: u64,
}

struct Inner {
    entries: HashMap<ArtifactKey, Entry>,
    inflight: HashMap<ArtifactKey, Arc<Flight>>,
    bytes: usize,
    clock: u64,
}

/// The artifact cache. Cheap to share: wrap in an `Arc`.
pub struct ArtifactCache {
    budget: usize,
    inner: Mutex<Inner>,
    stats: Stats,
}

impl ArtifactCache {
    /// Default byte budget: 256 MiB.
    pub const DEFAULT_BUDGET: usize = 256 << 20;

    /// A cache with the given approximate byte budget (0 disables
    /// retention entirely: every access builds, nothing is kept — still
    /// single-flighted).
    pub fn new(budget_bytes: usize) -> ArtifactCache {
        ArtifactCache {
            budget: budget_bytes,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                inflight: HashMap::new(),
                bytes: 0,
                clock: 0,
            }),
            stats: Stats::default(),
        }
    }

    /// Returns the cached artifact for `key`, or builds it with `build`.
    ///
    /// Concurrent callers for the same key are single-flighted: one runs
    /// `build` (without holding the cache lock), the others wait and share
    /// the result. `Err` results propagate to all waiters but are not
    /// retained.
    pub fn get_or_build(
        &self,
        key: ArtifactKey,
        build: impl FnOnce() -> Result<Artifact, String>,
    ) -> (Result<Artifact, String>, CacheOutcome) {
        let flight = {
            let mut inner = self.inner.lock().unwrap();
            inner.clock += 1;
            let stamp = inner.clock;
            if let Some(entry) = inner.entries.get_mut(&key) {
                entry.stamp = stamp;
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                self.stats.per_kind[key.kind.index()]
                    .hits
                    .fetch_add(1, Ordering::Relaxed);
                return (Ok(entry.artifact.clone()), CacheOutcome::Hit);
            }
            match inner.inflight.get(&key) {
                Some(f) => f.clone(),
                None => {
                    let flight = Arc::new(Flight {
                        slot: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    inner.inflight.insert(key, flight.clone());
                    drop(inner);
                    // Leader: build outside the lock.
                    let result = build();
                    let mut inner = self.inner.lock().unwrap();
                    inner.inflight.remove(&key);
                    if let Ok(artifact) = &result {
                        self.insert_locked(&mut inner, key, artifact.clone());
                    }
                    drop(inner);
                    self.stats.misses.fetch_add(1, Ordering::Relaxed);
                    self.stats.per_kind[key.kind.index()]
                        .misses
                        .fetch_add(1, Ordering::Relaxed);
                    let mut slot = flight.slot.lock().unwrap();
                    *slot = Some(result.clone());
                    flight.done.notify_all();
                    return (result, CacheOutcome::Miss);
                }
            }
        };
        // Waiter: block until the leader publishes.
        let mut slot = flight.slot.lock().unwrap();
        while slot.is_none() {
            slot = flight.done.wait(slot).unwrap();
        }
        self.stats.coalesces.fetch_add(1, Ordering::Relaxed);
        (slot.clone().unwrap(), CacheOutcome::Coalesced)
    }

    /// Inserts under the already-held lock, then evicts LRU entries until
    /// back under budget. The just-inserted entry is evicted last — and
    /// only when it alone exceeds the whole budget (callers still hold the
    /// `Arc`, so the build is never wasted).
    fn insert_locked(&self, inner: &mut Inner, key: ArtifactKey, artifact: Artifact) {
        let bytes = artifact.approx_bytes();
        inner.clock += 1;
        let stamp = inner.clock;
        let old = inner.entries.insert(
            key,
            Entry {
                artifact,
                bytes,
                stamp,
            },
        );
        inner.bytes += bytes;
        if let Some(old) = old {
            inner.bytes -= old.bytes;
        }
        while inner.bytes > self.budget {
            let victim = inner
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k);
            let victim = match victim {
                Some(v) => v,
                // Only the fresh entry remains and it alone busts the
                // budget: drop it from the map too.
                None => key,
            };
            if let Some(e) = inner.entries.remove(&victim) {
                inner.bytes -= e.bytes;
            }
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            if victim == key {
                break;
            }
        }
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> CacheSnapshot {
        let (bytes, entries) = {
            let inner = self.inner.lock().unwrap();
            (inner.bytes as u64, inner.entries.len() as u64)
        };
        let mut per_kind = [(0, 0); ArtifactKind::COUNT];
        for (i, k) in self.stats.per_kind.iter().enumerate() {
            per_kind[i] = (
                k.hits.load(Ordering::Relaxed),
                k.misses.load(Ordering::Relaxed),
            );
        }
        CacheSnapshot {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            coalesces: self.stats.coalesces.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            bytes,
            entries,
            budget_bytes: self.budget as u64,
            per_kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::dtd_key;

    fn dtd_artifact(text: &str) -> Artifact {
        Artifact::Dtd(Arc::new(Dtd::parse_text(text).unwrap()))
    }

    #[test]
    fn hit_after_miss() {
        let cache = ArtifactCache::new(ArtifactCache::DEFAULT_BUDGET);
        let key = dtd_key("root := a*\na := @eps");
        let (a, o) = cache.get_or_build(key, || Ok(dtd_artifact("root := a*\na := @eps")));
        assert!(a.is_ok());
        assert_eq!(o, CacheOutcome::Miss);
        let (b, o) = cache.get_or_build(key, || panic!("must not rebuild"));
        assert!(b.is_ok());
        assert_eq!(o, CacheOutcome::Hit);
        let s = cache.snapshot();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.bytes > 0);
    }

    #[test]
    fn errors_propagate_and_are_not_cached() {
        let cache = ArtifactCache::new(ArtifactCache::DEFAULT_BUDGET);
        let key = dtd_key("bad");
        let (r, o) = cache.get_or_build(key, || Err("boom".into()));
        assert_eq!(r.unwrap_err(), "boom");
        assert_eq!(o, CacheOutcome::Miss);
        // The failure was not retained: the next access builds again.
        let (r, o) = cache.get_or_build(key, || Ok(dtd_artifact("root := a*\na := @eps")));
        assert!(r.is_ok());
        assert_eq!(o, CacheOutcome::Miss);
        assert_eq!(cache.snapshot().entries, 1);
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let one = dtd_artifact("root := a*\na := @eps");
        let bytes = one.approx_bytes();
        // Budget fits two entries but not three.
        let cache = ArtifactCache::new(2 * bytes + bytes / 2);
        let k1 = dtd_key("one");
        let k2 = dtd_key("two");
        let k3 = dtd_key("three");
        cache.get_or_build(k1, || Ok(one.clone())).0.unwrap();
        cache.get_or_build(k2, || Ok(one.clone())).0.unwrap();
        // Touch k1 so k2 becomes the LRU victim.
        assert_eq!(
            cache.get_or_build(k1, || panic!("cached")).1,
            CacheOutcome::Hit
        );
        cache.get_or_build(k3, || Ok(one.clone())).0.unwrap();
        let s = cache.snapshot();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        // k2 was evicted; k1 and k3 remain.
        assert_eq!(
            cache.get_or_build(k1, || panic!("cached")).1,
            CacheOutcome::Hit
        );
        assert_eq!(
            cache.get_or_build(k3, || panic!("cached")).1,
            CacheOutcome::Hit
        );
        assert_eq!(
            cache.get_or_build(k2, || Ok(one.clone())).1,
            CacheOutcome::Miss
        );
    }

    #[test]
    fn oversize_artifact_serves_but_is_not_retained() {
        let cache = ArtifactCache::new(16); // smaller than any artifact
        let key = dtd_key("root := a*\na := @eps");
        let (r, o) = cache.get_or_build(key, || Ok(dtd_artifact("root := a*\na := @eps")));
        assert!(r.is_ok());
        assert_eq!(o, CacheOutcome::Miss);
        let s = cache.snapshot();
        assert_eq!(s.entries, 0);
        assert_eq!(s.bytes, 0);
        assert!(s.evictions >= 1);
    }

    #[test]
    fn single_flight_coalesces_concurrent_builds() {
        use std::sync::atomic::AtomicUsize;
        let cache = Arc::new(ArtifactCache::new(ArtifactCache::DEFAULT_BUDGET));
        let builds = Arc::new(AtomicUsize::new(0));
        let key = dtd_key("root := a*\na := @eps");
        const THREADS: usize = 8;
        let barrier = Arc::new(std::sync::Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let (cache, builds, barrier) = (cache.clone(), builds.clone(), barrier.clone());
                std::thread::spawn(move || {
                    barrier.wait();
                    let (r, o) = cache.get_or_build(key, || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough that the other
                        // threads arrive while the build is in progress.
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        Ok(dtd_artifact("root := a*\na := @eps"))
                    });
                    assert!(r.is_ok());
                    o
                })
            })
            .collect();
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Exactly one build ran; every other thread either coalesced onto
        // the flight or (if it started after publication) hit the cache.
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        assert_eq!(
            outcomes
                .iter()
                .filter(|o| **o == CacheOutcome::Miss)
                .count(),
            1
        );
        let s = cache.snapshot();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits + s.coalesces, (THREADS - 1) as u64);
    }
}
