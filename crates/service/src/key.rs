//! Content-addressed artifact keys.
//!
//! Every cacheable artifact is keyed by a 128-bit FNV-1a digest of the
//! *texts and options that determine it* — never by file paths or request
//! identity. Two requests that ship byte-identical DTD/stylesheet texts
//! share artifacts no matter where the bytes came from; a single changed
//! byte yields a fresh key.
//!
//! The digest is two independent 64-bit FNV-1a streams (distinct offset
//! bases) over length-prefixed fields. Length prefixes make the encoding
//! injective — `("ab", "c")` and `("a", "bc")` hash differently — and the
//! second stream pushes accidental collisions from "birthday-plausible at
//! scale" (64-bit) to "negligible" (128-bit). FNV is already the
//! workspace's hash of choice (`trees::fx`); this module reuses the same
//! constants rather than pulling in a cryptographic dependency.

/// 64-bit FNV-1a offset basis (stream A).
const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
/// Stream B starts from a different, fixed basis so the two streams are
/// not related by a common prefix.
const FNV_OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
/// 64-bit FNV prime (both streams).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 128-bit content digest: two independent FNV-1a streams.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ContentHash(pub u64, pub u64);

impl std::fmt::Display for ContentHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.0, self.1)
    }
}

/// An incremental 128-bit FNV-1a hasher over length-prefixed fields.
pub struct Hasher {
    a: u64,
    b: u64,
}

impl Hasher {
    /// A fresh hasher at the offset bases.
    pub fn new() -> Hasher {
        Hasher {
            a: FNV_OFFSET_A,
            b: FNV_OFFSET_B,
        }
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ byte as u64).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ byte as u64).wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one field, prefixed by its byte length (injective framing).
    pub fn field(&mut self, text: &str) -> &mut Hasher {
        self.bytes(&(text.len() as u64).to_le_bytes());
        self.bytes(text.as_bytes());
        self
    }

    /// Feeds one numeric field (fixed 8-byte frame).
    pub fn num(&mut self, n: u64) -> &mut Hasher {
        self.bytes(&n.to_le_bytes());
        self
    }

    /// The final digest.
    pub fn finish(&self) -> ContentHash {
        ContentHash(self.a, self.b)
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

/// What kind of artifact a key names. Part of the key, so a DTD digest
/// and a pipeline digest can never alias even if their hashes collided.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ArtifactKind {
    /// A parsed input DTD (for `validate`): keyed on the DTD text.
    Dtd,
    /// A compiled [`DocumentPipeline`](xmltc_xmlql::pipeline::DocumentPipeline):
    /// keyed on (input DTD text, stylesheet text).
    Pipeline,
    /// The compiled output automaton `τ₂`: keyed on (input DTD,
    /// stylesheet, output DTD) — the stylesheet fixes the output alphabet,
    /// so the same output-DTD text compiles differently under different
    /// pipelines.
    Tau2,
    /// The Theorem 4.7 violation automaton for `(transducer, τ₂)`: keyed
    /// on (input DTD, stylesheet, output DTD, route, state limit). Thread
    /// count is deliberately **excluded** — walk construction is
    /// bit-identical at any thread count (see `tests/walk_determinism.rs`),
    /// so requests differing only in `threads` share the artifact.
    Violations,
    /// A final verdict (with optional provenance report): additionally
    /// keyed on the engine and the explain flag, since different engines
    /// may surface different (equally valid) counterexample witnesses.
    Verdict,
}

impl ArtifactKind {
    /// Stable lowercase name, used in stats output and responses.
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::Dtd => "dtd",
            ArtifactKind::Pipeline => "pipeline",
            ArtifactKind::Tau2 => "tau2",
            ArtifactKind::Violations => "violations",
            ArtifactKind::Verdict => "verdict",
        }
    }

    /// Dense index for per-kind stats arrays.
    pub const COUNT: usize = 5;
    /// Index of this kind in `[0, COUNT)`.
    pub fn index(self) -> usize {
        match self {
            ArtifactKind::Dtd => 0,
            ArtifactKind::Pipeline => 1,
            ArtifactKind::Tau2 => 2,
            ArtifactKind::Violations => 3,
            ArtifactKind::Verdict => 4,
        }
    }
    /// All kinds, in [`ArtifactKind::index`] order.
    pub const ALL: [ArtifactKind; ArtifactKind::COUNT] = [
        ArtifactKind::Dtd,
        ArtifactKind::Pipeline,
        ArtifactKind::Tau2,
        ArtifactKind::Violations,
        ArtifactKind::Verdict,
    ];
}

/// A complete cache key: kind + content digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ArtifactKey {
    /// The artifact kind.
    pub kind: ArtifactKind,
    /// The content digest.
    pub hash: ContentHash,
}

/// Key of a parsed input DTD.
pub fn dtd_key(input_dtd: &str) -> ArtifactKey {
    ArtifactKey {
        kind: ArtifactKind::Dtd,
        hash: Hasher::new().field(input_dtd).finish(),
    }
}

/// Key of a compiled stylesheet pipeline.
pub fn pipeline_key(input_dtd: &str, stylesheet: &str) -> ArtifactKey {
    ArtifactKey {
        kind: ArtifactKind::Pipeline,
        hash: Hasher::new().field(input_dtd).field(stylesheet).finish(),
    }
}

/// Key of a compiled output automaton `τ₂`.
pub fn tau2_key(input_dtd: &str, stylesheet: &str, output_dtd: &str) -> ArtifactKey {
    ArtifactKey {
        kind: ArtifactKind::Tau2,
        hash: Hasher::new()
            .field(input_dtd)
            .field(stylesheet)
            .field(output_dtd)
            .finish(),
    }
}

/// Key of a violation automaton (route + state budget affect the
/// construction; thread count does not — see [`ArtifactKind::Violations`]).
pub fn violations_key(
    input_dtd: &str,
    stylesheet: &str,
    output_dtd: &str,
    route: &str,
    state_limit: u32,
) -> ArtifactKey {
    ArtifactKey {
        kind: ArtifactKind::Violations,
        hash: Hasher::new()
            .field(input_dtd)
            .field(stylesheet)
            .field(output_dtd)
            .field(route)
            .num(state_limit as u64)
            .finish(),
    }
}

/// Key of a final verdict artifact.
pub fn verdict_key(
    input_dtd: &str,
    stylesheet: &str,
    output_dtd: &str,
    route: &str,
    engine: &str,
    state_limit: u32,
    explain: bool,
) -> ArtifactKey {
    ArtifactKey {
        kind: ArtifactKind::Verdict,
        hash: Hasher::new()
            .field(input_dtd)
            .field(stylesheet)
            .field(output_dtd)
            .field(route)
            .field(engine)
            .num(state_limit as u64)
            .num(explain as u64)
            .finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_prefix_is_injective() {
        let ab_c = Hasher::new().field("ab").field("c").finish();
        let a_bc = Hasher::new().field("a").field("bc").finish();
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn digest_is_stable_and_content_addressed() {
        let k1 = pipeline_key("root := a*", "a -> b");
        let k2 = pipeline_key("root := a*", "a -> b");
        let k3 = pipeline_key("root := a*", "a -> c");
        assert_eq!(k1, k2);
        assert_ne!(k1.hash, k3.hash);
    }

    #[test]
    fn kinds_do_not_alias() {
        let d = dtd_key("root := a*");
        let h = Hasher::new().field("root := a*").finish();
        assert_eq!(d.hash, h);
        // Same digest, different kind: distinct keys.
        let fake = ArtifactKey {
            kind: ArtifactKind::Pipeline,
            hash: h,
        };
        assert_ne!(d, fake);
    }

    #[test]
    fn threads_do_not_enter_violation_keys() {
        // The signature has no thread parameter at all; this test pins the
        // decision (construction is thread-invariant, so keys must be too).
        let a = violations_key("d", "s", "o", "auto", 100);
        let b = violations_key("d", "s", "o", "auto", 100);
        assert_eq!(a, b);
        assert_ne!(a, violations_key("d", "s", "o", "walk", 100));
        assert_ne!(a, violations_key("d", "s", "o", "auto", 101));
    }

    #[test]
    fn kind_indices_are_dense_and_named() {
        for (i, k) in ArtifactKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert!(!k.name().is_empty());
        }
    }
}
