//! Property tests for select/construct queries: the compiled
//! (n+1)-pebble machine must agree with the brute-force interpreter on
//! random documents and random pattern shapes.
//!
//! Driven by the workspace's deterministic [`SmallRng`]; runs a fixed
//! number of seeded cases.

use std::sync::Arc;
use xmltc_regex::Regex;
use xmltc_trees::{decode, encode, Alphabet, RawTree, SmallRng, Symbol, UnrankedTree};
use xmltc_xmlql::query::{Condition, ConstructItem, SelectConstructQuery};

fn alphabet() -> Arc<Alphabet> {
    Alphabet::unranked(&["doc", "a", "b", "c"])
}

fn sym(al: &Arc<Alphabet>, n: &str) -> Symbol {
    al.get(n).unwrap()
}

const TAGS: [&str; 3] = ["a", "b", "c"];

fn rand_subtree(rng: &mut SmallRng, depth: usize) -> RawTree {
    let name = *rng.choose(&TAGS);
    if depth == 0 || rng.gen_bool(0.4) {
        return RawTree::leaf(name);
    }
    let n = rng.gen_range(0..3);
    RawTree::node(name, (0..n).map(|_| rand_subtree(rng, depth - 1)).collect())
}

/// Random documents rooted at `doc` (which never recurs).
fn rand_doc(rng: &mut SmallRng) -> RawTree {
    let n = rng.gen_range(0..3);
    RawTree::node("doc", (0..n).map(|_| rand_subtree(rng, 2)).collect())
}

/// A small pool of path regexes (over tags, any-depth searches).
fn paths(al: &Arc<Alphabet>) -> Vec<Regex<Symbol>> {
    let any = Regex::any(TAGS.map(|n| Regex::sym(sym(al, n))));
    let from_doc = |target: &str| {
        Regex::sym(sym(al, "doc"))
            .concat(any.clone().star())
            .concat(Regex::sym(sym(al, target)))
    };
    let rel = |origin: &str, target: &str| {
        Regex::sym(sym(al, origin))
            .concat(any.clone().star())
            .concat(Regex::sym(sym(al, target)))
    };
    vec![
        from_doc("a"),
        from_doc("b"),
        rel("a", "b"),
        rel("a", "c"),
        rel("b", "c"),
    ]
}

#[test]
fn single_variable_agrees() {
    let al = alphabet();
    let mut rng = SmallRng::seed_from_u64(0x0F01);
    for case in 0..40 {
        let doc = rand_doc(&mut rng);
        let pidx = rng.gen_range(0..2);
        let q = SelectConstructQuery::with_pattern(
            &al,
            sym(&al, "doc"),
            vec![Condition {
                parent: None,
                path: paths(&al)[pidx].clone(),
            }],
            "out",
            RawTree::leaf("hit"),
        );
        check(&q, &al, &doc, case);
    }
}

#[test]
fn two_variable_hierarchical_agrees() {
    let al = alphabet();
    let mut rng = SmallRng::seed_from_u64(0x0F02);
    for case in 0..40 {
        let doc = rand_doc(&mut rng);
        let rel = rng.gen_range(2..5);
        let ps = paths(&al);
        // x1 bound by a root path targeting the relative path's origin tag.
        let origin = match rel {
            2 | 3 => "a",
            _ => "b",
        };
        let c1 = Condition {
            parent: None,
            path: Regex::sym(sym(&al, "doc"))
                .concat(Regex::any(TAGS.map(|n| Regex::sym(sym(&al, n)))).star())
                .concat(Regex::sym(sym(&al, origin))),
        };
        let c2 = Condition {
            parent: Some(0),
            path: ps[rel].clone(),
        };
        let q = SelectConstructQuery::with_pattern(
            &al,
            sym(&al, "doc"),
            vec![c1, c2],
            "out",
            RawTree::leaf("hit"),
        );
        check(&q, &al, &doc, case);
    }
}

/// CONSTRUCT clauses with subtree copies agree with the interpreter.
#[test]
fn copyvar_construct_agrees() {
    let al = alphabet();
    let mut rng = SmallRng::seed_from_u64(0x0F03);
    for case in 0..32 {
        let doc = rand_doc(&mut rng);
        let pidx = rng.gen_range(0..2);
        let q = SelectConstructQuery::with_construct(
            &al,
            sym(&al, "doc"),
            vec![Condition {
                parent: None,
                path: paths(&al)[pidx].clone(),
            }],
            "out",
            vec![
                ConstructItem::Constant(RawTree::leaf("hit")),
                ConstructItem::CopyVar(0),
            ],
        );
        let input = UnrankedTree::from_raw(&doc, &al).unwrap();
        let expected = q.interpret(&input);
        let (t, enc_in, enc_out) = q.compile().unwrap();
        let encoded = encode(&input, &enc_in).unwrap();
        let out = xmltc_core::eval(&t, &encoded).unwrap();
        let decoded = decode(&out, &enc_out).unwrap();
        assert_eq!(decoded.to_raw(), expected, "case {case} on {doc}");
    }
}

fn check(q: &SelectConstructQuery, al: &Arc<Alphabet>, doc: &RawTree, case: usize) {
    let input = UnrankedTree::from_raw(doc, al).unwrap();
    let expected = q.interpret(&input);
    let (t, enc_in, enc_out) = q.compile().unwrap();
    let encoded = encode(&input, &enc_in).unwrap();
    let out = xmltc_core::eval(&t, &encoded).unwrap();
    let decoded = decode(&out, &enc_out).unwrap();
    assert_eq!(
        decoded.children(decoded.root()).len(),
        expected.children.len(),
        "case {case}: tuple count mismatch on {doc}"
    );
}
