//! Property tests for select/construct queries: the compiled
//! (n+1)-pebble machine must agree with the brute-force interpreter on
//! random documents and random pattern shapes.

use proptest::prelude::*;
use std::sync::Arc;
use xmltc_regex::Regex;
use xmltc_trees::{decode, encode, Alphabet, RawTree, Symbol, UnrankedTree};
use xmltc_xmlql::query::{Condition, ConstructItem, SelectConstructQuery};

fn alphabet() -> Arc<Alphabet> {
    Alphabet::unranked(&["doc", "a", "b", "c"])
}

fn sym(al: &Arc<Alphabet>, n: &str) -> Symbol {
    al.get(n).unwrap()
}

/// Random documents rooted at `doc` (which never recurs).
fn arb_doc() -> impl Strategy<Value = RawTree> {
    let leaf = prop::sample::select(vec!["a", "b", "c"]).prop_map(RawTree::leaf);
    let tree = leaf.prop_recursive(3, 12, 3, |inner| {
        (
            prop::sample::select(vec!["a", "b", "c"]),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(name, children)| RawTree::node(name, children))
    });
    prop::collection::vec(tree, 0..3).prop_map(|children| RawTree::node("doc", children))
}

/// A small pool of path regexes (over tags, any-depth searches).
fn paths(al: &Arc<Alphabet>) -> Vec<Regex<Symbol>> {
    let any = Regex::any(["a", "b", "c"].map(|n| Regex::sym(sym(al, n))));
    let from_doc = |target: &str| {
        Regex::sym(sym(al, "doc"))
            .concat(any.clone().star())
            .concat(Regex::sym(sym(al, target)))
    };
    let rel = |origin: &str, target: &str| {
        Regex::sym(sym(al, origin))
            .concat(any.clone().star())
            .concat(Regex::sym(sym(al, target)))
    };
    vec![
        from_doc("a"),
        from_doc("b"),
        rel("a", "b"),
        rel("a", "c"),
        rel("b", "c"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn single_variable_agrees(doc in arb_doc(), pidx in 0usize..2) {
        let al = alphabet();
        let q = SelectConstructQuery::with_pattern(
            &al,
            sym(&al, "doc"),
            vec![Condition { parent: None, path: paths(&al)[pidx].clone() }],
            "out",
            RawTree::leaf("hit"),
        );
        check(&q, &al, &doc)?;
    }

    #[test]
    fn two_variable_hierarchical_agrees(doc in arb_doc(), rel in 2usize..5) {
        let al = alphabet();
        let ps = paths(&al);
        // x1 bound by a root path targeting the relative path's origin tag.
        let origin = match rel { 2 | 3 => "a", _ => "b" };
        let c1 = Condition {
            parent: None,
            path: Regex::sym(sym(&al, "doc"))
                .concat(Regex::any(["a", "b", "c"].map(|n| Regex::sym(sym(&al, n)))).star())
                .concat(Regex::sym(sym(&al, origin))),
        };
        let c2 = Condition { parent: Some(0), path: ps[rel].clone() };
        let q = SelectConstructQuery::with_pattern(
            &al,
            sym(&al, "doc"),
            vec![c1, c2],
            "out",
            RawTree::leaf("hit"),
        );
        check(&q, &al, &doc)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// CONSTRUCT clauses with subtree copies agree with the interpreter.
    #[test]
    fn copyvar_construct_agrees(doc in arb_doc(), pidx in 0usize..2) {
        let al = alphabet();
        let q = SelectConstructQuery::with_construct(
            &al,
            sym(&al, "doc"),
            vec![Condition { parent: None, path: paths(&al)[pidx].clone() }],
            "out",
            vec![
                ConstructItem::Constant(RawTree::leaf("hit")),
                ConstructItem::CopyVar(0),
            ],
        );
        let input = UnrankedTree::from_raw(&doc, &al).unwrap();
        let expected = q.interpret(&input);
        let (t, enc_in, enc_out) = q.compile().unwrap();
        let encoded = encode(&input, &enc_in).unwrap();
        let out = xmltc_core::eval(&t, &encoded).unwrap();
        let decoded = decode(&out, &enc_out).unwrap();
        prop_assert_eq!(decoded.to_raw(), expected, "on {}", doc);
    }
}

fn check(
    q: &SelectConstructQuery,
    al: &Arc<Alphabet>,
    doc: &RawTree,
) -> Result<(), TestCaseError> {
    let input = UnrankedTree::from_raw(doc, al).unwrap();
    let expected = q.interpret(&input);
    let (t, enc_in, enc_out) = q.compile().unwrap();
    let encoded = encode(&input, &enc_in).unwrap();
    let out = xmltc_core::eval(&t, &encoded).unwrap();
    let decoded = decode(&out, &enc_out).unwrap();
    prop_assert_eq!(
        decoded.children(decoded.root()).len(),
        expected.children.len(),
        "tuple count mismatch on {}",
        doc
    );
    Ok(())
}
