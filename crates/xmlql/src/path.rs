//! (Regular) path expressions — Section 2.1.
//!
//! A path expression is a word `w ∈ Σ*`; a regular path expression is a
//! regular expression over `Σ`. Evaluation selects the nodes of an
//! unranked tree whose root-to-node label sequence belongs to the
//! language. The module also implements the paper's translation of path
//! expressions onto the binary encoding
//! (`translate(a.c.d) = a.(−)*.c.(−)*.d`), satisfying
//! `eval(translate(r), encode(t)) = encode(eval(r, t))`.

use xmltc_regex::{Dfa, Regex};
use xmltc_trees::unranked::NodeId as UNodeId;
use xmltc_trees::{BinaryTree, EncodedAlphabet, NodeId, Symbol, UnrankedTree};

/// Evaluates a regular path expression over tags on an unranked tree:
/// the set of nodes whose root path matches, in pre-order.
pub fn eval(r: &Regex<Symbol>, t: &UnrankedTree) -> Vec<UNodeId> {
    let universe: Vec<Symbol> = t.alphabet().symbols().collect();
    let dfa = Dfa::from_regex(r, &universe);
    let mut out = Vec::new();
    // Walk top-down carrying the DFA state after reading the node's label.
    let mut stack: Vec<(UNodeId, u32)> = Vec::new();
    if let Some(d) = dfa.step(dfa.start(), t.symbol(t.root())) {
        stack.push((t.root(), d));
    }
    while let Some((n, d)) = stack.pop() {
        if dfa.is_final(d) {
            out.push(n);
        }
        for &c in t.children(n).iter().rev() {
            if let Some(d2) = dfa.step(d, t.symbol(c)) {
                stack.push((c, d2));
            }
        }
    }
    out.sort_unstable();
    out
}

/// The Section 2.1 translation of a (regular) path expression over tags to
/// one over the encoded alphabet `Σ ∪ {-}`: every symbol `a` becomes
/// `(-)*.a`, accounting for the list-cons spine between an element and its
/// children. (The `#` symbol never appears, as in the paper.)
pub fn translate(r: &Regex<Symbol>, enc: &EncodedAlphabet) -> Regex<Symbol> {
    match r {
        Regex::Empty => Regex::Empty,
        Regex::Epsilon => Regex::Epsilon,
        Regex::Sym(a) => Regex::sym(enc.cons()).star().concat(Regex::sym(*a)),
        Regex::Concat(a, b) => translate(a, enc).concat(translate(b, enc)),
        Regex::Alt(a, b) => translate(a, enc).alt(translate(b, enc)),
        Regex::Star(a) => translate(a, enc).star(),
        Regex::Plus(a) => translate(a, enc).plus(),
        Regex::Opt(a) => translate(a, enc).opt(),
    }
}

/// Evaluates a path expression over the encoded alphabet directly on a
/// binary tree (descending through children), in pre-order.
pub fn eval_encoded(r: &Regex<Symbol>, t: &BinaryTree) -> Vec<NodeId> {
    let universe: Vec<Symbol> = t.alphabet().symbols().collect();
    let dfa = Dfa::from_regex(r, &universe);
    let mut out = Vec::new();
    let mut stack: Vec<(NodeId, u32)> = Vec::new();
    if let Some(d) = dfa.step(dfa.start(), t.symbol(t.root())) {
        stack.push((t.root(), d));
    }
    while let Some((n, d)) = stack.pop() {
        if dfa.is_final(d) {
            out.push(n);
        }
        if let Some((l, rgt)) = t.children(n) {
            for c in [rgt, l] {
                if let Some(d2) = dfa.step(d, t.symbol(c)) {
                    stack.push((c, d2));
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Parses a regular path expression over tag names and interns the tags in
/// the given (unranked) alphabet.
pub fn parse_path(
    src: &str,
    alphabet: &std::sync::Arc<xmltc_trees::Alphabet>,
) -> Result<Regex<Symbol>, crate::error::QueryError> {
    let named = xmltc_regex::parse(src).map_err(|e| {
        crate::error::QueryError::Tree(xmltc_trees::TreeError::Parse {
            message: e.message,
            offset: e.offset,
        })
    })?;
    named.try_map(&mut |name: &String| {
        alphabet
            .get(name)
            .ok_or_else(|| crate::error::QueryError::UnknownTag(name.clone()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xmltc_trees::{encode, Alphabet};

    fn setup() -> (Arc<Alphabet>, EncodedAlphabet) {
        let al = Alphabet::unranked(&["a", "b", "c", "d", "e"]);
        let enc = EncodedAlphabet::new(&al);
        (al, enc)
    }

    #[test]
    fn simple_path_eval() {
        let (al, _) = setup();
        let t = UnrankedTree::parse("a(b, b, c(d), e)", &al).unwrap();
        let r = parse_path("a.b", &al).unwrap();
        let hits = eval(&r, &t);
        assert_eq!(hits.len(), 2);
        for n in hits {
            assert_eq!(al.name(t.symbol(n)), "b");
        }
        let r = parse_path("a.c.d", &al).unwrap();
        assert_eq!(eval(&r, &t).len(), 1);
        let r = parse_path("a.c.e", &al).unwrap();
        assert!(eval(&r, &t).is_empty());
    }

    #[test]
    fn regular_path_eval() {
        let (al, _) = setup();
        let t = UnrankedTree::parse("a(b(c(d)), c(d))", &al).unwrap();
        // all d's at any depth below a: a.(b|c)*.d
        let r = parse_path("a.(b|c)*.d", &al).unwrap();
        assert_eq!(eval(&r, &t).len(), 2);
        // the root itself:
        let r = parse_path("a", &al).unwrap();
        let hits = eval(&r, &t);
        assert_eq!(hits, vec![t.root()]);
    }

    #[test]
    fn translation_commutes_with_encoding() {
        // eval(translate(r), encode(t)) = encode-image of eval(r, t):
        // check via label multisets and counts on several (r, t) pairs.
        let (al, enc) = setup();
        for (rs, ts) in [
            ("a.b", "a(b, b, c(d), e)"),
            ("a.c.d", "a(b, b, c(d), e)"),
            ("a.(b|c)*.d", "a(b(c(d)), c(d), d)"),
            ("a.c*.a", "a(c(c(a)), a, b)"),
            ("a", "a(b)"),
        ] {
            let t = UnrankedTree::parse(ts, &al).unwrap();
            let r = parse_path(rs, &al).unwrap();
            let direct = eval(&r, &t);
            let bt = encode(&t, &enc).unwrap();
            let tr = translate(&r, &enc);
            let encoded_hits = eval_encoded(&tr, &bt);
            assert_eq!(
                direct.len(),
                encoded_hits.len(),
                "cardinality mismatch for {rs} on {ts}"
            );
            // Every encoded hit is an element node with the same label
            // multiset as the direct hits.
            let mut direct_labels: Vec<Symbol> = direct.iter().map(|&n| t.symbol(n)).collect();
            let mut enc_labels: Vec<Symbol> = encoded_hits.iter().map(|&n| bt.symbol(n)).collect();
            direct_labels.sort_unstable();
            enc_labels.sort_unstable();
            assert_eq!(direct_labels, enc_labels, "{rs} on {ts}");
        }
    }

    #[test]
    fn paper_translation_example() {
        let (al, enc) = setup();
        let r = parse_path("a.c.d", &al).unwrap();
        let tr = translate(&r, &enc);
        // Shape: (-)*.a.(-)*.c.(-)*.d — leading (-)* is harmless at the
        // root (matches zero).
        let step = |tag: &str| {
            Regex::sym(enc.cons())
                .star()
                .concat(Regex::sym(al.get(tag).unwrap()))
        };
        let expected = step("a").concat(step("c")).concat(step("d"));
        assert_eq!(tr, expected);
    }

    #[test]
    fn unknown_tag_rejected() {
        let (al, _) = setup();
        assert!(matches!(
            parse_path("a.zz", &al),
            Err(crate::error::QueryError::UnknownTag(t)) if t == "zz"
        ));
    }
}
