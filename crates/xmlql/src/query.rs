//! XML-QL-style select/construct queries compiled to (n+1)-pebble
//! transducers — the Example 3.5 architecture.
//!
//! A [`SelectConstructQuery`] binds `n` variables to input nodes, each
//! constrained by a regular path expression from the root, and emits one
//! constant element per binding tuple under a fresh output root
//! (`CONSTRUCT <result> … </result>`). Example 4.2's query Q1 —
//! `WHERE <root> <a>$X</a> <a>$Y</a> </root> CONSTRUCT <b/>` —
//! is [`example_q1`], realizing the paper's `aⁿ ↦ bⁿ²` map whose image is
//! not a regular tree language.
//!
//! Compilation follows Example 3.5: pebbles `1..n` enumerate all n-tuples
//! of input nodes in lexicographic pre-order (using the Example 3.4
//! traversal subroutine); for each tuple, pebble `n+1` verifies each
//! condition by locating variable `j`'s pebble (testable via the presence
//! guards), then climbing to the root running the *reversed* translated
//! path automaton. Matching tuples append one item to the output list.
//!
//! Restriction (also implicit in the paper's Example 3.4): the document
//! root tag must label only the root.

use crate::error::QueryError;
use crate::path::translate;
use std::sync::Arc;
use xmltc_automata::State;
use xmltc_core::library::add_preorder_next;
use xmltc_core::machine::{Guard, Move, PebbleTransducer, SymSpec, TransducerBuilder};
use xmltc_regex::{Dfa, Regex};
use xmltc_trees::tree::NodeId;
use xmltc_trees::{
    encode, Alphabet, AlphabetBuilder, EncodedAlphabet, Rank, RawTree, Symbol, UnrankedTree,
};

/// One variable's binding condition: a regular path expression, rooted at
/// the document root or at another (earlier) variable's node — the
/// hierarchical tree patterns of Example 3.5.
#[derive(Clone, Debug)]
pub struct Condition {
    /// `None`: the path runs from the document root. `Some(p)`: from
    /// variable `p`'s node (0-based; must be an earlier variable).
    pub parent: Option<usize>,
    /// The regular path expression over tags; the path includes both
    /// endpoints' labels.
    pub path: Regex<Symbol>,
}

/// One piece of a CONSTRUCT clause, emitted per matching tuple.
#[derive(Clone, Debug)]
pub enum ConstructItem {
    /// A constant element.
    Constant(RawTree),
    /// A copy of the subtree bound to variable `j` (0-based) —
    /// `CONSTRUCT <result> $X </result>`.
    CopyVar(usize),
}

/// A select/construct query without data-value joins.
#[derive(Clone, Debug)]
pub struct SelectConstructQuery {
    input: Arc<Alphabet>,
    root_tag: Symbol,
    conditions: Vec<Condition>,
    output_root: String,
    items: Vec<ConstructItem>,
}

impl SelectConstructQuery {
    /// Creates a query over documents rooted at `root_tag` (which must not
    /// occur below the root). `conditions[j]` is the regular path
    /// expression variable `j` must satisfy; `item` is the constant
    /// element emitted per binding tuple under `output_root`.
    pub fn new(
        input: &Arc<Alphabet>,
        root_tag: Symbol,
        conditions: Vec<Regex<Symbol>>,
        output_root: &str,
        item: RawTree,
    ) -> SelectConstructQuery {
        Self::with_pattern(
            input,
            root_tag,
            conditions
                .into_iter()
                .map(|path| Condition { parent: None, path })
                .collect(),
            output_root,
            item,
        )
    }

    /// Creates a query with an explicit CONSTRUCT clause: per matching
    /// tuple, each item contributes one child of the output root —
    /// constants and `$X`-style subtree copies.
    pub fn with_construct(
        input: &Arc<Alphabet>,
        root_tag: Symbol,
        conditions: Vec<Condition>,
        output_root: &str,
        items: Vec<ConstructItem>,
    ) -> SelectConstructQuery {
        assert!(
            !conditions.is_empty(),
            "a query needs at least one variable"
        );
        assert!(
            !items.is_empty(),
            "the CONSTRUCT clause needs at least one item"
        );
        for (j, c) in conditions.iter().enumerate() {
            if let Some(p) = c.parent {
                assert!(p < j, "condition {j} must reference an earlier variable");
            }
        }
        for item in &items {
            if let ConstructItem::CopyVar(j) = item {
                assert!(*j < conditions.len(), "CopyVar references variable {j}");
            }
        }
        SelectConstructQuery {
            input: Arc::clone(input),
            root_tag,
            conditions,
            output_root: output_root.to_string(),
            items,
        }
    }

    /// Creates a query with a hierarchical tree pattern (Example 3.5):
    /// each condition may be rooted at an earlier variable's node.
    pub fn with_pattern(
        input: &Arc<Alphabet>,
        root_tag: Symbol,
        conditions: Vec<Condition>,
        output_root: &str,
        item: RawTree,
    ) -> SelectConstructQuery {
        assert!(
            !conditions.is_empty(),
            "a query needs at least one variable"
        );
        for (j, c) in conditions.iter().enumerate() {
            if let Some(p) = c.parent {
                assert!(p < j, "condition {j} must reference an earlier variable");
            }
        }
        Self::with_construct(
            input,
            root_tag,
            conditions,
            output_root,
            vec![ConstructItem::Constant(item)],
        )
    }

    /// The number of variables `n` (the compiled machine has `n+1`
    /// pebbles).
    pub fn n_vars(&self) -> usize {
        self.conditions.len()
    }

    /// Reference semantics: the output document. The number of emitted
    /// items is the number of variable tuples satisfying every condition
    /// (brute-force enumeration — exponential, test-sized inputs only).
    pub fn interpret(&self, t: &UnrankedTree) -> RawTree {
        let nodes = t.preorder();
        let n = self.conditions.len();
        let mut out: Vec<RawTree> = Vec::new();
        let mut tuple: Vec<xmltc_trees::unranked::NodeId> = Vec::with_capacity(n);
        self.emit_tuples(t, &nodes, &mut tuple, &mut out);
        RawTree::node(self.output_root.clone(), out)
    }

    fn emit_tuples(
        &self,
        t: &UnrankedTree,
        nodes: &[xmltc_trees::unranked::NodeId],
        tuple: &mut Vec<xmltc_trees::unranked::NodeId>,
        out: &mut Vec<RawTree>,
    ) {
        let j = tuple.len();
        if j == self.conditions.len() {
            for item in &self.items {
                match item {
                    ConstructItem::Constant(raw) => out.push(raw.clone()),
                    ConstructItem::CopyVar(v) => out.push(subtree_raw(t, tuple[*v])),
                }
            }
            return;
        }
        for &cand in nodes {
            if self.condition_holds(t, tuple, j, cand) {
                tuple.push(cand);
                self.emit_tuples(t, nodes, tuple, out);
                tuple.pop();
            }
        }
    }

    /// Does `cand` satisfy condition `j` given the earlier bindings?
    fn condition_holds(
        &self,
        t: &UnrankedTree,
        tuple: &[xmltc_trees::unranked::NodeId],
        j: usize,
        cand: xmltc_trees::unranked::NodeId,
    ) -> bool {
        let cond = &self.conditions[j];
        // Collect the label path from the condition's origin down to cand.
        let origin = match cond.parent {
            None => t.root(),
            Some(p) => tuple[p],
        };
        // Walk up from cand to origin, collecting labels.
        let mut labels = vec![t.symbol(cand)];
        let mut cur = cand;
        while cur != origin {
            match t.parent(cur) {
                Some(par) => {
                    labels.push(t.symbol(par));
                    cur = par;
                }
                None => return false, // cand is not a descendant of origin
            }
        }
        labels.reverse();
        let universe: Vec<Symbol> = t.alphabet().symbols().collect();
        Dfa::from_regex(&cond.path, &universe).accepts(&labels)
    }

    /// The unranked output alphabet: the output root, all constant-item
    /// tags, plus (when the CONSTRUCT clause copies variables) every input
    /// tag.
    pub fn output_alphabet(&self) -> Arc<Alphabet> {
        let mut b = AlphabetBuilder::new();
        b.add(&self.output_root, Rank::Unranked);
        fn collect(n: &RawTree, b: &mut AlphabetBuilder) {
            b.add(&n.name, Rank::Unranked);
            for c in &n.children {
                collect(c, b);
            }
        }
        for item in &self.items {
            match item {
                ConstructItem::Constant(raw) => collect(raw, &mut b),
                ConstructItem::CopyVar(_) => {
                    for s in self.input.symbols() {
                        b.add(self.input.name(s), Rank::Unranked);
                    }
                }
            }
        }
        b.finish()
    }

    /// Compiles to an (n+1)-pebble transducer from encoded inputs to
    /// encoded outputs.
    pub fn compile(
        &self,
    ) -> Result<(PebbleTransducer, EncodedAlphabet, EncodedAlphabet), QueryError> {
        let n = self.conditions.len() as u8;
        let k = n + 1;
        let enc_in = EncodedAlphabet::new(&self.input);
        let out_unranked = self.output_alphabet();
        let enc_out = EncodedAlphabet::new(&out_unranked);
        let in_al = enc_in.encoded();

        // Reversed, translated path DFAs over the encoded alphabet.
        let universe: Vec<Symbol> = in_al.symbols().collect();
        let dfas: Vec<Dfa<Symbol>> = self
            .conditions
            .iter()
            .map(|c| Dfa::from_regex(&translate(&c.path, &enc_in).reverse(), &universe).complete())
            .collect();

        let mut b = TransducerBuilder::new(in_al, enc_out.encoded(), k);

        // ---- output plumbing -------------------------------------------
        let start = b.state("start", 1)?;
        b.set_initial(start);
        let out_root_sym = enc_out
            .source()
            .get(&self.output_root)
            .expect("added to output alphabet");

        // Constant-item emitter states (at level n, spawned by `emit`):
        // per constant item, one state per node of its encoded tree.
        let mut const_trees: Vec<Option<(xmltc_trees::BinaryTree, Vec<State>)>> = Vec::new();
        for (idx, item) in self.items.iter().enumerate() {
            match item {
                ConstructItem::Constant(raw) => {
                    let tree = {
                        let u = UnrankedTree::from_raw(raw, enc_out.source())?;
                        encode(&u, &enc_out)?
                    };
                    let states: Vec<State> = (0..tree.len())
                        .map(|i| b.state(&format!("item{idx}_{i}"), n))
                        .collect::<Result<_, _>>()?;
                    const_trees.push(Some((tree, states)));
                }
                ConstructItem::CopyVar(_) => const_trees.push(None),
            }
        }

        // ---- tuple enumeration ------------------------------------------
        // launch(j): place pebble j+1 (level j → j+1).
        let launch: Vec<State> = (1..=n)
            .map(|j| b.state(&format!("launch{j}"), j))
            .collect::<Result<_, _>>()?;
        // find(j): pebble n+1 searching for pebble j (level n+1).
        let find: Vec<State> = (1..=n as usize)
            .map(|j| b.state(&format!("find{j}"), k))
            .collect::<Result<_, _>>()?;
        let all_passed = b.state("all_passed", k)?;
        let fail = b.state("fail", k)?;
        let emit = b.state("emit", n)?;
        // advance(j) / exhausted(j) (level j).
        let exhausted: Vec<State> = (1..=n)
            .map(|j| b.state(&format!("exhausted{j}"), j))
            .collect::<Result<_, _>>()?;
        // launch chain: launch(j) places pebble j+1; next j<n → launch(j+1),
        // j=n → find(1).
        for j in 1..=n {
            let target = if j < n { launch[j as usize] } else { find[0] };
            b.move_rule(
                SymSpec::Any,
                launch[(j - 1) as usize],
                Guard::any(),
                Move::PlaceNew,
                target,
            )?;
        }

        // start: emit the output root.
        let nil_out = b.state("nil_out", 1)?;
        b.output0(SymSpec::Any, nil_out, Guard::any(), enc_out.nil())?;
        b.output2(
            SymSpec::Any,
            start,
            Guard::any(),
            out_root_sym,
            launch[0],
            nil_out,
        )?;

        // Constant-item emitter rules.
        for entry in const_trees.iter().flatten() {
            let (tree, states) = entry;
            for (i, &st) in states.iter().enumerate() {
                let node = NodeId(i as u32);
                match tree.children(node) {
                    None => b.output0(SymSpec::Any, st, Guard::any(), tree.symbol(node))?,
                    Some((l, r)) => b.output2(
                        SymSpec::Any,
                        st,
                        Guard::any(),
                        tree.symbol(node),
                        states[l.index()],
                        states[r.index()],
                    )?,
                }
            }
        }

        // Symbol map input-encoded → output-encoded (by name), for copies.
        let out_enc_al = enc_out.encoded();
        let sym_map: Vec<Option<Symbol>> = in_al
            .symbols()
            .map(|s| out_enc_al.get(in_al.name(s)))
            .collect();

        // advance(j): pre-order step of pebble j, then re-place pebbles
        // j+1..n+1 and re-check; root exhaustion pops to pebble j-1.
        let mut advance: Vec<State> = Vec::new();
        for j in 1..=n {
            // After advancing pebble j, re-enter launch(j) (same level j),
            // which re-places pebbles j+1 … n and the checker n+1, ending
            // in find(1).
            let entry = add_preorder_next(
                &mut b,
                &format!("adv{j}"),
                j,
                self.root_tag,
                launch[(j - 1) as usize],
                exhausted[(j - 1) as usize],
            )?;
            advance.push(entry);
        }

        // exhausted(j): pebble j is back on the root with the tuple space
        // below it spent.
        for j in 1..=n {
            if j == 1 {
                // Whole enumeration done: close the output list.
                b.output0(SymSpec::Any, exhausted[0], Guard::any(), enc_out.nil())?;
            } else {
                b.move_rule(
                    SymSpec::Any,
                    exhausted[(j - 1) as usize],
                    Guard::any(),
                    Move::PickCurrent,
                    advance[(j - 2) as usize],
                )?;
            }
        }

        // Shared subtree-copy machinery (for CopyVar items): a level-(n+1)
        // walker that re-emits the encoded subtree under the found pebble,
        // mapping symbols by name into the output alphabet.
        let needs_copy = self
            .items
            .iter()
            .any(|i| matches!(i, ConstructItem::CopyVar(_)));
        let ccopy = if needs_copy {
            let ccopy = b.state("ccopy", k)?;
            let cleft = b.state("ccopy_l", k)?;
            let cright = b.state("ccopy_r", k)?;
            for sym in in_al.symbols() {
                let Some(mapped) = sym_map[sym.index()] else {
                    continue;
                };
                match in_al.rank(sym) {
                    xmltc_trees::Rank::Binary => {
                        b.output2(
                            SymSpec::One(sym),
                            ccopy,
                            Guard::any(),
                            mapped,
                            cleft,
                            cright,
                        )?;
                    }
                    _ => {
                        b.output0(SymSpec::One(sym), ccopy, Guard::any(), mapped)?;
                    }
                }
            }
            b.move_rule(
                SymSpec::Binaries,
                cleft,
                Guard::any(),
                Move::DownLeft,
                ccopy,
            )?;
            b.move_rule(
                SymSpec::Binaries,
                cright,
                Guard::any(),
                Move::DownRight,
                ccopy,
            )?;
            Some(ccopy)
        } else {
            None
        };

        // Per copied variable: place the checker pebble, locate the
        // variable's pebble, and copy from there.
        let mut copy_entry: Vec<Option<State>> = vec![None; self.conditions.len()];
        for item in &self.items {
            let ConstructItem::CopyVar(v) = item else {
                continue;
            };
            if copy_entry[*v].is_some() {
                continue;
            }
            let start = b.state(&format!("copy_start{v}"), n)?;
            let find = b.state(&format!("copy_find{v}"), k)?;
            b.move_rule(SymSpec::Any, start, Guard::any(), Move::PlaceNew, find)?;
            b.move_rule(
                SymSpec::Any,
                find,
                Guard::present(*v + 1),
                Move::Stay,
                ccopy.expect("copy machinery built"),
            )?;
            let seek = add_preorder_next(
                &mut b,
                &format!("cseek{v}"),
                k,
                self.root_tag,
                find,
                fail, // unreachable: the pebble exists
            )?;
            b.move_rule(SymSpec::Any, find, Guard::absent(*v + 1), Move::Stay, seek)?;
            copy_entry[*v] = Some(start);
        }

        // emit: per matching tuple, one output-list cons cell per CONSTRUCT
        // item, then advance pebble n.
        let mut link = emit;
        for (idx, item) in self.items.iter().enumerate() {
            let next_link = if idx + 1 < self.items.len() {
                b.state(&format!("emit{}", idx + 1), n)?
            } else {
                advance[(n - 1) as usize]
            };
            let entry = match item {
                ConstructItem::Constant(_) => {
                    let (tree, states) = const_trees[idx].as_ref().expect("constant");
                    states[tree.root().index()]
                }
                ConstructItem::CopyVar(v) => copy_entry[*v].expect("built above"),
            };
            b.output2(
                SymSpec::Any,
                link,
                Guard::any(),
                enc_out.cons(),
                entry,
                next_link,
            )?;
            link = next_link;
        }

        // all_passed / fail: return control to pebble n.
        b.move_rule(
            SymSpec::Any,
            all_passed,
            Guard::any(),
            Move::PickCurrent,
            emit,
        )?;
        b.move_rule(
            SymSpec::Any,
            fail,
            Guard::any(),
            Move::PickCurrent,
            advance[(n - 1) as usize],
        )?;

        // ---- condition checking (pebble n+1) ----------------------------
        for (jz, dfa) in dfas.iter().enumerate() {
            let j = jz + 1; // 1-based variable index
                            // climb(j, d): DFA state d before consuming the current symbol.
            let climb: Vec<State> = (0..dfa.len())
                .map(|d| b.state(&format!("climb{j}_{d}"), k))
                .collect::<Result<_, _>>()?;

            // find(j): where pebble j sits, start climbing; elsewhere, walk
            // pre-order.
            b.move_rule(
                SymSpec::Any,
                find[jz],
                Guard::present(j),
                Move::Stay,
                climb[dfa.start() as usize],
            )?;
            let seek = add_preorder_next(
                &mut b,
                &format!("seek{j}"),
                k,
                self.root_tag,
                find[jz],
                fail, // unreachable: pebble j is always found
            )?;
            b.move_rule(SymSpec::Any, find[jz], Guard::absent(j), Move::Stay, seek)?;

            let parent = self.conditions[jz].parent;
            for d in 0..dfa.len() as u32 {
                for sym in in_al.symbols() {
                    let d2 = dfa.step(d, sym).expect("completed DFA");
                    let verdict = if dfa.is_final(d2) {
                        if j < self.conditions.len() {
                            find[jz + 1]
                        } else {
                            all_passed
                        }
                    } else {
                        fail
                    };
                    match parent {
                        None => {
                            // Path rooted at the document root: terminate
                            // at the root symbol (non-recursive-root
                            // assumption).
                            if sym == self.root_tag {
                                b.move_rule(
                                    SymSpec::One(sym),
                                    climb[d as usize],
                                    Guard::any(),
                                    Move::Stay,
                                    verdict,
                                )?;
                            } else {
                                for m in [Move::UpLeft, Move::UpRight] {
                                    b.move_rule(
                                        SymSpec::One(sym),
                                        climb[d as usize],
                                        Guard::any(),
                                        m,
                                        climb[d2 as usize],
                                    )?;
                                }
                            }
                        }
                        Some(pvar) => {
                            // Path rooted at variable pvar's node: the
                            // climb terminates where that pebble sits —
                            // detected by the presence guard, exactly the
                            // Example 3.5 technique.
                            let pebble = pvar + 1; // 1-based pebble index
                            b.move_rule(
                                SymSpec::One(sym),
                                climb[d as usize],
                                Guard::present(pebble),
                                Move::Stay,
                                verdict,
                            )?;
                            if sym == self.root_tag {
                                // Reached the root without meeting the
                                // parent pebble: not a descendant.
                                b.move_rule(
                                    SymSpec::One(sym),
                                    climb[d as usize],
                                    Guard::absent(pebble),
                                    Move::Stay,
                                    fail,
                                )?;
                            } else {
                                for m in [Move::UpLeft, Move::UpRight] {
                                    b.move_rule(
                                        SymSpec::One(sym),
                                        climb[d as usize],
                                        Guard::absent(pebble),
                                        m,
                                        climb[d2 as usize],
                                    )?;
                                }
                            }
                        }
                    }
                }
            }
        }

        Ok((b.build()?, enc_in, enc_out))
    }
}

/// The unranked subtree at `n`, as a RawTree.
fn subtree_raw(t: &UnrankedTree, n: xmltc_trees::unranked::NodeId) -> RawTree {
    RawTree {
        name: t.alphabet().name(t.symbol(n)).to_string(),
        children: t.children(n).iter().map(|&c| subtree_raw(t, c)).collect(),
    }
}

/// **Example 4.2 — query Q1** over the DTD `root := a*`:
/// two variables bound to `<a>` children of the root, one `<b/>` emitted
/// per pair; maps `aⁿ` to `bⁿ²` under a `<result>` root.
pub fn example_q1() -> (SelectConstructQuery, Arc<Alphabet>) {
    let al = Alphabet::unranked(&["root", "a"]);
    let root = al.get("root").unwrap();
    let a = al.get("a").unwrap();
    let cond = Regex::sym(root).concat(Regex::sym(a));
    let q = SelectConstructQuery::new(
        &al,
        root,
        vec![cond.clone(), cond],
        "result",
        RawTree::leaf("b"),
    );
    (q, al)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltc_core::eval;
    use xmltc_trees::decode;

    #[test]
    fn q1_interpreter() {
        let (q, al) = example_q1();
        for n in 0..5 {
            let t =
                xmltc_trees::generate::flat(al.get("root").unwrap(), al.get("a").unwrap(), n, &al)
                    .unwrap();
            let out = q.interpret(&t);
            assert_eq!(out.name, "result");
            assert_eq!(out.children.len(), n * n, "a^{n} must give b^{}", n * n);
        }
    }

    #[test]
    fn q1_compiled_matches_interpreter() {
        let (q, al) = example_q1();
        let (t, enc_in, enc_out) = q.compile().unwrap();
        assert_eq!(t.k(), 3);
        for n in 0..4 {
            let input =
                xmltc_trees::generate::flat(al.get("root").unwrap(), al.get("a").unwrap(), n, &al)
                    .unwrap();
            let expected = q.interpret(&input);
            let encoded = encode(&input, &enc_in).unwrap();
            let out = eval(&t, &encoded).unwrap();
            let decoded = decode(&out, &enc_out).unwrap();
            assert_eq!(decoded.to_raw(), expected, "a^{n}");
        }
    }

    #[test]
    fn single_variable_query() {
        // One variable over all c-descendants; input tree nested.
        let al = Alphabet::unranked(&["root", "a", "c"]);
        let root = al.get("root").unwrap();
        let a = al.get("a").unwrap();
        let c = al.get("c").unwrap();
        // condition: root.(a|c)*.c — any c strictly below the root.
        let cond = Regex::sym(root)
            .concat(Regex::sym(a).alt(Regex::sym(c)).star())
            .concat(Regex::sym(c));
        let q = SelectConstructQuery::new(&al, root, vec![cond], "result", RawTree::leaf("hit"));
        let (t, enc_in, enc_out) = q.compile().unwrap();
        assert_eq!(t.k(), 2);
        for (doc, hits) in [
            ("root", 0),
            ("root(c)", 1),
            ("root(a(c), c)", 2),
            ("root(a(c(c)), a)", 2),
            ("root(a, a)", 0),
        ] {
            let input = UnrankedTree::parse(doc, &al).unwrap();
            assert_eq!(q.interpret(&input).children.len(), hits, "interp {doc}");
            let out = eval(&t, &encode(&input, &enc_in).unwrap()).unwrap();
            let decoded = decode(&out, &enc_out).unwrap();
            assert_eq!(
                decoded.children(decoded.root()).len(),
                hits,
                "compiled {doc}"
            );
        }
    }

    #[test]
    fn structured_item() {
        // The emitted item is a small subtree, not a single leaf.
        let al = Alphabet::unranked(&["root", "a"]);
        let root = al.get("root").unwrap();
        let a = al.get("a").unwrap();
        let cond = Regex::sym(root).concat(Regex::sym(a));
        let item = RawTree::parse("pair(l, r)").unwrap();
        let q = SelectConstructQuery::new(&al, root, vec![cond], "out", item);
        let (t, enc_in, enc_out) = q.compile().unwrap();
        let input = UnrankedTree::parse("root(a, a)", &al).unwrap();
        let out = eval(&t, &encode(&input, &enc_in).unwrap()).unwrap();
        let decoded = decode(&out, &enc_out).unwrap();
        assert_eq!(decoded.to_string(), "out(pair(l, r), pair(l, r))");
    }
}

#[cfg(test)]
mod pattern_tests {
    use super::*;
    use xmltc_core::eval;
    use xmltc_trees::decode;

    /// A 2-variable hierarchical pattern, Example 3.5 style:
    /// x₁ is a `sec` anywhere below the root; x₂ is a `fig` anywhere
    /// inside x₁'s subtree.
    fn figures_in_sections() -> (SelectConstructQuery, Arc<Alphabet>) {
        let al = Alphabet::unranked(&["doc", "sec", "fig", "par"]);
        let doc = al.get("doc").unwrap();
        let sec = al.get("sec").unwrap();
        let fig = al.get("fig").unwrap();
        let par = al.get("par").unwrap();
        let any = Regex::any([sec, fig, par].map(Regex::sym));
        // x1: doc.(any)*.sec ; x2 (relative to x1): sec.(any)*.fig
        let c1 = Condition {
            parent: None,
            path: Regex::sym(doc)
                .concat(any.clone().star())
                .concat(Regex::sym(sec)),
        };
        let c2 = Condition {
            parent: Some(0),
            path: Regex::sym(sec).concat(any.star()).concat(Regex::sym(fig)),
        };
        let q = SelectConstructQuery::with_pattern(
            &al,
            doc,
            vec![c1, c2],
            "hits",
            RawTree::leaf("hit"),
        );
        (q, al)
    }

    #[test]
    fn hierarchical_interpreter() {
        let (q, al) = figures_in_sections();
        // doc(sec(fig, par(fig)), fig, sec): pairs = (sec1,fig1),
        // (sec1,fig2) — the top-level fig is in no section; the empty sec
        // has none. Note sec-inside-sec would double-count, none here.
        let t = UnrankedTree::parse("doc(sec(fig, par(fig)), fig, sec)", &al).unwrap();
        let out = q.interpret(&t);
        assert_eq!(out.children.len(), 2);
    }

    #[test]
    fn hierarchical_compiled_matches_interpreter() {
        let (q, al) = figures_in_sections();
        let (t, enc_in, enc_out) = q.compile().unwrap();
        assert_eq!(t.k(), 3);
        for src in [
            "doc",
            "doc(fig)",
            "doc(sec)",
            "doc(sec(fig))",
            "doc(sec(fig, fig), sec(par(fig)))",
            "doc(sec(sec(fig)))", // nested sections: inner fig counts for both
            "doc(par(fig), sec(par))",
        ] {
            let input = UnrankedTree::parse(src, &al).unwrap();
            let expected = q.interpret(&input);
            let encoded = encode(&input, &enc_in).unwrap();
            let out = eval::eval(&t, &encoded).unwrap();
            let decoded = decode(&out, &enc_out).unwrap();
            assert_eq!(
                decoded.children(decoded.root()).len(),
                expected.children.len(),
                "tuple count mismatch on {src}"
            );
        }
    }

    #[test]
    fn nested_sections_count_twice() {
        let (q, al) = figures_in_sections();
        // doc(sec(sec(fig))): x1 ∈ {outer sec, inner sec}, fig inside both.
        let t = UnrankedTree::parse("doc(sec(sec(fig)))", &al).unwrap();
        assert_eq!(q.interpret(&t).children.len(), 2);
    }

    #[test]
    fn pattern_ordering_validated() {
        let al = Alphabet::unranked(&["doc", "a"]);
        let doc = al.get("doc").unwrap();
        let a = al.get("a").unwrap();
        let c_bad = Condition {
            parent: Some(1), // forward reference
            path: Regex::sym(a),
        };
        let c0 = Condition {
            parent: None,
            path: Regex::sym(doc),
        };
        let result = std::panic::catch_unwind(|| {
            SelectConstructQuery::with_pattern(
                &al,
                doc,
                vec![c_bad.clone(), c0.clone()],
                "out",
                RawTree::leaf("x"),
            )
        });
        assert!(result.is_err(), "forward parent references must panic");
    }
}

#[cfg(test)]
mod construct_tests {
    use super::*;
    use xmltc_core::eval;
    use xmltc_trees::decode;

    /// `WHERE $X ← doc.(σ)*.sec CONSTRUCT <hits> marker $X </hits>`:
    /// per section, a constant marker followed by a copy of the section.
    fn copy_query() -> (SelectConstructQuery, Arc<Alphabet>) {
        let al = Alphabet::unranked(&["doc", "sec", "par"]);
        let doc = al.get("doc").unwrap();
        let sec = al.get("sec").unwrap();
        let par = al.get("par").unwrap();
        let any = Regex::any([sec, par].map(Regex::sym));
        let cond = Condition {
            parent: None,
            path: Regex::sym(doc).concat(any.star()).concat(Regex::sym(sec)),
        };
        let q = SelectConstructQuery::with_construct(
            &al,
            doc,
            vec![cond],
            "hits",
            vec![
                ConstructItem::Constant(RawTree::leaf("marker")),
                ConstructItem::CopyVar(0),
            ],
        );
        (q, al)
    }

    #[test]
    fn interpreter_copies_subtrees() {
        let (q, al) = copy_query();
        let t = UnrankedTree::parse("doc(sec(par, sec), par)", &al).unwrap();
        let out = q.interpret(&t);
        // Two sections (outer and inner), each preceded by a marker.
        assert_eq!(out.to_string(), "hits(marker, sec(par, sec), marker, sec)");
    }

    #[test]
    fn compiled_copies_agree_with_interpreter() {
        let (q, al) = copy_query();
        let (t, enc_in, enc_out) = q.compile().unwrap();
        for src in [
            "doc",
            "doc(sec)",
            "doc(par(sec(par)), sec)",
            "doc(sec(sec))",
            "doc(par, par)",
        ] {
            let input = UnrankedTree::parse(src, &al).unwrap();
            let expected = q.interpret(&input);
            let encoded = encode(&input, &enc_in).unwrap();
            let out = eval::eval(&t, &encoded).unwrap();
            let decoded = decode(&out, &enc_out).unwrap();
            assert_eq!(decoded.to_raw(), expected, "on {src}");
        }
    }

    #[test]
    fn multi_item_construct_ordering() {
        // Three items per tuple: constant, copy, constant.
        let al = Alphabet::unranked(&["doc", "a"]);
        let doc = al.get("doc").unwrap();
        let a = al.get("a").unwrap();
        let cond = Condition {
            parent: None,
            path: Regex::sym(doc).concat(Regex::sym(a)),
        };
        let q = SelectConstructQuery::with_construct(
            &al,
            doc,
            vec![cond],
            "out",
            vec![
                ConstructItem::Constant(RawTree::leaf("pre")),
                ConstructItem::CopyVar(0),
                ConstructItem::Constant(RawTree::leaf("post")),
            ],
        );
        let (t, enc_in, enc_out) = q.compile().unwrap();
        let input = UnrankedTree::parse("doc(a, a)", &al).unwrap();
        assert_eq!(
            q.interpret(&input).to_string(),
            "out(pre, a, post, pre, a, post)"
        );
        let out = eval::eval(&t, &encode(&input, &enc_in).unwrap()).unwrap();
        assert_eq!(
            decode(&out, &enc_out).unwrap().to_raw(),
            q.interpret(&input)
        );
    }
}
