//! An XSLT fragment compiled to 1-pebble transducers.
//!
//! The fragment (matching the paper's Example 4.3 and the XSL subset
//! Section 3.2 refers to): a stylesheet is a list of templates, each
//! matching a tag and producing an element tree whose leaves may be
//! `apply-templates` instructions; `apply-templates` processes the current
//! input node's children in order and splices the results.
//!
//! Because processing is strictly top-down (template instantiation only
//! recurses into children), a stylesheet compiles to a **1-pebble**
//! transducer over the binary encoding — so both the behaviour-composition
//! typechecking route and the forward-inference baseline apply to it.

use crate::error::QueryError;
use std::sync::Arc;
use xmltc_core::machine::{Guard, Move, PebbleTransducer};
use xmltc_core::MachineError;
use xmltc_transducer_dsl::{MachineSpec, Syms};
use xmltc_trees::{
    Alphabet, AlphabetBuilder, EncodedAlphabet, Rank, RawTree, Symbol, UnrankedTree,
};

/// A node of a template body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TemplateNode {
    /// An output element with child items.
    Element(String, Vec<TemplateNode>),
    /// `<xsl:apply-templates/>`: process the current input node's children
    /// and splice the outputs here.
    ApplyTemplates,
}

impl TemplateNode {
    fn from_raw(raw: &RawTree) -> TemplateNode {
        if raw.name == "@apply" {
            TemplateNode::ApplyTemplates
        } else {
            TemplateNode::Element(
                raw.name.clone(),
                raw.children.iter().map(TemplateNode::from_raw).collect(),
            )
        }
    }
}

/// A template: matches a tag, produces one element.
#[derive(Clone, Debug)]
pub struct Template {
    /// The tag this template matches.
    pub match_tag: String,
    /// The body (must be an [`TemplateNode::Element`]).
    pub body: TemplateNode,
}

impl Template {
    /// Parses a template body from term syntax where `@apply` denotes
    /// `apply-templates`, e.g. `result(b, @apply, b, @apply, b, @apply)`.
    pub fn parse(match_tag: &str, body: &str) -> Result<Template, QueryError> {
        let raw = RawTree::parse(body)?;
        let body = TemplateNode::from_raw(&raw);
        if matches!(body, TemplateNode::ApplyTemplates) {
            return Err(QueryError::UnknownTag(
                "template body must be an element".into(),
            ));
        }
        Ok(Template {
            match_tag: match_tag.to_string(),
            body,
        })
    }
}

/// A stylesheet: an ordered list of templates (first match wins).
#[derive(Clone, Debug)]
pub struct Stylesheet {
    templates: Vec<Template>,
}

impl Stylesheet {
    /// Creates a stylesheet.
    pub fn new(templates: Vec<Template>) -> Stylesheet {
        Stylesheet { templates }
    }

    /// Parses a compact text syntax: one template per line,
    /// `match-tag -> body`, with `//` comments. Example:
    ///
    /// ```text
    /// root -> result(b, @apply, b, @apply, b, @apply)   // Q2
    /// a -> a
    /// ```
    pub fn parse_text(text: &str) -> Result<Stylesheet, QueryError> {
        let mut templates = Vec::new();
        for (lineno, raw_line) in text.lines().enumerate() {
            let line = match raw_line.find("//") {
                Some(i) => &raw_line[..i],
                None => raw_line,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let Some((tag, body)) = line.split_once("->") else {
                return Err(QueryError::Tree(xmltc_trees::TreeError::Parse {
                    message: format!("line {}: expected `tag -> body`", lineno + 1),
                    offset: 0,
                }));
            };
            templates.push(Template::parse(tag.trim(), body.trim())?);
        }
        if templates.is_empty() {
            return Err(QueryError::Tree(xmltc_trees::TreeError::Parse {
                message: "empty stylesheet".into(),
                offset: 0,
            }));
        }
        Ok(Stylesheet::new(templates))
    }

    /// The templates.
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }

    fn template_for(&self, tag: &str) -> Option<&Template> {
        self.templates.iter().find(|t| t.match_tag == tag)
    }

    /// Reference interpreter: applies the stylesheet to an unranked input
    /// document, producing the output document.
    pub fn apply(&self, t: &UnrankedTree) -> Result<RawTree, QueryError> {
        self.process(t, t.root())
    }

    fn process(
        &self,
        t: &UnrankedTree,
        n: xmltc_trees::unranked::NodeId,
    ) -> Result<RawTree, QueryError> {
        let tag = t.alphabet().name(t.symbol(n)).to_string();
        let template = self.template_for(&tag).ok_or(QueryError::NoTemplate(tag))?;
        self.instantiate(&template.body, t, n)
    }

    fn instantiate(
        &self,
        body: &TemplateNode,
        t: &UnrankedTree,
        n: xmltc_trees::unranked::NodeId,
    ) -> Result<RawTree, QueryError> {
        match body {
            TemplateNode::ApplyTemplates => unreachable!("handled by the parent element"),
            TemplateNode::Element(tag, items) => {
                let mut children = Vec::new();
                for item in items {
                    match item {
                        TemplateNode::Element(..) => children.push(self.instantiate(item, t, n)?),
                        TemplateNode::ApplyTemplates => {
                            for &c in t.children(n) {
                                children.push(self.process(t, c)?);
                            }
                        }
                    }
                }
                Ok(RawTree::node(tag.clone(), children))
            }
        }
    }

    /// The unranked output alphabet: all tags appearing in template bodies.
    pub fn output_alphabet(&self) -> Arc<Alphabet> {
        let mut b = AlphabetBuilder::new();
        fn collect(n: &TemplateNode, b: &mut AlphabetBuilder) {
            if let TemplateNode::Element(tag, items) = n {
                b.add(tag, Rank::Unranked);
                for i in items {
                    collect(i, b);
                }
            }
        }
        for t in &self.templates {
            collect(&t.body, &mut b);
        }
        b.finish()
    }

    /// Compiles the stylesheet to a 1-pebble transducer from encoded input
    /// trees (over `input`'s encoded alphabet) to encoded output trees.
    ///
    /// Returns the transducer together with both encoded alphabets. Inputs
    /// containing a tag with no matching template make the transducer
    /// *stuck* (the transformation is partial), mirroring the interpreter.
    ///
    /// The machine is assembled as a declarative [`MachineSpec`] (so the
    /// transition table is renderable and validated with the DSL's precise
    /// errors) and lowered once at the end.
    pub fn compile(
        &self,
        input: &Arc<Alphabet>,
    ) -> Result<(PebbleTransducer, EncodedAlphabet, EncodedAlphabet), QueryError> {
        let enc_in = EncodedAlphabet::new(input);
        let out_unranked = self.output_alphabet();
        let enc_out = EncodedAlphabet::new(&out_unranked);
        let cons_in = enc_in.encoded().name(enc_in.cons()).to_string();
        let nil_in = enc_in.encoded().name(enc_in.nil()).to_string();
        let cons_out = enc_out.encoded().name(enc_out.cons()).to_string();
        let nil_out = enc_out.encoded().name(enc_out.nil()).to_string();

        let mut m = MachineSpec::new("xslt", 1);

        // Flatten template bodies: one element record per body element.
        struct Elem {
            tag: String,      // output tag name
            items: Vec<Item>, // child items
        }
        #[derive(Clone, Copy)]
        enum Item {
            Child(usize), // index into elems
            Apply,
        }
        let mut elems: Vec<Elem> = Vec::new();
        fn flatten(
            n: &TemplateNode,
            enc_out: &EncodedAlphabet,
            elems: &mut Vec<Elem>,
        ) -> Result<usize, QueryError> {
            let TemplateNode::Element(tag, items) = n else {
                unreachable!("apply handled by caller")
            };
            enc_out
                .source()
                .get(tag)
                .ok_or_else(|| QueryError::UnknownTag(tag.clone()))?;
            let id = elems.len();
            elems.push(Elem {
                tag: tag.clone(),
                items: Vec::new(),
            });
            let mut resolved = Vec::new();
            for item in items {
                match item {
                    TemplateNode::ApplyTemplates => resolved.push(Item::Apply),
                    e @ TemplateNode::Element(..) => {
                        resolved.push(Item::Child(flatten(e, enc_out, elems)?))
                    }
                }
            }
            elems[id].items = resolved;
            Ok(id)
        }
        let mut roots: Vec<(Symbol, usize)> = Vec::new(); // (input tag, body elem id)
        for t in &self.templates {
            let tag = input
                .get(&t.match_tag)
                .ok_or_else(|| QueryError::UnknownTag(t.match_tag.clone()))?;
            // Skip shadowed templates (first match wins).
            if roots.iter().any(|(s, _)| *s == tag) {
                continue;
            }
            let id = flatten(&t.body, &enc_out, &mut elems)?;
            roots.push((tag, id));
        }
        let has_apply = elems
            .iter()
            .any(|e| e.items.iter().any(|i| matches!(i, Item::Apply)));

        // Global states.
        m.state("dispatch", 1).state("nil", 1).initial("dispatch");
        m.emit_leaf(Syms::Any, "nil", Guard::any(), &nil_out);
        if has_apply {
            // process_child: at a cons cell, descend to the child element
            // and dispatch. Only declared when some body applies templates
            // — otherwise the state would (correctly) be unreachable.
            m.state("process_child", 1);
            m.walk(
                Syms::one(&cons_in),
                "process_child",
                Guard::any(),
                Move::DownLeft,
                "dispatch",
            );
        }

        // Per-element states `el{i}` and per (element, list position)
        // states `list{i}_{j}`: emit the children list of element `i`
        // starting at item `j`.
        for (i, e) in elems.iter().enumerate() {
            m.state(format!("el{i}"), 1);
            for j in 0..=e.items.len() {
                m.state(format!("list{i}_{j}"), 1);
            }
        }

        // Dispatch: input tag → its template's root element.
        for &(tag, id) in &roots {
            m.walk(
                Syms::one(input.name(tag)),
                "dispatch",
                Guard::any(),
                Move::Stay,
                format!("el{id}"),
            );
        }

        for (i, e) in elems.iter().enumerate() {
            // el_i: emit tag(list_{i,0}, #).
            m.emit_node(
                Syms::Any,
                format!("el{i}"),
                Guard::any(),
                &e.tag,
                format!("list{i}_0"),
                "nil",
            );
            for (j, item) in e.items.iter().enumerate() {
                match item {
                    Item::Child(c) => {
                        // Emit cons(el_c, rest).
                        m.emit_node(
                            Syms::Any,
                            format!("list{i}_{j}"),
                            Guard::any(),
                            &cons_out,
                            format!("el{c}"),
                            format!("list{i}_{}", j + 1),
                        );
                    }
                    Item::Apply => {
                        // Walk the input forest. The pebble sits on the
                        // matched input element; descend to the forest.
                        let walk = format!("walk{i}_{j}");
                        let advance = format!("adv{i}_{j}");
                        let climb = format!("climb{i}_{j}");
                        m.state(&walk, 1).state(&advance, 1).state(&climb, 1);
                        m.walk(
                            Syms::Any,
                            format!("list{i}_{j}"),
                            Guard::any(),
                            Move::DownLeft,
                            &walk,
                        );
                        // At a cons cell: one output element per child.
                        m.emit_node(
                            Syms::one(&cons_in),
                            &walk,
                            Guard::any(),
                            &cons_out,
                            "process_child",
                            &advance,
                        );
                        m.walk(
                            Syms::one(&cons_in),
                            &advance,
                            Guard::any(),
                            Move::DownRight,
                            &walk,
                        );
                        // At `#`: input children exhausted; climb back to
                        // the element node and continue with the next item.
                        // `#` as a left child sits directly under the
                        // element (empty forest); otherwise parents are
                        // cons cells until the element.
                        m.walk(
                            Syms::one(&nil_in),
                            &walk,
                            Guard::any(),
                            Move::UpLeft,
                            format!("list{i}_{}", j + 1),
                        );
                        m.walk(
                            Syms::one(&nil_in),
                            &walk,
                            Guard::any(),
                            Move::UpRight,
                            &climb,
                        );
                        m.walk(
                            Syms::one(&cons_in),
                            &climb,
                            Guard::any(),
                            Move::UpRight,
                            &climb,
                        );
                        m.walk(
                            Syms::one(&cons_in),
                            &climb,
                            Guard::any(),
                            Move::UpLeft,
                            format!("list{i}_{}", j + 1),
                        );
                    }
                }
            }
            // End of list.
            m.emit_leaf(
                Syms::Any,
                format!("list{i}_{}", e.items.len()),
                Guard::any(),
                &nil_out,
            );
        }

        let t = m
            .build_transducer(enc_in.encoded(), enc_out.encoded())
            .map_err(|e| QueryError::Machine(MachineError::IllTyped(e.to_string())))?;
        Ok((t, enc_in, enc_out))
    }
}

impl Stylesheet {
    /// **Forward type inference** (the XDuce/XQuery-style baseline the
    /// paper's Related Work discusses): infers a *specialized DTD*
    /// over-approximating the stylesheet's image on `input_dtd`-valid
    /// documents.
    ///
    /// One output type per template-body element; an `apply-templates`
    /// item contributes the matched tag's content model with every tag
    /// substituted by its template's root type. The approximation is the
    /// classical decoupling: sibling `apply-templates` within one template
    /// forget that they iterate the *same* children — exactly why forward
    /// inference rejects correct programs like Q2 against specs relating
    /// the copies (Example 4.3 / experiment E6).
    ///
    /// The result is over `out_alphabet`, which must contain every tag the
    /// stylesheet can emit (use [`Stylesheet::output_alphabet`] or the
    /// alphabet from [`Stylesheet::compile`]).
    pub fn infer_image(
        &self,
        input_dtd: &crate::DtdRef,
        out_alphabet: &Arc<Alphabet>,
    ) -> Result<xmltc_dtd::SpecializedDtd, QueryError> {
        use xmltc_dtd::TypeId;
        use xmltc_regex::Regex;

        // Flatten bodies; remember each element's owning template tag.
        struct TElem {
            tag: Symbol,
            items: Vec<TItem>,
            template_tag: Symbol,
        }
        enum TItem {
            Child(usize),
            Apply,
        }
        let mut elems: Vec<TElem> = Vec::new();
        // root body element per input tag.
        let mut roots: Vec<(Symbol, usize)> = Vec::new();

        fn flatten(
            n: &TemplateNode,
            template_tag: Symbol,
            out_alphabet: &Arc<Alphabet>,
            elems: &mut Vec<TElem>,
        ) -> Result<usize, QueryError> {
            let TemplateNode::Element(tag, items) = n else {
                unreachable!("apply handled by caller")
            };
            let sym = out_alphabet
                .get(tag)
                .ok_or_else(|| QueryError::UnknownTag(tag.clone()))?;
            let id = elems.len();
            elems.push(TElem {
                tag: sym,
                items: Vec::new(),
                template_tag,
            });
            let mut resolved = Vec::new();
            for item in items {
                match item {
                    TemplateNode::ApplyTemplates => resolved.push(TItem::Apply),
                    e @ TemplateNode::Element(..) => {
                        resolved.push(TItem::Child(flatten(e, template_tag, out_alphabet, elems)?))
                    }
                }
            }
            elems[id].items = resolved;
            Ok(id)
        }

        let in_al = input_dtd.alphabet();
        for t in &self.templates {
            let tag = in_al
                .get(&t.match_tag)
                .ok_or_else(|| QueryError::UnknownTag(t.match_tag.clone()))?;
            if roots.iter().any(|(s, _)| *s == tag) {
                continue; // first match wins
            }
            let id = flatten(&t.body, tag, out_alphabet, &mut elems)?;
            roots.push((tag, id));
        }
        let root_type_of = |tag: Symbol| -> Result<usize, QueryError> {
            roots
                .iter()
                .find(|(s, _)| *s == tag)
                .map(|&(_, id)| id)
                .ok_or_else(|| QueryError::NoTemplate(in_al.name(tag).to_string()))
        };

        // Content models over types.
        let mut names = Vec::new();
        let mut labels = Vec::new();
        let mut rules = Vec::new();
        for (i, e) in elems.iter().enumerate() {
            names.push(format!("t{i}"));
            labels.push(e.tag);
            let mut content = Regex::Epsilon;
            for item in &e.items {
                let part = match item {
                    TItem::Child(c) => Regex::sym(TypeId(*c as u32)),
                    TItem::Apply => {
                        // The matched input tag's content model, tags
                        // replaced by their template root types.
                        let model = input_dtd
                            .rule(e.template_tag)
                            .cloned()
                            .unwrap_or(Regex::Epsilon);
                        model.try_map(&mut |tag: &Symbol| {
                            root_type_of(*tag).map(|id| TypeId(id as u32))
                        })?
                    }
                };
                content = content.concat(part);
            }
            rules.push(content);
        }
        let doc_root = root_type_of(input_dtd.root())?;
        Ok(xmltc_dtd::SpecializedDtd::new(
            out_alphabet,
            names,
            labels,
            rules,
            TypeId(doc_root as u32),
        ))
    }
}

/// The paper's Example 4.3 query **Q2**: on documents `root(aⁿ)` produces
/// `result(b, aⁿ, b, aⁿ, b, aⁿ)` — i.e. the word `b aⁿ b aⁿ b aⁿ`, a
/// non-regular image family.
pub fn example_q2() -> Stylesheet {
    Stylesheet::new(vec![
        Template::parse("root", "result(b, @apply, b, @apply, b, @apply)").expect("valid"),
        Template::parse("a", "a").expect("valid"),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltc_core::eval;
    use xmltc_trees::{decode, encode};

    fn input_alphabet() -> Arc<Alphabet> {
        Alphabet::unranked(&["root", "a"])
    }

    #[test]
    fn interpreter_q2() {
        let q2 = example_q2();
        let al = input_alphabet();
        let t = UnrankedTree::parse("root(a, a)", &al).unwrap();
        let out = q2.apply(&t).unwrap();
        assert_eq!(out.to_string(), "result(b, a, a, b, a, a, b, a, a)");
        let t0 = UnrankedTree::parse("root", &al).unwrap();
        assert_eq!(q2.apply(&t0).unwrap().to_string(), "result(b, b, b)");
    }

    #[test]
    fn compiled_agrees_with_interpreter() {
        let q2 = example_q2();
        let al = input_alphabet();
        let (t, enc_in, enc_out) = q2.compile(&al).unwrap();
        assert_eq!(t.k(), 1);
        for doc in ["root", "root(a)", "root(a, a)", "root(a, a, a)"] {
            let input = UnrankedTree::parse(doc, &al).unwrap();
            let expected = q2.apply(&input).unwrap();
            let encoded_in = encode(&input, &enc_in).unwrap();
            let encoded_out = eval(&t, &encoded_in).unwrap();
            let decoded = decode(&encoded_out, &enc_out).unwrap();
            assert_eq!(decoded.to_raw(), expected, "on {doc}");
        }
    }

    #[test]
    fn nested_templates_and_elements() {
        // Nested input; body with nested elements around apply.
        let sheet = Stylesheet::new(vec![
            Template::parse("root", "out(wrap(@apply))").unwrap(),
            Template::parse("a", "item(@apply)").unwrap(),
            Template::parse("b", "leaf").unwrap(),
        ]);
        let al = Alphabet::unranked(&["root", "a", "b"]);
        let t = UnrankedTree::parse("root(a(b, b), b)", &al).unwrap();
        let expected = sheet.apply(&t).unwrap();
        assert_eq!(expected.to_string(), "out(wrap(item(leaf, leaf), leaf))");
        let (trans, enc_in, enc_out) = sheet.compile(&al).unwrap();
        let out = eval(&trans, &encode(&t, &enc_in).unwrap()).unwrap();
        assert_eq!(decode(&out, &enc_out).unwrap().to_raw(), expected);
    }

    #[test]
    fn missing_template_is_partial() {
        let sheet = Stylesheet::new(vec![Template::parse("root", "out(@apply)").unwrap()]);
        let al = Alphabet::unranked(&["root", "a"]);
        let t = UnrankedTree::parse("root(a)", &al).unwrap();
        assert!(matches!(sheet.apply(&t), Err(QueryError::NoTemplate(tag)) if tag == "a"));
        let (trans, enc_in, _) = sheet.compile(&al).unwrap();
        let encoded = encode(&t, &enc_in).unwrap();
        assert!(eval(&trans, &encoded).is_err());
    }

    #[test]
    fn first_match_wins() {
        let sheet = Stylesheet::new(vec![
            Template::parse("root", "x").unwrap(),
            Template::parse("root", "y").unwrap(),
        ]);
        let al = Alphabet::unranked(&["root"]);
        let t = UnrankedTree::parse("root", &al).unwrap();
        assert_eq!(sheet.apply(&t).unwrap().to_string(), "x");
        let (trans, enc_in, enc_out) = sheet.compile(&al).unwrap();
        let out = eval(&trans, &encode(&t, &enc_in).unwrap()).unwrap();
        assert_eq!(decode(&out, &enc_out).unwrap().to_string(), "x");
    }

    #[test]
    fn deep_documents() {
        // Recursion through many levels: a copies itself.
        let sheet = Stylesheet::new(vec![
            Template::parse("root", "root(@apply)").unwrap(),
            Template::parse("a", "a(@apply)").unwrap(),
        ]);
        let al = Alphabet::unranked(&["root", "a"]);
        let t = UnrankedTree::parse("root(a(a(a)), a(a), a)", &al).unwrap();
        let expected = sheet.apply(&t).unwrap();
        assert_eq!(expected.to_string(), "root(a(a(a)), a(a), a)");
        let (trans, enc_in, enc_out) = sheet.compile(&al).unwrap();
        let out = eval(&trans, &encode(&t, &enc_in).unwrap()).unwrap();
        assert_eq!(decode(&out, &enc_out).unwrap().to_raw(), expected);
    }
}

#[cfg(test)]
mod parse_text_tests {
    use super::*;

    #[test]
    fn parses_templates_and_comments() {
        let sheet = Stylesheet::parse_text(
            "// Q2, Example 4.3
             root -> result(b, @apply, b, @apply, b, @apply)
             a -> a  // copy a's",
        )
        .unwrap();
        assert_eq!(sheet.templates().len(), 2);
        assert_eq!(sheet.templates()[0].match_tag, "root");
        let al = Alphabet::unranked(&["root", "a"]);
        let t = UnrankedTree::parse("root(a)", &al).unwrap();
        assert_eq!(
            sheet.apply(&t).unwrap().to_string(),
            "result(b, a, b, a, b, a)"
        );
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!(Stylesheet::parse_text("").is_err());
        assert!(Stylesheet::parse_text("root result").is_err());
        assert!(Stylesheet::parse_text("root -> @apply").is_err());
        assert!(Stylesheet::parse_text("root -> out(").is_err());
    }
}
