//! One-call document-level pipeline: stylesheet + input DTD + output DTD.
//!
//! Wraps encoding bookkeeping (Section 2.1) so callers think purely in
//! terms of XML documents and DTDs:
//!
//! ```
//! use xmltc_xmlql::pipeline::DocumentPipeline;
//! use xmltc_xmlql::{Stylesheet, Template};
//! use xmltc_dtd::Dtd;
//!
//! let sheet = Stylesheet::new(vec![
//!     Template::parse("root", "out(@apply)").unwrap(),
//!     Template::parse("a", "b").unwrap(),
//! ]);
//! let input = Dtd::parse_text("root := a*\na := @eps").unwrap();
//! let p = DocumentPipeline::new(sheet, input).unwrap();
//! let verdict = p.typecheck_against("out := b*\nb := @eps").unwrap();
//! assert!(verdict.is_ok());
//! ```

use crate::error::QueryError;
use crate::xslt::Stylesheet;
use std::sync::Arc;
use xmltc_automata::Nta;
use xmltc_core::{MachineError, PebbleTransducer};
use xmltc_dtd::{Dtd, DtdError};
use xmltc_obs as obs;
use xmltc_trees::{decode, encode, Alphabet, EncodedAlphabet, RawTree, UnrankedTree};
use xmltc_typecheck::{typecheck, TypecheckError, TypecheckOptions, TypecheckOutcome};

/// A compiled stylesheet pipeline over documents.
pub struct DocumentPipeline {
    stylesheet: Stylesheet,
    input_dtd: Dtd,
    transducer: PebbleTransducer,
    enc_in: EncodedAlphabet,
    enc_out: EncodedAlphabet,
    tau1: Nta,
}

/// A document-level typechecking verdict.
#[derive(Clone, Debug)]
pub enum DocumentVerdict {
    /// Every valid input maps only into the output DTD.
    Ok,
    /// A valid input whose output can violate the DTD, with the output.
    CounterExample {
        /// The offending document.
        input: RawTree,
        /// An offending output document, when extractable.
        bad_output: Option<RawTree>,
    },
}

impl DocumentVerdict {
    /// True when the transformation typechecks.
    pub fn is_ok(&self) -> bool {
        matches!(self, DocumentVerdict::Ok)
    }
}

/// Errors from the document pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// Query/stylesheet level.
    Query(QueryError),
    /// DTD level.
    Dtd(DtdError),
    /// Machine level.
    Machine(MachineError),
    /// Typechecking level.
    Typecheck(TypecheckError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Query(e) => write!(f, "{e}"),
            PipelineError::Dtd(e) => write!(f, "{e}"),
            PipelineError::Machine(e) => write!(f, "{e}"),
            PipelineError::Typecheck(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<QueryError> for PipelineError {
    fn from(e: QueryError) -> Self {
        PipelineError::Query(e)
    }
}
impl From<DtdError> for PipelineError {
    fn from(e: DtdError) -> Self {
        PipelineError::Dtd(e)
    }
}
impl From<MachineError> for PipelineError {
    fn from(e: MachineError) -> Self {
        PipelineError::Machine(e)
    }
}
impl From<TypecheckError> for PipelineError {
    fn from(e: TypecheckError) -> Self {
        PipelineError::Typecheck(e)
    }
}

impl DocumentPipeline {
    /// Compiles the stylesheet against the input DTD.
    pub fn new(stylesheet: Stylesheet, input_dtd: Dtd) -> Result<DocumentPipeline, PipelineError> {
        let _span = obs::span("pipeline.compile");
        let (transducer, enc_in, enc_out) = {
            let _span = obs::span("stylesheet.compile");
            let out = stylesheet.compile(input_dtd.alphabet())?;
            obs::record("transducer.k", out.0.k() as u64);
            obs::record("transducer.states", out.0.core().n_states() as u64);
            out
        };
        let tau1 = {
            let _span = obs::span("input_dtd.compile");
            let tau1 = input_dtd.compile(&enc_in)?;
            obs::record("tau1.states", tau1.n_states() as u64);
            obs::record("tau1.transitions", tau1.n_transitions() as u64);
            tau1
        };
        Ok(DocumentPipeline {
            stylesheet,
            input_dtd,
            transducer,
            enc_in,
            enc_out,
            tau1,
        })
    }

    /// The compiled transducer.
    pub fn transducer(&self) -> &PebbleTransducer {
        &self.transducer
    }

    /// The input DTD.
    pub fn input_dtd(&self) -> &Dtd {
        &self.input_dtd
    }

    /// The stylesheet.
    pub fn stylesheet(&self) -> &Stylesheet {
        &self.stylesheet
    }

    /// The output tag alphabet.
    pub fn output_alphabet(&self) -> &Arc<Alphabet> {
        self.enc_out.source()
    }

    /// The compiled input type over the binary encoding.
    pub(crate) fn tau1(&self) -> &Nta {
        &self.tau1
    }

    /// The input-side encoding.
    pub(crate) fn enc_in(&self) -> &EncodedAlphabet {
        &self.enc_in
    }

    /// The output-side encoding.
    pub(crate) fn enc_out(&self) -> &EncodedAlphabet {
        &self.enc_out
    }

    /// Transforms a document (validating it first), through the compiled
    /// machine (not the interpreter).
    pub fn transform(&self, doc: &UnrankedTree) -> Result<RawTree, PipelineError> {
        let _span = obs::span("pipeline.transform");
        self.input_dtd.validate(doc)?;
        let encoded = encode(doc, &self.enc_in).map_err(QueryError::Tree)?;
        let out = xmltc_core::eval(&self.transducer, &encoded)?;
        let decoded = decode(&out, &self.enc_out).map_err(QueryError::Tree)?;
        Ok(decoded.to_raw())
    }

    /// Statically typechecks the transformation against an output DTD
    /// given in text syntax over the stylesheet's output tags.
    pub fn typecheck_against(
        &self,
        output_dtd_text: &str,
    ) -> Result<DocumentVerdict, PipelineError> {
        self.typecheck_against_with(output_dtd_text, &TypecheckOptions::default())
    }

    /// [`DocumentPipeline::typecheck_against`] with explicit
    /// [`TypecheckOptions`] (route selection, state budget).
    pub fn typecheck_against_with(
        &self,
        output_dtd_text: &str,
        opts: &TypecheckOptions,
    ) -> Result<DocumentVerdict, PipelineError> {
        let tau2 = self.compile_output_dtd(output_dtd_text)?;
        self.typecheck_nta_with(&tau2, opts)
    }

    /// Parses and compiles an output DTD (text syntax over the
    /// stylesheet's output tags) to an automaton over the encoded output
    /// alphabet — the `τ₂` the typechecking entry points consume. Exposed
    /// so callers holding many specs (the `xmltc serve` artifact cache)
    /// can compile each once and re-use it across requests.
    pub fn compile_output_dtd(&self, output_dtd_text: &str) -> Result<Nta, PipelineError> {
        let _span = obs::span("output_dtd.compile");
        let out_dtd = Dtd::parse_text_with(output_dtd_text, self.enc_out.source())?;
        let tau2 = out_dtd.compile(&self.enc_out)?;
        obs::record("tau2.states", tau2.n_states() as u64);
        obs::record("tau2.transitions", tau2.n_transitions() as u64);
        Ok(tau2)
    }

    /// Statically typechecks against a pre-built output automaton over the
    /// encoded output alphabet.
    pub fn typecheck_nta(&self, tau2: &Nta) -> Result<DocumentVerdict, PipelineError> {
        self.typecheck_nta_with(tau2, &TypecheckOptions::default())
    }

    /// [`DocumentPipeline::typecheck_nta`] with explicit
    /// [`TypecheckOptions`].
    pub fn typecheck_nta_with(
        &self,
        tau2: &Nta,
        opts: &TypecheckOptions,
    ) -> Result<DocumentVerdict, PipelineError> {
        let outcome = typecheck(&self.transducer, &self.tau1, tau2, opts)?;
        self.decode_outcome(outcome)
    }

    /// Typechecks against a pre-built `τ₂` *and* a precomputed violation
    /// automaton (the Theorem 4.7 output for `(transducer, τ₂)`): only the
    /// final emptiness check runs — no walk/MSO construction. This is the
    /// warm path of the `xmltc serve` artifact cache; the caller is
    /// responsible for the pairing invariant documented on
    /// [`xmltc_typecheck::typecheck_with_violations`].
    pub fn typecheck_with_violations_nta(
        &self,
        tau2: &Nta,
        violations: &Nta,
        opts: &TypecheckOptions,
    ) -> Result<DocumentVerdict, PipelineError> {
        let outcome = xmltc_typecheck::typecheck_with_violations(
            &self.transducer,
            &self.tau1,
            tau2,
            violations,
            opts,
        )?;
        self.decode_outcome(outcome)
    }

    /// Decodes a typechecker outcome (over binary encodings) back into
    /// document-level verdicts.
    fn decode_outcome(&self, outcome: TypecheckOutcome) -> Result<DocumentVerdict, PipelineError> {
        match outcome {
            TypecheckOutcome::Ok => Ok(DocumentVerdict::Ok),
            TypecheckOutcome::CounterExample { input, bad_output } => {
                let input = decode(&input, &self.enc_in)
                    .map_err(QueryError::Tree)?
                    .to_raw();
                let bad_output = match bad_output {
                    Some(b) => Some(
                        decode(&b, &self.enc_out)
                            .map_err(QueryError::Tree)?
                            .to_raw(),
                    ),
                    None => None,
                };
                Ok(DocumentVerdict::CounterExample { input, bad_output })
            }
        }
    }

    /// The forward-inference baseline verdict (sound, incomplete): `Some
    /// witness` when the inferred image leaks outside the DTD (possibly
    /// spuriously), `None` when the image proves the spec.
    pub fn forward_check(&self, output_dtd_text: &str) -> Result<Option<RawTree>, PipelineError> {
        let _span = obs::span("pipeline.forward");
        let out_dtd = Dtd::parse_text_with(output_dtd_text, self.enc_out.source())?;
        let tau2 = out_dtd.compile(&self.enc_out)?;
        let image = self
            .stylesheet
            .infer_image(&self.input_dtd, self.enc_out.source())?
            .compile(&self.enc_out)?;
        match image.inclusion_counterexample(&tau2) {
            None => Ok(None),
            Some(w) => Ok(Some(
                decode(&w, &self.enc_out)
                    .map_err(QueryError::Tree)?
                    .to_raw(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xslt::Template;

    fn pipeline() -> DocumentPipeline {
        let sheet = Stylesheet::new(vec![
            Template::parse("root", "out(b, @apply)").unwrap(),
            Template::parse("a", "b").unwrap(),
        ]);
        let dtd = Dtd::parse_text("root := a*\na := @eps").unwrap();
        DocumentPipeline::new(sheet, dtd).unwrap()
    }

    #[test]
    fn transform_and_typecheck() {
        let p = pipeline();
        let doc = UnrankedTree::parse("root(a, a)", p.input_dtd().alphabet()).unwrap();
        let out = p.transform(&doc).unwrap();
        assert_eq!(out.to_string(), "out(b, b, b)");
        assert!(p.typecheck_against("out := b+\nb := @eps").unwrap().is_ok());
        match p.typecheck_against("out := b.b+\nb := @eps").unwrap() {
            DocumentVerdict::CounterExample { input, bad_output } => {
                assert_eq!(input.to_string(), "root");
                assert_eq!(bad_output.unwrap().to_string(), "out(b)");
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn invalid_document_rejected_at_transform() {
        let p = pipeline();
        // a's may not nest in this DTD.
        let al = p.input_dtd().alphabet().clone();
        let doc = UnrankedTree::parse("root(a(a))", &al).unwrap();
        assert!(matches!(p.transform(&doc), Err(PipelineError::Dtd(_))));
    }

    #[test]
    fn forward_baseline() {
        let p = pipeline();
        // b+ is provable even by the forward baseline (image = b.b*).
        assert!(p.forward_check("out := b+\nb := @eps").unwrap().is_none());
        // b.b* with exactly even length is not (and is indeed false anyway).
        assert!(p
            .forward_check("out := (b.b)*\nb := @eps")
            .unwrap()
            .is_some());
    }
}
