//! # xmltc-xmlql
//!
//! XML query-language front-ends compiled to k-pebble tree transducers —
//! the embedding claimed by Section 3.2 of the paper ("all transformations
//! … expressed in existing XML query languages … can be expressed as
//! k-pebble transducers"), realized for two concrete fragments:
//!
//! * **An XSLT fragment** ([`xslt`]): match-by-tag templates whose bodies
//!   are element trees with `apply-templates` holes (exactly the shape of
//!   the paper's Example 4.3 query Q2). Compiles to a **1-pebble**
//!   transducer over encoded binary trees, so the efficient
//!   behaviour-composition typechecking route applies.
//! * **Select/construct queries** ([`query`]): XML-QL-style queries binding
//!   `n` variables to nodes matched by regular path expressions and
//!   emitting one constant element per binding tuple — Example 4.2's Q1
//!   (`aⁿ ↦ bⁿ²`) is the canonical instance. Compiles to an
//!   **(n+1)-pebble** transducer following Example 3.5: pebbles `1..n`
//!   enumerate candidate tuples in pre-order lexicographic order, and the
//!   extra pebble verifies each path condition by climbing from the
//!   candidate to the root running the reversed path automaton.
//!
//! Shared infrastructure: [`path`] — the paper's (regular) path
//! expressions over unranked trees, with the Section 2.1 translation onto
//! the binary encoding.
//!
//! Both compilers require the document root tag to label only the root
//! (non-recursive root rule). The paper makes the same assumption: its
//! pre-order subroutine (Example 3.4) needs a distinguished root symbol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod explain;
pub mod path;
pub mod pipeline;
pub mod query;
pub mod xslt;

pub use error::QueryError;

pub use pipeline::{DocumentPipeline, DocumentVerdict};
pub use query::SelectConstructQuery;
/// Re-export: the DTD type consumed by [`xslt::Stylesheet::infer_image`].
pub use xmltc_dtd::Dtd as DtdRef;
pub use xslt::{Stylesheet, Template, TemplateNode};
