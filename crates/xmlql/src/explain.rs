//! Assembly of [`ExplainReport`]s: the document-level provenance behind
//! `xmltc explain`.
//!
//! [`DocumentPipeline::explain_against_with`] runs the same decision
//! procedure as `typecheck_against_with`, then — for a failing verdict —
//! gathers the full causal chain around the counterexample:
//!
//! * the input document, decoded and serialized;
//! * the transducer run re-deriving the offending output, via the replay
//!   verifier ([`xmltc_typecheck::replay`]) whose trace doubles as the
//!   proof that the output is really producible;
//! * the offending output document;
//! * the output-DTD violation, diagnosed at the grammar level
//!   ([`xmltc_dtd::Dtd::diagnose`]: implicated production, content-DFA
//!   path, expected symbols) and at the automaton level
//!   ([`xmltc_automata::witness::rejection_point`] on the compiled `τ₂`).
//!
//! Everything in the report is recomputed from first principles on the
//! finished counterexample, so the report cannot silently drift from the
//! verdict: if any leg of the replay fails to confirm, the report says so
//! (`replay.verified = false`) — and the test suite treats that as a bug.

use crate::error::QueryError;
use crate::pipeline::{DocumentPipeline, DocumentVerdict, PipelineError};
use xmltc_automata::witness::node_path;
use xmltc_dtd::{Diagnosis, Dtd};
use xmltc_obs::explain::{
    DocumentRecord, ExplainReport, ReplayRecord, SpecAutomatonRecord, TraceStepRecord,
    TransformRecord, ViolationRecord,
};
use xmltc_trees::{decode, UnrankedTree};
use xmltc_typecheck::check::ResolvedRoute;
use xmltc_typecheck::{
    replay_counterexample, typecheck, Engine, TypecheckOptions, TypecheckOutcome,
};
use xmltc_xml::raw_to_xml;

/// Trace steps kept in a report; longer runs are truncated (the recorded
/// `total_steps` still reflects the full run).
pub const MAX_REPORT_STEPS: usize = 200;

impl DocumentPipeline {
    /// Typechecks against an output DTD and assembles the provenance
    /// report alongside the verdict.
    pub fn explain_against(
        &self,
        output_dtd_text: &str,
    ) -> Result<(DocumentVerdict, ExplainReport), PipelineError> {
        self.explain_against_with(output_dtd_text, &TypecheckOptions::default())
    }

    /// [`DocumentPipeline::explain_against`] with explicit
    /// [`TypecheckOptions`].
    pub fn explain_against_with(
        &self,
        output_dtd_text: &str,
        opts: &TypecheckOptions,
    ) -> Result<(DocumentVerdict, ExplainReport), PipelineError> {
        let out_dtd = Dtd::parse_text_with(output_dtd_text, self.enc_out().source())?;
        let tau2 = out_dtd.compile(self.enc_out())?;

        let route = opts.route_for(self.transducer().k());
        let engine = opts.engine_for(route);
        let route_name = match route {
            ResolvedRoute::Walk => "walk",
            ResolvedRoute::Mso => "mso",
        };
        let engine_name = match engine {
            Engine::Lazy => "lazy",
            _ => "eager",
        };

        let outcome = typecheck(self.transducer(), self.tau1(), &tau2, opts)?;
        let (input, bad_output) = match outcome {
            TypecheckOutcome::Ok => {
                return Ok((
                    DocumentVerdict::Ok,
                    ExplainReport::ok(route_name, engine_name),
                ))
            }
            TypecheckOutcome::CounterExample { input, bad_output } => (input, bad_output),
        };

        let mut report = ExplainReport::ok(route_name, engine_name);
        report.verdict = "counterexample".into();

        let input_doc = decode(&input, self.enc_in()).map_err(QueryError::Tree)?;
        report.input = Some(document_record(&input_doc));

        let mut bad_raw = None;
        if let Some(bad) = &bad_output {
            let ev = replay_counterexample(self.transducer(), self.tau1(), &tau2, &input, bad)?;
            let total = ev.trace.len();
            report.transform = Some(TransformRecord {
                k: self.transducer().k() as u64,
                states: self.transducer().core().n_states() as u64,
                total_steps: total as u64,
                truncated: total > MAX_REPORT_STEPS,
                steps: ev
                    .trace
                    .iter()
                    .take(MAX_REPORT_STEPS)
                    .map(|s| TraceStepRecord {
                        state: s.state.clone(),
                        level: s.level as u64,
                        input_symbol: s.input_symbol.clone(),
                        pebbles: s.pebbles.clone(),
                        action: s.action.clone(),
                        out_path: s.out_path.clone(),
                    })
                    .collect(),
            });
            report.spec_automaton = ev.rejection.as_ref().map(|rp| SpecAutomatonRecord {
                states: tau2.n_states() as u64,
                rejection_path: node_path(bad, rp.node),
                reachable_there: rp.reachable.len() as u64,
            });
            report.replay = Some(ReplayRecord {
                input_in_type: ev.input_in_type,
                output_produced: ev.output_produced,
                output_rejected: ev.output_rejected,
                steps: total as u64,
            });

            let doc = decode(bad, self.enc_out()).map_err(QueryError::Tree)?;
            report.output = Some(document_record(&doc));
            report.violation = violation_record(&out_dtd, &doc);
            bad_raw = Some(doc.to_raw());
        }

        let verdict = DocumentVerdict::CounterExample {
            input: input_doc.to_raw(),
            bad_output: bad_raw,
        };
        Ok((verdict, report))
    }
}

/// Diagnoses why `doc` violates the output DTD, as a report record.
fn violation_record(out_dtd: &Dtd, doc: &UnrankedTree) -> Option<ViolationRecord> {
    out_dtd.diagnose(doc).map(|d| match d {
        Diagnosis::WrongRoot { expected, got } => ViolationRecord {
            kind: "wrong-root".into(),
            path: "/".into(),
            element: got,
            word: Vec::new(),
            production: String::new(),
            failed_at: 0,
            dfa_states: Vec::new(),
            expected: vec![expected],
        },
        Diagnosis::InvalidContent {
            path,
            element,
            word,
            production,
            failed_at,
            dfa_states,
            expected,
        } => ViolationRecord {
            kind: "invalid-content".into(),
            path,
            element,
            word,
            production,
            failed_at: failed_at as u64,
            dfa_states: dfa_states.into_iter().map(u64::from).collect(),
            expected,
        },
    })
}

fn document_record(doc: &UnrankedTree) -> DocumentRecord {
    let raw = doc.to_raw();
    DocumentRecord {
        xml: Some(raw_to_xml(&raw)),
        term: raw.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xslt::{Stylesheet, Template};

    fn pipeline() -> DocumentPipeline {
        let sheet = Stylesheet::new(vec![
            Template::parse("root", "out(b, @apply)").unwrap(),
            Template::parse("a", "b").unwrap(),
        ]);
        let dtd = Dtd::parse_text("root := a*\na := @eps").unwrap();
        DocumentPipeline::new(sheet, dtd).unwrap()
    }

    #[test]
    fn passing_spec_yields_minimal_report() {
        let p = pipeline();
        let (verdict, report) = p.explain_against("out := b+\nb := @eps").unwrap();
        assert!(verdict.is_ok());
        assert!(report.is_ok());
        assert!(report.input.is_none() && report.replay.is_none());
    }

    #[test]
    fn failing_spec_yields_full_verified_report() {
        let p = pipeline();
        // `out := b.b+` requires ≥ 2 children; the empty input produces
        // out(b), which has exactly one.
        let (verdict, report) = p.explain_against("out := b.b+\nb := @eps").unwrap();
        assert!(!verdict.is_ok());
        assert_eq!(report.verdict, "counterexample");
        let input = report.input.as_ref().unwrap();
        assert_eq!(input.term, "root");
        assert_eq!(input.xml.as_deref(), Some("<root/>"));
        let output = report.output.as_ref().unwrap();
        assert_eq!(output.term, "out(b)");
        let transform = report.transform.as_ref().unwrap();
        assert!(!transform.steps.is_empty());
        assert!(transform
            .steps
            .iter()
            .any(|s| s.action.starts_with("output2 out")));
        let violation = report.violation.as_ref().unwrap();
        assert_eq!(violation.kind, "invalid-content");
        assert_eq!(violation.element, "out");
        assert_eq!(violation.word, vec!["b"]);
        assert!(violation.production.contains("out := "));
        let replay = report.replay.as_ref().unwrap();
        assert!(replay.verified(), "replay must confirm: {replay:?}");
        assert!(report.spec_automaton.is_some());
        // The JSON form carries the same chain.
        let json = report.to_json();
        assert_eq!(
            json.at("replay.verified"),
            Some(&xmltc_obs::Json::Bool(true))
        );
        assert_eq!(
            json.at("violation.element")
                .and_then(xmltc_obs::Json::as_str),
            Some("out")
        );
    }
}
