//! Errors for the query front-ends.

use std::fmt;
use xmltc_core::MachineError;
use xmltc_trees::TreeError;

/// Errors from query construction, interpretation, or compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// No template matches a tag encountered while interpreting a
    /// stylesheet.
    NoTemplate(String),
    /// A query/stylesheet element references a tag missing from the output
    /// alphabet.
    UnknownTag(String),
    /// The compiled machine would be ill-formed.
    Machine(MachineError),
    /// Tree-level failure.
    Tree(TreeError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::NoTemplate(tag) => write!(f, "no template matches tag `{tag}`"),
            QueryError::UnknownTag(tag) => write!(f, "unknown tag `{tag}`"),
            QueryError::Machine(e) => write!(f, "{e}"),
            QueryError::Tree(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<MachineError> for QueryError {
    fn from(e: MachineError) -> Self {
        QueryError::Machine(e)
    }
}

impl From<TreeError> for QueryError {
    fn from(e: TreeError) -> Self {
        QueryError::Tree(e)
    }
}
