//! Differential execution of the emptiness engines on one typechecking
//! instance.
//!
//! The eager engine materializes `τ₁ ∩ violations` and asks for a
//! witness; the lazy engine searches the same product on the fly. They
//! decide the same language, so any disagreement is a bug in one of them.
//! [`differential_emptiness`] runs **both** on a shared violation
//! automaton (computed once — it depends only on `(T, τ₂)`) and returns
//! both verdicts side by side; the corpus harness and the
//! `xmltc corpus` CLI both consume this.

use crate::check::ResolvedRoute;
use crate::error::TypecheckError;
use crate::inverse::violation_nta;
use crate::replay::{replay_counterexample, ReplayEvidence};
use crate::TypecheckOptions;
use xmltc_automata::{lazy, LazyError, LazyStats, Nta};
use xmltc_core::PebbleTransducer;
use xmltc_trees::BinaryTree;

/// Both engines' answers to one `T(τ₁) ⊆ τ₂` instance.
#[derive(Clone, Debug)]
pub struct DifferentialVerdict {
    /// The eager engine's counterexample input, if any.
    pub eager_witness: Option<BinaryTree>,
    /// The lazy engine's counterexample input, if any.
    pub lazy_witness: Option<BinaryTree>,
    /// The lazy engine's search statistics.
    pub lazy_stats: LazyStats,
    /// States in the (shared) violation automaton, after trimming.
    pub violation_states: u32,
    /// Which Theorem 4.7 route produced the violation automaton.
    pub route_is_walk: bool,
}

impl DifferentialVerdict {
    /// True when the engines return the same verdict (the invariant the
    /// differential harness enforces — witnesses may differ, emptiness
    /// may not).
    pub fn agree(&self) -> bool {
        self.eager_witness.is_some() == self.lazy_witness.is_some()
    }

    /// True when both engines say the instance typechecks.
    pub fn typechecks(&self) -> bool {
        self.eager_witness.is_none() && self.lazy_witness.is_none()
    }
}

fn lift_lazy_error(e: LazyError) -> TypecheckError {
    match e {
        LazyError::AlphabetMismatch => {
            TypecheckError::Tree(xmltc_trees::TreeError::AlphabetMismatch)
        }
        LazyError::ConfigLimit { n } => TypecheckError::TooManyStates { n },
    }
}

/// Runs the eager and the lazy emptiness engine on the same instance and
/// returns both verdicts. The violation automaton is built once (by
/// whichever Theorem 4.7 route `opts` selects) and shared.
pub fn differential_emptiness(
    t: &PebbleTransducer,
    tau1: &Nta,
    tau2: &Nta,
    opts: &TypecheckOptions,
) -> Result<DifferentialVerdict, TypecheckError> {
    let violations = violation_nta(t, tau2, opts)?;
    differential_emptiness_with(t, tau1, &violations, opts)
}

/// Like [`differential_emptiness`], but with a precomputed violation
/// automaton — for callers amortizing it across many `τ₁` (it depends
/// only on `(T, τ₂)`).
pub fn differential_emptiness_with(
    t: &PebbleTransducer,
    tau1: &Nta,
    violations: &Nta,
    opts: &TypecheckOptions,
) -> Result<DifferentialVerdict, TypecheckError> {
    let eager_witness = tau1.intersect(violations).witness();
    let (lazy_out, lazy_stats) =
        lazy::intersection_witness(tau1, violations, opts.state_limit).map_err(lift_lazy_error)?;
    Ok(DifferentialVerdict {
        eager_witness,
        lazy_witness: lazy_out.into_witness(),
        lazy_stats,
        violation_states: violations.n_states(),
        route_is_walk: matches!(opts.route_for(t.k()), ResolvedRoute::Walk),
    })
}

/// Replays a differential counterexample `(input, bad_output)` through
/// the real transducer and both types — thin convenience over
/// [`replay_counterexample`] so differential callers need only this
/// module.
pub fn replay_verdict(
    t: &PebbleTransducer,
    tau1: &Nta,
    tau2: &Nta,
    input: &BinaryTree,
    bad_output: &BinaryTree,
) -> Result<ReplayEvidence, TypecheckError> {
    replay_counterexample(t, tau1, tau2, input, bad_output)
}
