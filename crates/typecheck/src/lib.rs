//! # xmltc-typecheck
//!
//! The paper's main result, made executable: **typechecking k-pebble tree
//! transducers is decidable** (Theorem 4.4).
//!
//! Given a transducer `T`, an input type `τ₁` and an output type `τ₂` (both
//! regular tree languages), `T` *typechecks* when `T(τ₁) ⊆ τ₂`. Type
//! inference is impossible in general (Example 4.2: the image of a regular
//! language need not be regular, and no best regular approximation exists),
//! but **inverse** type inference works, in three steps:
//!
//! 1. [`product::violation_automaton`] — **Proposition 4.6**: compose `T`
//!    with a top-down automaton for the *complement* of `τ₂`, yielding a
//!    k-pebble automaton `A` accepting `{t | T(t) ⊈ τ₂}`.
//! 2. Theorem 4.7 — convert `A` to an ordinary tree automaton. Two routes:
//!    * [`mso_route`] — the paper's proof: translate `A` to an MSO sentence
//!      (the reverse-closed-sets encoding of the and/or configuration
//!      graph) and compile it (non-elementary, any `k`);
//!    * [`walk`] — for `k = 1` (where pebble automata are exactly
//!      *branching tree-walking automata*, covering top-down transducers,
//!      the XSLT fragment, and the Section 5 practical cases): a direct
//!      subtree-behaviour congruence yielding a deterministic bottom-up
//!      automaton, exponentially cheaper.
//! 3. Check `τ₁ ∩ inst(A)` for emptiness; a witness is a **counterexample
//!    input**, and Proposition 3.8 then exhibits a concrete bad output.
//!
//! Also provided: [`inverse::inverse_type`] (the type `τ₂⁻¹ = {t | T(t) ⊆
//! τ₂}` itself), a **forward type-inference baseline**
//! ([`forward`]) in the style the paper's Related Work attributes to
//! XDuce/XQuery — sound but incomplete, for precision comparisons — and a
//! bounded exhaustive checker ([`bounded`]) used to cross-validate the
//! exact pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounded;
pub mod check;
pub mod differential;
pub mod error;
pub mod forward;
pub mod inverse;
pub mod mso_route;
pub mod product;
pub mod replay;
pub mod walk;

pub use check::{
    typecheck, typecheck_with_violations, Engine, Route, TypecheckOptions, TypecheckOutcome,
};
pub use differential::{differential_emptiness, DifferentialVerdict};
pub use error::TypecheckError;
pub use inverse::inverse_type;
pub use product::violation_automaton;
pub use replay::{replay_counterexample, ReplayEvidence};
