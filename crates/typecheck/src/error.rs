//! Errors for the typechecking pipeline.

use std::fmt;
use xmltc_core::MachineError;
use xmltc_mso::CompileError;
use xmltc_trees::TreeError;

/// Errors raised by the typechecker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypecheckError {
    /// The chosen route requires a 1-pebble machine.
    NeedsOnePebble {
        /// Actual pebble count.
        k: u8,
    },
    /// A construction exceeded its state/class budget.
    TooManyStates {
        /// Actual state count.
        n: u32,
    },
    /// MSO compilation exceeded its resource budget (the Theorem 4.8
    /// non-elementary blow-up).
    Mso(CompileError),
    /// The forward (type-inference) baseline only supports downward
    /// 1-pebble transducers; the machine uses an unsupported feature.
    UnsupportedForForward(String),
    /// Machine-level error (alphabet mismatch, ill-typed machine, …).
    Machine(MachineError),
    /// Tree-level error.
    Tree(TreeError),
}

impl fmt::Display for TypecheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypecheckError::NeedsOnePebble { k } => {
                write!(f, "the behaviour route requires k = 1, machine has k = {k}")
            }
            TypecheckError::TooManyStates { n } => {
                write!(f, "state/class budget exceeded: {n} states")
            }
            TypecheckError::Mso(e) => write!(f, "MSO route failed: {e}"),
            TypecheckError::UnsupportedForForward(what) => {
                write!(f, "forward inference baseline does not support {what}")
            }
            TypecheckError::Machine(e) => write!(f, "{e}"),
            TypecheckError::Tree(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TypecheckError {}

impl From<CompileError> for TypecheckError {
    fn from(e: CompileError) -> Self {
        TypecheckError::Mso(e)
    }
}

impl From<MachineError> for TypecheckError {
    fn from(e: MachineError) -> Self {
        TypecheckError::Machine(e)
    }
}

impl From<TreeError> for TypecheckError {
    fn from(e: TreeError) -> Self {
        TypecheckError::Tree(e)
    }
}
